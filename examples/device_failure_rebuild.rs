//! Device failure and rebuild demo (§4.2, Fig. 12): RAIZN serves degraded
//! reads from parity, and rebuilding a replaced device touches only valid
//! data — time-to-repair scales with the data written, not the device
//! size.
//!
//! Run with: `cargo run --example device_failure_rebuild`

use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::sync::Arc;
use zns::{WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

fn device() -> Arc<ZnsDevice> {
    Arc::new(ZnsDevice::new(
        ZnsConfig::builder()
            .zones(32, 1024, 1024)
            .open_limits(14, 28)
            .latency(zns::LatencyConfig::zns_ssd())
            .store_data(false)
            .build(),
    ))
}

fn ttr_for_fill(zones_to_fill: u32) -> sim::SimDuration {
    let devices: Vec<Arc<ZnsDevice>> = (0..5).map(|_| device()).collect();
    let volume =
        RaiznVolume::format(devices, RaiznConfig::default(), SimTime::ZERO).expect("format");
    let geo = volume.geometry();
    let block = vec![0u8; 256 * 4096];
    let mut t = SimTime::ZERO;
    for z in 0..zones_to_fill {
        let mut lba = geo.zone_start(z);
        for _ in 0..geo.zone_cap() / 256 {
            t = volume
                .write(t, lba, &block, WriteFlags::default())
                .expect("fill")
                .done;
            lba += 256;
        }
    }
    volume.fail_device(2).unwrap();
    let report = volume.rebuild(t, device()).expect("rebuild");
    println!(
        "  {zones_to_fill:2} zones of data -> rebuilt {:6.1} MiB in {:.3} s (virtual)",
        report.bytes_written as f64 / (1024.0 * 1024.0),
        report.duration.as_secs_f64()
    );
    report.duration
}

fn main() {
    println!("RAIZN time-to-repair scales with valid data (29 zones = full):");
    let quarter = ttr_for_fill(7);
    let half = ttr_for_fill(14);
    let full = ttr_for_fill(29);
    assert!(quarter < half && half < full);
    println!(
        "TTR ratio quarter:half:full = 1 : {:.1} : {:.1}  (mdraid would be 1 : 1 : 1)",
        half.as_secs_f64() / quarter.as_secs_f64(),
        full.as_secs_f64() / quarter.as_secs_f64()
    );
}
