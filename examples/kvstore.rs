//! Application demo: the zkv LSM key-value store (the repo's RocksDB
//! stand-in) running unmodified on a RAIZN array — the paper's claim that
//! any ZNS application runs on a RAIZN volume without modification (§4).
//!
//! Run with: `cargo run --example kvstore`

use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::sync::Arc;
use zkv::{ZkvConfig, ZkvStore};
use zns::{ZnsConfig, ZnsDevice};

fn main() -> Result<(), zns::ZnsError> {
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|_| {
            Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(32, 1024, 1024)
                    .open_limits(14, 28)
                    .latency(zns::LatencyConfig::zns_ssd())
                    .build(),
            ))
        })
        .collect();
    let volume = Arc::new(RaiznVolume::format(
        devices,
        RaiznConfig::default(),
        SimTime::ZERO,
    )?);

    let store = ZkvStore::create(
        volume.clone(),
        ZkvConfig {
            memtable_bytes: 256 * 1024,
            compaction_trigger: 4,
            ..ZkvConfig::default()
        },
        SimTime::ZERO,
    )?;

    // Load 2000 keys with 1 KiB values, overwriting some to create garbage
    // that compaction must collect.
    let mut t = SimTime::ZERO;
    for pass in 0..3u8 {
        for key in 0..2000u64 {
            let value = vec![pass.wrapping_add(key as u8); 1024];
            t = store.put(t, key, &value)?;
        }
    }
    t = store.sync(t)?;

    // Point lookups hit the memtable or exactly one SSTable read.
    let (v, t2) = store.get(t, 1234)?;
    assert_eq!(v.expect("present")[0], 2u8.wrapping_add(1234u64 as u8));

    let s = store.stats();
    println!("zkv on RAIZN after 6000 puts + readback:");
    println!("  memtable flushes:     {}", s.flushes);
    println!("  compactions:          {}", s.compactions);
    println!(
        "  table bytes written:  {} KiB",
        s.table_bytes_written / 1024
    );
    println!("  zone resets (reclaim):{}", s.zone_resets);
    println!("  virtual time:         {:.3} ms", t2.as_secs_f64() * 1e3);

    let rs = volume.stats();
    println!(
        "RAIZN underneath: {} full parity writes, {} pp log entries, {} zone resets",
        rs.full_parity_writes, rs.pp_log_entries, rs.zone_resets
    );
    Ok(())
}
