//! Quickstart: assemble a RAIZN array from five simulated ZNS SSDs, write
//! and read through the logical zoned volume, and inspect what the volume
//! did under the hood.
//!
//! Run with: `cargo run --example quickstart`

use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::sync::Arc;
use zns::{WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

fn main() -> Result<(), zns::ZnsError> {
    // Five ZNS devices: 32 zones x 4 MiB capacity each (data is stored so
    // we can verify reads).
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|_| {
            Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(32, 1024, 1024)
                    .open_limits(14, 28)
                    .latency(zns::LatencyConfig::zns_ssd())
                    .build(),
            ))
        })
        .collect();

    // Format the array: 64 KiB stripe units, 4 data + 1 rotating parity.
    let volume = RaiznVolume::format(devices, RaiznConfig::default(), SimTime::ZERO)?;
    let geo = volume.geometry();
    println!(
        "RAIZN volume: {} logical zones x {} MiB (stripe unit 64 KiB, 5 devices)",
        geo.num_zones(),
        geo.zone_cap() * geo.sector_size() / (1024 * 1024)
    );

    // The volume is one big ZNS device: sequential writes at the write
    // pointer, zone resets, FUA — all supported.
    let payload: Vec<u8> = (0..256 * 4096).map(|i| (i % 251) as u8).collect();
    let mut t = SimTime::ZERO;
    let mut lba = 0;
    for _ in 0..8 {
        t = volume.write(t, lba, &payload, WriteFlags::default())?.done;
        lba += 256;
    }
    // Make everything durable, like an application fsync.
    t = volume.flush(t)?.done;

    let mut readback = vec![0u8; payload.len()];
    let done = volume.read(t, 0, &mut readback)?.done;
    assert_eq!(readback, payload);

    println!(
        "wrote 8 MiB + flush in {:.3} ms of virtual time, read back OK at {:.3} ms",
        t.as_secs_f64() * 1e3,
        done.as_secs_f64() * 1e3
    );

    let stats = volume.stats();
    println!(
        "under the hood: {} full-stripe parity writes, {} partial-parity log entries, \
         {} metadata appends",
        stats.full_parity_writes, stats.pp_log_entries, stats.md_appends
    );

    // A small unaligned write exercises the partial-parity log (§5.1).
    volume.write(t, lba, &payload[..4096], WriteFlags::FUA)?;
    let stats = volume.stats();
    println!(
        "after one 4 KiB FUA write: {} partial-parity entries, {} persistence flushes",
        stats.pp_log_entries, stats.persistence_flushes
    );
    Ok(())
}
