//! Crash consistency demo: power loss in the middle of a striped write
//! creates a "stripe hole" (Fig. 1 of the paper); mounting repairs it from
//! parity / partial-parity logs, or rolls the zone back and relocates
//! future conflicting writes.
//!
//! Run with: `cargo run --example crash_and_recover`

use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::sync::Arc;
use zns::{CrashPolicy, WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

fn main() -> Result<(), zns::ZnsError> {
    let t0 = SimTime::ZERO;
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|_| Arc::new(ZnsDevice::new(ZnsConfig::small_test())))
        .collect();
    let volume = RaiznVolume::format(devices.clone(), RaiznConfig::small_test(), t0)?;

    // An application writes 9 sectors; the first 7 are FUA (acknowledged
    // durable), the tail 2 sit in device write caches.
    let durable: Vec<u8> = (0..7 * 4096).map(|i| (i % 250) as u8).collect();
    let volatile = vec![0xEEu8; 2 * 4096];
    volume.write(t0, 0, &durable, WriteFlags::FUA)?;
    volume.write(t0, 7, &volatile, WriteFlags::default())?;
    println!("wrote 7 durable (FUA) + 2 cached sectors, then the power fails...");

    // Power loss: every device independently loses an arbitrary suffix of
    // its cached data — the recipe for stripe holes.
    drop(volume);
    let mut rng = sim::SimRng::new(2024);
    for d in &devices {
        d.crash(&mut CrashPolicy::Random(rng.fork()));
    }

    // Mount scans write pointers, replays metadata logs, repairs holes.
    let volume = RaiznVolume::mount(devices.clone(), RaiznConfig::small_test(), t0)?;
    let info = volume.zone_info(0)?;
    let recovered = info.write_pointer - info.start;
    println!("after recovery the zone write pointer is {recovered} sectors");
    assert!(recovered >= 7, "FUA-acknowledged data must survive");

    let mut readback = vec![0u8; 7 * 4096];
    volume.read(t0, 0, &mut readback)?;
    assert_eq!(readback, durable);
    println!("all FUA-acknowledged data verified intact");

    // The recovered volume keeps full fault tolerance: fail a device and
    // the same data is still readable through parity reconstruction.
    volume.fail_device(1)?;
    let mut degraded = vec![0u8; 7 * 4096];
    volume.read(t0, 0, &mut degraded)?;
    assert_eq!(degraded, durable);
    println!("degraded read after device failure verified intact");

    let s = volume.stats();
    println!(
        "recovery stats: {} stripe units repaired from parity, {} relocated",
        s.recovered_units, s.relocated_units
    );
    Ok(())
}
