//! Criterion micro-benchmarks of metadata record encode/decode — the
//! fixed CPU overhead attached to every partial parity log and WAL entry.

use criterion::{criterion_group, criterion_main, Criterion};
use raizn::{MdPayload, MdRecord};
use std::hint::black_box;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_record");
    g.sample_size(20);
    let pp = MdRecord::new(
        MdPayload::PartialParity {
            first_row: 0,
            data: vec![0x7Fu8; 16 * 4096],
        },
        false,
        1024,
        1040,
        3,
    );
    g.bench_function("encode_pp_64k", |b| {
        b.iter(|| black_box(pp.encode().len()));
    });
    let bytes = pp.encode();
    let (h, p) = bytes.split_at(4096);
    g.bench_function("decode_pp_64k", |b| {
        b.iter(|| black_box(MdRecord::decode(h, p).expect("decode")));
    });
    let gens = MdRecord::new(
        MdPayload::GenCounters {
            first_zone: 0,
            counters: (0..508).collect(),
        },
        false,
        0,
        0,
        0,
    );
    g.bench_function("encode_gen_page", |b| {
        b.iter(|| black_box(gens.encode().len()));
    });
    g.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
