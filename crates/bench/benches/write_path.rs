//! Criterion micro-benchmarks of the RAIZN write path (CPU cost per IO,
//! not simulated device time): stripe-aligned vs partial-stripe writes,
//! and the ablation of partial-parity logging vs full-stripe writes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::hint::black_box;
use std::sync::Arc;
use zns::{WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

fn fresh_volume() -> RaiznVolume {
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|_| {
            Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(32, 4096, 4096)
                    .open_limits(14, 28)
                    .store_data(false)
                    .build(),
            ))
        })
        .collect();
    RaiznVolume::format(devices, RaiznConfig::default(), SimTime::ZERO).expect("format")
}

fn bench_write_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("raizn_write_path");
    g.sample_size(10);
    // 4 KiB (partial stripe, pp log) vs 256 KiB (full stripe).
    for (label, sectors) in [("4k_partial", 1u64), ("256k_full_stripe", 64)] {
        g.throughput(Throughput::Bytes(sectors * 4096 * 64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &sectors, |b, &n| {
            let data = vec![0u8; (n * 4096) as usize];
            b.iter(|| {
                let vol = fresh_volume();
                let mut lba = 0;
                for _ in 0..64 {
                    vol.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                        .expect("write");
                    lba += n;
                }
                black_box(vol.stats().pp_log_entries)
            });
        });
    }
    g.finish();
}

fn bench_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("raizn_read_path");
    g.sample_size(10);
    let vol = fresh_volume();
    let data = vec![0u8; 256 * 4096];
    let mut lba = 0;
    for _ in 0..16 {
        vol.write(SimTime::ZERO, lba, &data, WriteFlags::default())
            .expect("prime");
        lba += 256;
    }
    for (label, sectors) in [("4k", 1u64), ("64k", 16), ("1m", 256)] {
        g.throughput(Throughput::Bytes(sectors * 4096));
        g.bench_with_input(BenchmarkId::from_parameter(label), &sectors, |b, &n| {
            let mut buf = vec![0u8; (n * 4096) as usize];
            b.iter(|| {
                vol.read(SimTime::ZERO, black_box(0), &mut buf)
                    .expect("read");
                black_box(buf[0])
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_write_sizes, bench_read_path);
criterion_main!(benches);
