//! Criterion benchmarks of the device substrates themselves: the CPU cost
//! per simulated IO on the ZNS model and the FTL model (with GC active).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ftl::{BlockDevice, ConvSsd, FtlConfig};
use sim::SimTime;
use std::hint::black_box;
use zns::{WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

fn bench_zns(c: &mut Criterion) {
    let mut g = c.benchmark_group("zns_device");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("write_4k", |b| {
        let cfg = ZnsConfig::builder()
            .zones(64, 65_536, 65_536)
            .open_limits(14, 28)
            .store_data(false)
            .build();
        let dev = ZnsDevice::new(cfg);
        let data = vec![0u8; 4096];
        let mut lba = 0u64;
        let cap = 64 * 65_536;
        b.iter(|| {
            if lba >= cap {
                for z in 0..64 {
                    dev.reset_zone(SimTime::ZERO, z).expect("reset");
                }
                lba = 0;
            }
            dev.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .expect("write");
            lba += 1;
            black_box(lba)
        });
    });
    g.finish();
}

fn bench_ftl(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftl_device");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("overwrite_4k_with_gc", |b| {
        let dev = ConvSsd::new(FtlConfig {
            user_sectors: 65_536,
            pages_per_block: 256,
            op_ratio: 0.1,
            gc_low_blocks: 4,
            latency: zns::LatencyConfig::instant(),
            store_data: false,
        });
        let data = vec![0u8; 4096];
        // Prime so GC is active during measurement.
        for lba in 0..65_536u64 {
            dev.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .expect("prime");
        }
        let mut rng = sim::SimRng::new(3);
        b.iter(|| {
            let lba = rng.gen_range(65_536);
            dev.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .expect("write");
            black_box(lba)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_zns, bench_ftl);
criterion_main!(benches);
