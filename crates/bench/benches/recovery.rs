//! Criterion benchmark of mount-time recovery: clean remount and
//! crash remount with stripe-hole repair.

use criterion::{criterion_group, criterion_main, Criterion};
use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::hint::black_box;
use std::sync::Arc;
use zns::{CrashPolicy, WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

fn devices() -> Vec<Arc<ZnsDevice>> {
    (0..5)
        .map(|_| {
            Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(32, 1024, 1024)
                    .open_limits(14, 28)
                    .build(),
            ))
        })
        .collect()
}

fn bench_mount(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);
    g.bench_function("clean_remount", |b| {
        b.iter(|| {
            let devs = devices();
            let vol = RaiznVolume::format(devs.clone(), RaiznConfig::default(), SimTime::ZERO)
                .expect("format");
            let data = vec![0u8; 64 * 4096];
            let mut lba = 0;
            for _ in 0..32 {
                vol.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                    .expect("write");
                lba += 64;
            }
            vol.flush(SimTime::ZERO).expect("flush");
            drop(vol);
            for d in &devs {
                d.crash(&mut CrashPolicy::LoseCache);
            }
            let v2 =
                RaiznVolume::mount(devs, RaiznConfig::default(), SimTime::ZERO).expect("mount");
            black_box(v2.zone_info(0).expect("info").write_pointer)
        });
    });
    g.bench_function("crash_remount_with_holes", |b| {
        b.iter(|| {
            let devs = devices();
            let vol = RaiznVolume::format(devs.clone(), RaiznConfig::default(), SimTime::ZERO)
                .expect("format");
            let data = vec![0u8; 64 * 4096];
            let mut lba = 0;
            for _ in 0..32 {
                vol.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                    .expect("write");
                lba += 64;
            }
            drop(vol);
            let mut rng = sim::SimRng::new(7);
            for d in &devs {
                d.crash(&mut CrashPolicy::Random(rng.fork()));
            }
            let v2 =
                RaiznVolume::mount(devs, RaiznConfig::default(), SimTime::ZERO).expect("mount");
            black_box(v2.zone_info(0).expect("info").write_pointer)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_mount);
criterion_main!(benches);
