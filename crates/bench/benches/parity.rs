//! Criterion micro-benchmarks of the parity hot path: stripe-buffer fill
//! (XOR accumulation) and full-stripe XOR, per stripe-unit size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raizn::StripeBuffer;
use std::hint::black_box;

fn bench_stripe_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("stripe_buffer_fill");
    g.sample_size(20);
    for su_sectors in [4u64, 16, 32] {
        let bytes = 4 * su_sectors * 4096;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(
            BenchmarkId::from_parameter(su_sectors * 4),
            &su_sectors,
            |b, &su| {
                let data = vec![0xA5u8; (4 * su * 4096) as usize];
                b.iter(|| {
                    let mut buf = StripeBuffer::new(0, 4, su);
                    buf.fill(black_box(&data));
                    black_box(buf.parity()[0])
                });
            },
        );
    }
    g.finish();
}

fn bench_xor_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("xor_reconstruct_64k");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(4 * 64 * 1024));
    let units: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 64 * 1024]).collect();
    let views: Vec<&[u8]> = units.iter().map(|u| u.as_slice()).collect();
    let mut acc = vec![0u8; 64 * 1024];
    g.bench_function("xor_fold_4_units", |b| {
        b.iter(|| {
            sim::xor_fold(&mut acc, black_box(&views));
            black_box(acc[0])
        });
    });
    g.bench_function("xor_4_units_scalar_baseline", |b| {
        b.iter(|| {
            for u in &units {
                sim::xor::xor_into_scalar_reference(&mut acc, black_box(u));
            }
            black_box(acc[0])
        });
    });
    g.finish();
}

criterion_group!(benches, bench_stripe_fill, bench_xor_reconstruct);
criterion_main!(benches);
