//! Figure 12: time to repair (TTR) a replaced device vs the amount of
//! valid data. RAIZN rebuilds only written stripes (TTR scales with
//! data); mdraid resyncs the whole address space (constant TTR).

use bench::{conv_devices, mdraid_volume, print_table, raizn_volume, zns_devices, TimelineRun};
use ftl::BlockDevice;
use sim::SimTime;
use std::sync::Arc;
use workloads::{BlockTarget, Engine, IoTarget, JobSpec, OpKind, Pattern, ZonedTarget};
use zns::ZnsDevice;

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096; // 1 GiB per device

fn fill(target: &dyn IoTarget, fraction: f64) -> bench::BenchResult<SimTime> {
    let cap = target.capacity_sectors();
    let sectors = ((cap as f64 * fraction) as u64) / ZONE_SECTORS * ZONE_SECTORS;
    if sectors == 0 {
        return Ok(SimTime::ZERO);
    }
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, 256)
        .region(0, sectors)
        .queue_depth(64);
    Ok(Engine::new(12).run(target, &[job])?.end)
}

fn main() -> bench::BenchResult {
    // Repair is volume-driven (no engine worker pool) and the fill is a
    // single sequential job; the flag exists for CLI uniformity.
    bench::note_single_threaded("fig12", bench::threads_arg("fig12")?);
    // Timeline capture rides on the full-data RAIZN rebuild: the rebuild
    // is volume-driven (no engine loop), so windows come from recorded
    // spans and gauges from phase-boundary samples.
    let capture = TimelineRun::new("fig12");
    let mut capture_end = SimTime::ZERO;
    let mut rows = Vec::new();
    for fraction in [0.125, 0.25, 0.5, 0.75, 1.0] {
        let flagship = fraction == 1.0;
        // RAIZN: fill, fail, rebuild.
        let raizn = if flagship {
            capture.raizn_volume(ZONES, ZONE_SECTORS, 16)?
        } else {
            raizn_volume(ZONES, ZONE_SECTORS, 16)?
        };
        let rt = ZonedTarget::new(raizn.clone());
        let t = fill(&rt, fraction)?;
        raizn.fail_device(0).unwrap();
        if flagship {
            capture.timeline().force_sample(t);
        }
        let replacement: Arc<ZnsDevice> = zns_devices(1, ZONES, ZONE_SECTORS).remove(0);
        let report = raizn.rebuild(t, replacement)?;
        if flagship {
            capture_end = t + report.duration;
        }

        // mdraid: fill, fail, resync.
        let md = mdraid_volume(ZONES as u64 * ZONE_SECTORS, 16)?;
        let mt = BlockTarget::new(md.clone());
        let t = fill(&mt, fraction)?;
        md.fail_device(0);
        let repl: Arc<dyn BlockDevice> = conv_devices(1, ZONES as u64 * ZONE_SECTORS).remove(0);
        let resync = md.resync(t, repl)?;

        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.2}", report.bytes_written as f64 / (1 << 30) as f64),
            format!("{:.3}", report.duration.as_secs_f64()),
            format!("{:.2}", resync.bytes_written as f64 / (1 << 30) as f64),
            format!("{:.3}", resync.duration.as_secs_f64()),
        ]);
    }
    print_table(
        "Figure 12: time to repair a replaced device",
        &[
            "valid data",
            "rz GiB written",
            "rz TTR (s)",
            "md GiB written",
            "md TTR (s)",
        ],
        &rows,
    );

    capture.finish(capture_end)?;
    bench::write_breakdown("fig12")
}
