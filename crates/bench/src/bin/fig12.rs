//! Figure 12: time to repair (TTR) a replaced device vs the amount of
//! valid data. RAIZN rebuilds only written stripes (TTR scales with
//! data); mdraid resyncs the whole address space (constant TTR).

use bench::{conv_devices, mdraid_volume, print_table, raizn_volume, zns_devices};
use ftl::BlockDevice;
use sim::SimTime;
use std::sync::Arc;
use workloads::{BlockTarget, Engine, IoTarget, JobSpec, OpKind, Pattern, ZonedTarget};
use zns::ZnsDevice;

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096; // 1 GiB per device

fn fill(target: &dyn IoTarget, fraction: f64) -> SimTime {
    let cap = target.capacity_sectors();
    let sectors = ((cap as f64 * fraction) as u64) / ZONE_SECTORS * ZONE_SECTORS;
    if sectors == 0 {
        return SimTime::ZERO;
    }
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, 256)
        .region(0, sectors)
        .queue_depth(64);
    Engine::new(12).run(target, &[job]).expect("fill").end
}

fn main() {
    let mut rows = Vec::new();
    for fraction in [0.125, 0.25, 0.5, 0.75, 1.0] {
        // RAIZN: fill, fail, rebuild.
        let raizn = raizn_volume(ZONES, ZONE_SECTORS, 16);
        let rt = ZonedTarget::new(raizn.clone());
        let t = fill(&rt, fraction);
        raizn.fail_device(0);
        let replacement: Arc<ZnsDevice> = zns_devices(1, ZONES, ZONE_SECTORS).remove(0);
        let report = raizn.rebuild(t, replacement).expect("rebuild");

        // mdraid: fill, fail, resync.
        let md = mdraid_volume(ZONES as u64 * ZONE_SECTORS, 16);
        let mt = BlockTarget::new(md.clone());
        let t = fill(&mt, fraction);
        md.fail_device(0);
        let repl: Arc<dyn BlockDevice> = conv_devices(1, ZONES as u64 * ZONE_SECTORS).remove(0);
        let resync = md.resync(t, repl).expect("resync");

        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.2}", report.bytes_written as f64 / (1 << 30) as f64),
            format!("{:.3}", report.duration.as_secs_f64()),
            format!("{:.2}", resync.bytes_written as f64 / (1 << 30) as f64),
            format!("{:.3}", resync.duration.as_secs_f64()),
        ]);
    }
    print_table(
        "Figure 12: time to repair a replaced device",
        &[
            "valid data",
            "rz GiB written",
            "rz TTR (s)",
            "md GiB written",
            "md TTR (s)",
        ],
        &rows,
    );

    bench::write_breakdown("fig12");
}
