//! Figure 9: RAIZN vs mdraid — throughput, median and p99.9 latency
//! across block sizes for sequential write, sequential read and random
//! read (64 KiB stripe units, 8 jobs × QD64 / 1 job × QD256).

use bench::{
    bs_label, mdraid_volume, prime, print_table, raizn_volume, run_micro, Micro, TimelineRun,
};
use sim::SimTime;
use workloads::{BlockTarget, ZonedTarget};
use zns::ZonedVolume;

// Benchmark scale: 5 devices × 64 zones × 16 MiB ≈ 1 GiB per device.
const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096;
const SU: u64 = 16; // 64 KiB
const BLOCK_SIZES: [u64; 5] = [1, 4, 16, 64, 256];

fn main() -> bench::BenchResult {
    let threads = bench::threads_arg("fig9")?;
    // Per-system timeline captures ride on the flagship configuration
    // (sequential write, 1 MiB blocks).
    let rz_capture = TimelineRun::new("fig9_raizn");
    let md_capture = TimelineRun::new("fig9_mdraid");
    let mut rz_end = SimTime::ZERO;
    let mut md_end = SimTime::ZERO;
    let mut rows = Vec::new();
    for micro in [Micro::SeqWrite, Micro::SeqRead, Micro::RandRead] {
        for bs in BLOCK_SIZES {
            let flagship = micro == Micro::SeqWrite && bs == 256;

            // RAIZN on fresh ZNS devices.
            let raizn = if flagship {
                rz_capture.raizn_volume(ZONES, ZONE_SECTORS, SU)?
            } else {
                raizn_volume(ZONES, ZONE_SECTORS, SU)?
            };
            let rt = ZonedTarget::new(raizn);
            let start = if micro == Micro::SeqWrite {
                SimTime::ZERO
            } else {
                prime(&rt, SimTime::ZERO)?
            };
            let align = rt.volume().geometry().zone_cap();
            let timeline = flagship.then(|| rz_capture.timeline());
            let r = run_micro(&rt, micro, bs, align, start, timeline, threads)?;
            if flagship {
                rz_end = r.end;
            }

            // mdraid on fresh conventional SSDs of the same capacity.
            let md = if flagship {
                md_capture.mdraid_volume(ZONES as u64 * ZONE_SECTORS, SU)?
            } else {
                mdraid_volume(ZONES as u64 * ZONE_SECTORS, SU)?
            };
            let mt = BlockTarget::new(md);
            let start = if micro == Micro::SeqWrite {
                SimTime::ZERO
            } else {
                prime(&mt, SimTime::ZERO)?
            };
            let timeline = flagship.then(|| md_capture.timeline());
            let m = run_micro(&mt, micro, bs, align, start, timeline, threads)?;
            if flagship {
                md_end = m.end;
            }

            rows.push(vec![
                micro.name().to_string(),
                bs_label(bs),
                format!("{:.0}", m.throughput_mib_s()),
                format!("{:.0}", r.throughput_mib_s()),
                format!("{}", m.latency.median()),
                format!("{}", r.latency.median()),
                format!("{}", m.latency.percentile(99.9)),
                format!("{}", r.latency.percentile(99.9)),
            ]);
        }
    }
    print_table(
        "Figure 9: RAIZN vs mdraid microbenchmarks (64 KiB stripe units)",
        &[
            "workload", "bs", "md MiB/s", "rz MiB/s", "md p50", "rz p50", "md p99.9", "rz p99.9",
        ],
        &rows,
    );

    rz_capture.finish(rz_end)?;
    md_capture.finish(md_end)?;
    bench::write_breakdown("fig9")
}
