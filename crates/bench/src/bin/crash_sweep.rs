//! Exhaustive crash-point sweep over a scripted workload.
//!
//! Runs the workload on a fresh 5-device array, snapshots every device
//! zone's `[durable, write_pointer]` range, then replays the workload
//! once per crash point — pinning one zone of one device to each
//! possible surviving write pointer — and asserts the recovery
//! invariants every time:
//!
//! - the volume mounts;
//! - each zone's recovered write pointer lies in `[durable, written]`;
//! - everything below the recovered write pointer reads back as the
//!   written prefix;
//! - a scrub pass finds no parity mismatch (no stripe holes survive).
//!
//! Two pin modes are swept (all other zones keep their cache / lose
//! their cache), followed by seeded whole-array random-crash trials.
//!
//! With `--raid6` the sweep runs the dual-parity (RAIZN-2) layout and
//! additionally marks **two devices failed** after every crash point,
//! cycling deterministically through the device pairs: the mount must
//! replay the P and Q partial-parity legs, serve byte-identical reads,
//! and — after both devices are rebuilt onto fresh replacements — pass
//! a clean scrub.
//!
//! Usage: `crash_sweep [--seed N] [--raid6]` (default seed 42, used for
//! the random trials; the enumerated sweep is exhaustive and seed-free).
//!
//! Every violated invariant exits nonzero with the crash point named on
//! stderr (no panics: CI distinguishes a failed gate from a crash).

use bench::{gate, BenchError};
use lsraid::{DirectSink, GcConfig, GcManager, LsConfig, LsVolume};
use raizn::{RaiznConfig, RaiznVolume};
use sim::{SimRng, SimTime};
use std::sync::Arc;
use zns::{
    CrashPolicy, LatencyConfig, WriteFlags, ZnsConfig, ZnsDevice, ZoneState, ZonedVolume,
    SECTOR_SIZE,
};

const T0: SimTime = SimTime::ZERO;
const DEVICES: usize = 5;
const RANDOM_TRIALS: u64 = 64;

/// Every unordered pair of the five devices; `--raid6` cycles through
/// these so each crash point exercises a deterministic double failure.
const PAIRS: [(usize, usize); 10] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 3),
    (1, 4),
    (2, 3),
    (2, 4),
    (3, 4),
];

fn devices() -> Vec<Arc<ZnsDevice>> {
    (0..DEVICES)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
            dev.set_recorder(bench::recorder(), i as u32);
            dev
        })
        .collect()
}

fn bytes(sectors: u64, seed: u64) -> Vec<u8> {
    let mut v = vec![0u8; (sectors * SECTOR_SIZE) as usize];
    SimRng::new(seed).fill_bytes(&mut v);
    v
}

struct ZoneModel {
    data: Vec<u8>,
    durable: u64,
}

impl ZoneModel {
    fn written(&self) -> u64 {
        self.data.len() as u64 / SECTOR_SIZE
    }
}

/// Scripted workload over four logical zones: stripe buffers, partial
/// parity logs, FUA barriers, a logged zone reset, zone finish, and
/// cached tails (including a cached stripe completion with its parity
/// write). `flush` is volume-global, so the durable phase comes first.
fn run_workload(v: &RaiznVolume) -> bench::BenchResult<Vec<ZoneModel>> {
    let lgeo = v.layout().logical_geometry();
    let z = |zone: u32| lgeo.zone_start(zone);

    let a0 = bytes(24, 0xA0);
    let a1 = bytes(20, 0xA1);
    let b0 = bytes(16, 0xB0);
    let b1 = bytes(11, 0xB1);
    let c0 = bytes(5, 0xC0);
    let c1 = bytes(2, 0xC1);
    let c2 = bytes(6, 0xC2);
    let d0 = bytes(8, 0xD0);
    let d1 = bytes(10, 0xD1);

    // Durable phase.
    v.write(T0, z(0), &a0, WriteFlags::default())?;
    v.write(T0, z(1), &b0, WriteFlags::FUA)?;
    v.write(T0, z(2), &c0, WriteFlags::default())?;
    v.write(T0, z(2) + 5, &c1, WriteFlags::FUA)?;
    v.write(T0, z(3), &d0, WriteFlags::default())?;
    v.flush(T0)?;
    v.reset_zone(T0, 3)?;
    v.write(T0, z(3), &d1, WriteFlags::default())?;
    v.flush(T0)?;
    v.finish_zone(T0, 3)?;

    // Cached tails.
    v.write(T0, z(0) + 24, &a1, WriteFlags::default())?;
    v.write(T0, z(1) + 16, &b1, WriteFlags::default())?;
    v.write(T0, z(2) + 7, &c2, WriteFlags::default())?;

    Ok(vec![
        ZoneModel {
            data: [a0, a1].concat(),
            durable: 24,
        },
        ZoneModel {
            data: [b0, b1].concat(),
            durable: 16,
        },
        ZoneModel {
            data: [c0, c1, c2].concat(),
            durable: 7,
        },
        ZoneModel {
            data: d1,
            durable: 10,
        },
    ])
}

fn verify(v: &RaiznVolume, models: &[ZoneModel], point: &str, scrub: bool) -> bench::BenchResult {
    let lgeo = v.layout().logical_geometry();
    for (zi, m) in models.iter().enumerate() {
        let info = v.zone_info(zi as u32)?;
        let wp = info.write_pointer - info.start;
        gate!(
            wp >= m.durable,
            "{point}: zone {zi} lost durable data (wp {wp} < durable {})",
            m.durable
        );
        gate!(
            wp <= m.written(),
            "{point}: zone {zi} invented data (wp {wp} > written {})",
            m.written()
        );
        if wp > 0 {
            let mut out = vec![0u8; (wp * SECTOR_SIZE) as usize];
            v.read(T0, lgeo.zone_start(zi as u32), &mut out)
                .map_err(|e| BenchError::Gate(format!("{point}: zone {zi} read failed: {e}")))?;
            gate!(
                out[..] == m.data[..out.len()],
                "{point}: zone {zi} recovered data is not the written prefix (wp {wp})"
            );
        }
    }
    if scrub {
        let rep = v
            .scrub(T0)
            .map_err(|e| BenchError::Gate(format!("{point}: scrub failed: {e}")))?;
        gate!(
            rep.parity_repairs == 0 && rep.units_healed == 0,
            "{point}: scrub found damage after recovery: {rep:?}"
        );
    }
    Ok(())
}

/// Runs the workload on fresh devices, crashes each device with the
/// policy `policy_for(device)` returns, mounts and verifies. With a
/// `fail_pair`, both devices are marked failed before the mount: the
/// recovery runs degraded, reads are verified through the two-erasure
/// path, then both devices are rebuilt onto fresh replacements and the
/// full (scrubbed) verification repeats.
fn run_point(
    point: &str,
    cfg: &RaiznConfig,
    fail_pair: Option<(usize, usize)>,
    mut policy_for: impl FnMut(usize) -> CrashPolicy,
) -> bench::BenchResult {
    let devs = devices();
    let v = RaiznVolume::format(devs.clone(), *cfg, T0)?;
    let models = run_workload(&v)?;
    drop(v);
    for (i, dev) in devs.iter().enumerate() {
        let mut p = policy_for(i);
        dev.crash(&mut p);
    }
    if let Some((a, b)) = fail_pair {
        devs[a].fail();
        devs[b].fail();
    }
    let v = RaiznVolume::mount(devs, *cfg, T0)
        .map_err(|e| BenchError::Gate(format!("{point}: mount failed: {e}")))?;
    if let Some((a, b)) = fail_pair {
        // Scrub needs full redundancy: verify reads degraded first.
        verify(&v, &models, point, false)?;
        for lost in [a, b] {
            let fresh = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
            fresh.set_recorder(bench::recorder(), lost as u32);
            v.rebuild(T0, fresh).map_err(|e| {
                BenchError::Gate(format!("{point}: rebuild of dev {lost} failed: {e}"))
            })?;
        }
        gate!(
            v.failed_devices().is_empty(),
            "{point}: devices still failed after both rebuilds"
        );
        verify(&v, &models, point, true)
    } else {
        verify(&v, &models, point, true)
    }
}

/// Lifecycle crash points: a background zone finish or a batched zone
/// reset interrupted after `k` of the array's per-device operations
/// landed. Both are write-ahead logged: the remount replays the reset,
/// and rolls the finish forward to Full at the logged write pointer —
/// even when every already-sealed device is among the failed pair, the
/// replicated finish log is witness enough. Either way the remount must
/// agree with the durable zone states and leave the zone immediately
/// usable.
fn run_lifecycle_point(
    cfg: &RaiznConfig,
    fail_pair: Option<(usize, usize)>,
    mid_finish: bool,
    k: usize,
) -> bench::BenchResult {
    let what = if mid_finish { "finish" } else { "reset" };
    let point = format!(
        "lifecycle {what} k={k}{}",
        fail_pair.map_or(String::new(), |(a, b)| format!(" fail ({a},{b})"))
    );
    let devs = devices();
    let v = RaiznVolume::format(devs.clone(), *cfg, T0)?;
    let lgeo = v.layout().logical_geometry();
    let stripe_data = v.layout().stripe_data_sectors();
    let phys = v.layout().phys_zone(0);
    // Zone 0 takes the interruption; zone 1 is an untouched control.
    let sectors = 2 * stripe_data;
    let data = bytes(sectors, 0xF0 + k as u64);
    let control = bytes(stripe_data + 3, 0xE0 + k as u64);
    v.write(T0, lgeo.zone_start(0), &data, WriteFlags::default())?;
    v.write(T0, lgeo.zone_start(1), &control, WriteFlags::default())?;
    v.flush(T0)?;
    if mid_finish {
        v.interrupted_finish_for_test(T0, 0, k)?;
    } else {
        v.interrupted_reset_for_test(T0, 0, k)?;
    }
    drop(v);
    for dev in &devs {
        dev.crash(&mut CrashPolicy::LoseCache);
    }
    if let Some((a, b)) = fail_pair {
        devs[a].fail();
        devs[b].fail();
    }
    let v = RaiznVolume::mount(devs.clone(), *cfg, T0)
        .map_err(|e| BenchError::Gate(format!("{point}: mount failed: {e}")))?;

    let failed = |i: usize| fail_pair.is_some_and(|(a, b)| i == a || i == b);
    // Roll-forward work (and its stat) happens only when a surviving
    // device is still unsealed; if every live device already sealed,
    // the remount just acknowledges the completed finish.
    let surv_open = (k..DEVICES).any(|i| !failed(i));
    let info = v.zone_info(0)?;
    let wp = info.write_pointer - info.start;
    if mid_finish {
        gate!(
            info.state == ZoneState::Full,
            "{point}: finish not rolled forward ({:?})",
            info.state
        );
        gate!(
            v.stats().finish_rollforwards == (surv_open as u64),
            "{point}: rollforward count {} (expected {})",
            v.stats().finish_rollforwards,
            surv_open as u64
        );
        for (i, dev) in devs.iter().enumerate() {
            if !failed(i) {
                let st = dev.zone_info(phys)?.state;
                gate!(
                    st == ZoneState::Full,
                    "{point}: device {i} left unsealed ({st:?})"
                );
            }
        }
        gate!(
            wp == sectors,
            "{point}: zone 0 wp {wp} (expected {sectors})"
        );
        let mut out = vec![0u8; data.len()];
        v.read(T0, lgeo.zone_start(0), &mut out)
            .map_err(|e| BenchError::Gate(format!("{point}: zone 0 read failed: {e}")))?;
        gate!(out == data, "{point}: zone 0 prefix corrupted");
    } else {
        // The reset WAL wins regardless of how many devices got reset.
        gate!(
            info.state == ZoneState::Empty && wp == 0,
            "{point}: reset not replayed (state {:?} wp {wp})",
            info.state
        );
    }
    // The control zone is untouched by either interruption.
    let c = v.zone_info(1)?;
    gate!(
        c.write_pointer - c.start == stripe_data + 3,
        "{point}: control zone wp moved"
    );
    let mut out = vec![0u8; control.len()];
    v.read(T0, lgeo.zone_start(1), &mut out)
        .map_err(|e| BenchError::Gate(format!("{point}: control read failed: {e}")))?;
    gate!(out == control, "{point}: control zone corrupted");

    if let Some((a, b)) = fail_pair {
        for lost in [a, b] {
            let fresh = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
            fresh.set_recorder(bench::recorder(), lost as u32);
            v.rebuild(T0, fresh).map_err(|e| {
                BenchError::Gate(format!("{point}: rebuild of dev {lost} failed: {e}"))
            })?;
        }
    }
    let rep = v
        .scrub(T0)
        .map_err(|e| BenchError::Gate(format!("{point}: scrub failed: {e}")))?;
    gate!(
        rep.parity_repairs == 0 && rep.units_healed == 0,
        "{point}: scrub found damage after recovery: {rep:?}"
    );
    // The zone is immediately usable: rolled-forward finishes reopen
    // via reset, replayed resets accept fresh data straight away.
    let probe = bytes(2, 0x90 + k as u64);
    if mid_finish {
        v.reset_zone(T0, 0)?;
    }
    v.write(T0, lgeo.zone_start(0), &probe, WriteFlags::default())?;
    let mut out = vec![0u8; probe.len()];
    v.read(T0, lgeo.zone_start(0), &mut out)?;
    gate!(out == probe, "{point}: zone 0 unusable after recovery");
    Ok(())
}

// ----------------------------------------------------------------------
// Log-structured engine (lsraid) sweep
// ----------------------------------------------------------------------

/// Which scripted lsraid workload a crash point interrupts.
#[derive(Clone, Copy, PartialEq)]
enum LsScenario {
    /// Crash mid stripe-group seal: the last full stripe is sealed (its
    /// summary record is durable) but its data and parity writes are
    /// still cached, plus an in-memory partial-stripe tail.
    Seal,
    /// Crash mid GC migration: a victim is acquired and fully read, the
    /// migrated copies sit in cached cold-stream writes, and the victim
    /// group has not been reclaimed.
    GcMigration,
    /// Crash right after a GC reclaim: the group-free record is durable
    /// and the victim's zones were reset.
    GcReclaim,
}

fn ls_devices() -> Vec<Arc<ZnsDevice>> {
    let config = ZnsConfig::builder()
        .zones(16, 64, 64)
        .open_limits(8, 12)
        .latency(LatencyConfig::instant())
        .build();
    (0..DEVICES)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(config.clone()));
            dev.set_recorder(bench::recorder(), i as u32);
            dev
        })
        .collect()
}

/// Scripted seal workload over five logical zones: flushed prefixes, a
/// FUA barrier, a logged zone reset, a zone finish, then a cached tail
/// that seals one full stripe (durable summary, cached data + parity)
/// and leaves a partial stripe in memory.
fn ls_seal_workload(v: &LsVolume) -> bench::BenchResult<Vec<ZoneModel>> {
    let geo = v.geometry();
    let z = |zone: u32| geo.zone_start(zone);

    let a0 = bytes(40, 0x1A0);
    let a1 = bytes(20, 0x1A1);
    let b0 = bytes(64, 0x1B0);
    let c0 = bytes(24, 0x1C0);
    let c1 = bytes(10, 0x1C1);
    let d0 = bytes(64, 0x1D0);
    let e0 = bytes(64, 0x1E0);

    // Durable phase.
    v.write(T0, z(0), &a0, WriteFlags::default())?;
    v.flush(T0)?;
    v.write(T0, z(1), &b0, WriteFlags::FUA)?;
    v.write(T0, z(2), &c0, WriteFlags::default())?;
    v.flush(T0)?;
    v.reset_zone(T0, 2)?;
    v.write(T0, z(2), &c1, WriteFlags::default())?;
    v.flush(T0)?;
    v.write(T0, z(3), &d0, WriteFlags::default())?;
    v.flush(T0)?;
    v.finish_zone(T0, 3)?;

    // Cached tail: 20 + 64 sectors fill one 64-sector stripe (sealed,
    // summary durable, data cached) and leave 20 in the stripe buffer.
    v.write(T0, z(0) + 40, &a1, WriteFlags::default())?;
    v.write(T0, z(4), &e0, WriteFlags::default())?;

    Ok(vec![
        ZoneModel {
            data: [a0, a1].concat(),
            durable: 40,
        },
        ZoneModel {
            data: b0,
            durable: 64,
        },
        ZoneModel {
            data: c1,
            durable: 10,
        },
        ZoneModel {
            data: d0,
            durable: 64,
        },
        ZoneModel {
            data: e0,
            durable: 0,
        },
    ])
}

/// Fills eight zones, overwrites enough of them to create a high-garbage
/// sealed group, flushes (so every logical sector is durable), then runs
/// GC up to the scenario's interruption point. The crash must never lose
/// a byte: the reclaim ordering keeps old copies mapped until migrated
/// ones are durable.
fn ls_gc_workload(v: &Arc<LsVolume>, scenario: LsScenario) -> bench::BenchResult<Vec<ZoneModel>> {
    let geo = v.geometry();
    let cap = geo.zone_cap();
    let mut models = Vec::new();
    for zi in 0..8u32 {
        let data = bytes(cap, 0x200 + u64::from(zi));
        v.write(T0, geo.zone_start(zi), &data, WriteFlags::default())?;
        models.push(ZoneModel { data, durable: cap });
    }
    v.flush(T0)?;
    // Overwrites: zones 0 and 1 fully, zone 2 half — the first sealed
    // group (zones 0..3) is now 5/8 garbage and the preferred victim.
    for zi in 0..2u32 {
        let data = bytes(cap, 0x300 + u64::from(zi));
        v.write(T0, geo.zone_start(zi), &data, WriteFlags::default())?;
        models[zi as usize].data = data;
    }
    let half = bytes(cap / 2, 0x380);
    v.write(T0, geo.zone_start(2), &half, WriteFlags::default())?;
    models[2].data[..half.len()].copy_from_slice(&half);
    v.flush(T0)?;

    let budget = if scenario == LsScenario::GcMigration {
        // Just enough to seal one cold stripe (cached) and stop with the
        // victim still acquired and unreclaimed.
        96
    } else {
        1 << 20
    };
    let mut mgr = GcManager::new(
        v.clone(),
        // Watermarks above the pool size keep the collector at full
        // pressure, so every pump migrates regardless of free headroom.
        GcConfig {
            budget_sectors: budget,
            low_water: 64,
            threshold_water: 65,
            high_water: 65,
            ..GcConfig::default()
        },
    );
    let mut sink = DirectSink::new(v);
    mgr.pump(T0, &mut sink)?;
    if scenario == LsScenario::GcMigration {
        gate!(
            mgr.active(),
            "gc workload: migration completed instead of stopping mid-flight"
        );
        gate!(
            mgr.migrated_sectors() >= 64,
            "gc workload: budget sealed no cold stripe ({} sectors)",
            mgr.migrated_sectors()
        );
    } else {
        while mgr.active() || mgr.reclaimed_groups() == 0 {
            let before = mgr.reclaimed_groups();
            mgr.pump(T0, &mut sink)?;
            gate!(
                mgr.reclaimed_groups() > before || mgr.active(),
                "gc workload: pump made no progress toward a reclaim"
            );
        }
    }
    Ok(models)
}

fn ls_verify(v: &LsVolume, models: &[ZoneModel], point: &str) -> bench::BenchResult {
    let geo = v.geometry();
    for (zi, m) in models.iter().enumerate() {
        let info = v.zone_info(zi as u32)?;
        let wp = info.write_pointer - info.start;
        gate!(
            wp >= m.durable,
            "{point}: lsraid zone {zi} lost durable data (wp {wp} < durable {})",
            m.durable
        );
        gate!(
            wp <= m.written(),
            "{point}: lsraid zone {zi} invented data (wp {wp} > written {})",
            m.written()
        );
        if wp > 0 {
            let mut out = vec![0u8; (wp * SECTOR_SIZE) as usize];
            v.read(T0, geo.zone_start(zi as u32), &mut out)
                .map_err(|e| {
                    BenchError::Gate(format!("{point}: lsraid zone {zi} read failed: {e}"))
                })?;
            gate!(
                out[..] == m.data[..out.len()],
                "{point}: lsraid zone {zi} recovered data is not the written prefix (wp {wp})"
            );
        }
    }
    let rep = v
        .scrub(T0)
        .map_err(|e| BenchError::Gate(format!("{point}: lsraid scrub failed: {e}")))?;
    gate!(
        rep.parity_errors == 0 && rep.q_errors == 0,
        "{point}: lsraid scrub found damage after recovery: {rep:?}"
    );
    Ok(())
}

/// Runs one lsraid scenario on fresh devices, crashes each device with
/// `policy_for(device)`, remounts and verifies the recovery invariants.
fn run_ls_point(
    point: &str,
    scenario: LsScenario,
    mut policy_for: impl FnMut(usize) -> CrashPolicy,
) -> bench::BenchResult {
    let devs = ls_devices();
    let v = Arc::new(LsVolume::format(devs.clone(), LsConfig::default(), T0)?);
    let models = match scenario {
        LsScenario::Seal => ls_seal_workload(&v)?,
        _ => ls_gc_workload(&v, scenario)?,
    };
    drop(v);
    for (i, dev) in devs.iter().enumerate() {
        let mut p = policy_for(i);
        dev.crash(&mut p);
    }
    let v = LsVolume::mount(devs, LsConfig::default(), T0)
        .map_err(|e| BenchError::Gate(format!("{point}: lsraid mount failed: {e}")))?;
    ls_verify(&v, &models, point)
}

/// Enumerates every surviving crash point of a scenario (each device
/// zone pinned to each write pointer between its durable prefix and its
/// written tail), sweeps both pin modes plus the two global extremes,
/// and finishes with seeded whole-array random crashes.
fn ls_sweep(name: &str, scenario: LsScenario, seed: u64) -> bench::BenchResult<usize> {
    let devs = ls_devices();
    let v = Arc::new(LsVolume::format(devs.clone(), LsConfig::default(), T0)?);
    let models = match scenario {
        LsScenario::Seal => ls_seal_workload(&v)?,
        _ => ls_gc_workload(&v, scenario)?,
    };
    ls_verify(&v, &models, &format!("lsraid {name} baseline"))?;
    drop(v);
    let num_zones = devs[0].geometry().num_zones();
    let mut points: Vec<(usize, u32, u64)> = Vec::new();
    for (d, dev) in devs.iter().enumerate() {
        for zone in 0..num_zones {
            let durable = dev.durable_wp(zone);
            let info = dev.zone_info(zone)?;
            let wp = info.write_pointer - info.start;
            for s in durable..wp {
                points.push((d, zone, s));
            }
        }
    }

    run_ls_point(&format!("lsraid {name} keep-cache"), scenario, |_| {
        CrashPolicy::KeepCache
    })?;
    run_ls_point(&format!("lsraid {name} lose-cache"), scenario, |_| {
        CrashPolicy::LoseCache
    })?;
    for (d, zone, s) in &points {
        run_ls_point(
            &format!("lsraid {name} pin dev {d} zone {zone} survivor {s}"),
            scenario,
            |i| {
                if i == *d {
                    CrashPolicy::pin_zone(*zone, *s)
                } else {
                    CrashPolicy::KeepCache
                }
            },
        )?;
        run_ls_point(
            &format!("lsraid {name} pin+lose dev {d} zone {zone} survivor {s}"),
            scenario,
            |i| {
                if i == *d {
                    CrashPolicy::pin_zone_lose_rest(*zone, *s)
                } else {
                    CrashPolicy::LoseCache
                }
            },
        )?;
    }
    for trial in 0..LS_RANDOM_TRIALS {
        run_ls_point(
            &format!("lsraid {name} random trial {trial}"),
            scenario,
            |i| CrashPolicy::Random(SimRng::new_stream(seed, trial * DEVICES as u64 + i as u64)),
        )?;
    }
    Ok(points.len())
}

const LS_RANDOM_TRIALS: u64 = 16;

fn main() -> bench::BenchResult {
    let mut seed = 42u64;
    let mut raid6 = false;
    let mut rest = bench::cli_args();
    // Crash points must replay one at a time to pin blame; the flag
    // exists for CLI uniformity.
    bench::note_single_threaded("crash_sweep", bench::take_threads(&mut rest)?);
    let mut args = rest.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| BenchError::Gate("--seed needs an integer".into()))?;
            }
            "--raid6" => raid6 = true,
            other => {
                return Err(BenchError::Gate(format!(
                    "unknown argument {other:?} (usage: crash_sweep [--seed N] [--raid6] [--threads N])"
                )));
            }
        }
    }
    let cfg = if raid6 {
        RaiznConfig::small_test_raizn2()
    } else {
        RaiznConfig::small_test()
    };
    // `--raid6` cycles one device pair per crash point so the sweep stays
    // the same length while every pair recurs across the enumeration.
    let mut pair_seq = 0usize;
    let mut next_pair = || {
        if raid6 {
            let p = PAIRS[pair_seq % PAIRS.len()];
            pair_seq += 1;
            Some(p)
        } else {
            None
        }
    };

    // Baseline run: verify and snapshot the crash-point ranges.
    let base_devs = devices();
    let v = RaiznVolume::format(base_devs.clone(), cfg, T0)?;
    let models = run_workload(&v)?;
    verify(&v, &models, "baseline", true)?;
    drop(v);
    let num_zones = base_devs[0].geometry().num_zones();
    let mut points: Vec<(usize, u32, u64)> = Vec::new();
    for (d, dev) in base_devs.iter().enumerate() {
        for zone in 0..num_zones {
            let durable = dev.durable_wp(zone);
            let info = dev.zone_info(zone)?;
            let wp = info.write_pointer - info.start;
            for s in durable..wp {
                points.push((d, zone, s));
            }
        }
    }
    println!(
        "crash sweep{}: {} enumerated crash points x 2 pin modes + {} random trials (seed {seed})",
        if raid6 { " [raid6]" } else { "" },
        points.len(),
        RANDOM_TRIALS
    );

    // Global extremes.
    run_point("keep-cache", &cfg, next_pair(), |_| CrashPolicy::KeepCache)?;
    run_point("lose-cache", &cfg, next_pair(), |_| CrashPolicy::LoseCache)?;

    // Lifecycle crash points: a background finish interrupted after k of
    // 5 device seals, and a batched reset interrupted after k of 5
    // device resets (k = 0 leaves only the WAL intent in both cases).
    let mut lifecycle_points = 0usize;
    for k in 0..DEVICES {
        run_lifecycle_point(&cfg, next_pair(), true, k)?;
        lifecycle_points += 1;
    }
    for k in 0..DEVICES {
        run_lifecycle_point(&cfg, next_pair(), false, k)?;
        lifecycle_points += 1;
    }

    // Exhaustive single-zone pins: the probed zone survives at `s`
    // while the rest of the array keeps (mode A) or loses (mode B) its
    // cache.
    for (d, zone, s) in &points {
        run_point(
            &format!("pin dev {d} zone {zone} survivor {s}"),
            &cfg,
            next_pair(),
            |i| {
                if i == *d {
                    CrashPolicy::pin_zone(*zone, *s)
                } else {
                    CrashPolicy::KeepCache
                }
            },
        )?;
        run_point(
            &format!("pin+lose dev {d} zone {zone} survivor {s}"),
            &cfg,
            next_pair(),
            |i| {
                if i == *d {
                    CrashPolicy::pin_zone_lose_rest(*zone, *s)
                } else {
                    CrashPolicy::LoseCache
                }
            },
        )?;
    }

    // Seeded whole-array random crashes: every zone of every device
    // rolls independently.
    for trial in 0..RANDOM_TRIALS {
        run_point(&format!("random trial {trial}"), &cfg, next_pair(), |i| {
            CrashPolicy::Random(SimRng::new_stream(seed, trial * DEVICES as u64 + i as u64))
        })?;
    }

    println!(
        "crash sweep{}: PASS ({} points x 2 modes, 2 extremes, {} lifecycle points, {} random trials)",
        if raid6 { " [raid6]" } else { "" },
        points.len(),
        lifecycle_points,
        RANDOM_TRIALS
    );

    // Log-structured engine: the same exhaustive pin sweep over a
    // stripe-group seal, a mid-flight GC migration, and a completed GC
    // reclaim (the two extremes and random trials cover the latter's
    // all-durable state; it enumerates no cached points).
    let seal_points = ls_sweep("seal", LsScenario::Seal, seed)?;
    let gc_points = ls_sweep(
        "gc-migration",
        LsScenario::GcMigration,
        seed.wrapping_add(1),
    )?;
    let reclaim_points = ls_sweep("gc-reclaim", LsScenario::GcReclaim, seed.wrapping_add(2))?;
    println!(
        "crash sweep [lsraid]: PASS (seal {seal_points} + gc-migration {gc_points} + \
         gc-reclaim {reclaim_points} points x 2 modes, 2 extremes and {LS_RANDOM_TRIALS} \
         random trials each)"
    );

    bench::write_breakdown("crash_sweep")
}
