//! RAIZN-2 acceptance bench: dual-parity (P+Q) write cost against the
//! paper's single-parity baseline, two-device sequential rebuild
//! throughput, and the end-to-end double-failure survival scenario.
//!
//! Emits `BENCH_raizn2.json` with:
//!
//! - `p1_write_mib_s` / `p2_write_mib_s`: virtual-time sequential
//!   full-stripe write throughput of otherwise identical parity = 1 and
//!   parity = 2 arrays (gate: dual parity keeps >= 55% of single-parity
//!   throughput — the theoretical data-share ratio is 75%, the margin
//!   absorbs the Q math and the second pp-log leg).
//! - `rebuild_mib_s`: valid-data throughput of rebuilding BOTH failed
//!   devices onto fresh replacements (gate: >= 200 MiB/s of virtual
//!   time — deterministic, so the floor is tight), with
//!   `rebuild_vs_fill` (total rebuild time over initial fill time)
//!   reported for context: the fill pipelines stripes across zones
//!   while the rebuild walks zones sequentially.
//! - double-failure scenario gates (no numeric output): byte-identical
//!   reads with any two devices failed, two-erasure decodes actually
//!   exercised, degraded writes durable, a second (different) pair
//!   failure after the rebuilds still reads byte-identical, and a final
//!   clean scrub.
//!
//! All timing is virtual (the device latency model), so the figures are
//! deterministic across hosts.

use bench::{gate, BenchError};
use raizn::{RaiznConfig, RaiznVolume};
use sim::{SimRng, SimTime};
use std::sync::Arc;
use zns::{LatencyConfig, WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume, SECTOR_SIZE};

const T0: SimTime = SimTime::ZERO;
const DEVICES: usize = 5;
const ZONES: u32 = 16;
const ZONE_SECTORS: u64 = 1024;
const FILL_ZONES: u32 = 4;

fn devices(base: u32) -> Vec<Arc<ZnsDevice>> {
    (0..DEVICES)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(ZONES, ZONE_SECTORS, ZONE_SECTORS)
                    .open_limits(14, 28)
                    .latency(LatencyConfig::zns_ssd())
                    .build(),
            ));
            dev.set_recorder(bench::recorder(), base + i as u32);
            dev
        })
        .collect()
}

fn fresh_device() -> Arc<ZnsDevice> {
    Arc::new(ZnsDevice::new(
        ZnsConfig::builder()
            .zones(ZONES, ZONE_SECTORS, ZONE_SECTORS)
            .open_limits(14, 28)
            .latency(LatencyConfig::zns_ssd())
            .build(),
    ))
}

fn volume(parity: u32, dev_base: u32) -> bench::BenchResult<Arc<RaiznVolume>> {
    let cfg = RaiznConfig {
        parity,
        ..RaiznConfig::default()
    };
    Ok(Arc::new(RaiznVolume::format(devices(dev_base), cfg, T0)?))
}

fn bytes(sectors: u64, seed: u64) -> Vec<u8> {
    let mut v = vec![0u8; (sectors * SECTOR_SIZE) as usize];
    SimRng::new(seed).fill_bytes(&mut v);
    v
}

/// Fills the first `zones` logical zones with full-stripe sequential
/// writes, returning (logical MiB written, virtual seconds, end time).
fn fill(v: &RaiznVolume, zones: u32, seed: u64) -> bench::BenchResult<(f64, f64, SimTime)> {
    let g = v.geometry();
    let stripe = v.layout().stripe_data_sectors();
    let data = bytes(stripe, seed);
    let mut end = T0;
    let mut sectors = 0u64;
    for z in 0..zones {
        let mut lba = g.zone_start(z);
        let zone_end = lba + g.zone_cap();
        while lba < zone_end {
            end = end.max(v.write(T0, lba, &data, WriteFlags::default())?.done);
            lba += stripe;
            sectors += stripe;
        }
    }
    let mib = (sectors * SECTOR_SIZE) as f64 / (1024.0 * 1024.0);
    let secs = end.since(T0).as_secs_f64();
    Ok((mib, secs, end))
}

/// Reads `sectors` from `lba` and compares against `expect`.
fn check(v: &RaiznVolume, lba: u64, expect: &[u8], what: &str) -> bench::BenchResult {
    let mut out = vec![0u8; expect.len()];
    v.read(T0, lba, &mut out)
        .map_err(|e| BenchError::Gate(format!("{what}: read failed: {e}")))?;
    gate!(out == expect, "{what}: data mismatch after reconstruction");
    Ok(())
}

fn main() -> bench::BenchResult {
    // Virtual-time measurements; the flag exists for CLI uniformity.
    bench::note_single_threaded("raizn2", bench::threads_arg("raizn2")?);

    // --- Write cost: parity = 1 vs parity = 2 ---------------------------
    let v1 = volume(1, 0)?;
    let (mib1, secs1, _) = fill(&v1, FILL_ZONES, 0x11)?;
    let p1_mib_s = mib1 / secs1;
    drop(v1);

    let v2 = volume(2, 10)?;
    let (mib2, secs2, _) = fill(&v2, FILL_ZONES, 0x22)?;
    let p2_mib_s = mib2 / secs2;
    let cost_ratio = p2_mib_s / p1_mib_s;
    let s2 = v2.stats();
    gate!(
        s2.q_parity_writes > 0,
        "dual-parity fill never wrote a Q unit"
    );

    // --- Two-device rebuild throughput ----------------------------------
    // Fail two devices of the filled dual-parity array, verify a sample
    // degraded read, then rebuild both sequentially onto replacements.
    let g = v2.geometry();
    let stripe = v2.layout().stripe_data_sectors();
    let sample = {
        // First stripe of zone 1, as written by fill's per-stripe pattern.
        bytes(stripe, 0x22)
    };
    v2.fail_device(1)
        .map_err(|e| BenchError::Gate(format!("fail_device(1): {e}")))?;
    v2.fail_device(3)
        .map_err(|e| BenchError::Gate(format!("fail_device(3): {e}")))?;
    check(&v2, g.zone_start(1), &sample, "double-degraded sample read")?;
    let mut rebuild_bytes = 0u64;
    let mut rebuild_secs = 0.0f64;
    let mut zones_rebuilt = 0u32;
    for _ in 0..2 {
        let r = v2
            .rebuild(T0, fresh_device())
            .map_err(|e| BenchError::Gate(format!("rebuild failed: {e}")))?;
        rebuild_bytes += r.bytes_written;
        rebuild_secs += r.duration.as_secs_f64();
        zones_rebuilt += r.zones_rebuilt;
    }
    gate!(
        v2.failed_devices().is_empty(),
        "devices still failed after both rebuilds"
    );
    gate!(
        zones_rebuilt >= 2 * FILL_ZONES,
        "rebuilds covered {zones_rebuilt} zones, expected >= {}",
        2 * FILL_ZONES
    );
    let rebuild_mib_s = rebuild_bytes as f64 / (1024.0 * 1024.0) / rebuild_secs;
    let rebuild_vs_fill = rebuild_secs / secs2;
    let rep = v2
        .scrub(T0)
        .map_err(|e| BenchError::Gate(format!("scrub after rebuilds: {e}")))?;
    gate!(
        rep.parity_repairs == 0 && rep.units_healed == 0,
        "scrub found damage after rebuilds: {rep:?}"
    );
    drop(v2);

    // --- Double-failure survival scenario --------------------------------
    // Durable writes, fail a pair, byte-identical reads through the
    // two-erasure decode, degraded writes, both rebuilds, then a second
    // (different) pair failure and a final clean scrub.
    let v = volume(2, 20)?;
    let g = v.geometry();
    let durable = bytes(g.zone_cap(), 0x33);
    v.write(T0, 0, &durable, WriteFlags::FUA)?;
    let tail = bytes(9, 0x34); // partial stripe: stripe-buffer reads
    v.write(T0, g.zone_start(1), &tail, WriteFlags::default())?;
    v.flush(T0)?;
    v.fail_device(0)
        .map_err(|e| BenchError::Gate(format!("fail_device(0): {e}")))?;
    v.fail_device(4)
        .map_err(|e| BenchError::Gate(format!("fail_device(4): {e}")))?;
    check(&v, 0, &durable, "scenario: full zone, pair (0,4) failed")?;
    check(&v, g.zone_start(1), &tail, "scenario: partial stripe")?;
    gate!(
        v.stats().double_degraded_reads > 0,
        "scenario never exercised a two-erasure decode"
    );
    // Writes landed while double-degraded must survive the rebuilds.
    let during = bytes(g.zone_cap(), 0x35);
    v.write(T0, g.zone_start(2), &during, WriteFlags::FUA)?;
    for _ in 0..2 {
        v.rebuild(T0, fresh_device())
            .map_err(|e| BenchError::Gate(format!("scenario rebuild: {e}")))?;
    }
    v.fail_device(2)
        .map_err(|e| BenchError::Gate(format!("fail_device(2): {e}")))?;
    v.fail_device(3)
        .map_err(|e| BenchError::Gate(format!("fail_device(3): {e}")))?;
    check(&v, 0, &durable, "scenario: full zone, pair (2,3) failed")?;
    check(
        &v,
        g.zone_start(2),
        &during,
        "scenario: degraded-written zone",
    )?;

    let json = format!(
        "{{\n  \"p1_write_mib_s\": {p1_mib_s:.1},\n  \"p2_write_mib_s\": {p2_mib_s:.1},\n  \"p2_over_p1\": {cost_ratio:.3},\n  \"rebuild_mib_s\": {rebuild_mib_s:.1},\n  \"rebuild_vs_fill\": {rebuild_vs_fill:.2},\n  \"zones_rebuilt\": {zones_rebuilt},\n  \"q_parity_writes\": {}\n}}\n",
        s2.q_parity_writes
    );
    std::fs::write("BENCH_raizn2.json", &json)?;
    print!("{json}");

    gate!(
        cost_ratio >= 0.55,
        "dual-parity write throughput below budget: {cost_ratio:.3} of single parity (need >= 0.55)"
    );
    gate!(
        rebuild_mib_s >= 200.0,
        "two-device rebuild below budget: {rebuild_mib_s:.1} MiB/s (need >= 200, virtual time)"
    );

    bench::write_breakdown("raizn2")
}
