//! Sustained random-overwrite GC pressure: log-structured RAID vs
//! mdraid-5 (new scenario; complements fig-10's fresh-device overwrite).
//!
//! Both targets are prefilled to 100% of their logical capacity, then
//! take the identical skewed random-overwrite sequence (90% of 1 MiB
//! writes into the first 10% of the space) for several times the
//! array's spare capacity. The log-structured engine rides its
//! background collector — an internal weight-1 tenant on the same QoS
//! scheduler as the foreground — and must hold a flat throughput band
//! with bounded write amplification and zero partial-parity-log
//! appends. The mdraid baseline on conventional SSDs declines as
//! device FTL GC sets in.
//!
//! Artifacts: `BENCH_lsgc.json` (summary, `kind: "lsgc"`), one timeline
//! per target, and the span-blame/breakdown pair (`report --explain`
//! bounds the GC interference share from the spans artifact).
//!
//! Gates (all hard): zero pp-log appends, measured-phase WAF at most
//! [`WAF_MAX`], at least one background reclaim, emergency reclaims at
//! most a quarter of all reclaims, lsraid band ratio at least
//! [`FLAT_MIN`], mdraid cliff below [`DECLINE_MAX`], and the lsraid
//! band must beat the mdraid cliff.

use bench::lifecycle::{cliff_ratio, flat_ratio};
use bench::lsgc::{
    drive, gc_config, lsgc_json, lsgc_scheduler, overwrite_offsets, phase_waf, LsOutcome,
    MdOutcome, QosGcSink, AGE_OPS, BLOCK, OVERWRITE_OPS, WAF_MAX, ZONES, ZONE_SECTORS,
};
use bench::{gate, BenchError, TimelineRun};
use lsraid::{GcManager, LsConfig};
use sim::SimTime;
use std::sync::Arc;
use workloads::{BlockTarget, ZonedTarget};
use zns::{ZonedVolume, SECTOR_SIZE};

/// Minimum min/max band ratio for the log-structured run.
const FLAT_MIN: f64 = 0.8;
/// Maximum trough/peak ratio for the mdraid baseline (it must decline).
const DECLINE_MAX: f64 = 0.9;
/// Offset-sequence seed (fixed: artifacts are bit-identical across runs).
const SEED: u64 = 0x6C5C_0001;

fn main() -> bench::BenchResult {
    bench::note_single_threaded("lsgc", bench::threads_arg("lsgc")?);

    // ------------------------------------------------------------------
    // Log-structured engine under GC pressure.
    // ------------------------------------------------------------------
    let run = TimelineRun::new("lsgc_lsraid");
    let vol = run.lsraid_volume(ZONES, ZONE_SECTORS, LsConfig::default())?;
    let geo = vol.geometry();
    let total_sectors = u64::from(geo.num_zones()) * geo.zone_cap();
    let total_blocks = total_sectors / BLOCK;
    let sched = lsgc_scheduler(&run, Arc::new(ZonedTarget::overwriting(vol.clone())))?;
    let block = vec![0x5Au8; (BLOCK * SECTOR_SIZE) as usize];
    let offsets = overwrite_offsets(total_blocks, OVERWRITE_OPS, SEED);

    println!(
        "lsgc: {} logical blocks of {} sectors, {} overwrite ops",
        total_blocks, BLOCK, OVERWRITE_OPS
    );

    // Prefill the full logical space sequentially, then age the engine
    // with the same overwrite pattern (collector live) until the
    // garbage distribution reaches steady state. Both phases are
    // unmeasured; the capture is scoped to the sustained phase after.
    let prefill: Vec<u64> = (0..total_blocks).map(|b| b * BLOCK).collect();
    let (_, t) = drive(&run, &sched, SimTime::ZERO, &prefill, &block, None)?;
    let t = vol.flush(t)?.done;
    let mut mgr = GcManager::new(vol.clone(), gc_config());
    let mut sink = QosGcSink::new(&sched);
    let aging = overwrite_offsets(total_blocks, AGE_OPS, SEED ^ 0xA6E);
    let (_, t) = drive(&run, &sched, t, &aging, &block, Some((&mut mgr, &mut sink)))?;
    run.reset_capture();

    let pre = vol.stats();
    let (ls_windows, ls_end) = drive(
        &run,
        &sched,
        t,
        &offsets,
        &block,
        Some((&mut mgr, &mut sink)),
    )?;
    let post = vol.stats();

    let pp_log = run.recorder().count(obs::Counter::PpLogWrites);
    gate!(
        pp_log == 0,
        "lsraid took {pp_log} partial-parity-log paths under overwrite"
    );
    let waf = phase_waf(&pre, &post);
    gate!(
        waf <= WAF_MAX,
        "measured-phase WAF {waf:.3} exceeds {WAF_MAX}"
    );
    let reclaims = post.group_reclaims - pre.group_reclaims;
    let emergency = post.emergency_reclaims - pre.emergency_reclaims;
    gate!(reclaims > 0, "background GC never reclaimed a group");
    gate!(
        emergency * 4 <= reclaims,
        "emergency reclaims dominate ({emergency} of {reclaims}): GC cannot keep up"
    );
    let ls = LsOutcome {
        windows_mib_s: ls_windows,
        end: ls_end,
        waf,
        stats: post,
        reclaims,
        emergency,
        migrated: post.migrated_sectors - pre.migrated_sectors,
        tenants: sched.stats(),
    };
    let ls_flat = flat_ratio(&ls.windows_mib_s)
        .ok_or_else(|| BenchError::Gate("lsraid run produced no active windows".into()))?;
    gate!(
        ls_flat >= FLAT_MIN,
        "lsraid band ratio {ls_flat:.3} under sustained overwrite (need >= {FLAT_MIN})"
    );
    bench::write_spans("lsgc", &run.recorder())?;
    run.finish(ls_end)?;

    // ------------------------------------------------------------------
    // mdraid-5 baseline: identical op sequence, conventional SSDs.
    // ------------------------------------------------------------------
    let md_run = TimelineRun::new("lsgc_mdraid");
    // Match the log-structured logical capacity (4 data devices).
    let md = md_run.mdraid_volume(total_sectors / 4, 16)?;
    let md_sched = lsgc_scheduler(&md_run, Arc::new(BlockTarget::new(md)))?;
    let (_, mt) = drive(&md_run, &md_sched, SimTime::ZERO, &prefill, &block, None)?;
    md_run.reset_capture();
    let (md_windows, md_end) = drive(&md_run, &md_sched, mt, &offsets, &block, None)?;
    let md = MdOutcome {
        windows_mib_s: md_windows,
        end: md_end,
        tenants: md_sched.stats(),
    };
    let md_cliff = cliff_ratio(&md.windows_mib_s)
        .ok_or_else(|| BenchError::Gate("mdraid run produced no active windows".into()))?;
    gate!(
        md_cliff <= DECLINE_MAX,
        "mdraid baseline did not decline (cliff {md_cliff:.3}); the scenario lost its contrast"
    );
    gate!(
        ls_flat > md_cliff,
        "lsraid band ({ls_flat:.3}) does not beat the mdraid cliff ({md_cliff:.3})"
    );
    md_run.finish(md_end)?;

    let med = |w: &[f64]| {
        let mut v: Vec<f64> = bench::lifecycle::active_windows(w).to_vec();
        v.sort_by(f64::total_cmp);
        if v.is_empty() {
            0.0
        } else {
            v[v.len() / 2]
        }
    };
    bench::print_table(
        "Sustained skewed overwrite (median MiB/s, band ratio)",
        &["system", "MiB/s", "band", "WAF"],
        &[
            vec![
                "lsraid".into(),
                format!("{:.0}", med(&ls.windows_mib_s)),
                format!("{ls_flat:.3}"),
                format!("{waf:.3}"),
            ],
            vec![
                "mdraid".into(),
                format!("{:.0}", med(&md.windows_mib_s)),
                format!("{md_cliff:.3}"),
                "1.000".into(),
            ],
        ],
    );
    println!(
        "\nlsraid: {reclaims} reclaims ({emergency} emergency), {} sectors migrated, WAF {waf:.3}",
        ls.migrated
    );

    std::fs::write("BENCH_lsgc.json", lsgc_json(&ls, ls_flat, &md, md_cliff))?;
    println!("summary -> BENCH_lsgc.json");
    bench::write_breakdown("lsgc")
}
