//! §6.1 raw device microbenchmark: maximum sequential write and read
//! throughput of one ZNS SSD vs one conventional SSD. The paper reports
//! 1052 MiB/s write / 3265 MiB/s read for the ZNS device, 2% / 4% lower
//! than the conventional SSD.

use bench::{bs_label, conv_devices, prime, print_table, zns_devices};
use sim::SimTime;
use workloads::{BlockTarget, Engine, IoTarget, JobSpec, OpKind, Pattern, ZonedTarget};

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096;

fn one(target: &dyn IoTarget, kind: OpKind, bs: u64, start: SimTime) -> bench::BenchResult<f64> {
    let cap = target.capacity_sectors();
    let job = JobSpec::new(kind, Pattern::Sequential, bs)
        .region(0, cap)
        .ops((cap / bs).min(8192))
        .queue_depth(64);
    Ok(Engine::new(60 + bs)
        .start_at(start)
        .run(target, &[job])?
        .throughput_mib_s())
}

/// Fresh device per configuration, like the paper's reformat-per-trial.
fn sweep(zoned: bool, kind: OpKind) -> bench::BenchResult<Vec<(u64, f64)>> {
    let mut out = Vec::new();
    for bs in [16u64, 64, 256] {
        let tput = if zoned {
            let t = ZonedTarget::new(zns_devices(1, ZONES, ZONE_SECTORS).remove(0));
            let start = if kind == OpKind::Read {
                prime(&t, SimTime::ZERO)?
            } else {
                SimTime::ZERO
            };
            one(&t, kind, bs, start)?
        } else {
            let t = BlockTarget::new(conv_devices(1, ZONES as u64 * ZONE_SECTORS).remove(0));
            let start = if kind == OpKind::Read {
                prime(&t, SimTime::ZERO)?
            } else {
                SimTime::ZERO
            };
            one(&t, kind, bs, start)?
        };
        out.push((bs, tput));
    }
    Ok(out)
}

fn main() -> bench::BenchResult {
    // Single-device, single-job trials (the paper's raw baseline); the
    // flag exists for CLI uniformity.
    bench::note_single_threaded("raw_devices", bench::threads_arg("raw_devices")?);
    let zw = sweep(true, OpKind::Write)?;
    let cw = sweep(false, OpKind::Write)?;
    let zr = sweep(true, OpKind::Read)?;
    let cr = sweep(false, OpKind::Read)?;

    let rows: Vec<Vec<String>> = zw
        .iter()
        .zip(cw.iter())
        .zip(zr.iter().zip(cr.iter()))
        .map(|(((bs, zwt), (_, cwt)), ((_, zrt), (_, crt)))| {
            vec![
                bs_label(*bs),
                format!("{zwt:.0}"),
                format!("{cwt:.0}"),
                format!("{:.1}%", (zwt / cwt - 1.0) * 100.0),
                format!("{zrt:.0}"),
                format!("{crt:.0}"),
                format!("{:.1}%", (zrt / crt - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Raw devices (§6.1): sequential throughput, single device",
        &[
            "bs",
            "ZNS wr MiB/s",
            "conv wr MiB/s",
            "wr gap",
            "ZNS rd MiB/s",
            "conv rd MiB/s",
            "rd gap",
        ],
        &rows,
    );

    bench::write_breakdown("raw_devices")
}
