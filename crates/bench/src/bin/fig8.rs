//! Figure 8: RAIZN throughput vs block size for 8–128 KiB stripe units
//! (sequential write, sequential read, random read).

use bench::{bs_label, prime, print_table, raizn_volume, run_micro, Micro, TimelineRun};
use sim::SimTime;
use workloads::ZonedTarget;
use zns::ZonedVolume;

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096; // 16 MiB zones
const STRIPE_UNITS: [u64; 4] = [2, 4, 16, 32]; // 8K, 16K, 64K, 128K
const BLOCK_SIZES: [u64; 5] = [1, 4, 16, 64, 256];

fn main() -> bench::BenchResult {
    let threads = bench::threads_arg("fig8")?;
    // Timeline capture rides on the flagship configuration (largest
    // stripe unit and block size, sequential write).
    let capture = TimelineRun::new("fig8");
    let mut capture_end = SimTime::ZERO;
    for micro in [Micro::SeqWrite, Micro::SeqRead, Micro::RandRead] {
        let mut rows = Vec::new();
        for su in STRIPE_UNITS {
            let mut cells = vec![format!("su={}", bs_label(su))];
            for bs in BLOCK_SIZES {
                let flagship = micro == Micro::SeqWrite && su == 32 && bs == 256;
                let vol = if flagship {
                    capture.raizn_volume(ZONES, ZONE_SECTORS, su)?
                } else {
                    raizn_volume(ZONES, ZONE_SECTORS, su)?
                };
                let t = ZonedTarget::new(vol);
                let start = if micro == Micro::SeqWrite {
                    SimTime::ZERO
                } else {
                    prime(&t, SimTime::ZERO)?
                };
                let align = t.volume().geometry().zone_cap();
                let timeline = flagship.then(|| capture.timeline());
                let r = run_micro(&t, micro, bs, align, start, timeline, threads)?;
                if flagship {
                    capture_end = r.end;
                }
                cells.push(format!("{:.0}", r.throughput_mib_s()));
            }
            rows.push(cells);
        }
        let headers: Vec<String> = std::iter::once("stripe unit".to_string())
            .chain(BLOCK_SIZES.iter().map(|b| bs_label(*b)))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 8: RAIZN {} throughput (MiB/s) by stripe unit",
                micro.name()
            ),
            &headers_ref,
            &rows,
        );
    }

    capture.finish(capture_end)?;
    bench::write_breakdown("fig8")
}
