//! Zone-lifecycle benchmark: the open/active-budget cliff vs proactive
//! background management.
//!
//! Two identical zone-spray runs on fresh 5-device arrays (see
//! `bench::lifecycle` for the shared geometry):
//!
//! 1. **nomgr**: foreground reclaim only. Once the devices' active-zone
//!    budget is exhausted, every new zone activation inline-finishes a
//!    victim zone — fill writes over its unwritten tail — on the write
//!    path. Throughput falls off a cliff (gate: post-peak trough <= 70%
//!    of the early peak, evaluated by `report --lifecycle`).
//! 2. **mgr**: a [`raizn::ZoneLifecycleManager`] pumps between
//!    foreground ops, submitting finishes/pre-opens/batched resets
//!    through the QoS scheduler as a weight-1 internal tenant. The band
//!    stays flat (gate: min/max active windows >= 0.9) and the
//!    foreground reclaim path never fires.
//!
//! Emits `BENCH_ziggurat.json` plus per-run timeline artifacts
//! (`BENCH_ziggurat_nomgr_timeline.json` feeds `report
//! --expect-decline`, `BENCH_ziggurat_mgr_timeline.json` feeds
//! `--expect-flat`).

use bench::lifecycle::{
    cliff_ratio, flat_ratio, lifecycle_json, lifecycle_scheduler, lifecycle_volume, manager_config,
    spray, SprayOutcome, ACTIVE_LIMIT, SPRAY_ZONES, STRIPES_PER_ZONE,
};
use raizn::ZoneLifecycleManager;
use std::sync::Arc;

fn run(managed: bool) -> bench::BenchResult<SprayOutcome> {
    let name = if managed {
        "ziggurat_mgr"
    } else {
        "ziggurat_nomgr"
    };
    let run = bench::TimelineRun::new(name);
    let (volume, devices) = lifecycle_volume(&run, !managed)?;
    let sched = lifecycle_scheduler(&run, volume.clone())?;
    let manager = managed.then(|| {
        let mgr = Arc::new(ZoneLifecycleManager::new(volume.clone(), manager_config()));
        run.register(mgr.clone());
        mgr
    });
    let outcome = spray(&run, &volume, &devices, &sched, manager.as_deref())?;
    run.finish(outcome.end)?;
    Ok(outcome)
}

fn main() -> bench::BenchResult {
    // The spray is paced by completions (queue depth 1 + manager pumps),
    // so the run is inherently sequential; the flag exists for CLI
    // uniformity.
    bench::note_single_threaded("ziggurat", bench::threads_arg("ziggurat")?);

    let nomgr = run(false)?;
    let total_stripes = SPRAY_ZONES as u64 * STRIPES_PER_ZONE;
    bench::gate!(
        nomgr.raizn.foreground_reclaims > 0,
        "unmanaged run never hit the reclaim path: the cliff oracle is dead"
    );
    let nomgr_cliff = cliff_ratio(&nomgr.windows_mib_s)
        .ok_or_else(|| bench::BenchError::Gate("nomgr run produced too few windows".into()))?;

    let mgr = run(true)?;
    bench::gate!(
        mgr.raizn.foreground_reclaims == 0,
        "managed run fell back to foreground reclaim {} times",
        mgr.raizn.foreground_reclaims
    );
    let stats = mgr.mgmt.unwrap_or_default();
    bench::gate!(
        stats.finishes > 0 && stats.resets > 0,
        "manager did no work (finishes {}, resets {})",
        stats.finishes,
        stats.resets
    );
    bench::gate!(
        mgr.sched_mgmt_ops >= stats.finishes + stats.resets,
        "management ops bypassed the scheduler ({} dispatched < {} issued)",
        mgr.sched_mgmt_ops,
        stats.finishes + stats.resets
    );
    bench::gate!(
        mgr.max_active_seen <= ACTIVE_LIMIT && nomgr.max_active_seen <= ACTIVE_LIMIT,
        "active budget exceeded (mgr {} nomgr {} limit {})",
        mgr.max_active_seen,
        nomgr.max_active_seen,
        ACTIVE_LIMIT
    );
    let mgr_flat = flat_ratio(&mgr.windows_mib_s)
        .ok_or_else(|| bench::BenchError::Gate("mgr run produced too few windows".into()))?;

    let json = lifecycle_json(&nomgr, nomgr_cliff, &mgr, mgr_flat);
    std::fs::write("BENCH_ziggurat.json", &json)?;
    println!("ziggurat results -> BENCH_ziggurat.json");

    bench::print_table(
        "ziggurat zone spray (40 zones to 86% of capacity)",
        &[
            "run",
            "stripes",
            "fg reclaims",
            "max active",
            "cliff/flat",
            "duration",
        ],
        &[
            vec![
                "nomgr".into(),
                total_stripes.to_string(),
                nomgr.raizn.foreground_reclaims.to_string(),
                format!("{}/{}", nomgr.max_active_seen, ACTIVE_LIMIT),
                format!("cliff {nomgr_cliff:.2}"),
                format!("{:.1} ms", nomgr.end.as_nanos() as f64 / 1e6),
            ],
            vec![
                "mgr".into(),
                total_stripes.to_string(),
                mgr.raizn.foreground_reclaims.to_string(),
                format!("{}/{}", mgr.max_active_seen, ACTIVE_LIMIT),
                format!("flat {mgr_flat:.2}"),
                format!("{:.1} ms", mgr.end.as_nanos() as f64 / 1e6),
            ],
        ],
    );
    println!(
        "manager: {} finishes, {} resets ({} pre-opens) over {} pumps, \
         {:.1}% of device write traffic",
        stats.finishes,
        stats.resets,
        stats.pre_opens,
        stats.pumps,
        mgr.mgmt_io_share * 100.0
    );

    bench::write_breakdown("ziggurat")?;
    bench::write_spans("ziggurat", &bench::recorder())?;
    Ok(())
}
