//! Multi-tenant QoS benchmark: noisy-neighbor isolation, weighted
//! fairness, and stripe-aware write coalescing, all through the `qos`
//! scheduler over shared RAIZN volumes.
//!
//! Three experiments, each on a fresh 5-device array:
//!
//! 1. **Isolation**: a reserved victim tenant runs solo, then again
//!    beside a noisy neighbor offering ~10x its load. The victim's p99
//!    must barely move (gate: ratio < 1.25, evaluated by `report`).
//! 2. **Fairness**: three backlogged tenants with weights 1/2/4 share a
//!    depth-2 server for a fixed virtual-time window; completed ops per
//!    weight must be near-uniform (gates: Jain index >= 0.95, per-tenant
//!    deviation from the mean share <= 10%).
//! 3. **Coalescing**: an unaligned sequential write stream (half a
//!    stripe unit per IO) runs with the coalescer off, then on. Merged
//!    stripe-aligned batches must convert partial-parity log appends
//!    into full-stripe parity writes (gate: the full-parity/pp-log
//!    ratio rises).
//!
//! Emits `BENCH_qos.json` (all numbers above, plus per-tenant
//! accounting) and `BENCH_qos_timeline.json` (window digests and
//! per-tenant scheduler gauges captured during the contended isolation
//! phase). SLO gates over the JSON run in `report --qos` and are wired
//! into `scripts/check.sh`.

use qos::{QosConfig, QosScheduler, TenantSnapshot, TenantSpec};
use sim::SimDuration;
use std::sync::Arc;
use workloads::{Engine, JobSpec, OpKind, Pattern, RunReport, ZonedTarget};
use zns::ZonedVolume;

/// Physical zones per device and their capacity (bench scale).
const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096;
/// Stripe unit, matching the default RAIZN config used by the harness.
const STRIPE_UNIT: u64 = 16;
/// Stripe data width: 4 data devices x the stripe unit.
const STRIPE_DATA: u64 = 64;

/// Victim profile shared by the solo and contended isolation runs.
const VICTIM_OPS: u64 = 600;
const VICTIM_BLOCK: u64 = STRIPE_DATA;
/// Noisy neighbor: ~10x the victim's byte load, in small blocks.
const NOISY_OPS: u64 = 48_000;
const NOISY_BLOCK: u64 = 8;

/// Isolation dispatch window: depth 2 keeps the device from being
/// saturated by noisy in-flight ops, so the reservation actually
/// translates into bounded victim latency (a deep window would let the
/// neighbor queue up device-level service ahead of every victim op).
fn sched_config() -> QosConfig {
    QosConfig {
        server_depth: 2,
        stripe_sectors: STRIPE_DATA,
        ..QosConfig::default()
    }
}

/// Jain's fairness index over per-tenant normalized shares.
fn jain(x: &[f64]) -> f64 {
    let n = x.len() as f64;
    let sum: f64 = x.iter().sum();
    let sq: f64 = x.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        0.0
    } else {
        sum * sum / (n * sq)
    }
}

fn tenant_json(t: &TenantSnapshot) -> String {
    format!(
        "{{\"name\": \"{}\", \"admitted\": {}, \"completed\": {}, \"shed\": {}, \
         \"deferred\": {}, \"batches\": {}, \"merged\": {}, \"bytes\": {}}}",
        t.name, t.admitted, t.completed, t.shed, t.deferred, t.batches, t.merged, t.bytes
    )
}

fn join(parts: impl IntoIterator<Item = String>) -> String {
    parts.into_iter().collect::<Vec<_>>().join(", ")
}

struct Isolation {
    solo: RunReport,
    contended: RunReport,
    tenants: Vec<TenantSnapshot>,
}

impl Isolation {
    fn p99_ratio(&self) -> f64 {
        let solo = self.solo.jobs[0].p99().as_nanos().max(1) as f64;
        self.contended.jobs[0].p99().as_nanos() as f64 / solo
    }
}

/// Isolation experiment: identical victim job and tenant set in both
/// runs; only the noisy neighbor's job joins in the contended run, so
/// any victim latency shift is attributable to the contention itself.
fn isolation() -> bench::BenchResult<Isolation> {
    let tenants = || {
        vec![
            TenantSpec::new("victim").reservation(50_000),
            TenantSpec::new("noisy").weight(4),
        ]
    };
    let victim_job = |zone_cap: u64| {
        JobSpec::new(OpKind::Write, Pattern::Sequential, VICTIM_BLOCK)
            .ops(VICTIM_OPS)
            .queue_depth(1)
            .region(0, 12 * zone_cap)
            .tenant(0)
    };
    let noisy_job = |zone_cap: u64| {
        JobSpec::new(OpKind::Write, Pattern::Sequential, NOISY_BLOCK)
            .ops(NOISY_OPS)
            .queue_depth(64)
            .region(12 * zone_cap, 40 * zone_cap)
            .tenant(1)
    };

    // Solo reference run.
    let vol = bench::raizn_volume(ZONES, ZONE_SECTORS, STRIPE_UNIT)?;
    let zc = vol.geometry().zone_cap();
    let sched = QosScheduler::new(Arc::new(ZonedTarget::new(vol)), sched_config(), tenants())?
        .with_recorder(bench::recorder());
    let solo = Engine::new(0xA105).run_shared(&sched, &[victim_job(zc)])?;

    // Contended run, with the scheduler's per-tenant gauges on the
    // timeline artifact.
    let run = bench::TimelineRun::new("qos");
    let vol = run.raizn_volume(ZONES, ZONE_SECTORS, STRIPE_UNIT)?;
    let zc = vol.geometry().zone_cap();
    let sched = Arc::new(
        QosScheduler::new(Arc::new(ZonedTarget::new(vol)), sched_config(), tenants())?
            .with_recorder(run.recorder()),
    );
    run.register(sched.clone());
    let contended = run
        .engine(0xA105)
        .run_shared(sched.as_ref(), &[victim_job(zc), noisy_job(zc)])?;
    let tenants = sched.stats();
    run.finish(contended.end)?;
    Ok(Isolation {
        solo,
        contended,
        tenants,
    })
}

struct Fairness {
    weights: Vec<u64>,
    report: RunReport,
    tenants: Vec<TenantSnapshot>,
}

impl Fairness {
    /// Completed ops per unit weight, per tenant.
    fn normalized(&self) -> Vec<f64> {
        self.report
            .jobs
            .iter()
            .zip(self.weights.iter())
            .map(|(j, &w)| j.ops as f64 / w as f64)
            .collect()
    }

    fn max_weight_dev(&self) -> f64 {
        let norm = self.normalized();
        let mean = norm.iter().sum::<f64>() / norm.len() as f64;
        norm.iter()
            .map(|n| (n - mean).abs() / mean)
            .fold(0.0, f64::max)
    }
}

/// Fairness experiment: equal-block backlogged tenants, cut off while
/// everyone is still queueing so shares reflect contention.
fn fairness() -> bench::BenchResult<Fairness> {
    let weights = vec![1u64, 2, 4];
    let vol = bench::raizn_volume(ZONES, ZONE_SECTORS, STRIPE_UNIT)?;
    let zc = vol.geometry().zone_cap();
    let tenants = weights
        .iter()
        .map(|w| TenantSpec::new(format!("w{w}")).weight(*w))
        .collect();
    let sched = QosScheduler::new(
        Arc::new(ZonedTarget::new(vol)),
        QosConfig {
            server_depth: 2,
            stripe_sectors: STRIPE_DATA,
            ..QosConfig::default()
        },
        tenants,
    )?
    .with_recorder(bench::recorder());
    let jobs: Vec<JobSpec> = (0..weights.len() as u64)
        .map(|i| {
            JobSpec::new(OpKind::Write, Pattern::Sequential, 16)
                .ops(1_000_000)
                .queue_depth(16)
                .region(i * 4 * zc, (i + 1) * 4 * zc)
                .tenant(i as u32)
        })
        .collect();
    let report = Engine::new(0xFA12)
        .time_limit(SimDuration::from_millis(50))
        .run_shared(&sched, &jobs)?;
    let tenants = sched.stats();
    Ok(Fairness {
        weights,
        report,
        tenants,
    })
}

struct CoalesceRun {
    tenant: TenantSnapshot,
    raizn: raizn::RaiznStats,
}

impl CoalesceRun {
    /// Full-stripe parity writes per partial-parity log append.
    fn full_per_pp(&self) -> f64 {
        self.raizn.full_parity_writes as f64 / self.raizn.pp_log_entries.max(1) as f64
    }
}

/// One coalescing run: unaligned (half a stripe unit) sequential writes
/// through the scheduler, coalescer on or off.
fn coalesce_run(enable: bool) -> bench::BenchResult<CoalesceRun> {
    let vol = bench::raizn_volume(ZONES, ZONE_SECTORS, STRIPE_UNIT)?;
    let zc = vol.geometry().zone_cap();
    let sched = QosScheduler::new(
        Arc::new(ZonedTarget::new(vol.clone())),
        QosConfig {
            stripe_sectors: STRIPE_DATA,
            ..QosConfig::default()
        },
        vec![TenantSpec::new("fs").coalesce(enable)],
    )?
    .with_recorder(bench::recorder());
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, STRIPE_UNIT / 2)
        .ops(4096)
        .queue_depth(32)
        .region(0, 8 * zc)
        .tenant(0);
    let report = Engine::new(0xC0A1).run_shared(&sched, &[job])?;
    bench::gate!(
        report.total_ops == 4096,
        "coalesce run (enable={enable}) completed {} of 4096 ops",
        report.total_ops
    );
    Ok(CoalesceRun {
        tenant: sched.stats().remove(0),
        raizn: vol.stats(),
    })
}

fn main() -> bench::BenchResult {
    // The mClock scheduler dispatches in a deterministic sequential order
    // by design; the flag exists for CLI uniformity.
    bench::note_single_threaded("qos", bench::threads_arg("qos")?);
    let iso = isolation()?;
    bench::gate!(
        iso.solo.jobs[0].ops == VICTIM_OPS && iso.contended.jobs[0].ops == VICTIM_OPS,
        "victim did not complete all ops: solo {} contended {}",
        iso.solo.jobs[0].ops,
        iso.contended.jobs[0].ops
    );
    bench::gate!(
        iso.contended.jobs[0].shed == 0,
        "victim shed {} ops under contention",
        iso.contended.jobs[0].shed
    );
    let noisy_load = iso.contended.jobs[1].bytes as f64 / iso.contended.jobs[0].bytes as f64;

    let fair = fairness()?;
    bench::gate!(
        fair.report.jobs.iter().all(|j| j.ops > 0),
        "a fairness tenant made no progress"
    );
    let norm = fair.normalized();
    let jain_idx = jain(&norm);
    let max_dev = fair.max_weight_dev();

    let off = coalesce_run(false)?;
    let on = coalesce_run(true)?;
    bench::gate!(
        on.tenant.merged > 0,
        "coalescer merged nothing on an adjacent sequential stream"
    );
    let uplift = on.full_per_pp() / off.full_per_pp().max(f64::MIN_POSITIVE);

    let json = format!(
        "{{\n  \"kind\": \"qos\",\n  \"isolation\": {{\n    \"victim_solo_p50_ns\": {},\n    \
         \"victim_solo_p99_ns\": {},\n    \"victim_contended_p50_ns\": {},\n    \
         \"victim_contended_p99_ns\": {},\n    \"p99_ratio\": {:.4},\n    \
         \"noisy_load_factor\": {:.2},\n    \"victim_ops\": {},\n    \"noisy_ops\": {},\n    \
         \"tenants\": [{}]\n  }},\n  \"fairness\": {{\n    \"weights\": [{}],\n    \
         \"ops\": [{}],\n    \"normalized_share\": [{}],\n    \"jain\": {:.4},\n    \
         \"max_weight_dev\": {:.4},\n    \"duration_ms\": {:.2},\n    \"tenants\": [{}]\n  }},\n  \
         \"coalesce\": {{\n    \"off\": {{\"pp_log_entries\": {}, \"full_parity_writes\": {}, \
         \"full_per_pp\": {:.4}}},\n    \"on\": {{\"pp_log_entries\": {}, \
         \"full_parity_writes\": {}, \"full_per_pp\": {:.4}, \"merged\": {}, \"batches\": {}, \
         \"coalesce_ratio\": {:.4}}},\n    \"uplift\": {:.4}\n  }}\n}}\n",
        iso.solo.jobs[0].p50().as_nanos(),
        iso.solo.jobs[0].p99().as_nanos(),
        iso.contended.jobs[0].p50().as_nanos(),
        iso.contended.jobs[0].p99().as_nanos(),
        iso.p99_ratio(),
        noisy_load,
        iso.contended.jobs[0].ops,
        iso.contended.jobs[1].ops,
        join(iso.tenants.iter().map(tenant_json)),
        join(fair.weights.iter().map(u64::to_string)),
        join(fair.report.jobs.iter().map(|j| j.ops.to_string())),
        join(norm.iter().map(|n| format!("{n:.2}"))),
        jain_idx,
        max_dev,
        fair.report.duration.as_secs_f64() * 1e3,
        join(fair.tenants.iter().map(tenant_json)),
        off.raizn.pp_log_entries,
        off.raizn.full_parity_writes,
        off.full_per_pp(),
        on.raizn.pp_log_entries,
        on.raizn.full_parity_writes,
        on.full_per_pp(),
        on.tenant.merged,
        on.tenant.batches,
        on.tenant.coalesce_ratio(),
        uplift,
    );
    std::fs::write("BENCH_qos.json", &json)?;
    println!("qos results -> BENCH_qos.json");

    bench::print_table(
        "qos isolation (reserved victim vs noisy neighbor)",
        &["run", "victim p50", "victim p99", "p99 ratio"],
        &[
            vec![
                "solo".into(),
                format!("{}", iso.solo.jobs[0].p50()),
                format!("{}", iso.solo.jobs[0].p99()),
                "1.00".into(),
            ],
            vec![
                format!("contended ({noisy_load:.1}x noisy)"),
                format!("{}", iso.contended.jobs[0].p50()),
                format!("{}", iso.contended.jobs[0].p99()),
                format!("{:.2}", iso.p99_ratio()),
            ],
        ],
    );
    bench::print_table(
        "qos fairness (weighted shares over a 50 ms window)",
        &["tenant", "weight", "ops", "ops/weight"],
        &fair
            .weights
            .iter()
            .zip(fair.report.jobs.iter())
            .enumerate()
            .map(|(i, (w, j))| {
                vec![
                    format!("w{w}"),
                    w.to_string(),
                    j.ops.to_string(),
                    format!("{:.1}", norm[i]),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("jain index {jain_idx:.4}, max weight deviation {max_dev:.3}");
    bench::print_table(
        "qos coalescing (8-sector sequential writes)",
        &[
            "coalescer",
            "pp-log entries",
            "full-parity writes",
            "full/pp",
        ],
        &[
            vec![
                "off".into(),
                off.raizn.pp_log_entries.to_string(),
                off.raizn.full_parity_writes.to_string(),
                format!("{:.3}", off.full_per_pp()),
            ],
            vec![
                "on".into(),
                on.raizn.pp_log_entries.to_string(),
                on.raizn.full_parity_writes.to_string(),
                format!("{:.3}", on.full_per_pp()),
            ],
        ],
    );
    println!(
        "coalesce uplift {uplift:.1}x ({} ops merged into {} batches)",
        on.tenant.merged, on.tenant.batches
    );

    bench::write_breakdown("qos")?;
    bench::write_spans("qos", &bench::recorder())?;
    Ok(())
}
