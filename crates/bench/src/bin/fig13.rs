//! Figure 13: RocksDB-style db_bench workloads (fillseq, fillrandom,
//! overwrite, readwhilewriting) at 4000- and 8000-byte values, on
//! zkv-over-RAIZN vs zkv-over-lsraid vs zkv-over-mdraid (via the
//! F2FS-like zone shim). The log-structured engine serves zkv's zone
//! writes from its append-only stripe log, so the store's own zone
//! resets become whole-group unmaps.

use bench::{conv_devices, lsraid_volume, print_table, raizn_volume, TimelineRun};
use ftl::BlockDevice;
use lsraid::LsConfig;
use mdraid5::{Md5Config, Md5Volume, ZonedBlockShim};
use sim::SimTime;
use std::sync::Arc;
use zkv::{DbBench, DbWorkload, ZkvConfig, ZkvStore};
use zns::ZonedVolume;

/// Rows of (workload label, kops/s, MiB/s) plus the run's end time.
type SuiteRows = (Vec<(String, f64, f64)>, SimTime);

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096; // 1 GiB per device
const OPS: u64 = 20_000;

/// Runs the four db_bench workloads. `capture` (when present) rides on
/// the store that serves the three chained workloads; zkv drives the
/// volume directly (no engine loop), so gauges are force-sampled at
/// workload boundaries while windows come from the recorded volume spans.
fn run_suite<V: ZonedVolume>(
    mk: impl Fn(Option<&TimelineRun>) -> bench::BenchResult<Arc<V>>,
    value_size: usize,
    capture: Option<&TimelineRun>,
) -> bench::BenchResult<SuiteRows> {
    let bench = DbBench::new(OPS, value_size);
    let mut out = Vec::new();
    // fillseq runs on a fresh store.
    {
        let store = ZkvStore::create(mk(None)?, ZkvConfig::default(), SimTime::ZERO)?;
        let r = bench.run(&store, DbWorkload::FillSeq, SimTime::ZERO)?;
        out.push((
            "fillseq".to_string(),
            r.ops_per_sec(),
            r.write_latency.percentile(99.0).as_secs_f64() * 1e6,
        ));
    }
    // The remaining three run in succession on one store (paper method).
    let store = ZkvStore::create(mk(capture)?, ZkvConfig::default(), SimTime::ZERO)?;
    let mut t = SimTime::ZERO;
    for wl in [
        DbWorkload::FillRandom,
        DbWorkload::Overwrite,
        DbWorkload::ReadWhileWriting,
    ] {
        let r = bench.run(&store, wl, t)?;
        t = r.end;
        if let Some(c) = capture {
            c.timeline().force_sample(t);
        }
        let p99 = if wl == DbWorkload::ReadWhileWriting {
            r.read_latency.percentile(99.0)
        } else {
            r.write_latency.percentile(99.0)
        };
        out.push((
            wl.name().to_string(),
            r.ops_per_sec(),
            p99.as_secs_f64() * 1e6,
        ));
    }
    Ok((out, t))
}

fn main() -> bench::BenchResult {
    // zkv's db_bench harness drives the volume directly (no engine
    // worker pool); the flag exists for CLI uniformity.
    bench::note_single_threaded("fig13", bench::threads_arg("fig13")?);
    // Timeline capture rides on the flagship suite: 4000-byte values on
    // zkv-over-RAIZN, chained fillrandom/overwrite/readwhilewriting.
    let capture = TimelineRun::new("fig13");
    let mut capture_end = SimTime::ZERO;
    for value_size in [4000usize, 8000] {
        let flagship = value_size == 4000;
        let (raizn, rz_end) = run_suite(
            |c| match c {
                Some(c) => c.raizn_volume(ZONES, ZONE_SECTORS, 16),
                None => raizn_volume(ZONES, ZONE_SECTORS, 16),
            },
            value_size,
            flagship.then_some(&capture),
        )?;
        if flagship {
            capture_end = rz_end;
        }
        let (lsr, _) = run_suite(
            |_| lsraid_volume(ZONES, ZONE_SECTORS, LsConfig::default()),
            value_size,
            None,
        )?;
        let (mdraid, _) = run_suite(
            |_| {
                // The stripe cache is scaled with the dataset: the paper's
                // database is ~3000x md's 128 MiB cache, so a full-size
                // cache here would (unrealistically) hold the whole DB.
                let devices: Vec<Arc<dyn BlockDevice>> =
                    conv_devices(5, ZONES as u64 * ZONE_SECTORS)
                        .into_iter()
                        .map(|d| d as Arc<dyn BlockDevice>)
                        .collect();
                let md = Arc::new(Md5Volume::new(
                    devices,
                    Md5Config {
                        chunk_sectors: 16,
                        stripe_cache_bytes: 2 * 1024 * 1024,
                    },
                )?);
                // Zone shim plays F2FS: logical zones match RAIZN's 64 MiB.
                Ok(Arc::new(ZonedBlockShim::new(md, 4 * ZONE_SECTORS)?))
            },
            value_size,
            None,
        )?;
        let rows: Vec<Vec<String>> = raizn
            .iter()
            .zip(lsr.iter())
            .zip(mdraid.iter())
            .map(|((r, l), m)| {
                vec![
                    r.0.clone(),
                    format!("{:.0}", m.1),
                    format!("{:.0}", r.1),
                    format!("{:.0}", l.1),
                    format!("{:.2}", r.1 / m.1),
                    format!("{:.2}", l.1 / m.1),
                    format!("{:.0}", m.2),
                    format!("{:.0}", r.2),
                    format!("{:.0}", l.2),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 13: db_bench, value size {value_size} B"),
            &[
                "workload",
                "md ops/s",
                "rz ops/s",
                "ls ops/s",
                "rz/md",
                "ls/md",
                "md p99 (us)",
                "rz p99 (us)",
                "ls p99 (us)",
            ],
            &rows,
        );
    }

    capture.finish(capture_end)?;
    bench::write_breakdown("fig13")
}
