//! Ablations of RAIZN design choices (DESIGN.md):
//!
//! 1. **Partial-parity scope** — paper's affected-rows logging vs logging
//!    the full running parity unit per partial write (§5.1's
//!    write-amplification argument).
//! 2. **Metadata headers** — the 4 KiB header sector per log entry vs the
//!    §5.4 logical-block-metadata optimization (headers ride free).
//! 3. **Stripe unit size** — small-write metadata overhead across stripe
//!    unit sizes.

use bench::{bs_label, print_table, TimelineRun};
use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::sync::Arc;
use workloads::{Engine, JobSpec, OpKind, Pattern, ZonedTarget};
use zns::{LatencyConfig, ZnsConfig, ZnsDevice};

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096;

/// Builds the volume. Custom configs (ZRWA windows, pp variants) mean the
/// harness volume builders don't fit; when `run` is set the devices and
/// volume are wired into its recorder and gauge registry instead of the
/// process-wide recorder.
fn build(config: RaiznConfig, run: Option<&TimelineRun>) -> bench::BenchResult<Arc<RaiznVolume>> {
    let rec = run.map_or_else(bench::recorder, TimelineRun::recorder);
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|_| {
            let mut builder = ZnsConfig::builder();
            builder
                .zones(ZONES, ZONE_SECTORS, ZONE_SECTORS)
                .open_limits(14, 28)
                .latency(LatencyConfig::zns_ssd())
                .store_data(false);
            if config.use_zrwa {
                builder.zrwa(config.stripe_unit_sectors);
            }
            Arc::new(ZnsDevice::new(builder.build()))
        })
        .collect();
    for (i, dev) in devices.iter().enumerate() {
        dev.set_recorder(rec.clone(), i as u32);
        if let Some(run) = run {
            run.register(dev.clone());
        }
    }
    let vol = Arc::new(RaiznVolume::format(devices, config, SimTime::ZERO)?);
    vol.set_recorder(rec);
    if let Some(run) = run {
        run.register(vol.clone());
    }
    Ok(vol)
}

fn small_write_run(
    config: RaiznConfig,
    run: Option<&TimelineRun>,
) -> bench::BenchResult<(f64, u64, u64, SimTime)> {
    let vol = build(config, run)?;
    let target = ZonedTarget::new(vol.clone());
    // 4 KiB sequential writes: every one logs partial parity.
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, 1)
        .ops(16_384)
        .queue_depth(64);
    let mut engine = Engine::new(77);
    if let Some(run) = run {
        engine = engine.timeline(run.timeline());
    }
    let report = engine.run(&target, &[job])?;
    let stats = vol.stats();
    Ok((
        report.throughput_mib_s(),
        stats.pp_log_entries,
        stats.pp_log_bytes,
        report.end,
    ))
}

fn main() -> bench::BenchResult {
    // Each ablation is a single 4 KiB-sequential job whose pp-log counts
    // must be exact; the flag exists for CLI uniformity.
    bench::note_single_threaded("ablations", bench::threads_arg("ablations")?);
    // Timeline capture rides on the paper-default variant: its pp-log and
    // metadata gauges are the plot the ablation argues from.
    let capture = TimelineRun::new("ablations");
    let mut capture_end = SimTime::ZERO;

    // --- Ablation 1 + 2: pp scope and header cost at 4 KiB writes. ----
    let base = RaiznConfig::default();
    let full_unit = RaiznConfig {
        pp_log_full_unit: true,
        ..base
    };
    let lb_meta = RaiznConfig {
        lb_metadata_headers: true,
        ..base
    };
    let zrwa = RaiznConfig {
        use_zrwa: true,
        ..base
    };
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("affected-rows pp + header (paper)", base),
        ("full-unit pp + header", full_unit),
        ("affected-rows pp, free headers (§5.4)", lb_meta),
        ("ZRWA in-place parity (§5.4)", zrwa),
    ] {
        let flagship = label.contains("(paper)");
        let (mib_s, entries, bytes, end) = small_write_run(cfg, flagship.then_some(&capture))?;
        if flagship {
            capture_end = end;
        }
        let wa = (bytes + entries * 4096) as f64 / (16_384.0 * 4096.0);
        rows.push(vec![
            label.to_string(),
            format!("{mib_s:.0}"),
            format!("{entries}"),
            format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
            format!("{wa:.2}"),
        ]);
    }
    print_table(
        "Ablation: partial-parity logging strategy (16k x 4 KiB writes)",
        &["variant", "MiB/s", "pp entries", "pp MiB", "pp write-amp"],
        &rows,
    );

    // --- Ablation 3: stripe unit size vs small-write overhead. --------
    let mut rows = Vec::new();
    for su in [2u64, 4, 16, 32] {
        let cfg = RaiznConfig {
            stripe_unit_sectors: su,
            ..RaiznConfig::default()
        };
        let (mib_s, entries, bytes, _) = small_write_run(cfg, None)?;
        rows.push(vec![
            bs_label(su),
            format!("{mib_s:.0}"),
            format!("{entries}"),
            format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    print_table(
        "Ablation: stripe unit size at 4 KiB writes",
        &["stripe unit", "MiB/s", "pp entries", "pp MiB"],
        &rows,
    );

    capture.finish(capture_end)?;
    bench::write_breakdown("ablations")
}
