//! Ablations of RAIZN design choices (DESIGN.md):
//!
//! 1. **Partial-parity scope** — paper's affected-rows logging vs logging
//!    the full running parity unit per partial write (§5.1's
//!    write-amplification argument).
//! 2. **Metadata headers** — the 4 KiB header sector per log entry vs the
//!    §5.4 logical-block-metadata optimization (headers ride free).
//! 3. **Stripe unit size** — small-write metadata overhead across stripe
//!    unit sizes.

use bench::{bs_label, print_table, zns_devices};
use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::sync::Arc;
use workloads::{Engine, JobSpec, OpKind, Pattern, ZonedTarget};
use zns::{LatencyConfig, ZnsConfig, ZnsDevice};

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096;

fn build(config: RaiznConfig) -> Arc<RaiznVolume> {
    let devices = if config.use_zrwa {
        (0..5)
            .map(|_| {
                Arc::new(ZnsDevice::new(
                    ZnsConfig::builder()
                        .zones(ZONES, ZONE_SECTORS, ZONE_SECTORS)
                        .open_limits(14, 28)
                        .latency(LatencyConfig::zns_ssd())
                        .store_data(false)
                        .zrwa(config.stripe_unit_sectors)
                        .build(),
                ))
            })
            .collect()
    } else {
        zns_devices(5, ZONES, ZONE_SECTORS)
    };
    for (i, dev) in devices.iter().enumerate() {
        dev.set_recorder(bench::recorder(), i as u32);
    }
    let vol = Arc::new(RaiznVolume::format(devices, config, SimTime::ZERO).expect("format"));
    vol.set_recorder(bench::recorder());
    vol
}

fn small_write_run(config: RaiznConfig) -> (f64, u64, u64) {
    let vol = build(config);
    let target = ZonedTarget::new(vol.clone());
    // 4 KiB sequential writes: every one logs partial parity.
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, 1)
        .ops(16_384)
        .queue_depth(64);
    let report = Engine::new(77).run(&target, &[job]).expect("run");
    let stats = vol.stats();
    (
        report.throughput_mib_s(),
        stats.pp_log_entries,
        stats.pp_log_bytes,
    )
}

fn main() {
    // --- Ablation 1 + 2: pp scope and header cost at 4 KiB writes. ----
    let base = RaiznConfig::default();
    let full_unit = RaiznConfig {
        pp_log_full_unit: true,
        ..base
    };
    let lb_meta = RaiznConfig {
        lb_metadata_headers: true,
        ..base
    };
    let zrwa = RaiznConfig {
        use_zrwa: true,
        ..base
    };
    let rows: Vec<Vec<String>> = [
        ("affected-rows pp + header (paper)", base),
        ("full-unit pp + header", full_unit),
        ("affected-rows pp, free headers (§5.4)", lb_meta),
        ("ZRWA in-place parity (§5.4)", zrwa),
    ]
    .into_iter()
    .map(|(label, cfg)| {
        let (mib_s, entries, bytes) = small_write_run(cfg);
        let wa = (bytes + entries * 4096) as f64 / (16_384.0 * 4096.0);
        vec![
            label.to_string(),
            format!("{mib_s:.0}"),
            format!("{entries}"),
            format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
            format!("{wa:.2}"),
        ]
    })
    .collect();
    print_table(
        "Ablation: partial-parity logging strategy (16k x 4 KiB writes)",
        &["variant", "MiB/s", "pp entries", "pp MiB", "pp write-amp"],
        &rows,
    );

    // --- Ablation 3: stripe unit size vs small-write overhead. --------
    let rows: Vec<Vec<String>> = [2u64, 4, 16, 32]
        .into_iter()
        .map(|su| {
            let cfg = RaiznConfig {
                stripe_unit_sectors: su,
                ..RaiznConfig::default()
            };
            let (mib_s, entries, bytes) = small_write_run(cfg);
            vec![
                bs_label(su),
                format!("{mib_s:.0}"),
                format!("{entries}"),
                format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
            ]
        })
        .collect();
    print_table(
        "Ablation: stripe unit size at 4 KiB writes",
        &["stripe unit", "MiB/s", "pp entries", "pp MiB"],
        &rows,
    );

    bench::write_breakdown("ablations");
}
