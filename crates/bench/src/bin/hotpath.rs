//! Hot-path microbenchmark: XOR kernel speedup, steady-state write-path
//! throughput, per-write heap allocation counts, and observability
//! overhead.
//!
//! Emits `BENCH_hotpath.json` in the working directory with:
//!
//! - `xor_scalar_ns_per_op` / `xor_word_ns_per_op`: ns per 64 KiB XOR for
//!   the pinned byte-at-a-time baseline vs the word-vectorized kernel,
//!   and the resulting `xor_speedup` (gate: >= 4x).
//! - `write_path_mib_s`: host-CPU throughput of steady-state full-stripe
//!   RAIZN writes with tracing enabled (simulated device time costs
//!   nothing real).
//! - `allocs_per_full_stripe_write`: heap allocations per full-stripe
//!   write after warm-up, **with an unsampled windowed recorder and a
//!   gauge timeline attached** (gate: 0 — stripe-buffer pool, pooled
//!   metadata scratch, the fixed-size trace ring, preallocated window
//!   digests and preallocated gauge series make the steady state
//!   allocation-free).
//! - `allocs_per_partial_write`: heap allocations per 4 KiB partial-stripe
//!   write (partial-parity log path) after warm-up, tracing enabled.
//! - `allocs_per_full_stripe_write_p2` / `allocs_per_partial_write_p2`:
//!   the same two counts on a dual-parity (RAIZN-2) volume — the Q
//!   accumulator and second pp-log leg share the parity pools, so the
//!   full-stripe count gates at 0 as well (`raizn2_write_mib_s` reports
//!   its throughput).
//! - `allocs_per_lsraid_write` / `lsraid_waf_gc_idle`: the
//!   log-structured engine's steady state — heap allocations per
//!   stripe-aligned append with full observability attached (gate: 0)
//!   and the WAF its stats report while the collector is idle (gate:
//!   exactly 1.0; `lsraid_write_mib_s` reports its throughput).
//! - `allocs_per_qos_op`: heap allocations per op submitted through and
//!   dispatched by the `qos` scheduler (coalescer on, recorder attached)
//!   after warm-up (gate: 0 — pooled payload buffers, preallocated
//!   queues and reused batch scratch make its steady state
//!   allocation-free too).
//! - `allocs_per_write_managed`: heap allocations per full-stripe write
//!   with a `ZoneLifecycleManager` attached and pumped once per write
//!   (gate: 0 — per-zone manager state is preallocated and the pump's
//!   zone scan touches only atomics).
//! - `trace_overhead_pct`: relative slowdown of the observed write path
//!   (unsampled tracing + tumbling windows + per-write timeline polling)
//!   vs an identical unobserved volume (gate: < 5%). Both paths are timed
//!   in interleaved rounds and the per-round minimum is compared, so a
//!   one-off scheduler hiccup cannot fail the gate.
//! - `scaling`: wall-clock thread-scaling sweep of the sharded write
//!   pipeline — eight zone-disjoint sequential full-stripe jobs driven by
//!   1/2/4/8 engine workers against fresh volumes, per-count minimum of
//!   two rounds (gate: >= 2x throughput at 4 workers vs 1, checked only
//!   when the host has >= 4 cores). `--threads N` caps the sweep's
//!   largest worker count.
//!
//! Also emits `BENCH_hotpath_breakdown.json` (per-stage latency breakdown
//! of the traced rounds) and `BENCH_hotpath_timeline.json` (window
//! digests and gauge series captured while the gate ran).

use bench::gate;
use bench::lsgc::phase_waf;
use lsraid::{LsConfig, LsVolume};
use qos::{QosConfig, QosScheduler, TenantSpec};
use raizn::{LifecycleConfig, RaiznConfig, RaiznVolume, ZoneLifecycleManager};
use sim::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use workloads::{
    Admission, Engine, JobSpec, OpKind, Pattern, SchedCompletion, SharedScheduler, ZonedTarget,
};
use zns::{WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

/// Allocation-counting wrapper around the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter update has no
// allocator-visible side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Times `iters` runs of `f` and returns ns per run.
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Builds a fresh 5-device RAIZN volume; when `recorder` is given, every
/// device and the volume itself record into it (unsampled, so the traced
/// configuration is the worst case) and are registered on `timeline`.
fn fresh_volume(
    observe: Option<(&Arc<obs::Recorder>, &Arc<obs::Timeline>)>,
    parity: u32,
) -> bench::BenchResult<Arc<RaiznVolume>> {
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(32, 4096, 4096)
                    .open_limits(14, 28)
                    .store_data(false)
                    .build(),
            ));
            if let Some((rec, tl)) = observe {
                dev.set_recorder(rec.clone(), i as u32);
                tl.register(dev.clone());
            }
            dev
        })
        .collect();
    let vol = Arc::new(RaiznVolume::format(
        devices,
        RaiznConfig {
            parity,
            ..RaiznConfig::default()
        },
        SimTime::ZERO,
    )?);
    if let Some((rec, tl)) = observe {
        vol.set_recorder(rec.clone());
        tl.register(vol.clone());
    }
    Ok(vol)
}

/// Builds a fresh 5-device log-structured volume with the full
/// observability plane attached (unsampled, like `fresh_volume`).
fn fresh_ls_volume(
    rec: &Arc<obs::Recorder>,
    tl: &Arc<obs::Timeline>,
) -> bench::BenchResult<Arc<LsVolume>> {
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(32, 4096, 4096)
                    .open_limits(14, 28)
                    .store_data(false)
                    .build(),
            ));
            dev.set_recorder(rec.clone(), i as u32);
            tl.register(dev.clone());
            dev
        })
        .collect();
    let vol = Arc::new(LsVolume::format(
        devices,
        LsConfig::default(),
        SimTime::ZERO,
    )?);
    vol.set_recorder(rec.clone());
    tl.register(vol.clone());
    Ok(vol)
}

/// Issues `iters` contiguous writes of `data` starting at `*lba`,
/// returning (ns per write, heap allocations observed). When `timeline`
/// is given it is polled once per write, like the workload engine does.
fn write_round(
    vol: &dyn ZonedVolume,
    lba: &mut u64,
    data: &[u8],
    iters: u64,
    timeline: Option<&obs::Timeline>,
) -> bench::BenchResult<(f64, u64)> {
    let a0 = allocs();
    let t0 = Instant::now();
    for _ in 0..iters {
        vol.write(SimTime::ZERO, *lba, data, WriteFlags::default())?;
        if let Some(tl) = timeline {
            tl.maybe_sample(SimTime::ZERO);
        }
        *lba += data.len() as u64 / 4096;
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    Ok((ns, allocs() - a0))
}

/// Drives `iters` sequential 64 KiB writes closed-loop (QD 8) through a
/// `qos` scheduler, returning heap allocations observed. `comps` is the
/// caller's reused completion scratch so the round itself owns no heap.
fn qos_round(
    sched: &QosScheduler,
    off: &mut u64,
    frontier: &mut SimTime,
    data: &[u8],
    iters: u64,
    comps: &mut Vec<SchedCompletion>,
) -> bench::BenchResult<u64> {
    let a0 = allocs();
    let sectors = data.len() as u64 / 4096;
    let (mut submitted, mut completed) = (0u64, 0u64);
    let mut inflight = 0usize;
    while completed < iters {
        while submitted < iters && inflight < 8 {
            match sched.submit_write(0, 0, *frontier, *off, data)? {
                Admission::Admitted(_) => {}
                Admission::Shed { .. } => {
                    return Err(bench::BenchError::Gate(
                        "qos hotpath round shed an op".to_string(),
                    ));
                }
            }
            *off += sectors;
            submitted += 1;
            inflight += 1;
        }
        comps.clear();
        if !sched.step(comps)? {
            return Err(bench::BenchError::Gate(
                "qos scheduler idle with ops outstanding".to_string(),
            ));
        }
        for c in comps.iter() {
            *frontier = (*frontier).max(c.done);
            completed += 1;
            inflight -= 1;
        }
    }
    Ok(allocs() - a0)
}

/// One thread-scaling trial: runs `jobs` on `threads` engine workers
/// against a fresh volume, returning (wall seconds, ops, bytes).
fn scaling_trial(threads: usize, jobs: &[JobSpec]) -> bench::BenchResult<(f64, u64, u64)> {
    let target = ZonedTarget::new(fresh_volume(None, 1)?);
    let engine = Engine::new(0x5CA1E);
    let t0 = Instant::now();
    let report = engine.run_threaded(&target, jobs, threads)?;
    let wall = t0.elapsed().as_secs_f64();
    Ok((wall, report.total_ops, report.total_bytes))
}

fn main() -> bench::BenchResult {
    // `--threads N` caps the largest worker count of the scaling sweep
    // (useful on small hosts); the sweep's default top is 8.
    let mut args = bench::cli_args();
    let capped = args.iter().any(|a| a == "--threads");
    let threads_flag = bench::take_threads(&mut args)?;
    if let Some(extra) = args.first() {
        return Err(bench::BenchError::Gate(format!(
            "unknown argument {extra:?} (usage: hotpath [--threads N])"
        )));
    }
    let sweep_max = if capped { threads_flag } else { 8 };

    // --- XOR kernel: 64 KiB buffers -------------------------------------
    let src = vec![0xA5u8; 64 * 1024];
    let mut dst = vec![0x5Au8; 64 * 1024];
    let scalar_ns = time_ns(400, || {
        sim::xor::xor_into_scalar_reference(&mut dst, black_box(&src));
    });
    let word_ns = time_ns(400, || {
        sim::xor_into(&mut dst, black_box(&src));
    });
    black_box(dst[0]);
    let speedup = scalar_ns / word_ns;

    // --- Write path: steady-state full-stripe writes --------------------
    // Two identical volumes, one unobserved and one with the full
    // observability plane attached: unsampled tracing (sample_every = 1),
    // tumbling windows, and a gauge timeline polled per write. Rounds
    // interleave so both see the same machine conditions; the minimum
    // round of each side is compared.
    let recorder = obs::Recorder::new(65_536, 1);
    recorder.enable_windows(bench::TIMELINE_WINDOW, 256);
    // Span tracing (blame trees + rolling-p99 tail sampling) runs during
    // the gated rounds: the 0-alloc and <5% overhead budgets hold with
    // the full causal-tracing plane on.
    recorder.enable_spans(obs::SpanConfig {
        slow: None,
        keep_slowest: None,
    });
    let timeline = obs::Timeline::new(bench::TIMELINE_WINDOW);
    let untraced = fresh_volume(None, 1)?;
    let traced = fresh_volume(Some((&recorder, &timeline)), 1)?;
    let stripe_sectors = 64u64; // 4 data units x 16 sectors
    let stripe_bytes = (stripe_sectors * 4096) as usize;
    let data = vec![0u8; stripe_bytes];
    let (mut lba_u, mut lba_t) = (0u64, 0u64);
    // Warm-up: fill a few stripes so the buffer pools and metadata
    // scratch on both volumes reach their steady-state capacities (the
    // timeline takes its one due sample here, outside the timed rounds).
    write_round(untraced.as_ref(), &mut lba_u, &data, 8, None)?;
    write_round(traced.as_ref(), &mut lba_t, &data, 8, Some(&timeline))?;

    const ROUNDS: usize = 3;
    let full_iters = 64u64;
    let mut untraced_ns = f64::INFINITY;
    let mut traced_ns = f64::INFINITY;
    let mut full_allocs = 0u64;
    for _ in 0..ROUNDS {
        let (nu, au) = write_round(untraced.as_ref(), &mut lba_u, &data, full_iters, None)?;
        let (nt, at) = write_round(
            traced.as_ref(),
            &mut lba_t,
            &data,
            full_iters,
            Some(&timeline),
        )?;
        gate!(au == 0, "untraced steady-state writes allocate: {au}");
        untraced_ns = untraced_ns.min(nu);
        traced_ns = traced_ns.min(nt);
        full_allocs += at;
    }
    let allocs_per_full = full_allocs as f64 / (ROUNDS as u64 * full_iters) as f64;
    let overhead_pct = ((traced_ns / untraced_ns - 1.0) * 100.0).max(0.0);
    let mib_s = stripe_bytes as f64 / (1024.0 * 1024.0) / (traced_ns / 1e9);

    // --- Write path: 4 KiB partial-stripe writes (pp-log path) ----------
    // Warm up within the same open zone, then measure (tracing enabled).
    let four_k = &data[..4096];
    write_round(traced.as_ref(), &mut lba_t, four_k, 8, Some(&timeline))?;
    let (_, partial_allocs) =
        write_round(traced.as_ref(), &mut lba_t, four_k, 64, Some(&timeline))?;
    let allocs_per_partial = partial_allocs as f64 / 64.0;

    // --- Write path: dual parity (RAIZN-2) steady state ------------------
    // parity = 2 must hold the same budget: the Q accumulator and the
    // second partial-parity leg draw from the same pools as P, so a warm
    // dual-parity volume is allocation-free per write too (full observability
    // attached, like the parity = 1 rounds above).
    let raizn2 = fresh_volume(Some((&recorder, &timeline)), 2)?;
    let r2_stripe_sectors = 48u64; // 3 data units x 16 sectors
    let r2_data = &data[..(r2_stripe_sectors * 4096) as usize];
    let mut lba2 = 0u64;
    write_round(raizn2.as_ref(), &mut lba2, r2_data, 8, Some(&timeline))?;
    let (r2_ns, r2_full_allocs) =
        write_round(raizn2.as_ref(), &mut lba2, r2_data, 64, Some(&timeline))?;
    let allocs_per_full_p2 = r2_full_allocs as f64 / 64.0;
    write_round(raizn2.as_ref(), &mut lba2, four_k, 8, Some(&timeline))?;
    let (_, r2_partial_allocs) =
        write_round(raizn2.as_ref(), &mut lba2, four_k, 64, Some(&timeline))?;
    let allocs_per_partial_p2 = r2_partial_allocs as f64 / 64.0;
    let raizn2_mib_s = (r2_stripe_sectors * 4096) as f64 / (1024.0 * 1024.0) / (r2_ns / 1e9);

    // --- Log-structured engine: steady-state append writes --------------
    // The lsraid log write path holds the same budget with the full
    // observability plane attached: the flat mapping table, the pooled
    // stripe accumulators and the per-group metadata are preallocated,
    // so appends into an open stripe group never touch the heap. The
    // engine's reported WAF must be exactly 1.0 while its collector is
    // idle: stripe-aligned appends produce no pads and no migrations,
    // and the stats must not invent amplification where none happened.
    let lsr = fresh_ls_volume(&recorder, &timeline)?;
    let mut lba_l = 0u64;
    write_round(lsr.as_ref(), &mut lba_l, &data, 8, Some(&timeline))?;
    let ls_pre = lsr.stats();
    let ls_iters = 100u64;
    let (ls_ns, ls_allocs) =
        write_round(lsr.as_ref(), &mut lba_l, &data, ls_iters, Some(&timeline))?;
    let ls_post = lsr.stats();
    let allocs_per_ls = ls_allocs as f64 / ls_iters as f64;
    let ls_waf = phase_waf(&ls_pre, &ls_post);
    let lsraid_mib_s = stripe_bytes as f64 / (1024.0 * 1024.0) / (ls_ns / 1e9);

    // --- Lifecycle manager: steady-state pumps on the write path --------
    // A ZoneLifecycleManager attached to the traced volume and pumped
    // once per write must keep the path allocation-free: all per-zone
    // manager state is preallocated at construction and the pump's zone
    // scan touches only atomics. Warm-up pumps settle the pre-open pass
    // (its one management open) before the measured window.
    let manager = ZoneLifecycleManager::new(traced.clone(), LifecycleConfig::default());
    let zone_cap = traced.geometry().zone_cap();
    let mut lba_m = zone_cap; // fresh zone: stripe-aligned writes
    for _ in 0..8 {
        manager.pump(SimTime::ZERO)?;
    }
    traced.write(SimTime::ZERO, lba_m, &data, WriteFlags::default())?;
    lba_m += stripe_sectors;
    let mgr_iters = 64u64;
    let m0 = allocs();
    for _ in 0..mgr_iters {
        traced.write(SimTime::ZERO, lba_m, &data, WriteFlags::default())?;
        lba_m += stripe_sectors;
        timeline.maybe_sample(SimTime::ZERO);
        manager.pump(SimTime::ZERO)?;
    }
    let allocs_per_managed = (allocs() - m0) as f64 / mgr_iters as f64;

    // --- QoS scheduler: steady-state submit/dispatch ---------------------
    // Coalescer on, unsampled recorder attached (worst case): after a
    // warm-up that fills the payload pool and scratch capacities, a
    // submit/step window must not touch the heap at all.
    let qdev = Arc::new(ZnsDevice::new(
        ZnsConfig::builder()
            .zones(64, 4096, 4096)
            .open_limits(14, 28)
            .store_data(false)
            .build(),
    ));
    let qsched = QosScheduler::new(
        Arc::new(ZonedTarget::new(qdev)),
        QosConfig {
            stripe_sectors,
            ..QosConfig::default()
        },
        vec![TenantSpec::new("hot").coalesce(true)],
    )?
    .with_recorder(recorder.clone());
    let qdata = &data[..16 * 4096];
    let mut qoff = 0u64;
    let mut qfrontier = SimTime::ZERO;
    let mut qcomps: Vec<SchedCompletion> = Vec::with_capacity(64);
    qos_round(&qsched, &mut qoff, &mut qfrontier, qdata, 64, &mut qcomps)?;
    let qos_iters = 256u64;
    let qos_allocs = qos_round(
        &qsched,
        &mut qoff,
        &mut qfrontier,
        qdata,
        qos_iters,
        &mut qcomps,
    )?;
    let allocs_per_qos = qos_allocs as f64 / qos_iters as f64;

    // --- Thread scaling: sharded write pipeline --------------------------
    // Fixed work — eight sequential full-stripe jobs, each confined to its
    // own logical zones — driven by a growing worker pool against a fresh
    // volume per trial. Device time is virtual (costs nothing real), so
    // wall-clock speedup isolates the host-side write path: per-zone lock
    // shards must let independent zones' writes proceed concurrently.
    let probe = fresh_volume(None, 1)?;
    let zone_cap = probe.geometry().zone_cap();
    let num_zones = u64::from(probe.geometry().num_zones());
    drop(probe);
    let scale_jobs_n = 8u64.min(num_zones);
    let zones_per_job = (num_zones / scale_jobs_n).max(1);
    let span = zone_cap * zones_per_job;
    let scale_ops = (span / stripe_sectors).min(384);
    let scale_jobs: Vec<JobSpec> = (0..scale_jobs_n)
        .map(|i| {
            JobSpec::new(OpKind::Write, Pattern::Sequential, stripe_sectors)
                .region(i * span, (i + 1) * span)
                .ops(scale_ops)
                .queue_depth(16)
        })
        .collect();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut sweep: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|t| *t <= sweep_max)
        .collect();
    if sweep.is_empty() {
        sweep.push(1);
    }
    const SCALE_ROUNDS: usize = 2;
    let mut wall_ms: Vec<f64> = Vec::new();
    let mut scale_mib_s: Vec<f64> = Vec::new();
    let mut scale_total_ops = 0u64;
    for &t in &sweep {
        let mut best = f64::INFINITY;
        let mut bytes = 0u64;
        for _ in 0..SCALE_ROUNDS {
            let (wall, ops, b) = scaling_trial(t, &scale_jobs)?;
            gate!(
                scale_total_ops == 0 || ops == scale_total_ops,
                "scaling trial at {t} threads completed {ops} ops, expected {scale_total_ops}"
            );
            scale_total_ops = ops;
            best = best.min(wall);
            bytes = b;
        }
        wall_ms.push(best * 1e3);
        scale_mib_s.push(bytes as f64 / (1024.0 * 1024.0) / best);
    }
    let speedup_4t = sweep
        .iter()
        .position(|t| *t == 4)
        .map(|i| scale_mib_s[i] / scale_mib_s[0]);
    let scaling_json = format!(
        "{{\n    \"jobs\": {scale_jobs_n},\n    \"ops_per_job\": {scale_ops},\n    \"block_sectors\": {stripe_sectors},\n    \"threads\": [{}],\n    \"wall_ms\": [{}],\n    \"mib_s\": [{}],\n    \"speedup_4t\": {}\n  }}",
        sweep
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        wall_ms
            .iter()
            .map(|w| format!("{w:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
        scale_mib_s
            .iter()
            .map(|m| format!("{m:.1}"))
            .collect::<Vec<_>>()
            .join(", "),
        speedup_4t.map_or_else(|| "null".to_string(), |s| format!("{s:.2}")),
    );

    let reused = traced.stats().stripe_buffers_reused;
    let json = format!(
        "{{\n  \"xor_scalar_ns_per_op\": {scalar_ns:.1},\n  \"xor_word_ns_per_op\": {word_ns:.1},\n  \"xor_speedup\": {speedup:.2},\n  \"write_path_mib_s\": {mib_s:.1},\n  \"raizn2_write_mib_s\": {raizn2_mib_s:.1},\n  \"lsraid_write_mib_s\": {lsraid_mib_s:.1},\n  \"allocs_per_full_stripe_write\": {allocs_per_full},\n  \"allocs_per_partial_write\": {allocs_per_partial},\n  \"allocs_per_full_stripe_write_p2\": {allocs_per_full_p2},\n  \"allocs_per_partial_write_p2\": {allocs_per_partial_p2},\n  \"allocs_per_lsraid_write\": {allocs_per_ls},\n  \"lsraid_waf_gc_idle\": {ls_waf},\n  \"allocs_per_qos_op\": {allocs_per_qos},\n  \"allocs_per_write_managed\": {allocs_per_managed},\n  \"stripe_buffers_reused\": {reused},\n  \"trace_overhead_pct\": {overhead_pct:.2},\n  \"scaling\": {scaling_json}\n}}\n"
    );
    std::fs::write("BENCH_hotpath.json", &json)?;
    print!("{json}");
    std::fs::write(
        "BENCH_hotpath_breakdown.json",
        recorder.breakdown_json("hotpath"),
    )?;
    println!("\nlatency breakdown -> BENCH_hotpath_breakdown.json");
    timeline.force_sample(SimTime::ZERO);
    std::fs::write(
        "BENCH_hotpath_timeline.json",
        obs::timeline_json("hotpath", &recorder, Some(&timeline), zns::SECTOR_SIZE),
    )?;
    println!("timeline -> BENCH_hotpath_timeline.json");
    gate!(
        speedup >= 4.0,
        "word XOR kernel below 4x over scalar baseline: {speedup:.2}x"
    );
    gate!(
        allocs_per_full == 0.0,
        "observed steady-state full-stripe writes allocate: {allocs_per_full} allocs/write"
    );
    gate!(
        allocs_per_full_p2 == 0.0,
        "dual-parity steady-state full-stripe writes allocate: {allocs_per_full_p2} allocs/write"
    );
    gate!(
        allocs_per_ls == 0.0,
        "lsraid steady-state log writes allocate: {allocs_per_ls} allocs/write"
    );
    gate!(
        ls_waf == 1.0,
        "lsraid reports WAF {ls_waf} with its collector idle (must be exactly 1.0)"
    );
    gate!(
        overhead_pct < 5.0,
        "observability overhead above budget: {overhead_pct:.2}% (limit 5%)"
    );
    gate!(
        allocs_per_qos == 0.0,
        "qos scheduler steady state allocates: {allocs_per_qos} allocs/op"
    );
    gate!(
        allocs_per_managed == 0.0,
        "write path with lifecycle manager attached allocates: \
         {allocs_per_managed} allocs/write"
    );
    match speedup_4t {
        Some(s) if host_cores >= 4 => {
            gate!(
                s >= 2.0,
                "write pipeline does not scale: {s:.2}x at 4 threads vs 1 (need >= 2x)"
            );
        }
        Some(s) => {
            println!(
                "note: scaling gate skipped (host parallelism {host_cores} < 4); measured {s:.2}x"
            );
        }
        None => {
            println!("note: scaling gate skipped (sweep capped below 4 threads)");
        }
    }
    Ok(())
}
