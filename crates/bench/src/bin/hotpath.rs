//! Hot-path microbenchmark: XOR kernel speedup, steady-state write-path
//! throughput, and per-write heap allocation counts.
//!
//! Emits `BENCH_hotpath.json` in the working directory with:
//!
//! - `xor_scalar_ns_per_op` / `xor_word_ns_per_op`: ns per 64 KiB XOR for
//!   the pinned byte-at-a-time baseline vs the word-vectorized kernel,
//!   and the resulting `xor_speedup` (gate: >= 4x).
//! - `write_path_mib_s`: host-CPU throughput of steady-state full-stripe
//!   RAIZN writes (simulated device time costs nothing real).
//! - `allocs_per_full_stripe_write`: heap allocations per full-stripe
//!   write after warm-up (gate: 0 — stripe-buffer pool + pooled metadata
//!   scratch make the steady state allocation-free).
//! - `allocs_per_partial_write`: heap allocations per 4 KiB partial-stripe
//!   write (partial-parity log path) after warm-up.

use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use zns::{WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume};

/// Allocation-counting wrapper around the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter update has no
// allocator-visible side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Times `iters` runs of `f` and returns ns per run.
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn fresh_volume() -> RaiznVolume {
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|_| {
            Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(32, 4096, 4096)
                    .open_limits(14, 28)
                    .store_data(false)
                    .build(),
            ))
        })
        .collect();
    RaiznVolume::format(devices, RaiznConfig::default(), SimTime::ZERO).expect("format")
}

fn main() {
    // --- XOR kernel: 64 KiB buffers -------------------------------------
    let src = vec![0xA5u8; 64 * 1024];
    let mut dst = vec![0x5Au8; 64 * 1024];
    let scalar_ns = time_ns(400, || {
        sim::xor::xor_into_scalar_reference(&mut dst, black_box(&src));
    });
    let word_ns = time_ns(400, || {
        sim::xor_into(&mut dst, black_box(&src));
    });
    black_box(dst[0]);
    let speedup = scalar_ns / word_ns;

    // --- Write path: steady-state full-stripe writes --------------------
    let vol = fresh_volume();
    let stripe_sectors = 64u64; // 4 data units x 16 sectors
    let stripe_bytes = (stripe_sectors * 4096) as usize;
    let data = vec![0u8; stripe_bytes];
    let mut lba = 0u64;
    // Warm-up: fill a few stripes so the buffer pool and metadata scratch
    // reach their steady-state capacities.
    for _ in 0..8 {
        vol.write(SimTime::ZERO, lba, &data, WriteFlags::default())
            .expect("warm-up write");
        lba += stripe_sectors;
    }
    let full_iters = 64u64;
    let a0 = allocs();
    let t0 = Instant::now();
    for _ in 0..full_iters {
        vol.write(SimTime::ZERO, lba, &data, WriteFlags::default())
            .expect("steady-state write");
        lba += stripe_sectors;
    }
    let elapsed = t0.elapsed();
    let full_allocs = allocs() - a0;
    let mib_s =
        (full_iters * stripe_bytes as u64) as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64();
    let allocs_per_full = full_allocs as f64 / full_iters as f64;

    // --- Write path: 4 KiB partial-stripe writes (pp-log path) ----------
    // Warm up within the same open zone, then measure.
    for _ in 0..8 {
        vol.write(SimTime::ZERO, lba, &data[..4096], WriteFlags::default())
            .expect("partial warm-up");
        lba += 1;
    }
    let partial_iters = 64u64;
    let a1 = allocs();
    for _ in 0..partial_iters {
        vol.write(SimTime::ZERO, lba, &data[..4096], WriteFlags::default())
            .expect("partial write");
        lba += 1;
    }
    let allocs_per_partial = (allocs() - a1) as f64 / partial_iters as f64;

    let reused = vol.stats().stripe_buffers_reused;
    let json = format!(
        "{{\n  \"xor_scalar_ns_per_op\": {scalar_ns:.1},\n  \"xor_word_ns_per_op\": {word_ns:.1},\n  \"xor_speedup\": {speedup:.2},\n  \"write_path_mib_s\": {mib_s:.1},\n  \"allocs_per_full_stripe_write\": {allocs_per_full},\n  \"allocs_per_partial_write\": {allocs_per_partial},\n  \"stripe_buffers_reused\": {reused}\n}}\n"
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    print!("{json}");
    assert!(
        speedup >= 4.0,
        "word XOR kernel below 4x over scalar baseline: {speedup:.2}x"
    );
    assert!(
        allocs_per_full == 0.0,
        "steady-state full-stripe writes allocate: {allocs_per_full} allocs/write"
    );
}
