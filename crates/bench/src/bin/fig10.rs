//! Figure 10: full-device overwrite timeseries. Phase 1: five threads
//! concurrently fill the array (20% regions each). Phase 2: one thread
//! sequentially overwrites the whole address space. mdraid collapses when
//! the conventional SSDs exhaust spare blocks and garbage-collect; RAIZN
//! stays flat because ZNS devices have no device-side GC.

use bench::{mdraid_volume, print_table, raizn_volume};
use sim::SimDuration;
use workloads::{BlockTarget, Engine, IoTarget, JobSpec, OpKind, Pattern, ZonedTarget};

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096; // 16 MiB zones, 1 GiB per device
const BS: u64 = 256; // 1 MiB writes

fn run_overwrite(target: &dyn IoTarget, label: &str) -> Vec<Vec<String>> {
    let cap = target.capacity_sectors();
    let fifth = cap / 5 / ZONE_SECTORS * ZONE_SECTORS;
    // Phase 1: 5 threads, 20% regions.
    let phase1: Vec<JobSpec> = (0..5u64)
        .map(|i| {
            JobSpec::new(OpKind::Write, Pattern::Sequential, BS)
                .region(i * fifth, (i + 1) * fifth)
                .queue_depth(32)
        })
        .collect();
    let mut e = Engine::new(10).sample_interval(SimDuration::from_millis(100));
    let p1 = e.run(target, &phase1).expect("phase 1");
    // Phase 2: single-thread full overwrite.
    let phase2 = vec![JobSpec::new(OpKind::Write, Pattern::Sequential, BS)
        .region(0, fifth * 5)
        .queue_depth(32)];
    let mut e2 = Engine::new(11)
        .start_at(p1.end)
        .sample_interval(SimDuration::from_millis(100));
    let p2 = e2.run(target, &phase2).expect("phase 2");

    let mut rows = Vec::new();
    let collect = |rows: &mut Vec<Vec<String>>, rep: &workloads::RunReport, phase: &str| {
        let ts = rep.throughput_series.as_ref().expect("sampled");
        let ls = rep.latency_series.as_ref().expect("sampled");
        for (p, l) in ts.iter().zip(ls.iter()) {
            if p.bytes == 0 {
                continue;
            }
            rows.push(vec![
                label.to_string(),
                phase.to_string(),
                format!("{:.2}", p.time.as_secs_f64()),
                format!("{:.0}", p.mib_per_sec),
                format!("{}", l.1),
                format!("{}", l.2),
            ]);
        }
    };
    collect(&mut rows, &p1, "fill");
    collect(&mut rows, &p2, "overwrite");
    rows
}

fn main() {
    let raizn = raizn_volume(ZONES, ZONE_SECTORS, 16);
    let rt = ZonedTarget::new(raizn);
    let mut rows = run_overwrite(&rt, "raizn");

    let md = mdraid_volume(ZONES as u64 * ZONE_SECTORS, 16);
    let mt = BlockTarget::new(md.clone());
    rows.extend(run_overwrite(&mt, "mdraid"));

    print_table(
        "Figure 10: overwrite timeseries (100 ms samples)",
        &["system", "phase", "t (s)", "MiB/s", "mean lat", "max lat"],
        &rows,
    );

    // Summary: fill-phase vs overwrite-phase median throughput (edge
    // samples excluded to avoid ramp artifacts).
    let median_tput = |rows: &[Vec<String>], system: &str, phase: &str| {
        let mut tputs: Vec<f64> = rows
            .iter()
            .filter(|r| r[0] == system && r[1] == phase)
            .map(|r| r[3].parse::<f64>().expect("tput"))
            .collect();
        if tputs.len() > 4 {
            tputs.remove(0);
            tputs.pop();
        }
        sim::Summary::from_values(&tputs).median()
    };
    let mut summary = Vec::new();
    for system in ["raizn", "mdraid"] {
        let fill = median_tput(&rows, system, "fill");
        let over = median_tput(&rows, system, "overwrite");
        summary.push(vec![
            system.to_string(),
            format!("{fill:.0}"),
            format!("{over:.0}"),
            format!("{:.0}%", (1.0 - over / fill) * 100.0),
        ]);
    }
    print_table(
        "Figure 10 summary: median throughput per phase",
        &["system", "fill MiB/s", "overwrite MiB/s", "drop"],
        &summary,
    );

    bench::write_breakdown("fig10");
}
