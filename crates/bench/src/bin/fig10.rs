//! Figure 10: full-device overwrite timeseries. Phase 1: five threads
//! concurrently fill the array (20% regions each). Phase 2: one thread
//! sequentially overwrites the whole address space. mdraid collapses when
//! the conventional SSDs exhaust spare blocks and garbage-collect; RAIZN
//! stays flat because ZNS devices have no device-side GC. The
//! log-structured engine also stays flat: the sequential overwrite
//! invalidates whole stripe groups in log order, so reclaim never has to
//! migrate data.
//!
//! Each system emits a `BENCH_fig10_<system>_timeline.json` artifact
//! covering the overwrite phase (the phase the paper plots): per-window
//! throughput and stage percentiles plus device/FTL/array gauges. The
//! `report` binary renders and gates them (`scripts/check.sh`).

use bench::{print_table, TimelineRun};
use lsraid::LsConfig;
use sim::SimDuration;
use workloads::{BlockTarget, Engine, IoTarget, JobSpec, OpKind, Pattern, ZonedTarget};

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096; // 16 MiB zones, 1 GiB per device
const BS: u64 = 256; // 1 MiB writes

fn run_overwrite(
    target: &dyn IoTarget,
    label: &str,
    capture: &TimelineRun,
) -> bench::BenchResult<Vec<Vec<String>>> {
    let cap = target.capacity_sectors();
    let fifth = cap / 5 / ZONE_SECTORS * ZONE_SECTORS;
    // Phase 1: 5 threads, 20% regions.
    let phase1: Vec<JobSpec> = (0..5u64)
        .map(|i| {
            JobSpec::new(OpKind::Write, Pattern::Sequential, BS)
                .region(i * fifth, (i + 1) * fifth)
                .queue_depth(32)
        })
        .collect();
    let depth = workloads::PipelineDepth::new();
    capture.register(depth.clone());
    let mut e = Engine::new(10)
        .sample_interval(SimDuration::from_millis(100))
        .timeline(capture.timeline())
        .depth_gauge(depth.clone());
    let p1 = e.run(target, &phase1)?;
    // The paper's figure plots the overwrite phase; scope the timeline
    // artifact to it so its windows are not diluted by the concurrent
    // 5-job fill (which has a different throughput level by design).
    capture.reset_capture();
    // Phase 2: single-thread full overwrite.
    let phase2 = vec![JobSpec::new(OpKind::Write, Pattern::Sequential, BS)
        .region(0, fifth * 5)
        .queue_depth(32)];
    let mut e2 = Engine::new(11)
        .start_at(p1.end)
        .sample_interval(SimDuration::from_millis(100))
        .timeline(capture.timeline())
        .depth_gauge(depth);
    let p2 = e2.run(target, &phase2)?;
    capture.write_to(std::path::Path::new("."), p2.end)?;

    let mut rows = Vec::new();
    let collect = |rows: &mut Vec<Vec<String>>, rep: &workloads::RunReport, phase: &str| {
        let (Some(ts), Some(ls)) = (rep.throughput_series.as_ref(), rep.latency_series.as_ref())
        else {
            return;
        };
        for (p, l) in ts.iter().zip(ls.iter()) {
            if p.bytes == 0 {
                continue;
            }
            rows.push(vec![
                label.to_string(),
                phase.to_string(),
                format!("{:.2}", p.time.as_secs_f64()),
                format!("{:.0}", p.mib_per_sec),
                format!("{}", l.1),
                format!("{}", l.2),
            ]);
        }
    };
    collect(&mut rows, &p1, "fill");
    collect(&mut rows, &p2, "overwrite");
    Ok(rows)
}

fn main() -> bench::BenchResult {
    // The 100 ms sample series this figure plots comes from the engine's
    // single-threaded driver; the flag exists for CLI uniformity.
    bench::note_single_threaded("fig10", bench::threads_arg("fig10")?);
    let rz_capture = TimelineRun::new("fig10_raizn");
    let raizn = rz_capture.raizn_volume(ZONES, ZONE_SECTORS, 16)?;
    let rt = ZonedTarget::new(raizn);
    let mut rows = run_overwrite(&rt, "raizn", &rz_capture)?;

    let ls_capture = TimelineRun::new("fig10_lsraid");
    let ls = ls_capture.lsraid_volume(ZONES, ZONE_SECTORS, LsConfig::default())?;
    let lt = ZonedTarget::overwriting(ls);
    rows.extend(run_overwrite(&lt, "lsraid", &ls_capture)?);

    let md_capture = TimelineRun::new("fig10_mdraid");
    let md = md_capture.mdraid_volume(ZONES as u64 * ZONE_SECTORS, 16)?;
    let mt = BlockTarget::new(md.clone());
    rows.extend(run_overwrite(&mt, "mdraid", &md_capture)?);

    print_table(
        "Figure 10: overwrite timeseries (100 ms samples)",
        &["system", "phase", "t (s)", "MiB/s", "mean lat", "max lat"],
        &rows,
    );

    // Summary: fill-phase vs overwrite-phase median throughput (edge
    // samples excluded to avoid ramp artifacts).
    let median_tput =
        |rows: &[Vec<String>], system: &str, phase: &str| -> bench::BenchResult<f64> {
            let mut tputs = Vec::new();
            for r in rows.iter().filter(|r| r[0] == system && r[1] == phase) {
                tputs.push(r[3].parse::<f64>().map_err(|e| {
                    bench::BenchError::Gate(format!("unparseable throughput cell {:?}: {e}", r[3]))
                })?);
            }
            if tputs.len() > 4 {
                tputs.remove(0);
                tputs.pop();
            }
            Ok(sim::Summary::from_values(&tputs).median())
        };
    let mut summary = Vec::new();
    for system in ["raizn", "lsraid", "mdraid"] {
        let fill = median_tput(&rows, system, "fill")?;
        let over = median_tput(&rows, system, "overwrite")?;
        summary.push(vec![
            system.to_string(),
            format!("{fill:.0}"),
            format!("{over:.0}"),
            format!("{:.0}%", (1.0 - over / fill) * 100.0),
        ]);
    }
    print_table(
        "Figure 10 summary: median throughput per phase",
        &["system", "fill MiB/s", "overwrite MiB/s", "drop"],
        &summary,
    );

    // Timelines were already written at the end of each overwrite phase;
    // fold the captures' aggregates into the shared breakdown.
    rz_capture.reset_capture();
    ls_capture.reset_capture();
    md_capture.reset_capture();
    println!("timeline -> BENCH_fig10_raizn_timeline.json");
    println!("timeline -> BENCH_fig10_lsraid_timeline.json");
    println!("timeline -> BENCH_fig10_mdraid_timeline.json");
    bench::write_breakdown("fig10")
}
