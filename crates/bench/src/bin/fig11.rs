//! Figure 11: degraded performance — sequential and random read
//! throughput/latency after one device fails (no replacement).

use bench::{
    bs_label, mdraid_volume, prime, print_table, raizn_volume, run_micro, Micro, TimelineRun,
};
use sim::SimTime;
use workloads::{BlockTarget, ZonedTarget};
use zns::ZonedVolume;

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096;
const SU: u64 = 16;
const BLOCK_SIZES: [u64; 5] = [1, 4, 16, 64, 256];

fn main() -> bench::BenchResult {
    let threads = bench::threads_arg("fig11")?;
    // Timeline capture rides on the flagship degraded random-read run;
    // its gauges show the degraded flag and reconstruction load.
    let capture = TimelineRun::new("fig11");
    let mut capture_end = SimTime::ZERO;
    let mut rows = Vec::new();
    for micro in [Micro::SeqRead, Micro::RandRead] {
        for bs in BLOCK_SIZES {
            let flagship = micro == Micro::RandRead && bs == 256;
            let raizn = if flagship {
                capture.raizn_volume(ZONES, ZONE_SECTORS, SU)?
            } else {
                raizn_volume(ZONES, ZONE_SECTORS, SU)?
            };
            let rt = ZonedTarget::new(raizn.clone());
            let start = prime(&rt, SimTime::ZERO)?;
            raizn.fail_device(0).unwrap();
            let align = rt.volume().geometry().zone_cap();
            let timeline = flagship.then(|| capture.timeline());
            let r = run_micro(&rt, micro, bs, align, start, timeline, threads)?;
            if flagship {
                capture_end = r.end;
            }

            let md = mdraid_volume(ZONES as u64 * ZONE_SECTORS, SU)?;
            let mt = BlockTarget::new(md.clone());
            let start = prime(&mt, SimTime::ZERO)?;
            md.fail_device(0);
            let m = run_micro(&mt, micro, bs, align, start, None, threads)?;

            rows.push(vec![
                micro.name().to_string(),
                bs_label(bs),
                format!("{:.0}", m.throughput_mib_s()),
                format!("{:.0}", r.throughput_mib_s()),
                format!("{}", m.latency.percentile(99.9)),
                format!("{}", r.latency.percentile(99.9)),
            ]);
        }
    }
    print_table(
        "Figure 11: degraded read performance (device 0 failed)",
        &[
            "workload", "bs", "md MiB/s", "rz MiB/s", "md p99.9", "rz p99.9",
        ],
        &rows,
    );

    capture.finish(capture_end)?;
    bench::write_breakdown("fig11")
}
