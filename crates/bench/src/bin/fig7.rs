//! Figure 7: mdraid throughput vs block size for 8–128 KiB stripe units
//! (sequential write, sequential read, random read).

use bench::{bs_label, mdraid_volume, prime, print_table, run_micro, Micro};
use sim::SimTime;
use workloads::BlockTarget;

const DEV_SECTORS: u64 = 64 * 4096; // 1 GiB per device
const STRIPE_UNITS: [u64; 4] = [2, 4, 16, 32]; // 8K, 16K, 64K, 128K
const BLOCK_SIZES: [u64; 5] = [1, 4, 16, 64, 256];

fn main() {
    for micro in [Micro::SeqWrite, Micro::SeqRead, Micro::RandRead] {
        let mut rows = Vec::new();
        for su in STRIPE_UNITS {
            let mut cells = vec![format!("su={}", bs_label(su))];
            for bs in BLOCK_SIZES {
                let md = mdraid_volume(DEV_SECTORS, su);
                let t = BlockTarget::new(md);
                let start = if micro == Micro::SeqWrite {
                    SimTime::ZERO
                } else {
                    prime(&t, SimTime::ZERO)
                };
                let r = run_micro(&t, micro, bs, su * 4, start);
                cells.push(format!("{:.0}", r.throughput_mib_s()));
            }
            rows.push(cells);
        }
        let headers: Vec<String> = std::iter::once("stripe unit".to_string())
            .chain(BLOCK_SIZES.iter().map(|b| bs_label(*b)))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 7: mdraid {} throughput (MiB/s) by stripe unit",
                micro.name()
            ),
            &headers_ref,
            &rows,
        );
    }

    bench::write_breakdown("fig7");
}
