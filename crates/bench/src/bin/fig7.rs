//! Figure 7: mdraid throughput vs block size for 8–128 KiB stripe units
//! (sequential write, sequential read, random read).

use bench::{bs_label, mdraid_volume, prime, print_table, run_micro, Micro, TimelineRun};
use sim::SimTime;
use workloads::BlockTarget;

const DEV_SECTORS: u64 = 64 * 4096; // 1 GiB per device
const STRIPE_UNITS: [u64; 4] = [2, 4, 16, 32]; // 8K, 16K, 64K, 128K
const BLOCK_SIZES: [u64; 5] = [1, 4, 16, 64, 256];

fn main() -> bench::BenchResult {
    let threads = bench::threads_arg("fig7")?;
    // Timeline capture rides on the flagship configuration (largest
    // stripe unit and block size, sequential write).
    let capture = TimelineRun::new("fig7");
    let mut capture_end = SimTime::ZERO;
    for micro in [Micro::SeqWrite, Micro::SeqRead, Micro::RandRead] {
        let mut rows = Vec::new();
        for su in STRIPE_UNITS {
            let mut cells = vec![format!("su={}", bs_label(su))];
            for bs in BLOCK_SIZES {
                let flagship = micro == Micro::SeqWrite && su == 32 && bs == 256;
                let md = if flagship {
                    capture.mdraid_volume(DEV_SECTORS, su)?
                } else {
                    mdraid_volume(DEV_SECTORS, su)?
                };
                let t = BlockTarget::new(md);
                let start = if micro == Micro::SeqWrite {
                    SimTime::ZERO
                } else {
                    prime(&t, SimTime::ZERO)?
                };
                let timeline = flagship.then(|| capture.timeline());
                let r = run_micro(&t, micro, bs, su * 4, start, timeline, threads)?;
                if flagship {
                    capture_end = r.end;
                }
                cells.push(format!("{:.0}", r.throughput_mib_s()));
            }
            rows.push(cells);
        }
        let headers: Vec<String> = std::iter::once("stripe unit".to_string())
            .chain(BLOCK_SIZES.iter().map(|b| bs_label(*b)))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 7: mdraid {} throughput (MiB/s) by stripe unit",
                micro.name()
            ),
            &headers_ref,
            &rows,
        );
    }

    capture.finish(capture_end)?;
    bench::write_breakdown("fig7")
}
