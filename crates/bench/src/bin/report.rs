//! Timeline report and SLO gate.
//!
//! Loads `BENCH_*_timeline.json` artifacts, renders each run's per-window
//! throughput as an aligned ASCII timeline, renders a cross-run
//! comparison when more than one file is given (the mdraid GC collapse
//! vs RAIZN's flat band of fig 10 is visible directly in the terminal),
//! and evaluates machine-readable SLOs suitable as a regression gate in
//! `scripts/check.sh`.
//!
//! ```text
//! report [OPTIONS] [FILE...]
//!   FILE                  timeline artifact to render
//!   --expect-flat FILE    render + gate: the run holds a steady throughput
//!                         band (min/max over active windows >= --flat-min)
//!   --expect-decline FILE render + gate: throughput declines after an early
//!                         peak (post-peak trough / early peak <= --decline-max)
//!   --flat-min R          flat-band threshold (default 0.7)
//!   --decline-max R       decline threshold (default 0.6)
//!   --p99-factor F        additionally gate every file: worst window
//!                         whole-op p99 <= F x whole-run p99 (0 = off)
//!   --qos FILE            render a BENCH_qos.json artifact (per-tenant
//!                         sections) and gate its fairness/isolation SLOs
//!   --qos-p99-ratio R     contended/solo victim p99 ceiling (default 1.25)
//!   --qos-jain R          Jain fairness index floor (default 0.95)
//!   --qos-share-dev R     max per-tenant deviation of ops/weight from the
//!                         mean share (default 0.10)
//!   --qos-uplift R        coalescer full-parity/pp-log uplift floor
//!                         (default 2.0)
//!   --lifecycle FILE      render a BENCH_ziggurat.json artifact (zone
//!                         lifecycle) and gate its cliff/flat/budget SLOs
//!   --cliff-max R         unmanaged-run cliff ceiling: post-peak trough /
//!                         early peak must be <= R (default 0.70)
//!   --lifecycle-flat R    managed-run flat floor: min/max over active
//!                         windows must be >= R (default 0.90)
//!   --lsgc FILE           render a BENCH_lsgc.json artifact (log-structured
//!                         RAID under sustained overwrite GC pressure) and
//!                         gate its WAF / pp-log / band-vs-cliff SLOs
//!   --waf-max R           lsgc write-amplification ceiling: measured-phase
//!                         WAF must be <= R (default 1.5)
//!   --explain FILE        render a BENCH_*_spans.json artifact (causal
//!                         blame trees): per-tenant critical-path blame
//!                         table plus ASCII waterfalls of the captured
//!                         slowest ops
//!   --interference-max P  gate every --explain file: lifecycle, rebuild
//!                         and GC interference share of attributed time
//!                         must be <= P percent (0 = off)
//!   --queue-share-max P   gate every --explain file: queue-wait share of
//!                         attributed time must be <= P percent (0 = off)
//!   --diff A B            compare two artifacts: per-stage p99 deltas
//!                         from a breakdown `stages` or timeline
//!                         `whole_run.stages` map (plus the throughput
//!                         delta for timelines), or per-tenant blame-row
//!                         deltas (mean ns/op per category) when both
//!                         sides are spans artifacts
//!   --regress-max P       gate every --diff pair: worst per-stage p99
//!                         growth and throughput drop must be <= P
//!                         percent (0 = off)
//! ```
//!
//! Every SLO prints one machine-readable line
//! `SLO <check> file=<path> value=<v> threshold=<t> <PASS|FAIL>`; any FAIL
//! exits nonzero after all lines are printed.
//!
//! Analysis windows: leading and trailing zero-throughput windows are
//! trimmed (a capture may start mid-run on the virtual clock) and the
//! final active window is dropped when possible — the run usually ends
//! inside it, so its throughput over a full window underestimates.

use bench::json::Json;
use bench::BenchError;
use obs::BLAME_CATEGORIES;

const BAR_WIDTH: usize = 40;
const MAX_ROWS: usize = 50;

struct Run {
    label: String,
    path: String,
    window_secs: f64,
    total_windows: usize,
    errors: u64,
    /// `(start_s, throughput_mib_s, whole_op_p99_ns)` of every window.
    windows: Vec<(f64, f64, u64)>,
    /// Index range of the analysis windows within `windows`.
    active: std::ops::Range<usize>,
    whole_run_p99_ns: u64,
    /// `(source.gauge, first mean, last mean, series count)`.
    gauges: Vec<(String, f64, f64, usize)>,
}

impl Run {
    fn active_tputs(&self) -> Vec<f64> {
        self.windows[self.active.clone()]
            .iter()
            .map(|w| w.1)
            .collect()
    }
}

fn req<'a>(v: &'a Json, key: &str, path: &str) -> bench::BenchResult<&'a Json> {
    v.get(key)
        .ok_or_else(|| BenchError::Gate(format!("{path}: missing key {key:?}")))
}

fn load(path: &str) -> bench::BenchResult<Run> {
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| BenchError::Gate(format!("{path}: invalid JSON: {e}")))?;
    let label = req(&doc, "name", path)?
        .as_str()
        .unwrap_or(path)
        .to_string();
    let window_ns = req(&doc, "window_ns", path)?
        .as_u64()
        .ok_or_else(|| BenchError::Gate(format!("{path}: window_ns is not an integer")))?;
    let whole_run_p99_ns = req(&doc, "whole_run", path)?
        .get("stages")
        .and_then(|s| s.get("whole_op"))
        .and_then(|s| s.get("p99_ns"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    let mut windows = Vec::new();
    let mut errors = 0u64;
    for w in req(&doc, "windows", path)?.as_arr().unwrap_or(&[]) {
        let start_s = req(w, "start_ns", path)?
            .as_u64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: window start_ns is not an integer")))?
            as f64
            / 1e9;
        let tput = req(w, "throughput_mib_s", path)?
            .as_f64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: throughput_mib_s is not a number")))?;
        let p99 = w
            .get("stages")
            .and_then(|s| s.get("whole_op"))
            .and_then(|s| s.get("p99_ns"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        errors += w.get("errors").and_then(Json::as_u64).unwrap_or(0);
        windows.push((start_s, tput, p99));
    }

    // Trim to the active range; drop the final (typically partial) window
    // when at least two remain.
    let first = windows.iter().position(|w| w.1 > 0.0);
    let active = match first {
        Some(first) => {
            let last = windows.iter().rposition(|w| w.1 > 0.0).unwrap_or(first);
            let end = if last > first { last } else { last + 1 };
            first..end
        }
        None => 0..0,
    };

    let mut gauges: Vec<(String, f64, f64, usize)> = Vec::new();
    for g in doc
        .get("gauges")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
    {
        let name = format!(
            "{}.{}",
            g.get("source").and_then(Json::as_str).unwrap_or("?"),
            g.get("gauge").and_then(Json::as_str).unwrap_or("?"),
        );
        let points = g.get("points").and_then(Json::as_arr).unwrap_or(&[]);
        let value_of = |p: &Json| p.as_arr().and_then(|a| a.get(1)).and_then(Json::as_f64);
        let (Some(first), Some(last)) = (
            points.first().and_then(value_of),
            points.last().and_then(value_of),
        ) else {
            continue;
        };
        match gauges.iter_mut().find(|(n, ..)| *n == name) {
            Some((_, f, l, n)) => {
                *f += first;
                *l += last;
                *n += 1;
            }
            None => gauges.push((name, first, last, 1)),
        }
    }
    // Multiple series per gauge (one per device): report the mean.
    for (_, f, l, n) in &mut gauges {
        *f /= *n as f64;
        *l /= *n as f64;
    }

    Ok(Run {
        label,
        path: path.to_string(),
        window_secs: window_ns as f64 / 1e9,
        total_windows: windows.len(),
        errors,
        windows,
        active,
        whole_run_p99_ns,
        gauges,
    })
}

/// One tenant row of a qos artifact's `tenants` array.
struct QosTenant {
    name: String,
    completed: u64,
    shed: u64,
    deferred: u64,
    merged: u64,
}

/// A parsed `BENCH_qos.json` artifact (emitted by the `qos` binary).
struct QosRun {
    path: String,
    solo_p99_ns: u64,
    contended_p99_ns: u64,
    p99_ratio: f64,
    noisy_load: f64,
    iso_tenants: Vec<QosTenant>,
    weights: Vec<u64>,
    ops: Vec<u64>,
    jain: f64,
    max_weight_dev: f64,
    fair_tenants: Vec<QosTenant>,
    off_full_per_pp: f64,
    on_full_per_pp: f64,
    uplift: f64,
    merged: u64,
    batches: u64,
}

fn qos_tenants(section: &Json, path: &str) -> bench::BenchResult<Vec<QosTenant>> {
    let mut out = Vec::new();
    for t in req(section, "tenants", path)?.as_arr().unwrap_or(&[]) {
        let field = |k: &str| t.get(k).and_then(Json::as_u64).unwrap_or(0);
        out.push(QosTenant {
            name: t
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            completed: field("completed"),
            shed: field("shed"),
            deferred: field("deferred"),
            merged: field("merged"),
        });
    }
    Ok(out)
}

fn load_qos(path: &str) -> bench::BenchResult<QosRun> {
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| BenchError::Gate(format!("{path}: invalid JSON: {e}")))?;
    if req(&doc, "kind", path)?.as_str() != Some("qos") {
        return Err(BenchError::Gate(format!("{path}: not a qos artifact")));
    }
    let iso = req(&doc, "isolation", path)?;
    let fair = req(&doc, "fairness", path)?;
    let coal = req(&doc, "coalesce", path)?;
    let f64_of = |v: &Json, key: &str| -> bench::BenchResult<f64> {
        req(v, key, path)?
            .as_f64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not a number")))
    };
    let u64_of = |v: &Json, key: &str| -> bench::BenchResult<u64> {
        req(v, key, path)?
            .as_u64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not an integer")))
    };
    let u64_list = |v: &Json, key: &str| -> bench::BenchResult<Vec<u64>> {
        Ok(req(v, key, path)?
            .as_arr()
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_u64)
            .collect())
    };
    Ok(QosRun {
        path: path.to_string(),
        solo_p99_ns: u64_of(iso, "victim_solo_p99_ns")?,
        contended_p99_ns: u64_of(iso, "victim_contended_p99_ns")?,
        p99_ratio: f64_of(iso, "p99_ratio")?,
        noisy_load: f64_of(iso, "noisy_load_factor")?,
        iso_tenants: qos_tenants(iso, path)?,
        weights: u64_list(fair, "weights")?,
        ops: u64_list(fair, "ops")?,
        jain: f64_of(fair, "jain")?,
        max_weight_dev: f64_of(fair, "max_weight_dev")?,
        fair_tenants: qos_tenants(fair, path)?,
        off_full_per_pp: f64_of(req(coal, "off", path)?, "full_per_pp")?,
        on_full_per_pp: f64_of(req(coal, "on", path)?, "full_per_pp")?,
        uplift: f64_of(coal, "uplift")?,
        merged: req(coal, "on", path)?
            .get("merged")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        batches: req(coal, "on", path)?
            .get("batches")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    })
}

struct LsgcRun {
    path: String,
    flat_ratio: f64,
    cliff_ratio: f64,
    waf: f64,
    pp_log_writes: u64,
    group_reclaims: u64,
    emergency_reclaims: u64,
    migrated_sectors: u64,
}

/// Parses a `kind: "lsgc"` summary document (see the `lsgc` binary).
fn lsgc_from_doc(doc: &Json, path: &str) -> bench::BenchResult<LsgcRun> {
    if req(doc, "kind", path)?.as_str() != Some("lsgc") {
        return Err(BenchError::Gate(format!("{path}: not an lsgc artifact")));
    }
    let ls = req(doc, "lsraid", path)?;
    let md = req(doc, "mdraid", path)?;
    let f64_of = |v: &Json, key: &str| -> bench::BenchResult<f64> {
        req(v, key, path)?
            .as_f64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not a number")))
    };
    let u64_of = |v: &Json, key: &str| -> bench::BenchResult<u64> {
        req(v, key, path)?
            .as_u64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not an integer")))
    };
    Ok(LsgcRun {
        path: path.to_string(),
        flat_ratio: f64_of(ls, "flat_ratio")?,
        cliff_ratio: f64_of(md, "cliff_ratio")?,
        waf: f64_of(ls, "waf")?,
        pp_log_writes: u64_of(ls, "pp_log_writes")?,
        group_reclaims: u64_of(ls, "group_reclaims")?,
        emergency_reclaims: u64_of(ls, "emergency_reclaims")?,
        migrated_sectors: u64_of(ls, "migrated_sectors")?,
    })
}

fn load_lsgc(path: &str) -> bench::BenchResult<LsgcRun> {
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| BenchError::Gate(format!("{path}: invalid JSON: {e}")))?;
    lsgc_from_doc(&doc, path)
}

fn render_lsgc(g: &LsgcRun) {
    println!("\n## lsgc ({})", g.path);
    println!(
        "   lsraid: band {:.3}, WAF {:.3}, {} reclaims ({} emergency), \
         {} sectors migrated, {} pp-log writes",
        g.flat_ratio,
        g.waf,
        g.group_reclaims,
        g.emergency_reclaims,
        g.migrated_sectors,
        g.pp_log_writes,
    );
    println!("   mdraid: cliff {:.3}", g.cliff_ratio);
}

struct LifecycleRun {
    path: String,
    cliff_ratio: f64,
    flat_ratio: f64,
    mgr_fg_reclaims: u64,
    active_limit: u64,
    max_active_mgr: u64,
    max_active_nomgr: u64,
    mgmt_finishes: u64,
    mgmt_resets: u64,
    sched_mgmt_ops: u64,
    mgmt_io_share: f64,
    nomgr_windows: Vec<f64>,
    mgr_windows: Vec<f64>,
}

fn load_lifecycle(path: &str) -> bench::BenchResult<LifecycleRun> {
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| BenchError::Gate(format!("{path}: invalid JSON: {e}")))?;
    if req(&doc, "kind", path)?.as_str() != Some("lifecycle") {
        return Err(BenchError::Gate(format!(
            "{path}: not a lifecycle artifact"
        )));
    }
    let nomgr = req(&doc, "nomgr", path)?;
    let mgr = req(&doc, "mgr", path)?;
    let f64_of = |v: &Json, key: &str| -> bench::BenchResult<f64> {
        req(v, key, path)?
            .as_f64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not a number")))
    };
    let u64_of = |v: &Json, key: &str| -> bench::BenchResult<u64> {
        req(v, key, path)?
            .as_u64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not an integer")))
    };
    let windows = |v: &Json| -> bench::BenchResult<Vec<f64>> {
        Ok(req(v, "windows_mib_s", path)?
            .as_arr()
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_f64)
            .collect())
    };
    Ok(LifecycleRun {
        path: path.to_string(),
        cliff_ratio: f64_of(nomgr, "cliff_ratio")?,
        flat_ratio: f64_of(mgr, "flat_ratio")?,
        mgr_fg_reclaims: u64_of(mgr, "foreground_reclaims")?,
        active_limit: u64_of(&doc, "active_limit")?,
        max_active_mgr: u64_of(mgr, "max_active_seen")?,
        max_active_nomgr: u64_of(nomgr, "max_active_seen")?,
        mgmt_finishes: u64_of(mgr, "mgmt_finishes")?,
        mgmt_resets: u64_of(mgr, "mgmt_resets")?,
        sched_mgmt_ops: u64_of(mgr, "sched_mgmt_ops")?,
        mgmt_io_share: f64_of(mgr, "mgmt_io_share")?,
        nomgr_windows: windows(nomgr)?,
        mgr_windows: windows(mgr)?,
    })
}

fn render_lifecycle(l: &LifecycleRun) {
    println!("\n## lifecycle ({})", l.path);
    let max = l
        .nomgr_windows
        .iter()
        .chain(l.mgr_windows.iter())
        .cloned()
        .fold(0.0f64, f64::max);
    for (name, windows, ratio, label) in [
        ("nomgr", &l.nomgr_windows, l.cliff_ratio, "cliff"),
        ("mgr", &l.mgr_windows, l.flat_ratio, "flat"),
    ] {
        println!("   {name} ({label} {ratio:.3}):");
        for w in resample(windows, 12) {
            println!("     {:>8.0} MiB/s |{}", w, bar(w, max, 40));
        }
    }
    println!(
        "   manager: {} finishes, {} resets, {} scheduler-dispatched mgmt ops, \
         {:.1}% of device writes; active zones mgr {}/{} nomgr {}/{}; \
         mgr foreground reclaims {}",
        l.mgmt_finishes,
        l.mgmt_resets,
        l.sched_mgmt_ops,
        l.mgmt_io_share * 100.0,
        l.max_active_mgr,
        l.active_limit,
        l.max_active_nomgr,
        l.active_limit,
        l.mgr_fg_reclaims,
    );
}

/// The lifecycle SLO set: `(name, value, threshold, pass)` per gate.
///
/// - `lifecycle_cliff`: the unmanaged run must actually show the cliff
///   (post-peak trough <= `cliff_max` of the early peak) — it is the
///   regression oracle proving the cost model bites.
/// - `lifecycle_flat`: the managed run holds >= `flat_min` of its best
///   window across the whole band.
/// - `lifecycle_fg_reclaims`: the manager keeps the foreground reclaim
///   path completely idle.
/// - `lifecycle_budget`: no run ever exceeds the device active-zone
///   budget.
/// - `lifecycle_mgmt_ops`: management IO went through the scheduler
///   (attribution is part of the contract, not a side effect).
fn lifecycle_slos(
    l: &LifecycleRun,
    cliff_max: f64,
    flat_min: f64,
) -> Vec<(&'static str, f64, f64, bool)> {
    let max_active = l.max_active_mgr.max(l.max_active_nomgr) as f64;
    vec![
        (
            "lifecycle_cliff",
            l.cliff_ratio,
            cliff_max,
            l.cliff_ratio <= cliff_max,
        ),
        (
            "lifecycle_flat",
            l.flat_ratio,
            flat_min,
            l.flat_ratio >= flat_min,
        ),
        (
            "lifecycle_fg_reclaims",
            l.mgr_fg_reclaims as f64,
            0.0,
            l.mgr_fg_reclaims == 0,
        ),
        (
            "lifecycle_budget",
            max_active,
            l.active_limit as f64,
            max_active <= l.active_limit as f64,
        ),
        (
            "lifecycle_mgmt_ops",
            l.sched_mgmt_ops as f64,
            1.0,
            l.sched_mgmt_ops >= 1,
        ),
    ]
}

const WATERFALL_WIDTH: usize = 44;
const WATERFALL_MAX_LINES: usize = 24;

/// One per-tenant row of a spans artifact's `blame` table.
struct BlameRow {
    tenant: String,
    count: u64,
    total_ns: u64,
    segments: [u64; BLAME_CATEGORIES.len()],
}

/// One event of a captured slow op's blame tree.
struct SpanEvent {
    stage: String,
    /// Interference attribution (empty when the op only waited on itself).
    blame: String,
    start_ns: u64,
    end_ns: u64,
}

/// One tail-sampled slow op with its exclusive segments and event tree.
struct SlowOp {
    latency_ns: u64,
    op: String,
    tenant: String,
    start_ns: u64,
    end_ns: u64,
    truncated: u64,
    events: Vec<SpanEvent>,
}

/// A parsed `BENCH_*_spans.json` artifact (causal span blame trees).
struct SpanRun {
    path: String,
    name: String,
    threshold_ns: u64,
    roots: u64,
    orphans: u64,
    truncated: u64,
    blame: Vec<BlameRow>,
    slow: Vec<SlowOp>,
}

impl SpanRun {
    /// Percent of all attributed op time spent in `cats`, summed across
    /// tenants; NaN when the artifact attributed no time at all (so a
    /// gate on it fails loudly rather than vacuously passing).
    fn share_pct(&self, cats: &[&str]) -> f64 {
        let mut total = 0u64;
        let mut part = 0u64;
        for row in &self.blame {
            total += row.total_ns;
            for (k, name) in BLAME_CATEGORIES.iter().enumerate() {
                if cats.contains(name) {
                    part += row.segments[k];
                }
            }
        }
        if total == 0 {
            f64::NAN
        } else {
            part as f64 / total as f64 * 100.0
        }
    }
}

fn segments_of(v: &Json, path: &str) -> bench::BenchResult<[u64; BLAME_CATEGORIES.len()]> {
    let seg = req(v, "segments", path)?;
    let mut out = [0u64; BLAME_CATEGORIES.len()];
    for (k, name) in BLAME_CATEGORIES.iter().enumerate() {
        out[k] = seg
            .get(&format!("{name}_ns"))
            .and_then(Json::as_u64)
            .ok_or_else(|| BenchError::Gate(format!("{path}: segments missing {name}_ns")))?;
    }
    Ok(out)
}

fn load_spans(path: &str) -> bench::BenchResult<SpanRun> {
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| BenchError::Gate(format!("{path}: invalid JSON: {e}")))?;
    if req(&doc, "kind", path)?.as_str() != Some("spans") {
        return Err(BenchError::Gate(format!("{path}: not a spans artifact")));
    }
    let u64_of = |v: &Json, key: &str| -> bench::BenchResult<u64> {
        req(v, key, path)?
            .as_u64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not an integer")))
    };
    let str_of = |v: &Json, key: &str| -> bench::BenchResult<String> {
        Ok(req(v, key, path)?
            .as_str()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {key} is not a string")))?
            .to_string())
    };
    let mut blame = Vec::new();
    for row in req(&doc, "blame", path)?.as_arr().unwrap_or(&[]) {
        blame.push(BlameRow {
            tenant: str_of(row, "tenant")?,
            count: u64_of(row, "count")?,
            total_ns: u64_of(row, "total_ns")?,
            segments: segments_of(row, path)?,
        });
    }
    let mut slow = Vec::new();
    for op in req(&doc, "slow_ops", path)?.as_arr().unwrap_or(&[]) {
        let mut events = Vec::new();
        for ev in req(op, "events", path)?.as_arr().unwrap_or(&[]) {
            events.push(SpanEvent {
                stage: str_of(ev, "stage")?,
                blame: ev
                    .get("blame")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                start_ns: u64_of(ev, "start_ns")?,
                end_ns: u64_of(ev, "end_ns")?,
            });
        }
        slow.push(SlowOp {
            latency_ns: u64_of(op, "latency_ns")?,
            op: str_of(op, "op")?,
            tenant: str_of(op, "tenant")?,
            start_ns: u64_of(op, "start_ns")?,
            end_ns: u64_of(op, "end_ns")?,
            truncated: u64_of(op, "truncated_events")?,
            events,
        });
    }
    Ok(SpanRun {
        path: path.to_string(),
        name: str_of(&doc, "name")?,
        threshold_ns: u64_of(&doc, "threshold_ns")?,
        roots: u64_of(&doc, "roots")?,
        orphans: u64_of(&doc, "orphan_events")?,
        truncated: u64_of(&doc, "truncated_events")?,
        blame,
        slow,
    })
}

fn render_spans(s: &SpanRun) {
    println!("\n## spans ({} from {})", s.name, s.path);
    println!(
        "   {} roots, {} orphan events, {} truncated events, slow-op threshold {}",
        s.roots,
        s.orphans,
        s.truncated,
        fmt_dur(s.threshold_ns),
    );
    let total: u64 = s.blame.iter().map(|r| r.total_ns).sum();
    println!(
        "   blame (exclusive critical-path attribution, {} total):",
        fmt_dur(total)
    );
    for row in &s.blame {
        println!(
            "   tenant {:<6} {:>7} ops  {:>12}",
            row.tenant,
            row.count,
            fmt_dur(row.total_ns)
        );
        for (k, name) in BLAME_CATEGORIES.iter().enumerate() {
            if row.segments[k] == 0 {
                continue;
            }
            println!(
                "     {:<24} {:>6.2}%  {:>12}",
                name,
                row.segments[k] as f64 / row.total_ns.max(1) as f64 * 100.0,
                fmt_dur(row.segments[k])
            );
        }
    }
    // Waterfalls, slowest first. Zero-width events (lock-acquisition
    // markers) render as a single `|` tick at their instant.
    let mut slow: Vec<&SlowOp> = s.slow.iter().collect();
    slow.sort_by_key(|op| std::cmp::Reverse(op.latency_ns));
    for op in slow {
        println!(
            "   slow {} {} (tenant {}, {} events{})",
            op.op,
            fmt_dur(op.latency_ns),
            op.tenant,
            op.events.len(),
            if op.truncated > 0 {
                format!(", {} truncated", op.truncated)
            } else {
                String::new()
            },
        );
        let dur = (op.end_ns.saturating_sub(op.start_ns)).max(1) as u128;
        let mut events: Vec<&SpanEvent> = op.events.iter().collect();
        events.sort_by_key(|e| (e.start_ns, e.end_ns));
        for (i, ev) in events.iter().enumerate() {
            if i == WATERFALL_MAX_LINES {
                println!("     ... (+{} more events)", events.len() - i);
                break;
            }
            let off = (ev.start_ns.saturating_sub(op.start_ns) as u128 * WATERFALL_WIDTH as u128
                / dur) as usize;
            let off = off.min(WATERFALL_WIDTH - 1);
            let ev_dur = ev.end_ns.saturating_sub(ev.start_ns);
            let (mark, len) = if ev_dur == 0 {
                ("|", 1)
            } else {
                let len = (ev_dur as u128 * WATERFALL_WIDTH as u128 / dur) as usize;
                ("#", len.clamp(1, WATERFALL_WIDTH - off))
            };
            let label = if ev.blame.is_empty() {
                ev.stage.clone()
            } else {
                format!("{} [{}]", ev.stage, ev.blame)
            };
            println!(
                "     {:<28} |{:<width$}| {:>10}",
                label,
                format!("{}{}", " ".repeat(off), mark.repeat(len)),
                fmt_dur(ev_dur),
                width = WATERFALL_WIDTH
            );
        }
    }
}

/// One side of a `--diff` comparison: any artifact carrying a per-stage
/// latency map (`stages` in a breakdown, `whole_run.stages` in a
/// timeline).
struct DiffSide {
    path: String,
    /// `(stage, p99_ns)` in the artifact's (sorted) key order — or, for
    /// a spans artifact, `(tenant:category, mean ns/op)` blame rows.
    stages: Vec<(String, u64)>,
    /// Mean active-window throughput when the artifact is a timeline.
    tput_mib_s: Option<f64>,
}

fn load_diff(path: &str) -> bench::BenchResult<DiffSide> {
    let text = std::fs::read_to_string(path)?;
    let doc =
        Json::parse(&text).map_err(|e| BenchError::Gate(format!("{path}: invalid JSON: {e}")))?;
    if doc.get("kind").and_then(Json::as_str) == Some("spans") {
        return spans_diff_side(&doc, path);
    }
    let stage_map = doc
        .get("stages")
        .or_else(|| doc.get("whole_run").and_then(|w| w.get("stages")))
        .and_then(Json::as_obj)
        .ok_or_else(|| {
            BenchError::Gate(format!(
                "{path}: no per-stage map (expected a breakdown or timeline artifact)"
            ))
        })?;
    let mut stages = Vec::new();
    for (name, st) in stage_map {
        let p99 = req(st, "p99_ns", path)?
            .as_u64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: {name}.p99_ns is not an integer")))?;
        stages.push((name.clone(), p99));
    }
    let mut tput_mib_s = None;
    if let Some(ws) = doc.get("windows").and_then(Json::as_arr) {
        let active: Vec<f64> = ws
            .iter()
            .filter_map(|w| w.get("throughput_mib_s").and_then(Json::as_f64))
            .filter(|t| *t > 0.0)
            .collect();
        if !active.is_empty() {
            tput_mib_s = Some(active.iter().sum::<f64>() / active.len() as f64);
        }
    }
    Ok(DiffSide {
        path: path.to_string(),
        stages,
        tput_mib_s,
    })
}

/// Diffs a spans artifact by its blame table: every (tenant, category)
/// pair with attributed time becomes a comparable entry valued at its
/// mean per-op nanoseconds (per-op so runs of different length compare),
/// which puts GC-interference regressions under the same worst-growth
/// gate as stage p99s.
fn spans_diff_side(doc: &Json, path: &str) -> bench::BenchResult<DiffSide> {
    let mut stages = Vec::new();
    for row in req(doc, "blame", path)?.as_arr().unwrap_or(&[]) {
        let tenant = req(row, "tenant", path)?
            .as_str()
            .ok_or_else(|| BenchError::Gate(format!("{path}: blame tenant is not a string")))?
            .to_string();
        let count = req(row, "count", path)?
            .as_u64()
            .ok_or_else(|| BenchError::Gate(format!("{path}: blame count is not an integer")))?;
        if count == 0 {
            continue;
        }
        let segments = segments_of(row, path)?;
        for (k, name) in BLAME_CATEGORIES.iter().enumerate() {
            if segments[k] > 0 {
                stages.push((format!("{tenant}:{name}"), segments[k] / count));
            }
        }
    }
    Ok(DiffSide {
        path: path.to_string(),
        stages,
        tput_mib_s: None,
    })
}

/// Worst per-stage p99 growth from `a` to `b` in percent (negative =
/// improvement everywhere). Stages missing on either side or with a zero
/// baseline are skipped; `None` when nothing is comparable.
fn worst_p99_growth(a: &DiffSide, b: &DiffSide) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for (name, ap) in &a.stages {
        let Some((_, bp)) = b.stages.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if *ap == 0 {
            continue;
        }
        let growth = (*bp as f64 - *ap as f64) / *ap as f64 * 100.0;
        worst = Some(worst.map_or(growth, |w| w.max(growth)));
    }
    worst
}

fn render_diff(a: &DiffSide, b: &DiffSide) {
    println!("\n## diff ({} -> {})", a.path, b.path);
    println!(
        "   {:<24} {:>12} {:>12} {:>8}",
        "stage p99", "baseline", "candidate", "delta"
    );
    for (name, ap) in &a.stages {
        match b.stages.iter().find(|(n, _)| n == name) {
            Some((_, bp)) => {
                let delta = if *ap > 0 {
                    format!("{:+.1}%", (*bp as f64 - *ap as f64) / *ap as f64 * 100.0)
                } else {
                    "-".to_string()
                };
                println!(
                    "   {:<24} {:>12} {:>12} {:>8}",
                    name,
                    fmt_dur(*ap),
                    fmt_dur(*bp),
                    delta
                );
            }
            None => println!(
                "   {:<24} {:>12} {:>12} {:>8}",
                name,
                fmt_dur(*ap),
                "-",
                "-"
            ),
        }
    }
    for (name, bp) in &b.stages {
        if !a.stages.iter().any(|(n, _)| n == name) {
            println!(
                "   {:<24} {:>12} {:>12} {:>8}",
                name,
                "-",
                fmt_dur(*bp),
                "-"
            );
        }
    }
    if let (Some(ta), Some(tb)) = (a.tput_mib_s, b.tput_mib_s) {
        println!(
            "   throughput {:.0} -> {:.0} MiB/s ({:+.1}%)",
            ta,
            tb,
            (tb - ta) / ta * 100.0
        );
    }
}

fn render_qos(q: &QosRun) {
    println!("\n## qos ({})", q.path);
    println!(
        "   isolation: victim p99 {} solo -> {} beside a {:.1}x noisy neighbor (ratio {:.3})",
        fmt_ms(q.solo_p99_ns),
        fmt_ms(q.contended_p99_ns),
        q.noisy_load,
        q.p99_ratio,
    );
    let tenant_rows = |tenants: &[QosTenant]| {
        for t in tenants {
            println!(
                "     {:<10} completed {:>7}  shed {:>5}  deferred {:>5}  merged {:>5}",
                t.name, t.completed, t.shed, t.deferred, t.merged
            );
        }
    };
    tenant_rows(&q.iso_tenants);
    println!(
        "   fairness: weights {:?}, ops {:?}, jain {:.4}, max weight deviation {:.3}",
        q.weights, q.ops, q.jain, q.max_weight_dev
    );
    tenant_rows(&q.fair_tenants);
    println!(
        "   coalesce: full-parity/pp-log {:.3} off -> {:.3} on ({:.1}x, {} ops merged into {} batches)",
        q.off_full_per_pp, q.on_full_per_pp, q.uplift, q.merged, q.batches
    );
}

/// Averages `values` down to at most `buckets` entries, preserving order.
fn resample(values: &[f64], buckets: usize) -> Vec<f64> {
    if values.len() <= buckets {
        return values.to_vec();
    }
    (0..buckets)
        .map(|b| {
            let lo = b * values.len() / buckets;
            let hi = ((b + 1) * values.len() / buckets).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "#".repeat(n.min(width))
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.1} ms", ns as f64 / 1e6)
}

/// Duration with an auto-picked unit: span events range from sub-µs lock
/// marks to multi-ms whole ops, so a fixed ms scale would flatten most of
/// them to 0.0.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.1} us", ns as f64 / 1e3)
    }
}

fn render(run: &Run) {
    println!(
        "\n## {} ({})\n   window {:.0} ms, {} windows ({} active), errors {}, whole-run p99 {}",
        run.label,
        run.path,
        run.window_secs * 1e3,
        run.total_windows,
        run.active.len(),
        run.errors,
        fmt_ms(run.whole_run_p99_ns),
    );
    let tputs = run.active_tputs();
    if tputs.is_empty() {
        println!("   (no active windows)");
        return;
    }
    let rows = resample(&tputs, MAX_ROWS);
    let max = rows.iter().cloned().fold(0.0f64, f64::max);
    let t0 = run.windows[run.active.start].0;
    let step = tputs.len() as f64 * run.window_secs / rows.len() as f64;
    println!("   t(s)    MiB/s");
    for (i, v) in rows.iter().enumerate() {
        println!(
            "   {:>6.2} {:>7.0} |{}",
            t0 + i as f64 * step,
            v,
            bar(*v, max, BAR_WIDTH)
        );
    }
    if !run.gauges.is_empty() {
        println!("   gauges (mean first -> mean last):");
        for (name, first, last, n) in &run.gauges {
            println!(
                "     {name}: {first:.2} -> {last:.2}{}",
                if *n > 1 {
                    format!(" ({n} series)")
                } else {
                    String::new()
                }
            );
        }
    }
    // Concurrency health: the sharded write pipeline's lock counters are
    // cumulative (the last sample is the run total, wall-clock nanos —
    // see obs::LockStats), and the engine's queue-depth gauge reports its
    // high-water mark. Summed back over series (the parse step averaged).
    let total_of = |suffix: &str| -> Option<f64> {
        let mut sum = None;
        for (name, _, last, n) in &run.gauges {
            if name.ends_with(suffix) {
                *sum.get_or_insert(0.0) += last * *n as f64;
            }
        }
        sum
    };
    if let (Some(acq), Some(contended), Some(wait)) = (
        total_of(".lock_acquisitions"),
        total_of(".lock_contended"),
        total_of(".lock_wait_ns"),
    ) {
        if acq > 0.0 {
            println!(
                "   lock contention: {acq:.0} acquisitions, {:.3}% contended, \
                 {:.1} ns blocked per acquisition (wall clock)",
                contended / acq * 100.0,
                wait / acq,
            );
        }
    }
    if let Some(peak) = total_of(".pipeline_queue_depth_peak") {
        println!("   pipeline queue depth peak: {peak:.0}");
    }
    // Redundancy health: the volume exports its failed-device count and
    // rebuild progress as gauges; surface them so a run that ended
    // degraded (or mid-rebuild) is impossible to miss in the report.
    if let Some(failed) = total_of(".failed_devices") {
        if failed > 0.0 {
            println!(
                "   DEGRADED: {failed:.0} device(s) still failed at end of run \
                 (reads served via parity decode)"
            );
        }
    }
    if let Some(total) = total_of(".rebuild_zones_total") {
        if total > 0.0 {
            let done = total_of(".rebuild_zones_done").unwrap_or(0.0);
            println!(
                "   rebuild in flight: {done:.0}/{total:.0} zones ({:.0}%)",
                done / total * 100.0
            );
        }
    }
}

/// Side-by-side timelines aligned at each run's first active window, on a
/// shared scale — a collapsing run visibly empties next to a flat one.
fn render_comparison(runs: &[&Run]) {
    let series: Vec<(&str, Vec<f64>)> = runs
        .iter()
        .map(|r| (r.label.as_str(), r.active_tputs()))
        .collect();
    let rows = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    if rows == 0 || runs.len() < 2 {
        return;
    }
    let buckets = rows.min(MAX_ROWS);
    let resampled: Vec<Vec<f64>> = series.iter().map(|(_, v)| resample(v, buckets)).collect();
    let max = resampled.iter().flatten().cloned().fold(0.0f64, f64::max);
    let col = BAR_WIDTH / 2 + 9;
    println!("\n## comparison (aligned at first active window, shared scale)");
    print!("   rel(s) ");
    for (label, _) in &series {
        print!("| {label:<col$} ");
    }
    println!();
    let step = rows as f64 * runs[0].window_secs / buckets as f64;
    for i in 0..buckets {
        print!("   {:>6.2} ", i as f64 * step);
        for r in &resampled {
            match r.get(i) {
                Some(v) => {
                    let cell = format!("{:>6.0} {}", v, bar(*v, max, BAR_WIDTH / 2));
                    print!("| {cell:<col$} ");
                }
                None => print!("| {:<col$} ", ""),
            }
        }
        println!();
    }
}

enum Check {
    /// min/max over active windows must be >= threshold.
    Flat,
    /// post-peak trough over early peak must be <= threshold.
    Decline,
    /// worst window p99 over whole-run p99 must be <= threshold.
    P99,
}

impl Check {
    fn name(&self) -> &'static str {
        match self {
            Check::Flat => "flat",
            Check::Decline => "decline",
            Check::P99 => "window_p99",
        }
    }

    /// Returns `(value, pass)`; `None` when the run has too few windows.
    fn evaluate(&self, run: &Run, threshold: f64) -> Option<(f64, bool)> {
        let tputs = run.active_tputs();
        match self {
            Check::Flat => {
                let min = tputs.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = tputs.iter().cloned().fold(0.0f64, f64::max);
                if max <= 0.0 {
                    return None;
                }
                let ratio = min / max;
                Some((ratio, ratio >= threshold))
            }
            Check::Decline => {
                // Early peak: best window of the first quarter. Trough:
                // worst window after the peak (GC recovery at the very end
                // of a run must not mask the collapse, so min — not last).
                let head = tputs.len().div_ceil(4);
                let (peak_at, peak) = tputs[..head]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))?;
                let trough = tputs[peak_at + 1..]
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                if !trough.is_finite() || *peak <= 0.0 {
                    return None;
                }
                let ratio = trough / peak;
                Some((ratio, ratio <= threshold))
            }
            Check::P99 => {
                let worst = run.windows[run.active.clone()].iter().map(|w| w.2).max()?;
                if run.whole_run_p99_ns == 0 {
                    return None;
                }
                let factor = worst as f64 / run.whole_run_p99_ns as f64;
                Some((factor, factor <= threshold))
            }
        }
    }
}

fn usage() -> BenchError {
    BenchError::Gate(
        "usage: report [--expect-flat FILE] [--expect-decline FILE] \
         [--flat-min R] [--decline-max R] [--p99-factor F] [--qos FILE] \
         [--qos-p99-ratio R] [--qos-jain R] [--qos-share-dev R] \
         [--qos-uplift R] [--lifecycle FILE] [--cliff-max R] \
         [--lifecycle-flat R] [--lsgc FILE] [--waf-max R] \
         [--explain FILE] [--interference-max P] \
         [--queue-share-max P] [--diff A B] [--regress-max P] [FILE...]"
            .to_string(),
    )
}

fn main() -> bench::BenchResult {
    let mut files: Vec<(String, Option<Check>)> = Vec::new();
    let mut qos_files: Vec<String> = Vec::new();
    let mut flat_min = 0.7f64;
    let mut decline_max = 0.6f64;
    let mut p99_factor = 0.0f64;
    let mut qos_p99_ratio = 1.25f64;
    let mut qos_jain = 0.95f64;
    let mut qos_share_dev = 0.10f64;
    let mut qos_uplift = 2.0f64;
    let mut lifecycle_files: Vec<String> = Vec::new();
    let mut cliff_max = 0.70f64;
    let mut lifecycle_flat = 0.90f64;
    let mut lsgc_files: Vec<String> = Vec::new();
    let mut waf_max = 1.5f64;
    let mut explain_files: Vec<String> = Vec::new();
    let mut interference_max = 0.0f64;
    let mut queue_share_max = 0.0f64;
    let mut diff_pairs: Vec<(String, String)> = Vec::new();
    let mut regress_max = 0.0f64;
    // An artifact reader has no workload to shard; accepted (and inert)
    // for CLI uniformity with the other binaries.
    let mut rest = bench::cli_args();
    bench::take_threads(&mut rest)?;
    let mut args = rest.into_iter();
    while let Some(a) = args.next() {
        let numeric = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .and_then(|v| v.parse::<f64>().ok())
                .ok_or_else(usage)
        };
        match a.as_str() {
            "--expect-flat" => files.push((args.next().ok_or_else(usage)?, Some(Check::Flat))),
            "--expect-decline" => {
                files.push((args.next().ok_or_else(usage)?, Some(Check::Decline)));
            }
            "--flat-min" => flat_min = numeric(&mut args)?,
            "--decline-max" => decline_max = numeric(&mut args)?,
            "--p99-factor" => p99_factor = numeric(&mut args)?,
            "--qos" => qos_files.push(args.next().ok_or_else(usage)?),
            "--qos-p99-ratio" => qos_p99_ratio = numeric(&mut args)?,
            "--qos-jain" => qos_jain = numeric(&mut args)?,
            "--qos-share-dev" => qos_share_dev = numeric(&mut args)?,
            "--qos-uplift" => qos_uplift = numeric(&mut args)?,
            "--lifecycle" => lifecycle_files.push(args.next().ok_or_else(usage)?),
            "--cliff-max" => cliff_max = numeric(&mut args)?,
            "--lifecycle-flat" => lifecycle_flat = numeric(&mut args)?,
            "--lsgc" => lsgc_files.push(args.next().ok_or_else(usage)?),
            "--waf-max" => waf_max = numeric(&mut args)?,
            "--explain" => explain_files.push(args.next().ok_or_else(usage)?),
            "--interference-max" => interference_max = numeric(&mut args)?,
            "--queue-share-max" => queue_share_max = numeric(&mut args)?,
            "--diff" => {
                let a = args.next().ok_or_else(usage)?;
                let b = args.next().ok_or_else(usage)?;
                diff_pairs.push((a, b));
            }
            "--regress-max" => regress_max = numeric(&mut args)?,
            f if !f.starts_with("--") => files.push((f.to_string(), None)),
            _ => return Err(usage()),
        }
    }
    if files.is_empty()
        && qos_files.is_empty()
        && lifecycle_files.is_empty()
        && lsgc_files.is_empty()
        && explain_files.is_empty()
        && diff_pairs.is_empty()
    {
        return Err(usage());
    }

    let runs: Vec<(Run, Option<Check>)> = files
        .into_iter()
        .map(|(path, check)| load(&path).map(|r| (r, check)))
        .collect::<bench::BenchResult<_>>()?;
    let qos_runs: Vec<QosRun> = qos_files
        .iter()
        .map(|path| load_qos(path))
        .collect::<bench::BenchResult<_>>()?;
    let lifecycle_runs: Vec<LifecycleRun> = lifecycle_files
        .iter()
        .map(|path| load_lifecycle(path))
        .collect::<bench::BenchResult<_>>()?;
    let lsgc_runs: Vec<LsgcRun> = lsgc_files
        .iter()
        .map(|path| load_lsgc(path))
        .collect::<bench::BenchResult<_>>()?;
    let span_runs: Vec<SpanRun> = explain_files
        .iter()
        .map(|path| load_spans(path))
        .collect::<bench::BenchResult<_>>()?;
    let diffs: Vec<(DiffSide, DiffSide)> = diff_pairs
        .iter()
        .map(|(a, b)| Ok((load_diff(a)?, load_diff(b)?)))
        .collect::<bench::BenchResult<_>>()?;

    for (run, _) in &runs {
        render(run);
    }
    if runs.len() >= 2 {
        render_comparison(&runs.iter().map(|(r, _)| r).collect::<Vec<_>>());
    }
    for q in &qos_runs {
        render_qos(q);
    }
    for g in &lsgc_runs {
        render_lsgc(g);
    }
    for l in &lifecycle_runs {
        render_lifecycle(l);
    }
    for s in &span_runs {
        render_spans(s);
    }
    for (a, b) in &diffs {
        render_diff(a, b);
    }

    println!();
    let mut failures = Vec::new();
    let mut gate = |check: &Check, run: &Run, threshold: f64| {
        let line = match check.evaluate(run, threshold) {
            Some((value, pass)) => {
                let verdict = if pass { "PASS" } else { "FAIL" };
                if !pass {
                    failures.push(format!(
                        "{} on {}: value {value:.3} vs threshold {threshold}",
                        check.name(),
                        run.path
                    ));
                }
                format!(
                    "SLO {} file={} value={value:.3} threshold={threshold} {verdict}",
                    check.name(),
                    run.path
                )
            }
            None => {
                failures.push(format!(
                    "{} on {}: not enough active windows to evaluate",
                    check.name(),
                    run.path
                ));
                format!(
                    "SLO {} file={} value=NaN threshold={threshold} FAIL",
                    check.name(),
                    run.path
                )
            }
        };
        println!("{line}");
    };
    for (run, check) in &runs {
        match check {
            Some(c @ Check::Flat) => gate(c, run, flat_min),
            Some(c @ Check::Decline) => gate(c, run, decline_max),
            Some(Check::P99) | None => {}
        }
        if p99_factor > 0.0 {
            gate(&Check::P99, run, p99_factor);
        }
    }

    let mut slo = |name: &str, path: &str, value: f64, threshold: f64, pass: bool| {
        let verdict = if pass { "PASS" } else { "FAIL" };
        if !pass {
            failures.push(format!(
                "{name} on {path}: value {value:.3} vs threshold {threshold}"
            ));
        }
        println!("SLO {name} file={path} value={value:.3} threshold={threshold} {verdict}");
    };
    for q in &qos_runs {
        slo(
            "qos_isolation_p99_ratio",
            &q.path,
            q.p99_ratio,
            qos_p99_ratio,
            q.p99_ratio <= qos_p99_ratio,
        );
        slo(
            "qos_fairness_jain",
            &q.path,
            q.jain,
            qos_jain,
            q.jain >= qos_jain,
        );
        slo(
            "qos_weight_share_dev",
            &q.path,
            q.max_weight_dev,
            qos_share_dev,
            q.max_weight_dev <= qos_share_dev,
        );
        slo(
            "qos_coalesce_uplift",
            &q.path,
            q.uplift,
            qos_uplift,
            q.uplift >= qos_uplift,
        );
    }

    for l in &lifecycle_runs {
        for (name, value, threshold, pass) in lifecycle_slos(l, cliff_max, lifecycle_flat) {
            slo(name, &l.path, value, threshold, pass);
        }
    }

    // Log-structured GC gates: WAF ceiling, the structural zero-pp-log
    // claim (full-stripe appends never take the partial-parity path),
    // and the scenario's reason to exist — the log-structured band must
    // beat the mdraid cliff it is contrasted against.
    for g in &lsgc_runs {
        slo("lsgc_waf", &g.path, g.waf, waf_max, g.waf <= waf_max);
        #[allow(clippy::cast_precision_loss)]
        slo(
            "lsgc_pp_log_writes",
            &g.path,
            g.pp_log_writes as f64,
            0.0,
            g.pp_log_writes == 0,
        );
        slo(
            "lsgc_band_vs_cliff",
            &g.path,
            g.flat_ratio,
            g.cliff_ratio,
            g.flat_ratio > g.cliff_ratio,
        );
    }

    // Span-blame gates: shares are NaN when the artifact attributed no
    // time, which fails the comparison — a dead tracer cannot pass.
    for s in &span_runs {
        if interference_max > 0.0 {
            let v = s.share_pct(&[
                "interference_lifecycle",
                "interference_rebuild",
                "interference_gc",
            ]);
            slo(
                "spans_interference_share",
                &s.path,
                v,
                interference_max,
                v <= interference_max,
            );
        }
        if queue_share_max > 0.0 {
            let v = s.share_pct(&["queue"]);
            slo(
                "spans_queue_share",
                &s.path,
                v,
                queue_share_max,
                v <= queue_share_max,
            );
        }
    }

    for (a, b) in &diffs {
        if regress_max > 0.0 {
            let worst = worst_p99_growth(a, b);
            slo(
                "diff_p99_regress",
                &b.path,
                worst.unwrap_or(f64::NAN),
                regress_max,
                worst.is_some_and(|v| v <= regress_max),
            );
            if let (Some(ta), Some(tb)) = (a.tput_mib_s, b.tput_mib_s) {
                let drop_pct = (ta - tb) / ta * 100.0;
                slo(
                    "diff_tput_regress",
                    &b.path,
                    drop_pct,
                    regress_max,
                    drop_pct <= regress_max,
                );
            }
        }
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(BenchError::Gate(failures.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> LifecycleRun {
        LifecycleRun {
            path: "BENCH_ziggurat.json".into(),
            cliff_ratio: 0.59,
            flat_ratio: 0.97,
            mgr_fg_reclaims: 0,
            active_limit: 9,
            max_active_mgr: 4,
            max_active_nomgr: 9,
            mgmt_finishes: 39,
            mgmt_resets: 8,
            sched_mgmt_ops: 82,
            mgmt_io_share: 0.14,
            nomgr_windows: vec![1865.0, 1865.0, 1100.0, 1100.0],
            mgr_windows: vec![1865.0, 1860.0, 1865.0, 1862.0],
        }
    }

    fn verdict(slos: &[(&'static str, f64, f64, bool)], name: &str) -> bool {
        slos.iter().find(|s| s.0 == name).expect("missing slo").3
    }

    #[test]
    fn healthy_artifact_passes_every_gate() {
        let slos = lifecycle_slos(&healthy(), 0.70, 0.90);
        assert_eq!(slos.len(), 5);
        assert!(slos.iter().all(|s| s.3), "{slos:?}");
    }

    #[test]
    fn missing_cliff_fails_the_oracle() {
        // A flat unmanaged run means the cost model stopped biting.
        let l = LifecycleRun {
            cliff_ratio: 0.95,
            ..healthy()
        };
        let slos = lifecycle_slos(&l, 0.70, 0.90);
        assert!(!verdict(&slos, "lifecycle_cliff"));
        assert!(verdict(&slos, "lifecycle_flat"));
    }

    #[test]
    fn managed_cliff_fails_the_flat_gate() {
        let l = LifecycleRun {
            flat_ratio: 0.58,
            ..healthy()
        };
        assert!(!verdict(&lifecycle_slos(&l, 0.70, 0.90), "lifecycle_flat"));
    }

    #[test]
    fn reclaims_budget_and_attribution_gates() {
        let l = LifecycleRun {
            mgr_fg_reclaims: 3,
            max_active_mgr: 11,
            sched_mgmt_ops: 0,
            ..healthy()
        };
        let slos = lifecycle_slos(&l, 0.70, 0.90);
        assert!(!verdict(&slos, "lifecycle_fg_reclaims"));
        assert!(!verdict(&slos, "lifecycle_budget"));
        assert!(!verdict(&slos, "lifecycle_mgmt_ops"));
    }

    #[test]
    fn budget_gate_covers_the_unmanaged_run_too() {
        let l = LifecycleRun {
            max_active_nomgr: 10,
            ..healthy()
        };
        assert!(!verdict(
            &lifecycle_slos(&l, 0.70, 0.90),
            "lifecycle_budget"
        ));
    }

    fn span_run(rows: Vec<BlameRow>) -> SpanRun {
        SpanRun {
            path: "BENCH_x_spans.json".into(),
            name: "x".into(),
            threshold_ns: 0,
            roots: rows.iter().map(|r| r.count).sum(),
            orphans: 0,
            truncated: 0,
            blame: rows,
            slow: Vec::new(),
        }
    }

    fn row(tenant: &str, queue: u64, lifecycle: u64, other: u64) -> BlameRow {
        let mut segments = [0u64; BLAME_CATEGORIES.len()];
        segments[0] = queue; // "queue"
        segments[7] = lifecycle; // "interference_lifecycle"
        segments[10] = other; // "other"
        BlameRow {
            tenant: tenant.into(),
            count: 1,
            total_ns: segments.iter().sum(),
            segments,
        }
    }

    #[test]
    fn spans_share_splits_queue_from_interference() {
        // 2000ns queue + 500ns lifecycle + 1500ns other across two tenants.
        let s = span_run(vec![row("0", 1500, 500, 0), row("1", 500, 0, 1500)]);
        assert!((s.share_pct(&["queue"]) - 50.0).abs() < 1e-9);
        assert!(
            (s.share_pct(&["interference_lifecycle", "interference_rebuild"]) - 12.5).abs() < 1e-9
        );
    }

    #[test]
    fn spans_share_is_nan_when_nothing_was_attributed() {
        // A gate comparison against NaN is false: a dead tracer fails.
        let s = span_run(Vec::new());
        let v = s.share_pct(&["queue"]);
        assert!(v.is_nan());
        let passes_gate = v <= 60.0;
        assert!(!passes_gate);
    }

    fn side(stages: &[(&str, u64)], tput: Option<f64>) -> DiffSide {
        DiffSide {
            path: "x.json".into(),
            stages: stages.iter().map(|(n, p)| (n.to_string(), *p)).collect(),
            tput_mib_s: tput,
        }
    }

    #[test]
    fn spans_artifacts_diff_by_blame_rows() {
        let seg = |q: u64, gc: u64| {
            BLAME_CATEGORIES
                .iter()
                .map(|name| {
                    let v = match *name {
                        "queue" => q,
                        "interference_gc" => gc,
                        _ => 0,
                    };
                    format!("\"{name}_ns\": {v}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let doc = |q: u64, gc: u64| {
            Json::parse(&format!(
                "{{\"kind\": \"spans\", \"blame\": [{{\"tenant\": \"app\",                  \"count\": 2, \"total_ns\": {}, \"segments\": {{{}}}}}]}}",
                q + gc,
                seg(q, gc)
            ))
            .unwrap()
        };
        let a = spans_diff_side(&doc(200, 100), "a.json").unwrap();
        assert_eq!(
            a.stages,
            vec![
                ("app:queue".into(), 100),
                ("app:interference_gc".into(), 50)
            ]
        );
        // GC blame per op doubled while queue stayed put: the worst-growth
        // gate sees the +100% interference regression.
        let b = spans_diff_side(&doc(200, 200), "b.json").unwrap();
        let worst = worst_p99_growth(&a, &b).unwrap();
        assert!((worst - 100.0).abs() < 1e-9);
    }

    #[test]
    fn diff_growth_picks_the_worst_stage() {
        let a = side(&[("whole_op", 1000), ("device_io", 400), ("gone", 7)], None);
        let b = side(&[("whole_op", 1100), ("device_io", 600), ("new", 9)], None);
        // device_io +50% beats whole_op +10%; unmatched stages are skipped.
        let worst = worst_p99_growth(&a, &b).unwrap();
        assert!((worst - 50.0).abs() < 1e-9);
    }

    #[test]
    fn diff_growth_is_none_when_nothing_is_comparable() {
        let a = side(&[("whole_op", 0)], None);
        let b = side(&[("whole_op", 500)], None);
        assert!(worst_p99_growth(&a, &b).is_none());
    }

    #[test]
    fn lsgc_artifact_parses_and_rejects_wrong_kind() {
        let text = r#"{
            "kind": "lsgc",
            "lsraid": {
                "flat_ratio": 0.903, "waf": 1.392, "group_reclaims": 176,
                "emergency_reclaims": 0, "migrated_sectors": 408604,
                "pp_log_writes": 0
            },
            "mdraid": { "cliff_ratio": 0.621 }
        }"#;
        let doc = Json::parse(text).expect("valid JSON");
        let g = lsgc_from_doc(&doc, "BENCH_lsgc.json").expect("parses");
        assert!((g.flat_ratio - 0.903).abs() < 1e-9);
        assert!((g.cliff_ratio - 0.621).abs() < 1e-9);
        assert!((g.waf - 1.392).abs() < 1e-9);
        assert_eq!(g.pp_log_writes, 0);
        assert_eq!(g.group_reclaims, 176);
        assert_eq!(g.emergency_reclaims, 0);
        assert_eq!(g.migrated_sectors, 408_604);
        assert!(g.waf <= 1.5 && g.flat_ratio > g.cliff_ratio);

        let wrong = Json::parse(r#"{"kind": "qos"}"#).expect("valid JSON");
        assert!(lsgc_from_doc(&wrong, "x.json").is_err());
    }
}
