//! Table 1: location and size of RAIZN metadata for a 5-device array with
//! 64 KiB stripe units and 1077 MiB physical zone capacity — computed
//! from this implementation's constants and layout math.

use bench::print_table;
use raizn::{RaiznConfig, RaiznLayout, MD_HEADER_BYTES};
use zns::ZoneGeometry;

fn main() -> bench::BenchResult {
    // Pure layout math, no workload; the flag exists for CLI uniformity.
    bench::note_single_threaded("table1", bench::threads_arg("table1")?);
    // The paper's geometry: 2 TB ZN540 — 1077 MiB capacity zones.
    let phys = ZoneGeometry::new(1900, 524_288, 275_712);
    let config = RaiznConfig::default(); // 64 KiB stripe units, 3 md zones
    let layout = RaiznLayout::new(5, config, phys);

    let su_bytes = layout.stripe_unit() * zns::SECTOR_SIZE;
    let lzones = layout.logical_zones() as u64;
    let units_per_zone = layout.stripes_per_zone() * layout.data_units();
    let pbitmap_bytes = units_per_zone.div_ceil(8);
    let gen_mem_per_zone = 8.0 + 32.0 / 508.0; // counter + amortized header
    let stripe_buffer_bytes = (layout.data_units() + 1) * layout.stripe_unit() * zns::SECTOR_SIZE;

    let rows = vec![
        vec![
            "Remapped stripe unit".into(),
            "affected device only".into(),
            format!(
                "{} KiB (header) + {} KiB (unit)",
                MD_HEADER_BYTES / 1024,
                su_bytes / 1024
            ),
            format!(
                "{} KiB + {} KiB (unit)",
                MD_HEADER_BYTES / 1024,
                su_bytes / 1024
            ),
        ],
        vec![
            "Zone reset log".into(),
            "two devices (rotating)".into(),
            format!("{} KiB", MD_HEADER_BYTES / 1024),
            "-".into(),
        ],
        vec![
            "Generation counters".into(),
            "all devices".into(),
            format!("{} KiB", MD_HEADER_BYTES / 1024),
            format!("{gen_mem_per_zone:.2} B per logical zone"),
        ],
        vec![
            "Partial parity".into(),
            "device with parity".into(),
            format!(
                "{} KiB (header) + <= {} KiB (rows)",
                MD_HEADER_BYTES / 1024,
                su_bytes / 1024
            ),
            "-".into(),
        ],
        vec![
            "Superblock".into(),
            "all devices".into(),
            format!("{} KiB", MD_HEADER_BYTES / 1024),
            format!("{} KiB", MD_HEADER_BYTES / 1024),
        ],
        vec![
            "Stripe buffers".into(),
            "-".into(),
            "-".into(),
            format!(
                "{} KiB ({} units) x {} per open zone",
                stripe_buffer_bytes / 1024,
                layout.data_units() + 1,
                config.stripe_buffers_per_zone
            ),
        ],
        vec![
            "Persistence bitmaps".into(),
            "-".into(),
            "-".into(),
            format!("{} KiB per logical zone", pbitmap_bytes / 1024),
        ],
        vec![
            "Physical zone descriptors".into(),
            "-".into(),
            "-".into(),
            format!("64 B x {} zones x 5 devices", phys.num_zones()),
        ],
        vec![
            "Logical zone descriptors".into(),
            "-".into(),
            "-".into(),
            format!("64 B x {lzones} logical zones"),
        ],
    ];
    print_table(
        "Table 1: RAIZN metadata (5 devices, 64 KiB stripe units, 1077 MiB zones)",
        &[
            "metadata type",
            "persistent location",
            "storage per update",
            "memory footprint",
        ],
        &rows,
    );

    println!(
        "\nderived: logical zones = {lzones}, logical zone capacity = {} MiB, \
         stripes per zone = {}",
        layout.logical_geometry().zone_cap() * zns::SECTOR_SIZE / (1024 * 1024),
        layout.stripes_per_zone()
    );

    bench::write_breakdown("table1")
}
