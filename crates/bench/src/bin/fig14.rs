//! Figure 14: sysbench-style OLTP (oltp_read_only / write_only /
//! read_write at 64 and 128 threads): TPS, average latency, p95 — on
//! zkv-over-RAIZN vs zkv-over-mdraid.

use bench::{conv_devices, print_table, raizn_volume, TimelineRun};
use ftl::BlockDevice;
use mdraid5::{Md5Config, Md5Volume, ZonedBlockShim};
use sim::{SimDuration, SimTime};
use std::sync::Arc;
use zkv::{OltpBench, OltpMix, ZkvConfig, ZkvStore};
use zns::ZonedVolume;

/// Rows of (mix label, ktx/s, read MiB/s, write MiB/s) plus the run's end time.
type MixRows = (Vec<(String, f64, f64, f64)>, SimTime);

const ZONES: u32 = 64;
const ZONE_SECTORS: u64 = 4096;
const TABLES: u32 = 8;
const ROWS: u64 = 10_000; // paper: 10M; scaled for simulation

/// Runs the three OLTP mixes. `capture` rides on the read_write mix
/// (the mix that exercises both planes); zkv drives the volume directly,
/// so gauges are force-sampled at prepare/run boundaries.
fn run_mixes<V: ZonedVolume>(
    mk: impl Fn(Option<&TimelineRun>) -> bench::BenchResult<Arc<V>>,
    threads: usize,
    capture: Option<&TimelineRun>,
) -> bench::BenchResult<MixRows> {
    let mut out = Vec::new();
    let mut end = SimTime::ZERO;
    for mix in [OltpMix::ReadOnly, OltpMix::WriteOnly, OltpMix::ReadWrite] {
        let cap = capture.filter(|_| mix == OltpMix::ReadWrite);
        // Fresh database per trial, like the paper.
        let store = ZkvStore::create(mk(cap)?, ZkvConfig::default(), SimTime::ZERO)?;
        let mut bench = OltpBench::new(TABLES, ROWS, threads);
        bench.duration = SimDuration::from_secs(5);
        let t = bench.prepare(&store, SimTime::ZERO)?;
        if let Some(c) = cap {
            c.timeline().force_sample(t);
        }
        let r = bench.run(&store, mix, t)?;
        if let Some(c) = cap {
            c.timeline().force_sample(r.end);
            end = r.end;
        }
        out.push((
            mix.name().to_string(),
            r.tps(),
            r.latency.mean().as_secs_f64() * 1e3,
            r.latency.percentile(95.0).as_secs_f64() * 1e3,
        ));
    }
    Ok((out, end))
}

fn main() -> bench::BenchResult {
    // zkv's OLTP harness models its own client threads on virtual time
    // (no engine worker pool); the flag exists for CLI uniformity.
    bench::note_single_threaded("fig14", bench::threads_arg("fig14")?);
    // Timeline capture rides on the flagship trial: 64-thread
    // oltp_read_write on zkv-over-RAIZN.
    let capture = TimelineRun::new("fig14");
    let mut capture_end = SimTime::ZERO;
    for threads in [64usize, 128] {
        let flagship = threads == 64;
        let (raizn, rz_end) = run_mixes(
            |c| match c {
                Some(c) => c.raizn_volume(ZONES, ZONE_SECTORS, 16),
                None => raizn_volume(ZONES, ZONE_SECTORS, 16),
            },
            threads,
            flagship.then_some(&capture),
        )?;
        if flagship {
            capture_end = rz_end;
        }
        let (mdraid, _) = run_mixes(
            |_| {
                // Stripe cache scaled with the dataset (see fig13).
                let devices: Vec<Arc<dyn BlockDevice>> =
                    conv_devices(5, ZONES as u64 * ZONE_SECTORS)
                        .into_iter()
                        .map(|d| d as Arc<dyn BlockDevice>)
                        .collect();
                let md = Arc::new(Md5Volume::new(
                    devices,
                    Md5Config {
                        chunk_sectors: 16,
                        stripe_cache_bytes: 2 * 1024 * 1024,
                    },
                )?);
                Ok(Arc::new(ZonedBlockShim::new(md, 4 * ZONE_SECTORS)?))
            },
            threads,
            None,
        )?;
        let rows: Vec<Vec<String>> = raizn
            .iter()
            .zip(mdraid.iter())
            .map(|(r, m)| {
                vec![
                    r.0.clone(),
                    format!("{:.0}", m.1),
                    format!("{:.0}", r.1),
                    format!("{:.2}", m.2),
                    format!("{:.2}", r.2),
                    format!("{:.2}", m.3),
                    format!("{:.2}", r.3),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 14: sysbench OLTP, {threads} threads"),
            &[
                "mix",
                "md TPS",
                "rz TPS",
                "md avg ms",
                "rz avg ms",
                "md p95 ms",
                "rz p95 ms",
            ],
            &rows,
        );
    }

    capture.finish(capture_end)?;
    bench::write_breakdown("fig14")
}
