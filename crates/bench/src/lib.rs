//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index). This library
//! holds the common plumbing: array construction at benchmark scale and
//! plain-text table output.
//!
//! Scale note: the paper's testbed uses 5 × 2 TB SSDs; the simulated
//! arrays here are scaled down (capacities in the low GiB) so every
//! experiment runs in seconds of real time. Virtual-time throughput and
//! latency keep their *relative* behaviour (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use ftl::{BlockDevice, ConvSsd, FtlConfig};
use mdraid5::{Md5Config, Md5Volume};
use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::sync::{Arc, OnceLock};
use zns::{LatencyConfig, ZnsConfig, ZnsDevice};

/// Number of array devices used throughout the evaluation (paper: 5).
pub const ARRAY_DEVICES: usize = 5;

/// Ring capacity of the shared benchmark recorder; long runs overflow it
/// (oldest events drop) but histograms and counters always see everything.
const RECORDER_CAPACITY: usize = 65_536;

/// Sample every N-th event into the ring: benchmarks only consume the
/// aggregate breakdown, so a thinned ring is plenty for spot-checks.
const RECORDER_SAMPLE: u64 = 16;

/// The process-wide benchmark recorder. Every volume and device built by
/// this harness attaches to it, so [`write_breakdown`] covers the whole
/// stack of the experiment that ran.
pub fn recorder() -> Arc<obs::Recorder> {
    static RECORDER: OnceLock<Arc<obs::Recorder>> = OnceLock::new();
    RECORDER
        .get_or_init(|| obs::Recorder::new(RECORDER_CAPACITY, RECORDER_SAMPLE))
        .clone()
}

/// Writes the shared recorder's latency breakdown to
/// `BENCH_<name>_breakdown.json` in the working directory (per-stage
/// p50/p99/mean/max plus counters) and prints the path.
///
/// # Panics
///
/// Panics if the file cannot be written (benchmark output must land).
pub fn write_breakdown(name: &str) {
    let path = format!("BENCH_{name}_breakdown.json");
    let json = recorder().breakdown_json(name);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nlatency breakdown -> {path}");
}

/// Builds `n` ZNS devices with `zones` zones of `zone_sectors` capacity
/// (accounting-only data mode, ZN540-like timing).
pub fn zns_devices(n: usize, zones: u32, zone_sectors: u64) -> Vec<Arc<ZnsDevice>> {
    (0..n)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(zones, zone_sectors, zone_sectors)
                    .open_limits(14, 28)
                    .latency(LatencyConfig::zns_ssd())
                    .store_data(false)
                    .build(),
            ));
            dev.set_recorder(recorder(), i as u32);
            dev
        })
        .collect()
}

/// Builds a formatted RAIZN volume over fresh ZNS devices.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn raizn_volume(zones: u32, zone_sectors: u64, stripe_unit_sectors: u64) -> Arc<RaiznVolume> {
    let devices = zns_devices(ARRAY_DEVICES, zones, zone_sectors);
    let config = RaiznConfig {
        stripe_unit_sectors,
        ..RaiznConfig::default()
    };
    let volume =
        Arc::new(RaiznVolume::format(devices, config, SimTime::ZERO).expect("format RAIZN"));
    volume.set_recorder(recorder());
    volume
}

/// Builds `n` conventional SSDs of `user_sectors` capacity (7% OP,
/// accounting-only).
pub fn conv_devices(n: usize, user_sectors: u64) -> Vec<Arc<ConvSsd>> {
    (0..n)
        .map(|i| {
            let dev = Arc::new(ConvSsd::new(FtlConfig {
                user_sectors,
                pages_per_block: 256,
                op_ratio: 0.07,
                gc_low_blocks: 8,
                latency: LatencyConfig::conventional_ssd(),
                store_data: false,
            }));
            dev.set_recorder(recorder(), i as u32);
            dev
        })
        .collect()
}

/// Builds an mdraid-5 volume over fresh conventional SSDs.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn mdraid_volume(user_sectors: u64, chunk_sectors: u64) -> Arc<Md5Volume> {
    let devices: Vec<Arc<dyn BlockDevice>> = conv_devices(ARRAY_DEVICES, user_sectors)
        .into_iter()
        .map(|d| d as Arc<dyn BlockDevice>)
        .collect();
    let volume = Arc::new(
        Md5Volume::new(
            devices,
            Md5Config {
                chunk_sectors,
                stripe_cache_bytes: 128 * 1024 * 1024,
            },
        )
        .expect("assemble mdraid"),
    );
    volume.set_recorder(recorder());
    volume
}

/// Prints a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let cols: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", cols.join(" | "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Formats a byte count as a human-readable block size label (e.g. 64K).
pub fn bs_label(sectors: u64) -> String {
    let bytes = sectors * zns::SECTOR_SIZE;
    if bytes >= 1024 * 1024 {
        format!("{}M", bytes / (1024 * 1024))
    } else {
        format!("{}K", bytes / 1024)
    }
}

/// The three §6.1 microbenchmark workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Micro {
    /// 8 jobs × QD 64, sequential writes at different offsets.
    SeqWrite,
    /// 8 jobs × QD 64, sequential reads at different offsets.
    SeqRead,
    /// 1 job × QD 256, random reads over the primed capacity.
    RandRead,
}

impl Micro {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Micro::SeqWrite => "seq-write",
            Micro::SeqRead => "seq-read",
            Micro::RandRead => "rand-read",
        }
    }
}

/// Fills the target sequentially with 1 MiB blocks (the paper's priming
/// pass before read benchmarks), returning the end time.
///
/// # Panics
///
/// Panics on IO errors (benchmark setup must succeed).
pub fn prime(target: &dyn workloads::IoTarget, at: SimTime) -> SimTime {
    use workloads::{Engine, JobSpec, OpKind, Pattern};
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, 256).queue_depth(64);
    Engine::new(0xF111)
        .start_at(at)
        .run(target, &[job])
        .expect("priming failed")
        .end
}

/// Runs one microbenchmark with the paper's job/queue-depth parameters,
/// with per-config op counts capped for simulation speed.
///
/// # Panics
///
/// Panics on IO errors.
pub fn run_micro(
    target: &dyn workloads::IoTarget,
    micro: Micro,
    block_sectors: u64,
    align_sectors: u64,
    at: SimTime,
) -> workloads::RunReport {
    use workloads::{Engine, JobSpec, OpKind, Pattern};
    let cap = target.capacity_sectors();
    let jobs: Vec<JobSpec> = match micro {
        Micro::SeqWrite | Micro::SeqRead => {
            let kind = if micro == Micro::SeqWrite {
                OpKind::Write
            } else {
                OpKind::Read
            };
            let per_job = cap / 8 / align_sectors * align_sectors;
            // Cap the written volume at ~50% of capacity so write runs
            // never run the conventional baseline into device GC — the
            // paper reformats devices before each write trial precisely
            // to keep GC out of this figure.
            let half_blocks = per_job / 2 / block_sectors;
            (0..8u64)
                .map(|i| {
                    let region = (i * per_job, (i + 1) * per_job);
                    let blocks = per_job / block_sectors;
                    JobSpec::new(kind, Pattern::Sequential, block_sectors)
                        .region(region.0, region.1)
                        .ops(blocks.min(8192).min(half_blocks.max(1)))
                        .queue_depth(64)
                })
                .collect()
        }
        Micro::RandRead => {
            let span = cap / align_sectors * align_sectors;
            vec![JobSpec::new(OpKind::Read, Pattern::Random, block_sectors)
                .region(0, span)
                .ops(32_768)
                .queue_depth(256)]
        }
    };
    Engine::new(0xB5 ^ block_sectors)
        .start_at(at)
        .run(target, &jobs)
        .expect("microbenchmark failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use zns::ZonedVolume;

    #[test]
    fn arrays_assemble() {
        let r = raizn_volume(8, 4096, 16);
        assert_eq!(r.geometry().num_zones(), 5);
        let m = mdraid_volume(262_144, 16);
        assert!(m.capacity_sectors() > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(bs_label(1), "4K");
        assert_eq!(bs_label(256), "1M");
    }

    #[test]
    fn harness_volumes_record_into_shared_recorder() {
        let before = recorder().next_seq();
        let v = raizn_volume(8, 4096, 16);
        let data = vec![0u8; zns::SECTOR_SIZE as usize];
        v.write(SimTime::ZERO, 0, &data, zns::WriteFlags::default())
            .unwrap();
        assert!(
            recorder().next_seq() > before,
            "harness-built volume did not trace"
        );
        let json = recorder().breakdown_json("unit");
        assert!(json.contains("\"whole_op\""));
    }
}
