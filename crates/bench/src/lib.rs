//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index). This library
//! holds the common plumbing: array construction at benchmark scale and
//! plain-text table output.
//!
//! Scale note: the paper's testbed uses 5 × 2 TB SSDs; the simulated
//! arrays here are scaled down (capacities in the low GiB) so every
//! experiment runs in seconds of real time. Virtual-time throughput and
//! latency keep their *relative* behaviour (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use ftl::{BlockDevice, ConvSsd, FtlConfig};
use lsraid::{LsConfig, LsVolume};
use mdraid5::{Md5Config, Md5Volume};
use raizn::{RaiznConfig, RaiznVolume};
use sim::{SimDuration, SimTime};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use zns::{LatencyConfig, ZnsConfig, ZnsDevice};

pub mod json;
pub mod lifecycle;
pub mod lsgc;

/// Errors a benchmark binary can exit with. Binaries return
/// [`BenchResult`] from `main` so CI sees the cause on stderr and a
/// nonzero exit code instead of a panic backtrace.
#[derive(Debug)]
pub enum BenchError {
    /// Filesystem error writing or reading an artifact.
    Io(std::io::Error),
    /// An IO error from the simulated stack.
    Zns(zns::ZnsError),
    /// A benchmark-level invariant or SLO gate failed.
    Gate(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "io error: {e}"),
            BenchError::Zns(e) => write!(f, "simulated-stack error: {e}"),
            BenchError::Gate(msg) => write!(f, "gate failed: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

impl From<zns::ZnsError> for BenchError {
    fn from(e: zns::ZnsError) -> Self {
        BenchError::Zns(e)
    }
}

/// Result alias for benchmark binaries and harness helpers.
pub type BenchResult<T = ()> = Result<T, BenchError>;

/// Fails a gate with a formatted message.
#[macro_export]
macro_rules! gate {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err($crate::BenchError::Gate(format!($($arg)+)));
        }
    };
}

/// Number of array devices used throughout the evaluation (paper: 5).
pub const ARRAY_DEVICES: usize = 5;

/// The process command line minus the program name, for composition with
/// [`take_threads`] and binary-specific flags.
pub fn cli_args() -> Vec<String> {
    std::env::args().skip(1).collect()
}

/// Consumes the shared `--threads N` flag from `args` (every benchmark
/// binary accepts it), leaving all other arguments in place for the
/// binary's own parsing. Returns the requested engine worker count;
/// defaults to 1, which reproduces the single-threaded driver exactly, so
/// default invocations keep bit-identical artifacts.
///
/// # Errors
///
/// Fails if `--threads` is present without a positive integer value.
pub fn take_threads(args: &mut Vec<String>) -> BenchResult<usize> {
    let mut threads = 1usize;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            let value = args
                .get(i + 1)
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .ok_or_else(|| BenchError::Gate("--threads needs a positive integer".into()))?;
            threads = value;
            args.drain(i..i + 2);
        } else {
            i += 1;
        }
    }
    Ok(threads)
}

/// Parses a binary's command line when `--threads N` is its only flag,
/// rejecting anything else with a usage message naming `bin`.
///
/// # Errors
///
/// Fails on a malformed `--threads` value or any unrecognized argument.
pub fn threads_arg(bin: &str) -> BenchResult<usize> {
    let mut args = cli_args();
    let threads = take_threads(&mut args)?;
    if let Some(extra) = args.first() {
        return Err(BenchError::Gate(format!(
            "unknown argument {extra:?} (usage: {bin} [--threads N])"
        )));
    }
    Ok(threads)
}

/// Prints the standard notice for binaries whose capture methodology is
/// inherently single-threaded (per-second series sampling, non-engine
/// harnesses, crash/verify sequences): they accept `--threads` for CLI
/// uniformity but run the capture on one driver thread.
pub fn note_single_threaded(bin: &str, threads: usize) {
    if threads > 1 {
        println!(
            "note: {bin}'s capture is single-threaded by methodology; \
             --threads {threads} leaves results unchanged"
        );
    }
}

/// Ring capacity of the shared benchmark recorder; long runs overflow it
/// (oldest events drop) but histograms and counters always see everything.
const RECORDER_CAPACITY: usize = 65_536;

/// Sample every N-th event into the ring: benchmarks only consume the
/// aggregate breakdown, so a thinned ring is plenty for spot-checks.
const RECORDER_SAMPLE: u64 = 16;

/// The process-wide benchmark recorder. Every volume and device built by
/// this harness attaches to it, so [`write_breakdown`] covers the whole
/// stack of the experiment that ran.
pub fn recorder() -> Arc<obs::Recorder> {
    static RECORDER: OnceLock<Arc<obs::Recorder>> = OnceLock::new();
    RECORDER
        .get_or_init(|| {
            let rec = obs::Recorder::new(RECORDER_CAPACITY, RECORDER_SAMPLE);
            rec.enable_spans(span_config());
            rec
        })
        .clone()
}

/// Tail-sampling configuration for benchmark recorders: the rolling-p99
/// threshold by default, or a pinned threshold when `BENCH_SLOW_US` is set
/// (virtual microseconds; ops at or above it are captured in full).
fn span_config() -> obs::SpanConfig {
    let slow = std::env::var("BENCH_SLOW_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(SimDuration::from_micros);
    obs::SpanConfig {
        slow,
        keep_slowest: None,
    }
}

/// Writes the recorder's causal-span artifact (per-tenant blame table,
/// tail-sampled slow-op trees, Chrome/Perfetto `traceEvents`) to
/// `BENCH_<name>_spans.json` in `dir`, returning the path.
///
/// # Errors
///
/// Returns an error if the file cannot be written.
pub fn write_spans_to(name: &str, rec: &obs::Recorder, dir: &Path) -> BenchResult<PathBuf> {
    let path = dir.join(format!("BENCH_{name}_spans.json"));
    std::fs::write(&path, obs::spans_json(name, rec))?;
    Ok(path)
}

/// Writes `BENCH_<name>_spans.json` in the working directory from the
/// given recorder and prints the path.
///
/// # Errors
///
/// Returns an error if the file cannot be written.
pub fn write_spans(name: &str, rec: &obs::Recorder) -> BenchResult {
    let path = write_spans_to(name, rec, Path::new("."))?;
    println!("span blame/trace -> {}", path.display());
    Ok(())
}

/// Writes the shared recorder's latency breakdown to
/// `BENCH_<name>_breakdown.json` in `dir` (per-stage p50/p99/mean/max
/// plus counters), returning the path.
///
/// # Errors
///
/// Returns an error if the file cannot be written.
pub fn write_breakdown_to(name: &str, dir: &Path) -> BenchResult<PathBuf> {
    let path = dir.join(format!("BENCH_{name}_breakdown.json"));
    let json = recorder().breakdown_json(name);
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Writes the shared recorder's latency breakdown to
/// `BENCH_<name>_breakdown.json` in the working directory and prints the
/// path.
///
/// # Errors
///
/// Returns an error if the file cannot be written.
pub fn write_breakdown(name: &str) -> BenchResult {
    let path = write_breakdown_to(name, Path::new("."))?;
    println!("\nlatency breakdown -> {}", path.display());
    Ok(())
}

/// Tumbling-window interval of timeline captures (matches the paper's
/// fig-10 100 ms sampling).
pub const TIMELINE_WINDOW: SimDuration = SimDuration::from_millis(100);

/// Maximum retained windows per timeline run (819 s of virtual time).
const TIMELINE_MAX_WINDOWS: usize = 8192;

/// One timeline-enabled benchmark run: a private windowed [`obs::Recorder`]
/// plus an [`obs::Timeline`] gauge registry covering one contiguous span
/// of virtual time.
///
/// Benchmarks that chain several sub-runs restart the virtual clock per
/// sub-run, which would interleave unrelated runs into the same windows if
/// they shared one windowed recorder. A `TimelineRun` therefore gives each
/// captured run fresh window state; [`TimelineRun::finish`] writes the
/// `BENCH_<name>_timeline.json` artifact and folds the run's aggregate
/// histograms/counters into the process-wide [`recorder`], so breakdown
/// artifacts still cover everything.
pub struct TimelineRun {
    name: String,
    recorder: Arc<obs::Recorder>,
    timeline: Arc<obs::Timeline>,
}

impl TimelineRun {
    /// Creates a run that will emit `BENCH_<name>_timeline.json`.
    pub fn new(name: &str) -> Self {
        let recorder = obs::Recorder::new(RECORDER_CAPACITY, RECORDER_SAMPLE);
        recorder.enable_windows(TIMELINE_WINDOW, TIMELINE_MAX_WINDOWS);
        recorder.enable_spans(span_config());
        TimelineRun {
            name: name.to_string(),
            recorder,
            timeline: obs::Timeline::new(TIMELINE_WINDOW),
        }
    }

    /// The run's private windowed recorder (attach to volumes/devices).
    pub fn recorder(&self) -> Arc<obs::Recorder> {
        self.recorder.clone()
    }

    /// The run's gauge timeline (attach to engines, register sources).
    pub fn timeline(&self) -> Arc<obs::Timeline> {
        self.timeline.clone()
    }

    /// Registers a gauge source for periodic sampling.
    pub fn register(&self, source: Arc<dyn obs::GaugeSource>) {
        self.timeline.register(source);
    }

    /// Builds a RAIZN volume wired for this run: devices and volume
    /// record into the run's recorder and are registered as gauge sources.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn raizn_volume(
        &self,
        zones: u32,
        zone_sectors: u64,
        stripe_unit_sectors: u64,
    ) -> BenchResult<Arc<RaiznVolume>> {
        let devices = zns_devices_with(&self.recorder, ARRAY_DEVICES, zones, zone_sectors);
        for dev in &devices {
            self.register(dev.clone());
        }
        let config = RaiznConfig {
            stripe_unit_sectors,
            ..RaiznConfig::default()
        };
        let volume = Arc::new(RaiznVolume::format(devices, config, SimTime::ZERO)?);
        volume.set_recorder(self.recorder());
        self.register(volume.clone());
        Ok(volume)
    }

    /// Builds a log-structured RAID volume wired for this run (see
    /// [`TimelineRun::raizn_volume`]): devices and volume record into the
    /// run's recorder and are registered as gauge sources, so the timeline
    /// artifact carries the `lsraid.*` series (WAF, garbage ratio, group
    /// pools) alongside per-device gauges.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn lsraid_volume(
        &self,
        zones: u32,
        zone_sectors: u64,
        config: LsConfig,
    ) -> BenchResult<Arc<LsVolume>> {
        let devices = zns_devices_with(&self.recorder, ARRAY_DEVICES, zones, zone_sectors);
        for dev in &devices {
            self.register(dev.clone());
        }
        let volume = Arc::new(LsVolume::format(devices, config, SimTime::ZERO)?);
        volume.set_recorder(self.recorder());
        self.register(volume.clone());
        Ok(volume)
    }

    /// Builds an mdraid-5 volume wired for this run (see
    /// [`TimelineRun::raizn_volume`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn mdraid_volume(
        &self,
        user_sectors: u64,
        chunk_sectors: u64,
    ) -> BenchResult<Arc<Md5Volume>> {
        let convs = conv_devices_with(&self.recorder, ARRAY_DEVICES, user_sectors);
        for dev in &convs {
            self.register(dev.clone());
        }
        let devices: Vec<Arc<dyn BlockDevice>> = convs
            .into_iter()
            .map(|d| d as Arc<dyn BlockDevice>)
            .collect();
        let volume = Arc::new(Md5Volume::new(
            devices,
            Md5Config {
                chunk_sectors,
                stripe_cache_bytes: 128 * 1024 * 1024,
            },
        )?);
        volume.set_recorder(self.recorder());
        self.register(volume.clone());
        Ok(volume)
    }

    /// A workload engine that drives this run's gauge sampling. The
    /// engine's in-flight queue depth is registered as a gauge source, so
    /// the artifact carries `engine.pipeline_queue_depth` series.
    pub fn engine(&self, seed: u64) -> workloads::Engine {
        let depth = workloads::PipelineDepth::new();
        self.register(depth.clone());
        workloads::Engine::new(seed)
            .timeline(self.timeline())
            .depth_gauge(depth)
    }

    /// Takes a final gauge sample at `at` and writes the timeline artifact
    /// into `dir`, returning its path. Callable repeatedly (e.g. once per
    /// phase); the artifact accumulates.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn write_to(&self, dir: &Path, at: SimTime) -> BenchResult<PathBuf> {
        self.timeline.force_sample(at);
        let path = dir.join(format!("BENCH_{}_timeline.json", self.name));
        let json = obs::timeline_json(
            &self.name,
            &self.recorder,
            Some(&self.timeline),
            SECTOR_BYTES,
        );
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Finishes the run: final gauge sample at `at`, artifact written to
    /// the working directory, aggregates absorbed into the process-wide
    /// [`recorder`] so breakdown artifacts stay complete.
    ///
    /// # Errors
    ///
    /// Returns an error if the artifact cannot be written.
    pub fn finish(self, at: SimTime) -> BenchResult<PathBuf> {
        let path = self.write_to(Path::new("."), at)?;
        println!("timeline -> {}", path.display());
        recorder().absorb(&self.recorder);
        Ok(path)
    }

    /// Discards everything captured so far (windows, gauge points,
    /// histograms) after folding it into the process-wide [`recorder`].
    /// Used to scope the artifact to the phase of interest: call this at
    /// a phase boundary and the timeline covers only what follows.
    pub fn reset_capture(&self) {
        recorder().absorb(&self.recorder);
        self.recorder.clear();
        self.timeline.clear();
    }
}

/// Bytes per sector, as a u64 (timeline throughput derivation).
const SECTOR_BYTES: u64 = zns::SECTOR_SIZE;

/// Builds `n` ZNS devices with `zones` zones of `zone_sectors` capacity
/// (accounting-only data mode, ZN540-like timing), recording into `rec`.
pub fn zns_devices_with(
    rec: &Arc<obs::Recorder>,
    n: usize,
    zones: u32,
    zone_sectors: u64,
) -> Vec<Arc<ZnsDevice>> {
    (0..n)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(zones, zone_sectors, zone_sectors)
                    .open_limits(14, 28)
                    .latency(LatencyConfig::zns_ssd())
                    .store_data(false)
                    .build(),
            ));
            dev.set_recorder(rec.clone(), i as u32);
            dev
        })
        .collect()
}

/// Builds `n` ZNS devices recording into the process-wide [`recorder`].
pub fn zns_devices(n: usize, zones: u32, zone_sectors: u64) -> Vec<Arc<ZnsDevice>> {
    zns_devices_with(&recorder(), n, zones, zone_sectors)
}

/// Builds a formatted RAIZN volume over fresh ZNS devices.
///
/// # Errors
///
/// Returns an error if the configuration is invalid.
pub fn raizn_volume(
    zones: u32,
    zone_sectors: u64,
    stripe_unit_sectors: u64,
) -> BenchResult<Arc<RaiznVolume>> {
    let devices = zns_devices(ARRAY_DEVICES, zones, zone_sectors);
    let config = RaiznConfig {
        stripe_unit_sectors,
        ..RaiznConfig::default()
    };
    let volume = Arc::new(RaiznVolume::format(devices, config, SimTime::ZERO)?);
    volume.set_recorder(recorder());
    Ok(volume)
}

/// Builds a formatted log-structured RAID volume over fresh ZNS devices,
/// recording into the process-wide [`recorder`].
///
/// # Errors
///
/// Returns an error if the configuration is invalid.
pub fn lsraid_volume(
    zones: u32,
    zone_sectors: u64,
    config: LsConfig,
) -> BenchResult<Arc<LsVolume>> {
    let devices = zns_devices(ARRAY_DEVICES, zones, zone_sectors);
    let volume = Arc::new(LsVolume::format(devices, config, SimTime::ZERO)?);
    volume.set_recorder(recorder());
    Ok(volume)
}

/// Builds `n` conventional SSDs of `user_sectors` capacity (7% OP,
/// accounting-only), recording into `rec`.
pub fn conv_devices_with(
    rec: &Arc<obs::Recorder>,
    n: usize,
    user_sectors: u64,
) -> Vec<Arc<ConvSsd>> {
    (0..n)
        .map(|i| {
            let dev = Arc::new(ConvSsd::new(FtlConfig {
                user_sectors,
                pages_per_block: 256,
                op_ratio: 0.07,
                gc_low_blocks: 8,
                latency: LatencyConfig::conventional_ssd(),
                store_data: false,
            }));
            dev.set_recorder(rec.clone(), i as u32);
            dev
        })
        .collect()
}

/// Builds `n` conventional SSDs recording into the process-wide
/// [`recorder`].
pub fn conv_devices(n: usize, user_sectors: u64) -> Vec<Arc<ConvSsd>> {
    conv_devices_with(&recorder(), n, user_sectors)
}

/// Builds an mdraid-5 volume over fresh conventional SSDs.
///
/// # Errors
///
/// Returns an error if the configuration is invalid.
pub fn mdraid_volume(user_sectors: u64, chunk_sectors: u64) -> BenchResult<Arc<Md5Volume>> {
    let devices: Vec<Arc<dyn BlockDevice>> = conv_devices(ARRAY_DEVICES, user_sectors)
        .into_iter()
        .map(|d| d as Arc<dyn BlockDevice>)
        .collect();
    let volume = Arc::new(Md5Volume::new(
        devices,
        Md5Config {
            chunk_sectors,
            stripe_cache_bytes: 128 * 1024 * 1024,
        },
    )?);
    volume.set_recorder(recorder());
    Ok(volume)
}

/// Prints a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let cols: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", cols.join(" | "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Formats a byte count as a human-readable block size label (e.g. 64K).
pub fn bs_label(sectors: u64) -> String {
    let bytes = sectors * zns::SECTOR_SIZE;
    if bytes >= 1024 * 1024 {
        format!("{}M", bytes / (1024 * 1024))
    } else {
        format!("{}K", bytes / 1024)
    }
}

/// The three §6.1 microbenchmark workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Micro {
    /// 8 jobs × QD 64, sequential writes at different offsets.
    SeqWrite,
    /// 8 jobs × QD 64, sequential reads at different offsets.
    SeqRead,
    /// 1 job × QD 256, random reads over the primed capacity.
    RandRead,
}

impl Micro {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Micro::SeqWrite => "seq-write",
            Micro::SeqRead => "seq-read",
            Micro::RandRead => "rand-read",
        }
    }
}

/// Fills the target sequentially with 1 MiB blocks (the paper's priming
/// pass before read benchmarks), returning the end time.
///
/// # Errors
///
/// Propagates IO errors from the simulated stack.
pub fn prime(target: &dyn workloads::IoTarget, at: SimTime) -> BenchResult<SimTime> {
    use workloads::{Engine, JobSpec, OpKind, Pattern};
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, 256).queue_depth(64);
    Ok(Engine::new(0xF111).start_at(at).run(target, &[job])?.end)
}

/// Runs one microbenchmark with the paper's job/queue-depth parameters,
/// with per-config op counts capped for simulation speed. `timeline`, when
/// given, has its gauges sampled as the run's virtual clock advances.
///
/// `threads` > 1 shards the jobs over that many OS threads (see
/// [`workloads::Engine::run_threaded`]): logical outcomes stay
/// reproducible, but virtual-time throughput may shift slightly under
/// device-service contention, so figure artifacts are only bit-identical
/// at the default of 1.
///
/// # Errors
///
/// Propagates IO errors from the simulated stack.
pub fn run_micro(
    target: &dyn workloads::IoTarget,
    micro: Micro,
    block_sectors: u64,
    align_sectors: u64,
    at: SimTime,
    timeline: Option<Arc<obs::Timeline>>,
    threads: usize,
) -> BenchResult<workloads::RunReport> {
    use workloads::{Engine, JobSpec, OpKind, Pattern};
    let cap = target.capacity_sectors();
    let jobs: Vec<JobSpec> = match micro {
        Micro::SeqWrite | Micro::SeqRead => {
            let kind = if micro == Micro::SeqWrite {
                OpKind::Write
            } else {
                OpKind::Read
            };
            let per_job = cap / 8 / align_sectors * align_sectors;
            // Cap the written volume at ~50% of capacity so write runs
            // never run the conventional baseline into device GC — the
            // paper reformats devices before each write trial precisely
            // to keep GC out of this figure.
            let half_blocks = per_job / 2 / block_sectors;
            (0..8u64)
                .map(|i| {
                    let region = (i * per_job, (i + 1) * per_job);
                    let blocks = per_job / block_sectors;
                    JobSpec::new(kind, Pattern::Sequential, block_sectors)
                        .region(region.0, region.1)
                        .ops(blocks.min(8192).min(half_blocks.max(1)))
                        .queue_depth(64)
                })
                .collect()
        }
        Micro::RandRead => {
            let span = cap / align_sectors * align_sectors;
            vec![JobSpec::new(OpKind::Read, Pattern::Random, block_sectors)
                .region(0, span)
                .ops(32_768)
                .queue_depth(256)]
        }
    };
    let mut engine = Engine::new(0xB5 ^ block_sectors).start_at(at);
    if let Some(tl) = timeline {
        engine = engine.timeline(tl);
    }
    if threads > 1 {
        Ok(engine.run_threaded(target, &jobs, threads)?)
    } else {
        Ok(engine.run(target, &jobs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zns::ZonedVolume;

    #[test]
    fn arrays_assemble() {
        let r = raizn_volume(8, 4096, 16).unwrap();
        assert_eq!(r.geometry().num_zones(), 5);
        let m = mdraid_volume(262_144, 16).unwrap();
        assert!(m.capacity_sectors() > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(bs_label(1), "4K");
        assert_eq!(bs_label(256), "1M");
    }

    #[test]
    fn timeline_run_isolated_from_global_recorder_until_finish() {
        let run = TimelineRun::new("unit_tlr");
        let v = run.raizn_volume(8, 4096, 16).unwrap();
        let data = vec![0u8; zns::SECTOR_SIZE as usize];
        let done = v
            .write(SimTime::ZERO, 0, &data, zns::WriteFlags::default())
            .unwrap()
            .done;
        assert!(run.recorder().next_seq() > 0, "run recorder saw spans");
        let global_before = recorder().next_seq();
        let dir = std::env::temp_dir();
        let path = run.write_to(&dir, done).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\": \"timeline\""));
        assert!(text.contains("\"gauge\": \"wp_sectors\""));
        let run_seq = run.recorder().next_seq();
        run.finish(done).unwrap();
        // finish() folded the run's aggregates into the global recorder.
        assert!(recorder().next_seq() >= global_before + run_seq);
        let _ = std::fs::remove_file(dir.join("BENCH_unit_tlr_timeline.json"));
        let _ = std::fs::remove_file("BENCH_unit_tlr_timeline.json");
    }

    #[test]
    fn harness_volumes_record_into_shared_recorder() {
        let before = recorder().next_seq();
        let v = raizn_volume(8, 4096, 16).unwrap();
        let data = vec![0u8; zns::SECTOR_SIZE as usize];
        v.write(SimTime::ZERO, 0, &data, zns::WriteFlags::default())
            .unwrap();
        assert!(
            recorder().next_seq() > before,
            "harness-built volume did not trace"
        );
        let json = recorder().breakdown_json("unit");
        assert!(json.contains("\"whole_op\""));
    }
}
