//! Shared harness for the sustained-overwrite GC-pressure experiment
//! (the `lsgc` binary and the schema suite).
//!
//! The experiment is the log-structured engine's headline scenario:
//! a skewed random-overwrite workload (most writes hammer a small hot
//! region) running long past the array's spare capacity. The
//! log-structured engine absorbs every overwrite as an append, lets the
//! hot groups rot to near-total garbage, and reclaims them with a
//! budgeted background collector running as a low-weight internal tenant
//! on the same QoS scheduler as the foreground — so its interference is
//! arbitrated, bounded, and visible in the span-blame artifact. The
//! mdraid-5 baseline on conventional SSDs takes the same op sequence
//! and declines as device-level FTL GC sets in.

use crate::lifecycle::{join, tenant_json, windows_json};
use crate::{BenchError, BenchResult, TimelineRun};
use lsraid::{GcManager, GcSink, LsStats};
use qos::{QosConfig, QosScheduler, TenantSnapshot, TenantSpec};
use sim::{SimRng, SimTime};
use std::sync::Arc;
use workloads::{Admission, IoTarget, SchedCompletion, SharedScheduler, TenantId};
use zns::{Lba, SECTOR_SIZE};

/// Physical zones per device. Many small stripe groups (rather than a
/// few huge ones) give the victim picker a fine-grained garbage
/// distribution to exploit, as in a real log-structured cleaner.
pub const ZONES: u32 = 128;
/// Physical zone capacity in sectors.
pub const ZONE_SECTORS: u64 = 2048;
/// Foreground block size in sectors (1 MiB, stripe-aligned on both
/// targets so neither pays read-modify-write on the measured path).
pub const BLOCK: u64 = 256;
/// The foreground application tenant index on the scheduler.
pub const APP_TENANT: TenantId = 0;
/// The internal GC tenant index on the scheduler.
pub const GC_TENANT: TenantId = 1;
/// Foreground ops between GC pumps: frequent, small-budget pumps spread
/// migration IO thinly instead of bursting it.
pub const PUMP_OPS: u64 = 1;

/// The collector policy for the experiment: only groups that have
/// rotted to mostly-garbage qualify (collecting earlier migrates data
/// that is about to die anyway — the classic eager-GC write-amp trap),
/// the force-pick watermark sits well above the engine's emergency
/// reserve, and each pump's budget bounds its interference burst.
pub fn gc_config() -> lsraid::GcConfig {
    lsraid::GcConfig {
        threshold: 0.5,
        low_water: 4,
        threshold_water: 8,
        high_water: 32,
        budget_sectors: 112,
    }
}
/// Fraction of the logical space that is hot, in percent.
pub const HOT_REGION_PCT: u64 = 5;
/// Fraction of overwrites that land in the hot region, in percent.
pub const HOT_WRITE_PCT: u64 = 95;
/// Size of the warm region (right after the hot region), in percent of
/// the logical space.
pub const WARM_REGION_PCT: u64 = 5;
/// Fraction of overwrites that land in the warm region, in percent.
/// The residual (100 - hot - warm) percent is uniform over the cold
/// remainder. The three-tier shape is deliberately Zipf-like: a
/// perfectly uniform cold tail is the degenerate worst case for any
/// garbage collector (every cold group rots at the same rate, so no
/// victim is ever better than the average), while real workloads give
/// the collector differential rot to exploit.
pub const WARM_WRITE_PCT: u64 = 4;
/// Measured overwrite ops (1 MiB each): ~25x turnover of the hot region,
/// several times the array's spare capacity.
pub const OVERWRITE_OPS: u64 = 4096;
/// Unmeasured aging ops before the measured phase: the overwrite
/// pattern runs with the collector live until the garbage distribution
/// (and thus the GC duty cycle) reaches steady state, so the measured
/// band reflects sustained operation rather than the post-prefill
/// transient. Standard preconditioning practice for GC benchmarks.
pub const AGE_OPS: u64 = 6 * OVERWRITE_OPS;
/// Write-amplification ceiling for the measured phase (gated).
pub const WAF_MAX: f64 = 1.5;

/// Builds the two-tenant scheduler both runs use: the foreground
/// application (weight 8) and the internal GC tenant (weight 1),
/// dispatched under [`obs::Actor::Gc`] so device stalls it causes are
/// blamed to the GC interference category.
///
/// # Errors
///
/// Propagates scheduler construction errors.
pub fn lsgc_scheduler(
    run: &TimelineRun,
    target: Arc<dyn IoTarget>,
) -> BenchResult<Arc<QosScheduler>> {
    let sched = Arc::new(
        QosScheduler::new(
            target,
            QosConfig {
                stripe_sectors: BLOCK,
                ..QosConfig::default()
            },
            vec![
                TenantSpec::new("app").weight(8),
                TenantSpec::new("gc").weight(1).actor(obs::Actor::Gc),
            ],
        )?
        .with_recorder(run.recorder()),
    );
    run.register(sched.clone());
    Ok(sched)
}

/// The deterministic skewed-overwrite offset sequence: each op picks a
/// [`BLOCK`]-aligned offset, [`HOT_WRITE_PCT`]% of them inside the first
/// [`HOT_REGION_PCT`]% of the space, [`WARM_WRITE_PCT`]% in the warm
/// region after it, the rest uniform over the cold remainder. Both
/// targets replay the identical sequence.
pub fn overwrite_offsets(total_blocks: u64, ops: u64, seed: u64) -> Vec<u64> {
    let hot_blocks = (total_blocks * HOT_REGION_PCT / 100).max(1);
    let warm_blocks = (total_blocks * WARM_REGION_PCT / 100).max(1);
    let cold_blocks = (total_blocks - hot_blocks - warm_blocks).max(1);
    let mut rng = SimRng::new(seed);
    (0..ops)
        .map(|_| {
            let r = rng.gen_range(100);
            let b = if r < HOT_WRITE_PCT {
                rng.gen_range(hot_blocks)
            } else if r < HOT_WRITE_PCT + WARM_WRITE_PCT {
                hot_blocks + rng.gen_range(warm_blocks)
            } else {
                hot_blocks + warm_blocks + rng.gen_range(cold_blocks)
            };
            b * BLOCK
        })
        .collect()
}

/// [`GcSink`] adapter submitting migration writes to a [`QosScheduler`]
/// as tenant [`GC_TENANT`], then draining the scheduler so each
/// migration is dispatched under mClock arbitration before the collector
/// proceeds. A shed migration is a harness bug (the sink drains the
/// queue after every submit), so it fails loudly.
pub struct QosGcSink<'a> {
    sched: &'a QosScheduler,
    completions: Vec<SchedCompletion>,
    next_tag: u64,
}

impl<'a> QosGcSink<'a> {
    /// Wraps `sched`; migration writes go to [`GC_TENANT`].
    pub fn new(sched: &'a QosScheduler) -> Self {
        QosGcSink {
            sched,
            completions: Vec::with_capacity(64),
            next_tag: 0,
        }
    }
}

impl GcSink for QosGcSink<'_> {
    fn migrate(&mut self, at: SimTime, lba: Lba, data: &[u8]) -> zns::Result<SimTime> {
        match self
            .sched
            .submit_write(GC_TENANT, self.next_tag, at, lba, data)?
        {
            Admission::Admitted(_) => {}
            Admission::Shed { reason, .. } => {
                return Err(zns::ZnsError::InvalidArgument(format!(
                    "gc migration write at lba {lba} shed ({reason:?})"
                )))
            }
        }
        self.next_tag += 1;
        self.completions.clear();
        while self.sched.step(&mut self.completions)? {}
        let mut done = at;
        for c in &self.completions {
            done = done.max(c.done);
        }
        Ok(done)
    }
}

/// Band-measurement window. Wider than [`crate::TIMELINE_WINDOW`] so the
/// min/max band ratio measures macro flatness rather than op-count
/// quantization noise (each op is [`BLOCK`] sectors; a 100 ms window
/// holds only ~20 ops, so a one-op boundary shift reads as a 5% swing).
pub const BAND_WINDOW: sim::SimDuration = sim::SimDuration::from_millis(300);

/// Drives `offsets` as [`BLOCK`]-sized writes through `sched` (tenant
/// [`APP_TENANT`]), pacing by completion and accounting data throughput
/// into [`BAND_WINDOW`] tumbling windows. With a collector, pumps it
/// every [`PUMP_OPS`] ops; the foreground clock does not wait for
/// migration completions — interference is modeled where it belongs, in
/// device occupancy and scheduler arbitration.
///
/// # Errors
///
/// Propagates scheduler/volume errors; fails the gate if any foreground
/// op is shed (the drive is paced, so its queue never backs up).
pub fn drive(
    run: &TimelineRun,
    sched: &QosScheduler,
    start: SimTime,
    offsets: &[u64],
    block: &[u8],
    mut gc: Option<(&mut GcManager, &mut QosGcSink)>,
) -> BenchResult<(Vec<f64>, SimTime)> {
    let window_ns = BAND_WINDOW.as_nanos();
    let sectors = block.len() as u64 / SECTOR_SIZE;
    let mut completions: Vec<SchedCompletion> = Vec::with_capacity(8);
    let mut windows: Vec<u64> = Vec::new();
    let mut now = start;
    for (i, &off) in offsets.iter().enumerate() {
        match sched.submit_write(APP_TENANT, i as u64, now, off, block)? {
            Admission::Admitted(_) => {}
            Admission::Shed { reason, .. } => {
                return Err(BenchError::Gate(format!(
                    "foreground write shed ({reason:?}) at op {i}"
                )))
            }
        }
        completions.clear();
        while sched.step(&mut completions)? {}
        for c in &completions {
            if c.tenant == APP_TENANT {
                now = now.max(c.done);
                // Windows are phase-relative so the first one is full,
                // not a partial that breaks the flat-band ratio.
                let w = (c.done.as_nanos().saturating_sub(start.as_nanos()) / window_ns) as usize;
                if windows.len() <= w {
                    windows.resize(w + 1, 0);
                }
                windows[w] += sectors;
            }
        }
        run.timeline().maybe_sample(now);
        if let Some((mgr, sink)) = gc.as_mut() {
            if (i as u64 + 1).is_multiple_of(PUMP_OPS) {
                mgr.pump(now, *sink)?;
            }
        }
    }
    let mib_per_window =
        |s: u64| s as f64 * SECTOR_SIZE as f64 / (1 << 20) as f64 / (window_ns as f64 / 1e9);
    Ok((windows.iter().map(|&s| mib_per_window(s)).collect(), now))
}

/// Outcome of the log-structured side of the experiment.
pub struct LsOutcome {
    /// Data throughput per tumbling window, MiB/s.
    pub windows_mib_s: Vec<f64>,
    /// Virtual end time of the measured phase.
    pub end: SimTime,
    /// Write amplification of the measured phase alone
    /// (`(user + migrated + pads) / user` over the phase's deltas).
    pub waf: f64,
    /// Engine counters at the end of the run (cumulative).
    pub stats: LsStats,
    /// Groups reclaimed during the measured phase.
    pub reclaims: u64,
    /// Emergency (inline, foreground-blocking) reclaims during the phase.
    pub emergency: u64,
    /// Sectors the collector migrated during the phase.
    pub migrated: u64,
    /// Scheduler tenant accounting (app, then gc).
    pub tenants: Vec<TenantSnapshot>,
}

/// Outcome of the mdraid-5 baseline side.
pub struct MdOutcome {
    /// Data throughput per tumbling window, MiB/s.
    pub windows_mib_s: Vec<f64>,
    /// Virtual end time of the measured phase.
    pub end: SimTime,
    /// Scheduler tenant accounting.
    pub tenants: Vec<TenantSnapshot>,
}

/// Marginal write amplification from a pair of stat snapshots.
pub fn phase_waf(pre: &LsStats, post: &LsStats) -> f64 {
    let user = post.user_sectors - pre.user_sectors;
    if user == 0 {
        return 1.0;
    }
    let migrated = post.migrated_sectors - pre.migrated_sectors;
    let pads = post.pad_sectors - pre.pad_sectors;
    (user + migrated + pads) as f64 / user as f64
}

/// Renders the `kind: "lsgc"` artifact (`BENCH_lsgc.json`) from the two
/// run outcomes and their precomputed band ratios. The schema suite
/// validates this emitter directly, so the artifact the `lsgc` binary
/// writes and the one the tests check cannot drift apart.
pub fn lsgc_json(ls: &LsOutcome, ls_flat: f64, md: &MdOutcome, md_cliff: f64) -> String {
    format!(
        "{{\n  \"kind\": \"lsgc\",\n  \"block_sectors\": {},\n  \"overwrite_ops\": {},\n  \
         \"hot_region_pct\": {},\n  \"hot_write_pct\": {},\n  \"lsraid\": {{\n    \
         \"windows_mib_s\": [{}],\n    \"flat_ratio\": {:.4},\n    \"waf\": {:.4},\n    \
         \"group_reclaims\": {},\n    \"emergency_reclaims\": {},\n    \
         \"migrated_sectors\": {},\n    \"pad_sectors\": {},\n    \"pp_log_writes\": 0,\n    \
         \"duration_ms\": {:.2},\n    \"tenants\": [{}]\n  }},\n  \"mdraid\": {{\n    \
         \"windows_mib_s\": [{}],\n    \"cliff_ratio\": {:.4},\n    \"duration_ms\": {:.2},\n    \
         \"tenants\": [{}]\n  }}\n}}\n",
        BLOCK,
        OVERWRITE_OPS,
        HOT_REGION_PCT,
        HOT_WRITE_PCT,
        windows_json(&ls.windows_mib_s),
        ls_flat,
        ls.waf,
        ls.reclaims,
        ls.emergency,
        ls.migrated,
        ls.stats.pad_sectors,
        ls.end.as_nanos() as f64 / 1e6,
        join(ls.tenants.iter().map(tenant_json)),
        windows_json(&md.windows_mib_s),
        md_cliff,
        md.end.as_nanos() as f64 / 1e6,
        join(md.tenants.iter().map(tenant_json)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_skewed_and_aligned() {
        let total_blocks = 3072u64;
        let hot = total_blocks * HOT_REGION_PCT / 100;
        let offs = overwrite_offsets(total_blocks, 2000, 7);
        assert_eq!(offs.len(), 2000);
        let hot_hits = offs.iter().filter(|&&o| o < hot * BLOCK).count();
        assert!(
            (hot_hits as f64 / 2000.0) > 0.8,
            "skew lost: {hot_hits}/2000 hot"
        );
        for &o in &offs {
            assert_eq!(o % BLOCK, 0, "unaligned offset {o}");
            assert!(o < total_blocks * BLOCK, "offset {o} out of range");
        }
        // Determinism pin.
        assert_eq!(offs, overwrite_offsets(total_blocks, 2000, 7));
    }
}
