//! Shared harness for the zone-lifecycle experiments (the `ziggurat`
//! binary and the lifecycle test batteries).
//!
//! The experiment models the open/active-zone-budget cliff: a zone-spray
//! workload fills logical zones to just under capacity and moves on,
//! accumulating active zones until the devices' active budget is
//! exhausted. Without management every new zone activation then pays a
//! foreground finish (fill writes over a victim's remainder) inline on
//! the write path — a reproducible throughput cliff. With a
//! [`ZoneLifecycleManager`] pumping in the background through the QoS
//! scheduler (as a low-priority internal tenant), near-full zones are
//! finished off the critical path and the band stays flat.

use crate::{BenchError, BenchResult, TimelineRun, ARRAY_DEVICES, TIMELINE_WINDOW};
use qos::{QosConfig, QosScheduler, TenantSnapshot, TenantSpec};
use raizn::{
    LifecycleConfig, LifecycleStats, MgmtSink, RaiznConfig, RaiznStats, RaiznVolume,
    ZoneLifecycleManager,
};
use sim::SimTime;
use std::sync::Arc;
use workloads::{Admission, SchedCompletion, SharedScheduler, TenantId, ZonedTarget};
use zns::{LatencyConfig, ZnsConfig, ZnsDevice, ZonedVolume, SECTOR_SIZE};

/// Physical zones per device and their capacity.
pub const ZONES: u32 = 64;
/// Physical zone capacity in sectors (16 MiB).
pub const ZONE_SECTORS: u64 = 4096;
/// Stripe unit in sectors (64 KiB, the paper's default).
pub const STRIPE_UNIT: u64 = 16;
/// Data sectors per logical stripe (4 data devices).
pub const STRIPE_DATA: u64 = STRIPE_UNIT * (ARRAY_DEVICES as u64 - 1);
/// Open/active zone budget per device. Two metadata zones stay active
/// throughout, so the data budget is `ACTIVE_LIMIT - 2`.
pub const OPEN_LIMIT: u32 = 6;
/// Active-zone budget per device (the binding constraint of the cliff).
pub const ACTIVE_LIMIT: u32 = 9;
/// Logical zones the spray workload touches.
pub const SPRAY_ZONES: u32 = 40;
/// Stripes written per sprayed zone: 220/256 ≈ 86% of the logical zone
/// capacity — past the manager's finish threshold (85%), while leaving a
/// remainder whose foreground fill cost is the cliff.
pub const STRIPES_PER_ZONE: u64 = 220;
/// Foreground ops between manager pumps. Frequent pumps with
/// [`manager_config`]'s one-finish-per-pump cap spread management IO
/// thinly instead of bursting it, which is what keeps the band flat.
pub const PUMP_OPS: u64 = 8;
/// Sprayed-zone age (in zones) at which the workload queues its reset.
pub const RESET_LAG: u32 = 30;
/// The foreground tenant index on the scheduler.
pub const FG_TENANT: TenantId = 0;
/// The internal management tenant index on the scheduler.
pub const MGMT_TENANT: TenantId = 1;

/// Device timing for the lifecycle experiments: ZN540-like, but with
/// 2 ways × 4 planes (8 die groups) so zone-affine background fills and
/// resets mostly run on other die groups than the zone being written —
/// on the single-die profile every background fill would serialize
/// against foreground IO and no amount of management could keep the
/// band flat.
pub fn lifecycle_latency() -> LatencyConfig {
    LatencyConfig {
        ways: 2,
        planes: 4,
        ..LatencyConfig::zns_ssd()
    }
}

/// Builds the experiment's device array wired into `run`.
pub fn lifecycle_devices(run: &TimelineRun) -> Vec<Arc<ZnsDevice>> {
    let rec = run.recorder();
    (0..ARRAY_DEVICES)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(ZONES, ZONE_SECTORS, ZONE_SECTORS)
                    .open_limits(OPEN_LIMIT, ACTIVE_LIMIT)
                    .latency(lifecycle_latency())
                    .store_data(false)
                    .build(),
            ));
            dev.set_recorder(rec.clone(), i as u32);
            run.register(dev.clone());
            dev
        })
        .collect()
}

/// Builds the experiment's RAIZN volume over [`lifecycle_devices`].
/// `reclaim` enables the foreground reclaim path (the cliff). Returns
/// the device handles too so callers can sample device-level gauges.
///
/// # Errors
///
/// Returns an error if the configuration is invalid.
pub fn lifecycle_volume(
    run: &TimelineRun,
    reclaim: bool,
) -> BenchResult<(Arc<RaiznVolume>, Vec<Arc<ZnsDevice>>)> {
    let devices = lifecycle_devices(run);
    let volume = Arc::new(RaiznVolume::format(
        devices.clone(),
        RaiznConfig {
            stripe_unit_sectors: STRIPE_UNIT,
            reclaim_on_exhaustion: reclaim,
            ..RaiznConfig::default()
        },
        SimTime::ZERO,
    )?);
    volume.set_recorder(run.recorder());
    run.register(volume.clone());
    Ok((volume, devices))
}

/// The manager policy used by the experiments (module docs explain the
/// interplay with [`STRIPES_PER_ZONE`]): at most one background finish
/// and a small reset batch per pump, so no single window absorbs a
/// burst of management IO.
pub fn manager_config() -> LifecycleConfig {
    LifecycleConfig {
        max_finishes_per_pump: 1,
        reset_batch: 2,
        ..LifecycleConfig::default()
    }
}

/// [`MgmtSink`] adapter submitting management IO to a [`QosScheduler`]
/// as tenant [`MGMT_TENANT`], then draining the scheduler so each pump's
/// management work is dispatched under mClock arbitration before the
/// next foreground op. A shed management op is a harness bug (the
/// internal tenant's queue is drained every pump), so it fails loudly.
pub struct QosMgmtSink<'a> {
    sched: &'a QosScheduler,
    completions: Vec<SchedCompletion>,
    next_tag: u64,
}

impl<'a> QosMgmtSink<'a> {
    /// Wraps `sched`; management ops go to [`MGMT_TENANT`].
    pub fn new(sched: &'a QosScheduler) -> Self {
        QosMgmtSink {
            sched,
            completions: Vec::with_capacity(64),
            next_tag: 0,
        }
    }
}

impl MgmtSink for QosMgmtSink<'_> {
    fn submit_mgmt(&mut self, at: SimTime, zone: u32, op: zns::ZoneMgmtOp) -> zns::Result<SimTime> {
        match self
            .sched
            .submit_mgmt(MGMT_TENANT, self.next_tag, at, zone, op)?
        {
            Admission::Admitted(_) => {}
            Admission::Shed { reason, .. } => {
                return Err(zns::ZnsError::InvalidArgument(format!(
                    "management {op} of zone {zone} shed ({reason:?})"
                )))
            }
        }
        self.next_tag += 1;
        self.completions.clear();
        while self.sched.step(&mut self.completions)? {}
        let mut done = at;
        for c in &self.completions {
            done = done.max(c.done);
        }
        Ok(done)
    }
}

/// Outcome of one spray run.
pub struct SprayOutcome {
    /// Data throughput per tumbling window, MiB/s (window =
    /// [`TIMELINE_WINDOW`]).
    pub windows_mib_s: Vec<f64>,
    /// Virtual end time of the run.
    pub end: SimTime,
    /// Highest per-device active-zone count observed at any sample.
    pub max_active_seen: u32,
    /// Volume counters at the end of the run.
    pub raizn: RaiznStats,
    /// Scheduler tenant accounting (foreground, then management).
    pub tenants: Vec<TenantSnapshot>,
    /// Manager counters (`None` on the unmanaged run).
    pub mgmt: Option<LifecycleStats>,
    /// Management share of device write traffic (fill padding fraction).
    pub mgmt_io_share: f64,
    /// `sched_mgmt_ops` counter: management ops dispatched by the
    /// scheduler.
    pub sched_mgmt_ops: u64,
}

/// Runs the zone-spray workload through `sched` (foreground tenant
/// [`FG_TENANT`]), pumping `manager` every [`PUMP_OPS`] ops when given.
/// All IO — foreground writes and background management — dispatches
/// through the scheduler, so the artifact's tenant accounting covers the
/// whole experiment.
///
/// # Errors
///
/// Propagates scheduler/volume errors; fails the gate if any foreground
/// op is shed (the spray is paced by completions, so its queue never
/// backs up).
pub fn spray(
    run: &TimelineRun,
    volume: &Arc<RaiznVolume>,
    devices: &[Arc<ZnsDevice>],
    sched: &QosScheduler,
    manager: Option<&ZoneLifecycleManager>,
) -> BenchResult<SprayOutcome> {
    let zone_cap = volume.geometry().zone_cap();
    let window_ns = TIMELINE_WINDOW.as_nanos();
    let block = vec![0x5Au8; (STRIPE_DATA * SECTOR_SIZE) as usize];
    let mut sink = manager.map(|_| QosMgmtSink::new(sched));
    let mut completions: Vec<SchedCompletion> = Vec::with_capacity(8);
    let mut windows: Vec<u64> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut ops = 0u64;
    let mut max_active = 0u32;

    let sample_active = |max_active: &mut u32| {
        for dev in devices {
            *max_active = (*max_active).max(dev.active_zones());
        }
    };

    for zone in 0..SPRAY_ZONES {
        for stripe in 0..STRIPES_PER_ZONE {
            let off = zone as u64 * zone_cap + stripe * STRIPE_DATA;
            match sched.submit_write(FG_TENANT, ops, now, off, &block)? {
                Admission::Admitted(_) => {}
                Admission::Shed { reason, .. } => {
                    return Err(BenchError::Gate(format!(
                        "foreground write shed ({reason:?}) at zone {zone} stripe {stripe}"
                    )))
                }
            }
            completions.clear();
            while sched.step(&mut completions)? {}
            for c in &completions {
                if c.tenant == FG_TENANT {
                    now = now.max(c.done);
                    let w = (c.done.as_nanos() / window_ns) as usize;
                    if windows.len() <= w {
                        windows.resize(w + 1, 0);
                    }
                    windows[w] += STRIPE_DATA;
                }
            }
            ops += 1;
            run.timeline().maybe_sample(now);
            if ops.is_multiple_of(PUMP_OPS) {
                sample_active(&mut max_active);
                if let (Some(mgr), Some(sink)) = (manager, sink.as_mut()) {
                    // Background work: the foreground clock does not wait
                    // for the management completion time — interference
                    // is modeled where it belongs, in device occupancy
                    // (fills collide with writes on shared die groups).
                    mgr.pump_with(now, sink)?;
                }
            }
        }
        if let Some(mgr) = manager {
            if zone >= RESET_LAG {
                mgr.request_reset(zone - RESET_LAG);
            }
        }
    }
    sample_active(&mut max_active);

    let mib_per_window = |sectors: u64| {
        sectors as f64 * SECTOR_SIZE as f64 / (1 << 20) as f64 / (window_ns as f64 / 1e9)
    };
    Ok(SprayOutcome {
        windows_mib_s: windows.iter().map(|&s| mib_per_window(s)).collect(),
        end: now,
        max_active_seen: max_active,
        raizn: volume.stats(),
        tenants: sched.stats(),
        mgmt: manager.map(|m| m.stats()),
        mgmt_io_share: manager.map(|m| m.mgmt_io_share()).unwrap_or(0.0),
        sched_mgmt_ops: run.recorder().count(obs::Counter::SchedMgmtOps),
    })
}

/// The scheduler used by both runs: a foreground tenant and the
/// low-priority internal management tenant (weight 8:1).
///
/// # Errors
///
/// Propagates scheduler construction errors.
pub fn lifecycle_scheduler(
    run: &TimelineRun,
    volume: Arc<RaiznVolume>,
) -> BenchResult<Arc<QosScheduler>> {
    let sched = Arc::new(
        QosScheduler::new(
            Arc::new(ZonedTarget::new(volume)),
            QosConfig {
                stripe_sectors: STRIPE_DATA,
                ..QosConfig::default()
            },
            vec![
                TenantSpec::new("fg").weight(8),
                TenantSpec::new("mgmt").weight(1),
            ],
        )?
        .with_recorder(run.recorder()),
    );
    run.register(sched.clone());
    Ok(sched)
}

/// Active analysis windows: leading/trailing zeros trimmed and the final
/// (typically partial) window dropped when at least two remain.
pub fn active_windows(windows: &[f64]) -> &[f64] {
    let Some(first) = windows.iter().position(|&w| w > 0.0) else {
        return &[];
    };
    let last = windows.iter().rposition(|&w| w > 0.0).unwrap_or(first);
    let end = if last > first { last } else { last + 1 };
    &windows[first..end]
}

/// Cliff ratio: post-peak trough over the early peak (best window of the
/// first quarter), like `report`'s decline check. `None` with too few
/// windows.
pub fn cliff_ratio(windows: &[f64]) -> Option<f64> {
    let active = active_windows(windows);
    let head = active.len().div_ceil(4);
    let (peak_at, peak) = active[..head]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    let trough = active[peak_at + 1..]
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    (trough.is_finite() && *peak > 0.0).then(|| trough / peak)
}

/// Flat ratio: min/max over the active windows. `None` when empty.
pub fn flat_ratio(windows: &[f64]) -> Option<f64> {
    let active = active_windows(windows);
    let min = active.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = active.iter().cloned().fold(0.0f64, f64::max);
    (max > 0.0).then(|| min / max)
}

pub(crate) fn tenant_json(t: &TenantSnapshot) -> String {
    format!(
        "{{\"name\": \"{}\", \"admitted\": {}, \"completed\": {}, \"shed\": {}, \
         \"deferred\": {}, \"batches\": {}, \"merged\": {}, \"bytes\": {}}}",
        t.name, t.admitted, t.completed, t.shed, t.deferred, t.batches, t.merged, t.bytes
    )
}

pub(crate) fn join(parts: impl IntoIterator<Item = String>) -> String {
    parts.into_iter().collect::<Vec<_>>().join(", ")
}

pub(crate) fn windows_json(w: &[f64]) -> String {
    join(w.iter().map(|v| format!("{v:.2}")))
}

/// Renders the `kind: "lifecycle"` artifact (`BENCH_ziggurat.json`)
/// from the two spray outcomes and their precomputed band ratios. The
/// schema suite validates this emitter directly, so the artifact the
/// `ziggurat` binary writes and the one the tests check cannot drift
/// apart.
pub fn lifecycle_json(
    nomgr: &SprayOutcome,
    nomgr_cliff: f64,
    mgr: &SprayOutcome,
    mgr_flat: f64,
) -> String {
    let stats = mgr.mgmt.unwrap_or_default();
    format!(
        "{{\n  \"kind\": \"lifecycle\",\n  \"active_limit\": {},\n  \"spray_zones\": {},\n  \
         \"stripes_per_zone\": {},\n  \"reset_lag\": {},\n  \"nomgr\": {{\n    \
         \"windows_mib_s\": [{}],\n    \"cliff_ratio\": {:.4},\n    \
         \"foreground_reclaims\": {},\n    \"zone_finishes\": {},\n    \
         \"max_active_seen\": {},\n    \"duration_ms\": {:.2},\n    \"tenants\": [{}]\n  }},\n  \
         \"mgr\": {{\n    \"windows_mib_s\": [{}],\n    \"flat_ratio\": {:.4},\n    \
         \"foreground_reclaims\": {},\n    \"max_active_seen\": {},\n    \
         \"mgmt_finishes\": {},\n    \"mgmt_resets\": {},\n    \"mgmt_pre_opens\": {},\n    \
         \"mgmt_pumps\": {},\n    \"mgmt_io_share\": {:.4},\n    \"sched_mgmt_ops\": {},\n    \
         \"duration_ms\": {:.2},\n    \"tenants\": [{}]\n  }}\n}}\n",
        ACTIVE_LIMIT,
        SPRAY_ZONES,
        STRIPES_PER_ZONE,
        RESET_LAG,
        windows_json(&nomgr.windows_mib_s),
        nomgr_cliff,
        nomgr.raizn.foreground_reclaims,
        nomgr.raizn.zone_finishes,
        nomgr.max_active_seen,
        nomgr.end.as_nanos() as f64 / 1e6,
        join(nomgr.tenants.iter().map(tenant_json)),
        windows_json(&mgr.windows_mib_s),
        mgr_flat,
        mgr.raizn.foreground_reclaims,
        mgr.max_active_seen,
        stats.finishes,
        stats.resets,
        stats.pre_opens,
        stats.pumps,
        mgr.mgmt_io_share,
        mgr.sched_mgmt_ops,
        mgr.end.as_nanos() as f64 / 1e6,
        join(mgr.tenants.iter().map(tenant_json)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_helpers() {
        // Cliff: peak 100 early, trough 60 later.
        let w = [0.0, 100.0, 95.0, 60.0, 62.0, 61.0, 0.0];
        let cliff = cliff_ratio(&w).unwrap();
        assert!((cliff - 0.6).abs() < 1e-9, "cliff {cliff}");
        // Flat band.
        let w = [0.0, 95.0, 100.0, 96.0, 97.0, 0.0];
        let flat = flat_ratio(&w).unwrap();
        assert!(flat >= 0.95, "flat {flat}");
        assert!(cliff_ratio(&[]).is_none());
        assert!(flat_ratio(&[0.0]).is_none());
        // The trailing partial window is excluded from the band.
        let w = [100.0, 100.0, 12.0];
        assert!(flat_ratio(&w).unwrap() > 0.99);
    }

    #[test]
    fn spray_geometry_is_consistent() {
        // The spray must cross the manager's finish threshold but stay
        // short of full, or the experiment degenerates.
        let cap = ZONE_SECTORS * (ARRAY_DEVICES as u64 - 1);
        let sprayed = STRIPES_PER_ZONE * STRIPE_DATA;
        let threshold = cap * manager_config().finish_fill_permille as u64 / 1000;
        assert!(sprayed >= threshold, "spray below finish threshold");
        assert!(sprayed < cap, "spray must not fill the zone");
        const { assert!(SPRAY_ZONES < ZONES - 4, "spray exceeds device zones") };
    }
}
