//! A minimal JSON parser for benchmark artifacts.
//!
//! The workspace deliberately carries no serialization dependency; the
//! exporters in `obs` hand-format their JSON, and this module is the
//! matching reader used by the `report` binary and the artifact
//! schema-validation tests. It implements the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) with byte
//! offsets in error messages; numbers are parsed as `f64`, which is exact
//! for every count the exporters emit below 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integer or float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "{s:?}"),
            Json::Arr(v) => write!(f, "[{} items]", v.len()),
            Json::Obj(m) => write!(f, "{{{} keys}}", m.len()),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y", "d": null}, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn round_trips_exporter_output() {
        let rec = obs::Recorder::new(16, 1);
        rec.enable_windows(sim::SimDuration::from_millis(10), 8);
        rec.record(obs::TraceEvent {
            seq: 0,
            op: obs::OpClass::Write,
            stage: obs::Stage::WholeOp,
            path: None,
            device: obs::NONE,
            zone: obs::NONE,
            lba: 0,
            sectors: 8,
            start: sim::SimTime::ZERO,
            end: sim::SimTime::from_micros(50),
            outcome: obs::Outcome::Success,
            span: 0,
            parent: 0,
            blame: obs::Actor::None,
        });
        let breakdown = Json::parse(&rec.breakdown_json("x")).unwrap();
        assert!(breakdown.get("stages").unwrap().get("whole_op").is_some());
        let timeline = Json::parse(&obs::timeline_json("x", &rec, None, 4096)).unwrap();
        assert_eq!(timeline.get("kind").unwrap().as_str(), Some("timeline"));
        assert!(!timeline
            .get("windows")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }
}
