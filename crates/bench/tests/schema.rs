//! Artifact schema validation.
//!
//! Runs a small timeline-enabled smoke benchmark for each array flavour,
//! writes the artifacts it emits into a scratch directory, then parses
//! every `BENCH_*_breakdown.json` / `BENCH_*_timeline.json` /
//! `BENCH_*_spans.json` found there and asserts the documented schema
//! (DESIGN.md "Observability"): required keys, per-stage digest fields,
//! strictly monotone window indices and start timestamps, monotone gauge
//! sample times, and span blame tables that partition exactly.

use bench::json::Json;
use bench::lifecycle::{lifecycle_json, SprayOutcome};
use bench::lsgc::{lsgc_json, LsOutcome, MdOutcome};
use bench::TimelineRun;
use lsraid::{LsConfig, LsStats};
use qos::TenantSnapshot;
use raizn::{LifecycleStats, RaiznStats};
use sim::SimTime;
use std::path::{Path, PathBuf};
use workloads::{BlockTarget, JobSpec, OpKind, Pattern, ZonedTarget};

const STAGES: [&str; 9] = [
    "device_io",
    "xor",
    "meta_append",
    "flush",
    "queue_wait",
    "service",
    "whole_op",
    "device_wait",
    "lock_wait",
];

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("raizn_schema_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Emits one RAIZN, one lsraid and one mdraid timeline (covering the
/// zns/raizn, lsraid and ftl/mdraid gauge sources) plus a breakdown
/// into `dir`.
fn emit_artifacts(dir: &Path) {
    let rz = TimelineRun::new("schema_rz");
    let vol = rz.raizn_volume(8, 4096, 16).expect("raizn volume");
    let target = ZonedTarget::new(vol);
    let job = JobSpec::new(OpKind::Write, Pattern::Sequential, 16)
        .ops(512)
        .queue_depth(8);
    let rep = rz
        .engine(7)
        .run(&target, std::slice::from_ref(&job))
        .expect("run");
    rz.write_to(dir, rep.end).expect("write raizn timeline");

    let lsr = TimelineRun::new("schema_ls");
    let vol = lsr
        .lsraid_volume(8, 4096, LsConfig::default())
        .expect("lsraid volume");
    let target = ZonedTarget::overwriting(vol);
    let rep = lsr
        .engine(9)
        .run(&target, std::slice::from_ref(&job))
        .expect("run");
    lsr.write_to(dir, rep.end).expect("write lsraid timeline");

    let md = TimelineRun::new("schema_md");
    let vol = md.mdraid_volume(65_536, 16).expect("mdraid volume");
    let target = BlockTarget::new(vol);
    let rep = md.engine(8).run(&target, &[job]).expect("run");
    md.write_to(dir, rep.end).expect("write mdraid timeline");

    bench::write_breakdown_to("schema", dir).expect("write breakdown");
    // `write_to` scopes the timeline artifact to `dir` but (unlike
    // `finish`) does not fold the sub-run recorders into the shared one,
    // so absorb them here and the spans artifact covers both smoke runs.
    bench::recorder().absorb(&rz.recorder());
    bench::recorder().absorb(&lsr.recorder());
    bench::recorder().absorb(&md.recorder());
    bench::write_spans_to("schema", &bench::recorder(), dir).expect("write spans");
}

fn parse(path: &Path) -> Json {
    let text = std::fs::read_to_string(path).expect("read artifact");
    Json::parse(&text).unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()))
}

fn u64_field(v: &Json, key: &str, ctx: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{ctx}: missing or non-integer {key:?}"))
}

fn check_stage_digest(stages: &Json, with_sectors: bool, ctx: &str) {
    for stage in STAGES {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("{ctx}: missing stage {stage:?}"));
        let sctx = format!("{ctx} stage {stage}");
        u64_field(s, "count", &sctx);
        u64_field(s, "p50_ns", &sctx);
        u64_field(s, "p99_ns", &sctx);
        u64_field(s, "max_ns", &sctx);
        if with_sectors {
            u64_field(s, "sectors", &sctx);
            u64_field(s, "p95_ns", &sctx);
        }
    }
}

fn check_timeline(path: &Path) {
    let doc = parse(path);
    let ctx = path.display().to_string();
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("timeline"),
        "{ctx}: kind"
    );
    assert!(
        doc.get("name").and_then(Json::as_str).is_some(),
        "{ctx}: name"
    );
    let window_ns = u64_field(&doc, "window_ns", &ctx);
    assert!(window_ns > 0, "{ctx}: window_ns must be positive");
    u64_field(&doc, "events_recorded", &ctx);
    u64_field(&doc, "late_events", &ctx);
    u64_field(&doc, "windows_dropped", &ctx);

    let whole = doc
        .get("whole_run")
        .and_then(|w| w.get("stages"))
        .unwrap_or_else(|| panic!("{ctx}: missing whole_run.stages"));
    check_stage_digest(whole, false, &ctx);

    let windows = doc
        .get("windows")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{ctx}: missing windows array"));
    assert!(!windows.is_empty(), "{ctx}: smoke run produced no windows");
    let mut prev: Option<(u64, u64)> = None;
    for w in windows {
        let index = u64_field(w, "index", &ctx);
        let start = u64_field(w, "start_ns", &ctx);
        assert_eq!(
            start,
            index * window_ns,
            "{ctx}: window {index} start_ns disagrees with index * window_ns"
        );
        w.get("throughput_mib_s")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{ctx}: window {index} missing throughput_mib_s"));
        u64_field(w, "errors", &ctx);
        let stages = w
            .get("stages")
            .unwrap_or_else(|| panic!("{ctx}: window {index} missing stages"));
        check_stage_digest(stages, true, &format!("{ctx} window {index}"));
        if let Some((pi, ps)) = prev {
            assert!(index > pi, "{ctx}: window indices not strictly increasing");
            assert!(start > ps, "{ctx}: window start_ns not strictly increasing");
        }
        prev = Some((index, start));
    }

    let gauges = doc
        .get("gauges")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{ctx}: missing gauges array"));
    assert!(
        !gauges.is_empty(),
        "{ctx}: smoke run produced no gauge series"
    );
    for g in gauges {
        let source = g
            .get("source")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{ctx}: gauge missing source"));
        let name = g
            .get("gauge")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{ctx}: gauge missing name"));
        let gctx = format!("{ctx} gauge {source}.{name}");
        let points = g
            .get("points")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{gctx}: missing points"));
        let mut prev_t = None;
        for p in points {
            let pair = p
                .as_arr()
                .unwrap_or_else(|| panic!("{gctx}: point not a pair"));
            assert_eq!(pair.len(), 2, "{gctx}: point not a [t, v] pair");
            let t = pair[0]
                .as_u64()
                .unwrap_or_else(|| panic!("{gctx}: non-integer sample time"));
            pair[1]
                .as_f64()
                .unwrap_or_else(|| panic!("{gctx}: non-numeric sample value"));
            if let Some(pt) = prev_t {
                assert!(t >= pt, "{gctx}: sample times not monotone");
            }
            prev_t = Some(t);
        }
    }
}

fn check_breakdown(path: &Path) {
    let doc = parse(path);
    let ctx = path.display().to_string();
    assert!(
        doc.get("name").and_then(Json::as_str).is_some(),
        "{ctx}: name"
    );
    u64_field(&doc, "events_recorded", &ctx);
    u64_field(&doc, "events_dropped", &ctx);
    let stages = doc
        .get("stages")
        .unwrap_or_else(|| panic!("{ctx}: missing stages"));
    for stage in STAGES {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("{ctx}: missing stage {stage:?}"));
        let sctx = format!("{ctx} stage {stage}");
        u64_field(s, "count", &sctx);
        u64_field(s, "p50_ns", &sctx);
        u64_field(s, "p99_ns", &sctx);
        u64_field(s, "mean_ns", &sctx);
        u64_field(s, "max_ns", &sctx);
    }
    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| panic!("{ctx}: missing counters"));
    for (name, v) in counters {
        assert!(
            v.as_u64().is_some(),
            "{ctx}: counter {name:?} is not a non-negative integer"
        );
    }
}

/// Asserts a `segments` object carries every blame category as
/// `<name>_ns` and returns their sum.
fn check_segments(v: &Json, ctx: &str) -> u64 {
    let seg = v
        .get("segments")
        .unwrap_or_else(|| panic!("{ctx}: missing segments"));
    obs::BLAME_CATEGORIES
        .iter()
        .map(|name| u64_field(seg, &format!("{name}_ns"), ctx))
        .sum()
}

/// Validates the `kind: "spans"` document (`BENCH_*_spans.json`): the
/// tail-sampling counters, a blame table whose exclusive segments
/// partition each row's total exactly, slow-op trees whose events carry
/// intervals inside the root's, and a Perfetto-loadable `traceEvents`
/// array of complete-phase slices.
fn check_spans(path: &Path) {
    let doc = parse(path);
    let ctx = path.display().to_string();
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("spans"),
        "{ctx}: kind"
    );
    assert!(
        doc.get("name").and_then(Json::as_str).is_some(),
        "{ctx}: name"
    );
    u64_field(&doc, "threshold_ns", &ctx);
    assert!(
        u64_field(&doc, "roots", &ctx) > 0,
        "{ctx}: smoke run closed no span roots"
    );
    u64_field(&doc, "orphan_events", &ctx);
    u64_field(&doc, "truncated_events", &ctx);

    let blame = doc
        .get("blame")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{ctx}: missing blame array"));
    assert!(!blame.is_empty(), "{ctx}: empty blame table");
    for row in blame {
        let tenant = row
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{ctx}: blame row missing tenant"));
        let rctx = format!("{ctx} tenant {tenant}");
        assert!(u64_field(row, "count", &rctx) > 0, "{rctx}: empty row");
        let total = u64_field(row, "total_ns", &rctx);
        assert_eq!(
            check_segments(row, &rctx),
            total,
            "{rctx}: segments do not partition total_ns"
        );
    }

    let slow = doc
        .get("slow_ops")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{ctx}: missing slow_ops array"));
    for op in slow {
        let octx = format!("{ctx} slow op");
        let latency = u64_field(op, "latency_ns", &octx);
        let (start, end) = (
            u64_field(op, "start_ns", &octx),
            u64_field(op, "end_ns", &octx),
        );
        assert_eq!(end - start, latency, "{octx}: latency != end - start");
        assert_eq!(
            check_segments(op, &octx),
            latency,
            "{octx}: segments do not partition the latency"
        );
        u64_field(op, "truncated_events", &octx);
        assert!(
            op.get("op").and_then(Json::as_str).is_some(),
            "{octx}: missing op"
        );
        let events = op
            .get("events")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{octx}: missing events"));
        assert!(!events.is_empty(), "{octx}: captured tree is empty");
        for ev in events {
            let (es, ee) = (
                u64_field(ev, "start_ns", &octx),
                u64_field(ev, "end_ns", &octx),
            );
            assert!(
                es >= start && ee <= end && es <= ee,
                "{octx}: event [{es}, {ee}] escapes the root [{start}, {end}]"
            );
            assert!(
                ev.get("stage").and_then(Json::as_str).is_some(),
                "{octx}: event missing stage"
            );
        }
    }

    let trace = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{ctx}: missing traceEvents array"));
    for ev in trace {
        let tctx = format!("{ctx} traceEvent");
        assert_eq!(
            ev.get("ph").and_then(Json::as_str),
            Some("X"),
            "{tctx}: ph must be a complete-phase slice"
        );
        for key in ["name", "cat"] {
            assert!(
                ev.get(key).and_then(Json::as_str).is_some(),
                "{tctx}: missing {key}"
            );
        }
        for key in ["pid", "tid", "ts", "dur"] {
            assert!(
                ev.get(key).and_then(Json::as_f64).is_some(),
                "{tctx}: missing numeric {key}"
            );
        }
    }
}

fn f64_field(v: &Json, key: &str, ctx: &str) -> f64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{ctx}: missing or non-numeric {key:?}"))
}

fn check_tenants(run: &Json, ctx: &str) {
    let tenants = run
        .get("tenants")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{ctx}: missing tenants array"));
    assert_eq!(tenants.len(), 2, "{ctx}: expected fg + mgmt tenants");
    for t in tenants {
        let name = t
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{ctx}: tenant missing name"));
        let tctx = format!("{ctx} tenant {name}");
        for key in [
            "admitted",
            "completed",
            "shed",
            "deferred",
            "batches",
            "merged",
            "bytes",
        ] {
            u64_field(t, key, &tctx);
        }
    }
}

/// Validates the `kind: "lifecycle"` document the `ziggurat` binary
/// writes as `BENCH_ziggurat.json` (DESIGN.md "Observability"): run
/// geometry, both runs' window series and band ratios, the unmanaged
/// run's reclaim counters, the managed run's management counters, and
/// per-run scheduler tenant accounting.
fn check_lifecycle(doc: &Json, ctx: &str) {
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("lifecycle"),
        "{ctx}: kind"
    );
    for key in [
        "active_limit",
        "spray_zones",
        "stripes_per_zone",
        "reset_lag",
    ] {
        assert!(
            u64_field(doc, key, ctx) > 0,
            "{ctx}: {key} must be positive"
        );
    }
    for (run_key, ratio_key) in [("nomgr", "cliff_ratio"), ("mgr", "flat_ratio")] {
        let run = doc
            .get(run_key)
            .unwrap_or_else(|| panic!("{ctx}: missing run {run_key:?}"));
        let rctx = format!("{ctx} run {run_key}");
        let windows = run
            .get("windows_mib_s")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{rctx}: missing windows_mib_s"));
        assert!(!windows.is_empty(), "{rctx}: empty window series");
        for w in windows {
            assert!(
                w.as_f64().is_some_and(|v| v >= 0.0),
                "{rctx}: window not a non-negative number"
            );
        }
        let ratio = f64_field(run, ratio_key, &rctx);
        assert!(
            (0.0..=1.0).contains(&ratio),
            "{rctx}: {ratio_key} {ratio} outside [0, 1]"
        );
        u64_field(run, "foreground_reclaims", &rctx);
        u64_field(run, "max_active_seen", &rctx);
        assert!(
            f64_field(run, "duration_ms", &rctx) >= 0.0,
            "{rctx}: negative duration"
        );
        check_tenants(run, &rctx);
    }
    let nomgr = doc.get("nomgr").unwrap();
    u64_field(nomgr, "zone_finishes", &format!("{ctx} run nomgr"));
    let mgr = doc.get("mgr").unwrap();
    let mctx = format!("{ctx} run mgr");
    for key in [
        "mgmt_finishes",
        "mgmt_resets",
        "mgmt_pre_opens",
        "mgmt_pumps",
        "sched_mgmt_ops",
    ] {
        u64_field(mgr, key, &mctx);
    }
    let share = f64_field(mgr, "mgmt_io_share", &mctx);
    assert!(
        (0.0..=1.0).contains(&share),
        "{mctx}: mgmt_io_share {share} outside [0, 1]"
    );
}

fn tenant(name: &str, completed: u64) -> TenantSnapshot {
    TenantSnapshot {
        name: name.into(),
        admitted: completed,
        completed,
        shed: 0,
        deferred: 0,
        batches: completed,
        merged: 0,
        bytes: completed * 4096,
    }
}

/// Validates the `kind: "lsgc"` document the `lsgc` binary writes as
/// `BENCH_lsgc.json`: workload geometry, the log-structured run's
/// window series / band ratio / WAF / GC counters (pp-log writes pinned
/// to zero), the mdraid baseline's series and cliff ratio, and both
/// runs' scheduler tenant accounting.
fn check_lsgc(doc: &Json, ctx: &str) {
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("lsgc"),
        "{ctx}: kind"
    );
    for key in [
        "block_sectors",
        "overwrite_ops",
        "hot_region_pct",
        "hot_write_pct",
    ] {
        assert!(
            u64_field(doc, key, ctx) > 0,
            "{ctx}: {key} must be positive"
        );
    }
    let windows = |run: &Json, rctx: &str| {
        let w = run
            .get("windows_mib_s")
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{rctx}: missing windows_mib_s"));
        assert!(!w.is_empty(), "{rctx}: empty window series");
        for v in w {
            assert!(
                v.as_f64().is_some_and(|v| v >= 0.0),
                "{rctx}: window not a non-negative number"
            );
        }
    };
    let ls = doc
        .get("lsraid")
        .unwrap_or_else(|| panic!("{ctx}: missing lsraid run"));
    let lctx = format!("{ctx} run lsraid");
    windows(ls, &lctx);
    let flat = f64_field(ls, "flat_ratio", &lctx);
    assert!(
        (0.0..=1.0).contains(&flat),
        "{lctx}: flat_ratio {flat} outside [0, 1]"
    );
    assert!(
        f64_field(ls, "waf", &lctx) >= 1.0,
        "{lctx}: waf below 1.0 is not physical"
    );
    for key in [
        "group_reclaims",
        "emergency_reclaims",
        "migrated_sectors",
        "pad_sectors",
    ] {
        u64_field(ls, key, &lctx);
    }
    assert_eq!(
        u64_field(ls, "pp_log_writes", &lctx),
        0,
        "{lctx}: the log-structured engine has no partial-parity log"
    );
    assert!(
        f64_field(ls, "duration_ms", &lctx) >= 0.0,
        "{lctx}: negative duration"
    );
    check_tenants(ls, &lctx);
    let md = doc
        .get("mdraid")
        .unwrap_or_else(|| panic!("{ctx}: missing mdraid run"));
    let mctx = format!("{ctx} run mdraid");
    windows(md, &mctx);
    let cliff = f64_field(md, "cliff_ratio", &mctx);
    assert!(
        (0.0..=1.0).contains(&cliff),
        "{mctx}: cliff_ratio {cliff} outside [0, 1]"
    );
    assert!(
        f64_field(md, "duration_ms", &mctx) >= 0.0,
        "{mctx}: negative duration"
    );
    check_tenants(md, &mctx);
}

#[test]
fn lsgc_artifact_conforms_to_schema() {
    // Drive the production emitter (the exact code path behind
    // `BENCH_lsgc.json`) with representative outcomes and validate the
    // document it renders.
    let ls = LsOutcome {
        windows_mib_s: vec![230.0, 240.0, 230.0, 220.0],
        end: SimTime::from_nanos(2_000_000_000),
        waf: 1.39,
        stats: LsStats {
            user_sectors: 1_048_576,
            migrated_sectors: 408_604,
            pad_sectors: 512,
            parity_sectors: 262_144,
            group_reclaims: 176,
            emergency_reclaims: 0,
            groups_opened: 180,
            meta_records: 500,
            meta_rotations: 2,
        },
        reclaims: 176,
        emergency: 0,
        migrated: 408_604,
        tenants: vec![tenant("app", 4096), tenant("gc", 1600)],
    };
    let md = MdOutcome {
        windows_mib_s: vec![2300.0, 1900.0, 1400.0, 1400.0],
        end: SimTime::from_nanos(1_000_000_000),
        tenants: vec![tenant("app", 4096), tenant("gc", 0)],
    };
    let json = lsgc_json(&ls, 0.90, &md, 0.62);
    let doc = Json::parse(&json).expect("lsgc artifact is valid JSON");
    check_lsgc(&doc, "lsgc_json");
}

#[test]
fn lifecycle_artifact_conforms_to_schema() {
    // Drive the production emitter (the exact code path behind
    // `BENCH_ziggurat.json`) with representative outcomes and validate
    // the document it renders.
    let nomgr = SprayOutcome {
        windows_mib_s: vec![1800.0, 1810.0, 1100.0, 1090.0],
        end: SimTime::from_nanos(1_500_000_000),
        max_active_seen: 9,
        raizn: RaiznStats {
            foreground_reclaims: 32,
            zone_finishes: 32,
            ..RaiznStats::default()
        },
        tenants: vec![tenant("fg", 8800), tenant("mgmt", 0)],
        mgmt: None,
        mgmt_io_share: 0.0,
        sched_mgmt_ops: 0,
    };
    let mgr = SprayOutcome {
        windows_mib_s: vec![1800.0, 1810.0, 1805.0, 1795.0],
        end: SimTime::from_nanos(1_200_000_000),
        max_active_seen: 4,
        raizn: RaiznStats::default(),
        tenants: vec![tenant("fg", 8800), tenant("mgmt", 80)],
        mgmt: Some(LifecycleStats {
            finishes: 39,
            resets: 8,
            pre_opens: 33,
            pumps: 1100,
        }),
        mgmt_io_share: 0.14,
        sched_mgmt_ops: 80,
    };
    let json = lifecycle_json(&nomgr, 0.6, &mgr, 0.99);
    let doc = Json::parse(&json).expect("lifecycle artifact is valid JSON");
    check_lifecycle(&doc, "lifecycle_json");
}

#[test]
fn emitted_artifacts_conform_to_schema() {
    let dir = scratch_dir();
    emit_artifacts(&dir);

    let mut timelines = 0;
    let mut breakdowns = 0;
    let mut spans = 0;
    for entry in std::fs::read_dir(&dir).expect("read scratch dir") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("BENCH_") && name.ends_with("_timeline.json") {
            check_timeline(&path);
            timelines += 1;
        } else if name.starts_with("BENCH_") && name.ends_with("_breakdown.json") {
            check_breakdown(&path);
            breakdowns += 1;
        } else if name.starts_with("BENCH_") && name.ends_with("_spans.json") {
            check_spans(&path);
            spans += 1;
        }
    }
    assert_eq!(
        timelines, 3,
        "expected raizn + lsraid + mdraid timeline artifacts"
    );
    assert_eq!(breakdowns, 1, "expected one breakdown artifact");
    assert_eq!(spans, 1, "expected one spans artifact");

    let _ = std::fs::remove_dir_all(&dir);
}
