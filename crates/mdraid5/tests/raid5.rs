//! Integration tests for the md-style RAID-5 baseline: parity
//! consistency under single-device failure, and write-path selection
//! (full-stripe vs read-modify-write vs reconstruct-write) pinned
//! through the trace ring rather than inferred from timing.

use ftl::{BlockDevice, ConvSsd, FtlConfig};
use mdraid5::{Md5Config, Md5Volume};
use sim::{SimRng, SimTime};
use std::sync::Arc;
use zns::{WriteFlags, SECTOR_SIZE};

const T0: SimTime = SimTime::ZERO;
const CHUNK: u64 = 4;
const N: usize = 5;

fn volume() -> Md5Volume {
    let devs: Vec<Arc<dyn BlockDevice>> = (0..N)
        .map(|_| Arc::new(ConvSsd::new(FtlConfig::small_test())) as Arc<dyn BlockDevice>)
        .collect();
    Md5Volume::new(
        devs,
        Md5Config {
            chunk_sectors: CHUNK,
            stripe_cache_bytes: 1024 * 1024,
        },
    )
    .unwrap()
}

fn bytes(sectors: u64, seed: u64) -> Vec<u8> {
    let mut v = vec![0u8; (sectors * SECTOR_SIZE) as usize];
    SimRng::new(seed).fill_bytes(&mut v);
    v
}

/// Parity must reconstruct every byte no matter which device dies:
/// write a multi-stripe extent plus sub-stripe updates, then read the
/// whole range back degraded, once per failed device.
#[test]
fn parity_reconstructs_any_single_failure() {
    let stripe = CHUNK * (N as u64 - 1);
    let span = 6 * stripe; // six full stripes
    for failed in 0..N {
        let v = volume();
        let base = bytes(span, 0x5EED);
        v.write(T0, 0, &base, WriteFlags::default()).unwrap();
        // Sub-stripe overwrites dirty a few parities through RMW/RCW.
        let patch = bytes(CHUNK, 0xF00 + failed as u64);
        let mut expect = base.clone();
        for s in [1u64, 3, 4] {
            let off = s * stripe + CHUNK;
            v.write(T0, off, &patch, WriteFlags::default()).unwrap();
            let lo = (off * SECTOR_SIZE) as usize;
            expect[lo..lo + patch.len()].copy_from_slice(&patch);
        }
        v.flush(T0).unwrap();
        v.fail_device(failed);
        assert_eq!(v.failed_device(), Some(failed));
        let mut out = vec![0u8; expect.len()];
        v.read(T0, 0, &mut out).unwrap();
        assert!(
            out == expect,
            "degraded read diverged with device {failed} failed"
        );
    }
}

/// The write path must pick full-stripe XOR for aligned full stripes,
/// read-modify-write for narrow updates and reconstruct-write for wide
/// partial updates — asserted on the trace events the paths emit.
#[test]
fn write_path_selection_is_traced() {
    let v = volume();
    let recorder = obs::Recorder::new(4096, 1);
    v.set_recorder(recorder.clone());
    let stripe = CHUNK * (N as u64 - 1);

    let path_events = |since: u64| -> Vec<obs::PathKind> {
        recorder
            .events_since(since)
            .iter()
            .filter(|e| e.stage == obs::Stage::Xor)
            .filter_map(|e| e.path)
            .collect()
    };

    // Aligned full stripe: one full-stripe XOR, no reads needed.
    let mut cursor = recorder.next_seq();
    v.write(T0, 0, &bytes(stripe, 1), WriteFlags::default())
        .unwrap();
    assert_eq!(path_events(cursor), vec![obs::PathKind::FullStripe]);
    assert_eq!(recorder.count(obs::Counter::FullStripeWrites), 1);

    // One chunk of four: RMW reads old data + parity (2 IOs) and beats
    // reconstruct-write (3 IOs).
    cursor = recorder.next_seq();
    v.write(T0, stripe, &bytes(CHUNK, 2), WriteFlags::default())
        .unwrap();
    assert_eq!(path_events(cursor), vec![obs::PathKind::Rmw]);
    assert_eq!(recorder.count(obs::Counter::RmwWrites), 1);

    // Three chunks of four: reconstruct-write reads the one untouched
    // chunk (1 IO) and beats RMW (4 IOs).
    cursor = recorder.next_seq();
    v.write(T0, 2 * stripe, &bytes(3 * CHUNK, 3), WriteFlags::default())
        .unwrap();
    assert_eq!(path_events(cursor), vec![obs::PathKind::Rcw]);
    assert_eq!(recorder.count(obs::Counter::RcwWrites), 1);

    // Degraded reads surface in the trace too.
    v.flush(T0).unwrap();
    v.fail_device(1);
    cursor = recorder.next_seq();
    let mut out = vec![0u8; (stripe * SECTOR_SIZE) as usize];
    v.read(T0, 0, &mut out).unwrap();
    assert!(
        recorder
            .events_since(cursor)
            .iter()
            .any(|e| e.path == Some(obs::PathKind::Degraded)),
        "degraded read emitted no Degraded trace event"
    );
    assert!(recorder.count(obs::Counter::DegradedReads) > 0);
}

/// Writes and reads straddling stripe boundaries stay byte-identical
/// to a flat reference model (no trace assertions — pure data oracle).
#[test]
fn unaligned_io_matches_model() {
    let v = volume();
    let cap = v.capacity_sectors().min(40 * CHUNK * (N as u64 - 1));
    let mut model = vec![0u8; (cap * SECTOR_SIZE) as usize];
    let mut rng = SimRng::new(0xA11E);
    for i in 0..200u64 {
        let off = rng.gen_range(cap);
        let len = 1 + rng.gen_range((cap - off).min(3 * CHUNK));
        let data = bytes(len, i);
        v.write(T0, off, &data, WriteFlags::default()).unwrap();
        let lo = (off * SECTOR_SIZE) as usize;
        model[lo..lo + data.len()].copy_from_slice(&data);
    }
    let mut out = vec![0u8; model.len()];
    v.read(T0, 0, &mut out).unwrap();
    assert!(out == model, "unaligned write/read stream diverged");
}

/// Error propagation: assembling with an empty device list must return
/// an error, not panic (regression pin for the former `expect`).
#[test]
fn empty_device_list_is_an_error() {
    assert!(Md5Volume::new(Vec::new(), Md5Config::default()).is_err());
}
