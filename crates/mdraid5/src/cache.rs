//! The stripe cache: md's mechanism for avoiding parity-update reads.

use std::collections::HashMap;

/// An LRU cache of stripe contents, keyed by stripe index.
///
/// Each entry holds the data chunks and parity of one stripe (present
/// entries only — a chunk may be absent if it was never read or written
/// while cached). When a partial-stripe write hits a fully present entry,
/// the volume can recompute parity without touching the devices, exactly
/// like md's `stripe_cache_size` pages.
#[derive(Debug)]
pub struct StripeCache {
    /// stripe -> per-slot data; slot `0..n-1` = data chunks, slot `n-1` =
    /// parity. `None` = unknown.
    entries: HashMap<u64, CacheEntry>,
    capacity: usize,
    tick: u64,
    chunk_bytes: usize,
    slots: usize,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct CacheEntry {
    slots: Vec<Option<Box<[u8]>>>,
    last_use: u64,
}

impl StripeCache {
    /// Creates a cache holding at most `capacity` stripes of `slots` chunks
    /// (`n-1` data + 1 parity) of `chunk_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(capacity: usize, slots: usize, chunk_bytes: usize) -> Self {
        assert!(capacity > 0, "stripe cache capacity must be nonzero");
        assert!(slots >= 2, "a stripe has at least one data chunk + parity");
        assert!(chunk_bytes > 0, "chunk_bytes must be nonzero");
        StripeCache {
            entries: HashMap::new(),
            capacity,
            tick: 0,
            chunk_bytes,
            slots,
            hits: 0,
            misses: 0,
        }
    }

    /// Builds a cache sized to `bytes` total (md's `stripe_cache_size` is
    /// configured in pages; the paper uses the 128 MiB maximum).
    pub fn with_byte_budget(bytes: u64, slots: usize, chunk_bytes: usize) -> Self {
        let per_stripe = (slots * chunk_bytes) as u64;
        let capacity = (bytes / per_stripe).max(1) as usize;
        Self::new(capacity, slots, chunk_bytes)
    }

    /// Number of stripes currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of stripes the cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) counters for chunk lookups.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up one chunk (`slot`) of `stripe`, refreshing LRU recency.
    pub fn get(&mut self, stripe: u64, slot: usize) -> Option<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&stripe) {
            Some(e) => {
                e.last_use = tick;
                match &e.slots[slot] {
                    Some(data) => {
                        self.hits += 1;
                        Some(data)
                    }
                    None => {
                        self.misses += 1;
                        None
                    }
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts one chunk of `stripe`, evicting the LRU stripe if needed.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `chunk_bytes` long or `slot` is out
    /// of range.
    pub fn put(&mut self, stripe: u64, slot: usize, data: &[u8]) {
        assert_eq!(data.len(), self.chunk_bytes, "chunk size mismatch");
        assert!(slot < self.slots, "slot out of range");
        self.tick += 1;
        let tick = self.tick;
        if !self.entries.contains_key(&stripe) && self.entries.len() >= self.capacity {
            // Evict the least recently used stripe.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_use) {
                self.entries.remove(&victim);
            }
        }
        let slots = self.slots;
        let entry = self.entries.entry(stripe).or_insert_with(|| CacheEntry {
            slots: (0..slots).map(|_| None).collect(),
            last_use: tick,
        });
        entry.last_use = tick;
        match &mut entry.slots[slot] {
            Some(existing) => existing.copy_from_slice(data),
            none => *none = Some(data.to_vec().into_boxed_slice()),
        }
    }

    /// Patches a byte range of an already-cached chunk in place. Does
    /// nothing when the chunk is absent (a partially known chunk cannot be
    /// cached).
    ///
    /// # Panics
    ///
    /// Panics if the patch range exceeds the chunk.
    pub fn patch(&mut self, stripe: u64, slot: usize, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= self.chunk_bytes,
            "patch range exceeds chunk"
        );
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&stripe) {
            e.last_use = tick;
            if let Some(chunk) = &mut e.slots[slot] {
                chunk[offset..offset + data.len()].copy_from_slice(data);
            }
        }
    }

    /// Drops every cached stripe.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut c = StripeCache::new(4, 3, 8);
        c.put(7, 1, &[1u8; 8]);
        assert_eq!(c.get(7, 1), Some(&[1u8; 8][..]));
        assert_eq!(c.get(7, 0), None);
        assert_eq!(c.get(8, 1), None);
    }

    #[test]
    fn lru_eviction() {
        let mut c = StripeCache::new(2, 2, 4);
        c.put(1, 0, &[1u8; 4]);
        c.put(2, 0, &[2u8; 4]);
        c.get(1, 0); // refresh 1
        c.put(3, 0, &[3u8; 4]); // evicts 2
        assert!(c.get(2, 0).is_none());
        assert!(c.get(1, 0).is_some());
        assert!(c.get(3, 0).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_updates_in_place() {
        let mut c = StripeCache::new(2, 2, 4);
        c.put(1, 0, &[1u8; 4]);
        c.put(1, 0, &[9u8; 4]);
        assert_eq!(c.get(1, 0), Some(&[9u8; 4][..]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn byte_budget_sizing() {
        let c = StripeCache::with_byte_budget(1024, 4, 64);
        assert_eq!(c.capacity, 4);
        // Tiny budgets still hold one stripe.
        let c = StripeCache::with_byte_budget(1, 4, 64);
        assert_eq!(c.capacity, 1);
    }

    #[test]
    fn hit_miss_stats() {
        let mut c = StripeCache::new(2, 2, 4);
        c.put(1, 0, &[1u8; 4]);
        c.get(1, 0);
        c.get(1, 1);
        c.get(5, 0);
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "chunk size mismatch")]
    fn wrong_chunk_size_rejected() {
        StripeCache::new(2, 2, 4).put(0, 0, &[0u8; 5]);
    }
}
