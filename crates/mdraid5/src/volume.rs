//! The RAID-5 logical volume.

use crate::cache::StripeCache;
use crate::layout::Md5Layout;
use ftl::BlockDevice;
use parking_lot::Mutex;
use sim::{SimDuration, SimTime};
use std::sync::Arc;
use zns::{IoCompletion, Lba, Result, WriteFlags, ZnsError, SECTOR_SIZE};

/// Configuration of an [`Md5Volume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Md5Config {
    /// Stripe unit ("chunk") size in sectors. The paper sweeps 8–128 KiB
    /// and settles on 64 KiB (16 sectors).
    pub chunk_sectors: u64,
    /// Stripe cache budget in bytes (md maximum, used in the paper:
    /// 128 MiB).
    pub stripe_cache_bytes: u64,
}

impl Default for Md5Config {
    fn default() -> Self {
        Md5Config {
            chunk_sectors: 16,
            stripe_cache_bytes: 128 * 1024 * 1024,
        }
    }
}

/// Outcome of a full-array resync after device replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncReport {
    /// Virtual time the resync took.
    pub duration: SimDuration,
    /// Bytes written to the replacement device (always the full device
    /// for mdraid — the Fig. 12 contrast).
    pub bytes_written: u64,
}

/// An mdraid-style RAID-5 volume over conventional block devices.
///
/// See the crate documentation for the modelled behaviours and an example.
pub struct Md5Volume {
    layout: Md5Layout,
    state: Mutex<State>,
}

struct State {
    devices: Vec<Arc<dyn BlockDevice>>,
    failed: Option<usize>,
    cache: StripeCache,
    /// Optional write journal (md's `--write-journal`): every write is
    /// persisted to this device first, closing the RAID-5 write hole at
    /// the cost of doubling the write path. The paper benchmarks without
    /// it ("ensuring maximum performance"); it exists here so that cost
    /// is measurable.
    journal: Option<Journal>,
    /// Observability recorder for array-layer spans (full-stripe vs RMW vs
    /// RCW path attribution, journal appends) and counters.
    recorder: Option<Arc<obs::Recorder>>,
}

/// Records an array-layer trace span on the attached recorder, if any.
/// mdraid has no zones, so spans carry `zone == obs::NONE` and address the
/// stripe via its device-space offset in `lba`.
#[allow(clippy::too_many_arguments)]
fn trace_span(
    st: &State,
    op: obs::OpClass,
    stage: obs::Stage,
    path: Option<obs::PathKind>,
    lba: Lba,
    sectors: u64,
    start: SimTime,
    end: SimTime,
) {
    if let Some(rec) = st.recorder.as_ref() {
        rec.record(obs::TraceEvent {
            seq: 0,
            op,
            stage,
            path,
            device: obs::NONE,
            zone: obs::NONE,
            lba,
            sectors,
            start,
            end,
            outcome: obs::Outcome::Success,
            span: 0,
            parent: obs::current_span(),
            blame: obs::current_actor(),
        });
    }
}

/// Bumps a counter on the attached recorder, if any.
fn bump(st: &State, counter: obs::Counter) {
    if let Some(rec) = st.recorder.as_ref() {
        rec.bump(counter);
    }
}

struct Journal {
    device: Arc<dyn BlockDevice>,
    cursor: u64,
}

impl std::fmt::Debug for Md5Volume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Md5Volume")
            .field("layout", &self.layout)
            .finish_non_exhaustive()
    }
}

// Parity arithmetic goes through the shared word-vectorized kernel in
// `sim::xor`, the same one RAIZN's stripe/recovery paths use.
use sim::xor_into;

impl Md5Volume {
    /// Assembles a volume from `devices` (all the same capacity class; the
    /// smallest bounds the layout).
    ///
    /// # Errors
    ///
    /// Returns [`ZnsError::InvalidArgument`] if fewer than 3 devices are
    /// given or a chunk size of zero is configured.
    pub fn new(devices: Vec<Arc<dyn BlockDevice>>, config: Md5Config) -> Result<Self> {
        if devices.len() < 3 {
            return Err(ZnsError::InvalidArgument(format!(
                "RAID-5 needs >= 3 devices, got {}",
                devices.len()
            )));
        }
        if config.chunk_sectors == 0 {
            return Err(ZnsError::InvalidArgument(
                "chunk_sectors must be nonzero".to_string(),
            ));
        }
        let dev_sectors = devices
            .iter()
            .map(|d| d.capacity_sectors())
            .min()
            .ok_or_else(|| {
                ZnsError::InvalidArgument("RAID-5 needs a nonempty device list".to_string())
            })?;
        let layout = Md5Layout::new(devices.len() as u32, config.chunk_sectors, dev_sectors);
        let chunk_bytes = (config.chunk_sectors * SECTOR_SIZE) as usize;
        let slots = devices.len(); // n-1 data + 1 parity
        let cache = StripeCache::with_byte_budget(config.stripe_cache_bytes, slots, chunk_bytes);
        Ok(Md5Volume {
            layout,
            state: Mutex::new(State {
                devices,
                failed: None,
                cache,
                journal: None,
                recorder: None,
            }),
        })
    }

    /// Attaches a write-journal device (md's `--write-journal`): every
    /// write is appended to the journal and flushed before touching the
    /// array, closing the RAID-5 write hole.
    pub fn attach_journal(&self, device: Arc<dyn BlockDevice>) {
        let mut st = self.state.lock();
        st.journal = Some(Journal { device, cursor: 0 });
    }

    /// Whether a write journal is attached.
    pub fn has_journal(&self) -> bool {
        self.state.lock().journal.is_some()
    }

    /// Attaches an observability recorder: array-layer spans (full-stripe
    /// vs read-modify-write vs reconstruct-write path attribution, journal
    /// appends, degraded reads) and counters land on it.
    pub fn set_recorder(&self, recorder: Arc<obs::Recorder>) {
        self.state.lock().recorder = Some(recorder);
    }

    /// The address arithmetic of this array.
    pub fn layout(&self) -> Md5Layout {
        self.layout
    }

    /// Marks device `index` failed (it stops receiving IO; reads
    /// reconstruct from parity).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or another device already failed.
    pub fn fail_device(&self, index: usize) {
        let mut st = self.state.lock();
        assert!(index < st.devices.len(), "device index out of range");
        assert!(st.failed.is_none(), "RAID-5 tolerates one failure");
        st.failed = Some(index);
        st.cache.clear();
    }

    /// The currently failed device index, if any.
    pub fn failed_device(&self) -> Option<usize> {
        self.state.lock().failed
    }

    /// Parity-slot convention: cache slot for data chunk `k` is `k`; the
    /// parity chunk uses the last slot.
    fn parity_slot(&self) -> usize {
        self.layout.data_chunks() as usize
    }

    /// Reads `rows` sectors at `row_off` within `stripe` from the device
    /// holding `slot` (data chunk `k` or parity), reconstructing from the
    /// other devices if that device failed. Returns the completion time and
    /// fills `out`.
    fn fetch_rows(
        &self,
        st: &mut State,
        at: SimTime,
        stripe: u64,
        slot: usize,
        row_off: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        let rows = (out.len() as u64) / SECTOR_SIZE;
        let chunk_bytes = (self.layout.chunk_sectors() * SECTOR_SIZE) as usize;
        // Cache fast path (full chunks only).
        if let Some(cached) = st.cache.get(stripe, slot) {
            let off = (row_off * SECTOR_SIZE) as usize;
            out.copy_from_slice(&cached[off..off + out.len()]);
            return Ok(at);
        }
        let dev_index = if slot == self.parity_slot() {
            self.layout.parity_device(stripe) as usize
        } else {
            self.layout.data_device(stripe, slot as u64) as usize
        };
        let dev_lba = self.layout.stripe_offset(stripe) + row_off;
        if st.failed != Some(dev_index) {
            let done = st.devices[dev_index].read(at, dev_lba, out)?.done;
            if row_off == 0 && rows == self.layout.chunk_sectors() {
                st.cache.put(stripe, slot, out);
            }
            return Ok(done);
        }
        // Degraded: XOR of the same rows on every surviving device.
        out.fill(0);
        let mut tmp = vec![0u8; out.len()];
        let mut done = at;
        for (i, dev) in st.devices.iter().enumerate() {
            if i == dev_index {
                continue;
            }
            let c = dev.read(at, dev_lba, &mut tmp)?;
            done = done.max(c.done);
            xor_into(out, &tmp);
        }
        if row_off == 0 && rows == self.layout.chunk_sectors() && out.len() == chunk_bytes {
            st.cache.put(stripe, slot, out);
        }
        bump(st, obs::Counter::DegradedReads);
        trace_span(
            st,
            obs::OpClass::Read,
            obs::Stage::WholeOp,
            Some(obs::PathKind::Degraded),
            dev_lba,
            rows,
            at,
            done,
        );
        Ok(done)
    }

    /// Writes `data` rows at `row_off` of `stripe` to the device holding
    /// `slot`, skipping failed devices. Updates the cache.
    #[allow(clippy::too_many_arguments)]
    fn store_rows(
        &self,
        st: &mut State,
        at: SimTime,
        stripe: u64,
        slot: usize,
        row_off: u64,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<SimTime> {
        let dev_index = if slot == self.parity_slot() {
            self.layout.parity_device(stripe) as usize
        } else {
            self.layout.data_device(stripe, slot as u64) as usize
        };
        let full_chunk =
            row_off == 0 && data.len() as u64 / SECTOR_SIZE == self.layout.chunk_sectors();
        if full_chunk {
            st.cache.put(stripe, slot, data);
        } else {
            st.cache
                .patch(stripe, slot, (row_off * SECTOR_SIZE) as usize, data);
        }
        if st.failed == Some(dev_index) {
            return Ok(at); // degraded write: the chunk lives only in parity
        }
        let dev_lba = self.layout.stripe_offset(stripe) + row_off;
        Ok(st.devices[dev_index].write(at, dev_lba, data, flags)?.done)
    }

    /// Handles the portion of a write that falls within one stripe.
    #[allow(clippy::too_many_arguments)]
    fn write_stripe(
        &self,
        st: &mut State,
        at: SimTime,
        stripe: u64,
        // (data chunk index, first row, data) per touched chunk
        touched: &[(u64, u64, &[u8])],
        flags: WriteFlags,
    ) -> Result<SimTime> {
        let chunk = self.layout.chunk_sectors();
        let chunk_bytes = (chunk * SECTOR_SIZE) as usize;
        let n_data = self.layout.data_chunks();
        let full_stripe = touched.len() as u64 == n_data
            && touched
                .iter()
                .all(|(_, row, d)| *row == 0 && d.len() == chunk_bytes);

        if full_stripe {
            // Full-stripe write: parity from the new data alone, no reads.
            let mut parity = vec![0u8; chunk_bytes];
            for (_, _, d) in touched {
                xor_into(&mut parity, d);
            }
            let mut done = at;
            for (k, row, d) in touched {
                done = done.max(self.store_rows(st, at, stripe, *k as usize, *row, d, flags)?);
            }
            done =
                done.max(self.store_rows(st, at, stripe, self.parity_slot(), 0, &parity, flags)?);
            bump(st, obs::Counter::FullStripeWrites);
            trace_span(
                st,
                obs::OpClass::Write,
                obs::Stage::Xor,
                Some(obs::PathKind::FullStripe),
                self.layout.stripe_offset(stripe),
                chunk * n_data,
                at,
                done,
            );
            return Ok(done);
        }

        // Partial stripe: parity must be updated over the union row range.
        let nonempty =
            || ZnsError::InvalidArgument("write_stripe requires a touched chunk".to_string());
        let u0 = touched
            .iter()
            .map(|(_, r, _)| *r)
            .min()
            .ok_or_else(nonempty)?;
        let u1 = touched
            .iter()
            .map(|(_, r, d)| r + d.len() as u64 / SECTOR_SIZE)
            .max()
            .ok_or_else(nonempty)?;
        let union_rows = u1 - u0;
        let union_bytes = (union_rows * SECTOR_SIZE) as usize;
        let parity_dev = self.layout.parity_device(stripe) as usize;
        let parity_failed = st.failed == Some(parity_dev);
        let touched_is_failed = |k: u64| {
            st.failed
                .is_some_and(|f| self.layout.data_device(stripe, k) as usize == f)
        };

        // Strategy choice by IO count, like md: read-modify-write touches
        // the old data + parity; reconstruct-write touches the untouched
        // chunks. A write to the failed chunk forces reconstruct-write.
        let rmw_reads = touched.len() + 1;
        let rcw_reads = (n_data as usize) - touched.len()
            + touched
                .iter()
                .filter(|(_, r, d)| !(*r == u0 && d.len() == union_bytes))
                .count();
        let must_rcw = touched.iter().any(|(k, _, _)| touched_is_failed(*k));
        let use_rmw = !must_rcw && rmw_reads <= rcw_reads && !parity_failed;

        let mut parity = vec![0u8; union_bytes];
        let mut reads_done = at;
        if use_rmw {
            self_read_parity(self, st, at, stripe, u0, &mut parity, &mut reads_done)?;
            for (k, row, d) in touched {
                let mut old = vec![0u8; d.len()];
                let done = self.fetch_rows(st, at, stripe, *k as usize, *row, &mut old)?;
                reads_done = reads_done.max(done);
                // parity ^= old ^ new over this chunk's rows.
                let off = ((*row - u0) * SECTOR_SIZE) as usize;
                xor_into(&mut parity[off..off + d.len()], &old);
                xor_into(&mut parity[off..off + d.len()], d);
            }
        } else {
            // Reconstruct-write: parity over the union = XOR of every data
            // chunk's union rows (new data where written, fetched
            // otherwise).
            for k in 0..n_data {
                let written = touched.iter().find(|(tk, _, _)| *tk == k);
                let mut col = vec![0u8; union_bytes];
                match written {
                    Some((_, row, d)) => {
                        let off = ((*row - u0) * SECTOR_SIZE) as usize;
                        col[off..off + d.len()].copy_from_slice(d);
                        // Rows of this chunk inside the union but outside
                        // the written range must be fetched.
                        if off > 0 {
                            let done =
                                self.fetch_rows(st, at, stripe, k as usize, u0, &mut col[..off])?;
                            reads_done = reads_done.max(done);
                        }
                        let tail = off + d.len();
                        if tail < union_bytes {
                            let done = self.fetch_rows(
                                st,
                                at,
                                stripe,
                                k as usize,
                                u0 + (tail as u64 / SECTOR_SIZE),
                                &mut col[tail..],
                            )?;
                            reads_done = reads_done.max(done);
                        }
                    }
                    None => {
                        let done = self.fetch_rows(st, at, stripe, k as usize, u0, &mut col)?;
                        reads_done = reads_done.max(done);
                    }
                }
                xor_into(&mut parity, &col);
            }
        }

        // Writes are issued once the reads they depend on completed.
        let wat = reads_done;
        let mut done = wat;
        for (k, row, d) in touched {
            done =
                done.max(self.store_rows(st, at.max(wat), stripe, *k as usize, *row, d, flags)?);
        }
        if !parity_failed {
            done = done.max(self.store_rows(
                st,
                wat,
                stripe,
                self.parity_slot(),
                u0,
                &parity,
                flags,
            )?);
        }
        let (path, counter) = if use_rmw {
            (obs::PathKind::Rmw, obs::Counter::RmwWrites)
        } else {
            (obs::PathKind::Rcw, obs::Counter::RcwWrites)
        };
        bump(st, counter);
        trace_span(
            st,
            obs::OpClass::Write,
            obs::Stage::Xor,
            Some(path),
            self.layout.stripe_offset(stripe) + u0,
            union_rows,
            at,
            done,
        );
        Ok(done)
    }

    /// Rebuilds a replaced device: reads every stripe's surviving chunks,
    /// reconstructs the missing chunk and writes it out — over the **whole
    /// address space**, independent of how much data the volume holds.
    ///
    /// # Errors
    ///
    /// Returns [`ZnsError::InvalidArgument`] when no device is failed, or
    /// propagates device IO errors.
    pub fn resync(&self, at: SimTime, replacement: Arc<dyn BlockDevice>) -> Result<ResyncReport> {
        let mut st = self.state.lock();
        let failed = st.failed.ok_or_else(|| {
            ZnsError::InvalidArgument("resync requires a failed device".to_string())
        })?;
        let chunk = self.layout.chunk_sectors();
        let chunk_bytes = (chunk * SECTOR_SIZE) as usize;
        let mut cursor = at;
        let mut last_write = at;
        let mut bytes = 0u64;
        let mut buf = vec![0u8; chunk_bytes];
        let mut acc = vec![0u8; chunk_bytes];
        for stripe in 0..self.layout.stripes() {
            let dev_lba = self.layout.stripe_offset(stripe);
            acc.fill(0);
            let mut reads_done = cursor;
            for (i, dev) in st.devices.iter().enumerate() {
                if i == failed {
                    continue;
                }
                let c = dev.read(cursor, dev_lba, &mut buf)?;
                reads_done = reads_done.max(c.done);
                xor_into(&mut acc, &buf);
            }
            let w = replacement.write(reads_done, dev_lba, &acc, WriteFlags::default())?;
            last_write = last_write.max(w.done);
            bytes += chunk_bytes as u64;
            // Pipeline: issue the next stripe's reads immediately; the
            // device queues bound the actual rates.
            cursor = reads_done;
        }
        st.devices[failed] = replacement;
        st.failed = None;
        st.cache.clear();
        Ok(ResyncReport {
            duration: last_write.since(at),
            bytes_written: bytes,
        })
    }
}

/// Reads the union-range parity rows (helper split out of `write_stripe`
/// for borrow-checker clarity).
fn self_read_parity(
    vol: &Md5Volume,
    st: &mut State,
    at: SimTime,
    stripe: u64,
    u0: u64,
    parity: &mut [u8],
    reads_done: &mut SimTime,
) -> Result<()> {
    let slot = vol.parity_slot();
    let done = vol.fetch_rows(st, at, stripe, slot, u0, parity)?;
    *reads_done = (*reads_done).max(done);
    Ok(())
}

impl BlockDevice for Md5Volume {
    fn capacity_sectors(&self) -> u64 {
        self.layout.capacity_sectors()
    }

    fn read(&self, at: SimTime, lba: Lba, buf: &mut [u8]) -> Result<IoCompletion> {
        let sectors = buf.len() as u64 / SECTOR_SIZE;
        if buf.is_empty() || !buf.len().is_multiple_of(SECTOR_SIZE as usize) {
            return Err(ZnsError::InvalidArgument(format!(
                "buffer length {} is not a positive multiple of the sector size",
                buf.len()
            )));
        }
        if lba + sectors > self.capacity_sectors() {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        let chunk = self.layout.chunk_sectors();
        let mut st = self.state.lock();
        let mut done = at;
        let mut cursor = lba;
        let mut off = 0usize;
        while cursor < lba + sectors {
            let (stripe, k, within) = self.layout.locate(cursor);
            let rows = (chunk - within).min(lba + sectors - cursor);
            let len = (rows * SECTOR_SIZE) as usize;
            let c = self.fetch_rows(
                &mut st,
                at,
                stripe,
                k as usize,
                within,
                &mut buf[off..off + len],
            )?;
            done = done.max(c);
            cursor += rows;
            off += len;
        }
        trace_span(
            &st,
            obs::OpClass::Read,
            obs::Stage::WholeOp,
            None,
            lba,
            sectors,
            at,
            done,
        );
        Ok(IoCompletion { done })
    }

    fn write(&self, at: SimTime, lba: Lba, data: &[u8], flags: WriteFlags) -> Result<IoCompletion> {
        let sectors = data.len() as u64 / SECTOR_SIZE;
        if data.is_empty() || !data.len().is_multiple_of(SECTOR_SIZE as usize) {
            return Err(ZnsError::InvalidArgument(format!(
                "buffer length {} is not a positive multiple of the sector size",
                data.len()
            )));
        }
        if lba + sectors > self.capacity_sectors() {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        let chunk = self.layout.chunk_sectors();
        let n_data = self.layout.data_chunks();
        let stripe_sectors = chunk * n_data;
        let mut st = self.state.lock();
        let mut at = at;
        // Journal-first: the data must be durable on the journal device
        // before the (non-atomic) multi-device stripe update begins.
        let journal_done = match st.journal.as_ref() {
            Some(j) => {
                let jcap = j.device.capacity_sectors();
                let mut cur = j.cursor;
                if cur + sectors > jcap {
                    cur = 0; // ring wrap
                }
                let c = j.device.write(at, cur, data, flags)?;
                let f = j.device.flush(c.done)?;
                Some((f.done, cur + sectors))
            }
            None => None,
        };
        if let Some((jdone, jcur)) = journal_done {
            if let Some(j) = st.journal.as_mut() {
                j.cursor = jcur;
            }
            trace_span(
                &st,
                obs::OpClass::Append,
                obs::Stage::MetaAppend,
                None,
                lba,
                sectors,
                at,
                jdone,
            );
            at = jdone;
        }
        let mut done = at;
        let mut cursor = lba;
        let mut off = 0usize;
        while cursor < lba + sectors {
            let stripe = cursor / stripe_sectors;
            let stripe_end = (stripe + 1) * stripe_sectors;
            let span = (stripe_end - cursor).min(lba + sectors - cursor);
            // Collect the touched chunks of this stripe.
            let mut touched: Vec<(u64, u64, &[u8])> = Vec::new();
            let mut c2 = cursor;
            let mut o2 = off;
            while c2 < cursor + span {
                let (s2, k, within) = self.layout.locate(c2);
                debug_assert_eq!(s2, stripe);
                let rows = (chunk - within).min(cursor + span - c2);
                let len = (rows * SECTOR_SIZE) as usize;
                touched.push((k, within, &data[o2..o2 + len]));
                c2 += rows;
                o2 += len;
            }
            let c = self.write_stripe(&mut st, at, stripe, &touched, flags)?;
            done = done.max(c);
            cursor += span;
            off += (span * SECTOR_SIZE) as usize;
        }
        trace_span(
            &st,
            obs::OpClass::Write,
            obs::Stage::WholeOp,
            None,
            lba,
            sectors,
            at,
            done,
        );
        Ok(IoCompletion { done })
    }

    fn trim(&self, at: SimTime, lba: Lba, sectors: u64) -> Result<IoCompletion> {
        if lba + sectors > self.capacity_sectors() {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        let chunk = self.layout.chunk_sectors();
        let st = self.state.lock();
        let mut done = at;
        let mut cursor = lba;
        while cursor < lba + sectors {
            let (stripe, k, within) = self.layout.locate(cursor);
            let rows = (chunk - within).min(lba + sectors - cursor);
            let dev = self.layout.data_device(stripe, k) as usize;
            if st.failed != Some(dev) {
                let dev_lba = self.layout.stripe_offset(stripe) + within;
                let c = st.devices[dev].trim(at, dev_lba, rows)?;
                done = done.max(c.done);
            }
            cursor += rows;
        }
        // Like md passing down discards, parity is left stale; subsequent
        // writes recompute it.
        Ok(IoCompletion { done })
    }

    fn flush(&self, at: SimTime) -> Result<IoCompletion> {
        let st = self.state.lock();
        let mut done = at;
        for (i, dev) in st.devices.iter().enumerate() {
            if st.failed == Some(i) {
                continue;
            }
            done = done.max(dev.flush(at)?.done);
        }
        trace_span(
            &st,
            obs::OpClass::Flush,
            obs::Stage::Flush,
            None,
            0,
            0,
            at,
            done,
        );
        Ok(IoCompletion { done })
    }
}

impl obs::GaugeSource for Md5Volume {
    fn source_label(&self) -> &'static str {
        "mdraid"
    }

    /// Instantaneous array state: stripe-cache occupancy and hit/miss
    /// counters (cache occupancy in the issue's gauge list) plus the
    /// degraded flag.
    fn sample_gauges(&self, out: &mut Vec<obs::GaugeReading>) {
        let st = self.state.lock();
        out.push(obs::GaugeReading::new(
            "cache_stripes",
            obs::NONE,
            st.cache.len() as f64,
        ));
        out.push(obs::GaugeReading::new(
            "cache_capacity",
            obs::NONE,
            st.cache.capacity() as f64,
        ));
        let (hits, misses) = st.cache.stats();
        out.push(obs::GaugeReading::new("cache_hits", obs::NONE, hits as f64));
        out.push(obs::GaugeReading::new(
            "cache_misses",
            obs::NONE,
            misses as f64,
        ));
        out.push(obs::GaugeReading::new(
            "degraded",
            obs::NONE,
            if st.failed.is_some() { 1.0 } else { 0.0 },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl::{ConvSsd, FtlConfig};

    fn make(n: usize) -> Md5Volume {
        let devs: Vec<Arc<dyn BlockDevice>> = (0..n)
            .map(|_| Arc::new(ConvSsd::new(FtlConfig::small_test())) as Arc<dyn BlockDevice>)
            .collect();
        Md5Volume::new(
            devs,
            Md5Config {
                chunk_sectors: 4,
                stripe_cache_bytes: 1024 * 1024,
            },
        )
        .unwrap()
    }

    fn bytes(sectors: u64, fill: u8) -> Vec<u8> {
        vec![fill; (sectors * SECTOR_SIZE) as usize]
    }

    #[test]
    fn small_write_read_roundtrip() {
        let v = make(3);
        let data = bytes(1, 0x5A);
        v.write(SimTime::ZERO, 7, &data, WriteFlags::default())
            .unwrap();
        let mut out = bytes(1, 0);
        v.read(SimTime::ZERO, 7, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn large_write_spans_stripes() {
        let v = make(5);
        // 3 full stripes + change: 4 data chunks * 4 sectors = 16/stripe.
        let mut data = bytes(40, 0);
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        v.write(SimTime::ZERO, 3, &data, WriteFlags::default())
            .unwrap();
        let mut out = bytes(40, 0);
        v.read(SimTime::ZERO, 3, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn degraded_read_reconstructs() {
        let v = make(4);
        let data: Vec<u8> = (0..(24 * SECTOR_SIZE)).map(|i| (i % 255) as u8).collect();
        v.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
        v.fail_device(1);
        let mut out = vec![0u8; data.len()];
        v.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn degraded_write_then_read_back() {
        let v = make(4);
        v.fail_device(2);
        let data: Vec<u8> = (0..(16 * SECTOR_SIZE as usize))
            .map(|i| (i * 7 % 253) as u8)
            .collect();
        v.write(SimTime::ZERO, 5, &data, WriteFlags::default())
            .unwrap();
        let mut out = vec![0u8; data.len()];
        v.read(SimTime::ZERO, 5, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn resync_restores_redundancy() {
        let v = make(3);
        let data: Vec<u8> = (0..(32 * SECTOR_SIZE as usize))
            .map(|i| (i % 249) as u8)
            .collect();
        v.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
        v.fail_device(0);
        let replacement: Arc<dyn BlockDevice> = Arc::new(ConvSsd::new(FtlConfig::small_test()));
        let report = v.resync(SimTime::ZERO, replacement).unwrap();
        assert!(report.bytes_written > 0);
        assert!(v.failed_device().is_none());
        // Fail a *different* device; reconstruction must still work, which
        // proves the replacement holds correct contents.
        v.fail_device(1);
        let mut out = vec![0u8; data.len()];
        v.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn resync_covers_entire_device() {
        let v = make(3);
        // Write only a little data; resync must still cover all stripes.
        v.write(SimTime::ZERO, 0, &bytes(4, 1), WriteFlags::default())
            .unwrap();
        v.fail_device(2);
        let replacement: Arc<dyn BlockDevice> = Arc::new(ConvSsd::new(FtlConfig::small_test()));
        let report = v.resync(SimTime::ZERO, replacement).unwrap();
        let expected = v.layout().stripes() * v.layout().chunk_sectors() * SECTOR_SIZE;
        assert_eq!(report.bytes_written, expected);
    }

    #[test]
    fn overwrite_updates_parity() {
        let v = make(3);
        v.write(SimTime::ZERO, 0, &bytes(2, 1), WriteFlags::default())
            .unwrap();
        v.write(SimTime::ZERO, 0, &bytes(2, 9), WriteFlags::default())
            .unwrap();
        v.fail_device(0);
        let mut out = bytes(2, 0);
        v.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, bytes(2, 9));
    }

    #[test]
    fn capacity_and_bounds() {
        let v = make(3);
        let cap = v.capacity_sectors();
        assert!(cap > 0);
        assert!(matches!(
            v.write(SimTime::ZERO, cap, &bytes(1, 0), WriteFlags::default()),
            Err(ZnsError::OutOfRange { .. })
        ));
        let mut buf = bytes(1, 0);
        assert!(matches!(
            v.read(SimTime::ZERO, cap, &mut buf),
            Err(ZnsError::OutOfRange { .. })
        ));
    }

    #[test]
    fn two_device_array_rejected() {
        let devs: Vec<Arc<dyn BlockDevice>> = (0..2)
            .map(|_| Arc::new(ConvSsd::new(FtlConfig::small_test())) as Arc<dyn BlockDevice>)
            .collect();
        assert!(Md5Volume::new(devs, Md5Config::default()).is_err());
    }

    #[test]
    fn random_write_read_fuzz() {
        let v = make(5);
        let cap = v.capacity_sectors();
        let mut model = vec![0u8; (cap * SECTOR_SIZE) as usize];
        let mut rng = sim::SimRng::new(7);
        for _ in 0..300 {
            let sectors = 1 + rng.gen_range(12);
            let lba = rng.gen_range(cap - sectors);
            let mut data = bytes(sectors, 0);
            rng.fill_bytes(&mut data);
            v.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .unwrap();
            let off = (lba * SECTOR_SIZE) as usize;
            model[off..off + data.len()].copy_from_slice(&data);
        }
        let mut out = vec![0u8; model.len()];
        v.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, model);
    }

    #[test]
    fn journal_preserves_correctness() {
        let v = make(3);
        let journal: Arc<dyn BlockDevice> = Arc::new(ConvSsd::new(FtlConfig::small_test()));
        v.attach_journal(journal);
        assert!(v.has_journal());
        let data: Vec<u8> = (0..(24 * SECTOR_SIZE as usize))
            .map(|i| (i % 241) as u8)
            .collect();
        v.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
        let mut out = vec![0u8; data.len()];
        v.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, data);
        // Degraded reconstruction still works with the journal attached.
        v.fail_device(1);
        let mut out2 = vec![0u8; data.len()];
        v.read(SimTime::ZERO, 0, &mut out2).unwrap();
        assert_eq!(out2, data);
    }

    #[test]
    fn journal_costs_write_time() {
        let mk = |journal: bool| {
            let devs: Vec<Arc<dyn BlockDevice>> = (0..3)
                .map(|_| {
                    Arc::new(ConvSsd::new(FtlConfig {
                        latency: zns::LatencyConfig::conventional_ssd(),
                        store_data: false,
                        ..FtlConfig::small_test()
                    })) as Arc<dyn BlockDevice>
                })
                .collect();
            let v = Md5Volume::new(
                devs,
                Md5Config {
                    chunk_sectors: 4,
                    stripe_cache_bytes: 1024 * 1024,
                },
            )
            .unwrap();
            if journal {
                let j: Arc<dyn BlockDevice> = Arc::new(ConvSsd::new(FtlConfig {
                    latency: zns::LatencyConfig::conventional_ssd(),
                    store_data: false,
                    ..FtlConfig::small_test()
                }));
                v.attach_journal(j);
            }
            let data = vec![0u8; (8 * SECTOR_SIZE) as usize];
            let mut t = SimTime::ZERO;
            for i in 0..32u64 {
                t = v
                    .write(
                        t,
                        (i * 8) % v.capacity_sectors(),
                        &data,
                        WriteFlags::default(),
                    )
                    .unwrap()
                    .done;
            }
            t
        };
        let plain = mk(false);
        let journaled = mk(true);
        assert!(
            journaled > plain,
            "journal should cost write latency: {plain} vs {journaled}"
        );
    }

    #[test]
    fn degraded_random_fuzz() {
        let v = make(4);
        let cap = v.capacity_sectors();
        let mut model = vec![0u8; (cap * SECTOR_SIZE) as usize];
        let mut rng = sim::SimRng::new(13);
        // Fill fully so degraded reconstruction has defined parity
        // everywhere.
        let mut init = vec![0u8; model.len()];
        rng.fill_bytes(&mut init);
        v.write(SimTime::ZERO, 0, &init, WriteFlags::default())
            .unwrap();
        model.copy_from_slice(&init);
        v.fail_device(3);
        for _ in 0..200 {
            let sectors = 1 + rng.gen_range(9);
            let lba = rng.gen_range(cap - sectors);
            let mut data = bytes(sectors, 0);
            rng.fill_bytes(&mut data);
            v.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .unwrap();
            let off = (lba * SECTOR_SIZE) as usize;
            model[off..off + data.len()].copy_from_slice(&data);
        }
        let mut out = vec![0u8; model.len()];
        v.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, model);
    }
}
