//! Zone emulation over a block volume.
//!
//! The paper runs F2FS on both RAIZN (native zones) and mdraid
//! (conventional block). F2FS's sequential-logging discipline is what maps
//! zone-style IO onto the block device; [`ZonedBlockShim`] plays that role
//! here: it exposes the [`zns::ZonedVolume`] interface over any
//! [`ftl::BlockDevice`], enforcing write pointers in software and turning
//! zone resets into `TRIM`s — so the same application (the `zkv` store)
//! runs unmodified on either stack.

use ftl::BlockDevice;
use parking_lot::Mutex;
use sim::SimTime;
use std::sync::Arc;
use zns::{
    AppendCompletion, IoCompletion, Lba, Result, WriteFlags, ZnsError, ZoneGeometry, ZoneInfo,
    ZoneState, ZonedVolume,
};

/// A software zone layer over a block volume.
///
/// # Examples
///
/// ```
/// use ftl::{ConvSsd, FtlConfig};
/// use mdraid5::ZonedBlockShim;
/// use zns::{ZonedVolume, WriteFlags};
/// use sim::SimTime;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), zns::ZnsError> {
/// let dev = Arc::new(ConvSsd::new(FtlConfig::small_test()));
/// let shim = ZonedBlockShim::new(dev, 64)?;
/// let data = vec![1u8; 4096];
/// shim.write(SimTime::ZERO, 0, &data, WriteFlags::default())?;
/// shim.reset_zone(SimTime::ZERO, 0)?;
/// # Ok(())
/// # }
/// ```
pub struct ZonedBlockShim<B> {
    device: Arc<B>,
    geometry: ZoneGeometry,
    zones: Mutex<Vec<ShimZone>>,
}

#[derive(Debug, Clone, Copy)]
struct ShimZone {
    wp: u64,
    state: ZoneState,
}

impl<B: BlockDevice> ZonedBlockShim<B> {
    /// Builds a shim with `zone_sectors`-sized software zones.
    ///
    /// # Errors
    ///
    /// Returns [`ZnsError::InvalidArgument`] if the device holds less than
    /// one zone.
    pub fn new(device: Arc<B>, zone_sectors: u64) -> Result<Self> {
        if zone_sectors == 0 {
            return Err(ZnsError::InvalidArgument(
                "zone_sectors must be nonzero".to_string(),
            ));
        }
        let zones = device.capacity_sectors() / zone_sectors;
        if zones == 0 {
            return Err(ZnsError::InvalidArgument(
                "device smaller than one zone".to_string(),
            ));
        }
        let geometry = ZoneGeometry::new(zones as u32, zone_sectors, zone_sectors);
        Ok(ZonedBlockShim {
            device,
            geometry,
            zones: Mutex::new(vec![
                ShimZone {
                    wp: 0,
                    state: ZoneState::Empty
                };
                zones as usize
            ]),
        })
    }

    /// The wrapped block device.
    pub fn device(&self) -> &Arc<B> {
        &self.device
    }

    fn check_zone(&self, zone: u32) -> Result<()> {
        if zone >= self.geometry.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * self.geometry.zone_size(),
                sectors: 0,
            });
        }
        Ok(())
    }
}

impl<B: BlockDevice> ZonedVolume for ZonedBlockShim<B> {
    fn geometry(&self) -> ZoneGeometry {
        self.geometry
    }

    fn read(&self, at: SimTime, lba: Lba, buf: &mut [u8]) -> Result<IoCompletion> {
        let sectors = buf.len() as u64 / zns::SECTOR_SIZE;
        if !self.geometry.range_in_one_zone(lba, sectors) {
            return Err(ZnsError::ZoneBoundary { lba, sectors });
        }
        {
            let zones = self.zones.lock();
            let z = self.geometry.zone_of(lba);
            let off = self.geometry.offset_in_zone(lba);
            if off + sectors > zones[z as usize].wp {
                return Err(ZnsError::ReadUnwritten {
                    lba: self.geometry.zone_start(z) + zones[z as usize].wp,
                });
            }
        }
        self.device.read(at, lba, buf)
    }

    fn write(&self, at: SimTime, lba: Lba, data: &[u8], flags: WriteFlags) -> Result<IoCompletion> {
        let sectors = data.len() as u64 / zns::SECTOR_SIZE;
        if !self.geometry.range_in_one_zone(lba, sectors) {
            return Err(ZnsError::ZoneBoundary { lba, sectors });
        }
        {
            let mut zones = self.zones.lock();
            let zi = self.geometry.zone_of(lba);
            let off = self.geometry.offset_in_zone(lba);
            let z = &mut zones[zi as usize];
            if z.state == ZoneState::Full {
                return Err(ZnsError::ZoneFull { zone: zi });
            }
            if off != z.wp {
                return Err(ZnsError::NotSequential {
                    zone: zi,
                    expected: self.geometry.zone_start(zi) + z.wp,
                    got: lba,
                });
            }
            z.wp += sectors;
            z.state = if z.wp == self.geometry.zone_cap() {
                ZoneState::Full
            } else {
                ZoneState::ImplicitlyOpen
            };
        }
        self.device.write(at, lba, data, flags)
    }

    fn append(
        &self,
        at: SimTime,
        zone: u32,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<AppendCompletion> {
        self.check_zone(zone)?;
        let lba = {
            let zones = self.zones.lock();
            self.geometry.zone_start(zone) + zones[zone as usize].wp
        };
        let c = self.write(at, lba, data, flags)?;
        Ok(AppendCompletion { lba, done: c.done })
    }

    fn reset_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        self.check_zone(zone)?;
        let wp = {
            let mut zones = self.zones.lock();
            let z = &mut zones[zone as usize];
            let wp = z.wp;
            z.wp = 0;
            z.state = ZoneState::Empty;
            wp
        };
        if wp == 0 {
            return Ok(IoCompletion { done: at });
        }
        // TRIM the written extent so the FTL can drop the pages.
        self.device.trim(at, self.geometry.zone_start(zone), wp)
    }

    fn finish_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        self.check_zone(zone)?;
        let mut zones = self.zones.lock();
        zones[zone as usize].state = ZoneState::Full;
        Ok(IoCompletion { done: at })
    }

    fn open_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        self.check_zone(zone)?;
        let mut zones = self.zones.lock();
        zones[zone as usize].state = ZoneState::ExplicitlyOpen;
        Ok(IoCompletion { done: at })
    }

    fn close_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        self.check_zone(zone)?;
        let mut zones = self.zones.lock();
        let z = &mut zones[zone as usize];
        z.state = if z.wp == 0 {
            ZoneState::Empty
        } else {
            ZoneState::Closed
        };
        Ok(IoCompletion { done: at })
    }

    fn flush(&self, at: SimTime) -> Result<IoCompletion> {
        self.device.flush(at)
    }

    fn zone_info(&self, zone: u32) -> Result<ZoneInfo> {
        self.check_zone(zone)?;
        let zones = self.zones.lock();
        let z = zones[zone as usize];
        Ok(ZoneInfo {
            zone,
            state: z.state,
            start: self.geometry.zone_start(zone),
            write_pointer: self.geometry.zone_start(zone) + z.wp,
            capacity: self.geometry.zone_cap(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl::{ConvSsd, FtlConfig};

    fn shim() -> ZonedBlockShim<ConvSsd> {
        ZonedBlockShim::new(Arc::new(ConvSsd::new(FtlConfig::small_test())), 64).unwrap()
    }

    #[test]
    fn exposes_zone_geometry() {
        let s = shim();
        assert_eq!(s.geometry().num_zones(), 8); // 512 / 64
        assert_eq!(s.geometry().zone_cap(), 64);
    }

    #[test]
    fn enforces_sequential_writes() {
        let s = shim();
        let data = vec![0u8; 4096];
        s.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
        let err = s
            .write(SimTime::ZERO, 5, &data, WriteFlags::default())
            .unwrap_err();
        assert!(matches!(err, ZnsError::NotSequential { .. }));
    }

    #[test]
    fn read_write_roundtrip() {
        let s = shim();
        let data = vec![0x3Cu8; 8192];
        s.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
        let mut out = vec![0u8; 8192];
        s.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn reset_trims_and_reopens() {
        let s = shim();
        let data = vec![1u8; 4096];
        s.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
        s.reset_zone(SimTime::ZERO, 0).unwrap();
        assert_eq!(s.zone_info(0).unwrap().write_pointer, 0);
        s.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
    }

    #[test]
    fn append_tracks_wp() {
        let s = shim();
        let a = s
            .append(SimTime::ZERO, 1, &vec![0u8; 4096], WriteFlags::default())
            .unwrap();
        assert_eq!(a.lba, 64);
        let b = s
            .append(SimTime::ZERO, 1, &vec![0u8; 4096], WriteFlags::default())
            .unwrap();
        assert_eq!(b.lba, 65);
    }

    #[test]
    fn full_zone_rejects_writes() {
        let s = shim();
        let data = vec![0u8; 64 * 4096];
        s.write(SimTime::ZERO, 0, &data, WriteFlags::default())
            .unwrap();
        let err = s
            .write(SimTime::ZERO, 0, &data[..4096], WriteFlags::default())
            .unwrap_err();
        assert!(matches!(
            err,
            ZnsError::ZoneFull { .. } | ZnsError::NotSequential { .. }
        ));
    }
}
