//! RAID-5 address arithmetic (left-symmetric layout, md's default).

use zns::Lba;

/// Maps logical volume addresses to `(device, device LBA)` pairs for a
/// RAID-5 array of `n` devices with `chunk` sectors per stripe unit.
///
/// Uses the left-symmetric layout: the parity device rotates "leftward"
/// each stripe and data chunks wrap around it, matching
/// `mdadm --level=5` defaults.
///
/// # Examples
///
/// ```
/// use mdraid5::Md5Layout;
/// let l = Md5Layout::new(3, 16, 1024);
/// // 2 data chunks per stripe; logical chunk 0 and 1 are stripe 0.
/// assert_eq!(l.data_chunks(), 2);
/// let (dev0, off0) = l.chunk_location(0);
/// let (dev1, off1) = l.chunk_location(1);
/// assert_ne!(dev0, dev1);
/// assert_eq!(off0, 0);
/// assert_eq!(off1, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Md5Layout {
    n: u32,
    chunk: u64,
    dev_sectors: u64,
}

impl Md5Layout {
    /// Creates a layout for `n` devices with `chunk`-sector stripe units and
    /// `dev_sectors` usable sectors per device (rounded down to chunks).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`, `chunk == 0`, or a device holds no full chunk.
    pub fn new(n: u32, chunk: u64, dev_sectors: u64) -> Self {
        assert!(n >= 3, "RAID-5 requires at least 3 devices");
        assert!(chunk > 0, "chunk size must be nonzero");
        assert!(dev_sectors >= chunk, "devices must hold at least one chunk");
        Md5Layout {
            n,
            chunk,
            dev_sectors: dev_sectors / chunk * chunk,
        }
    }

    /// Number of devices.
    pub fn devices(&self) -> u32 {
        self.n
    }

    /// Stripe unit size in sectors.
    pub fn chunk_sectors(&self) -> u64 {
        self.chunk
    }

    /// Data chunks per stripe.
    pub fn data_chunks(&self) -> u64 {
        (self.n - 1) as u64
    }

    /// Number of stripes in the array.
    pub fn stripes(&self) -> u64 {
        self.dev_sectors / self.chunk
    }

    /// Usable logical capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.stripes() * self.data_chunks() * self.chunk
    }

    /// The device holding the parity chunk of `stripe` (left-symmetric).
    pub fn parity_device(&self, stripe: u64) -> u32 {
        (self.n as u64 - 1 - (stripe % self.n as u64)) as u32
    }

    /// The device holding data chunk `k` of `stripe`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a valid data chunk index.
    pub fn data_device(&self, stripe: u64, k: u64) -> u32 {
        assert!(k < self.data_chunks(), "data chunk index out of range");
        let p = self.parity_device(stripe) as u64;
        ((p + 1 + k) % self.n as u64) as u32
    }

    /// The device LBA where `stripe`'s chunks live (same on every device).
    pub fn stripe_offset(&self, stripe: u64) -> Lba {
        stripe * self.chunk
    }

    /// Decomposes a logical LBA into `(stripe, data chunk index, offset
    /// within chunk)`.
    ///
    /// # Panics
    ///
    /// Panics if `lba` exceeds the capacity.
    pub fn locate(&self, lba: Lba) -> (u64, u64, u64) {
        assert!(
            lba < self.capacity_sectors(),
            "lba {lba} beyond capacity {}",
            self.capacity_sectors()
        );
        let chunk_index = lba / self.chunk;
        let within = lba % self.chunk;
        let stripe = chunk_index / self.data_chunks();
        let k = chunk_index % self.data_chunks();
        (stripe, k, within)
    }

    /// Device and device-LBA of logical chunk index `c` (= `lba / chunk`).
    pub fn chunk_location(&self, c: u64) -> (u32, Lba) {
        let stripe = c / self.data_chunks();
        let k = c % self.data_chunks();
        (self.data_device(stripe, k), self.stripe_offset(stripe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parity_rotates_over_all_devices() {
        let l = Md5Layout::new(5, 16, 160);
        let devs: Vec<u32> = (0..5).map(|s| l.parity_device(s)).collect();
        let mut sorted = devs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn data_devices_skip_parity() {
        let l = Md5Layout::new(4, 8, 80);
        for s in 0..10 {
            let p = l.parity_device(s);
            for k in 0..3 {
                assert_ne!(l.data_device(s, k), p);
            }
        }
    }

    #[test]
    fn capacity_excludes_parity() {
        let l = Md5Layout::new(5, 16, 160);
        assert_eq!(l.capacity_sectors(), 160 * 4);
        assert_eq!(l.stripes(), 10);
    }

    #[test]
    fn locate_roundtrip() {
        let l = Md5Layout::new(3, 4, 40);
        let (s, k, w) = l.locate(0);
        assert_eq!((s, k, w), (0, 0, 0));
        let (s, k, w) = l.locate(5);
        assert_eq!((s, k, w), (0, 1, 1));
        let (s, k, w) = l.locate(8);
        assert_eq!((s, k, w), (1, 0, 0));
    }

    #[test]
    fn dev_sectors_rounded_to_chunks() {
        let l = Md5Layout::new(3, 16, 100); // 6 chunks of 16 = 96
        assert_eq!(l.stripes(), 6);
    }

    #[test]
    #[should_panic(expected = "at least 3 devices")]
    fn two_devices_rejected() {
        Md5Layout::new(2, 16, 160);
    }

    proptest! {
        #[test]
        fn every_lba_maps_to_distinct_device_sectors(
            n in 3u32..8,
            chunk in 1u64..32,
            lbas in prop::collection::vec(0u64..10_000, 2)
        ) {
            let l = Md5Layout::new(n, chunk, 10_000);
            let map = |lba: u64| {
                let (s, k, w) = l.locate(lba % l.capacity_sectors());
                (l.data_device(s, k), l.stripe_offset(s) + w)
            };
            let a = map(lbas[0]);
            let b = map(lbas[1]);
            if lbas[0] % l.capacity_sectors() != lbas[1] % l.capacity_sectors() {
                prop_assert_ne!(a, b, "distinct LBAs collided on device sector");
            }
        }
    }
}
