//! An mdraid-style software RAID-5 volume over conventional block devices.
//!
//! This is the baseline system the paper compares RAIZN against (§2.2,
//! §6). It reproduces the behaviours that matter to the evaluation:
//!
//! - chunk ("stripe unit") striping with rotating parity, like md's
//!   default left-symmetric layout;
//! - **partial-stripe writes** via read-modify-write or reconstruct-write,
//!   whichever needs fewer IOs, with a bounded in-memory **stripe cache**
//!   (the paper configures md's maximum of 128 MiB) that removes the read
//!   penalty for recently touched stripes;
//! - **degraded reads/writes** after a device failure, reconstructing
//!   missing chunks from parity;
//! - **full address-space resync** when a failed device is replaced — the
//!   contrast to RAIZN's valid-data-only rebuild in Fig. 12;
//! - no write journal (the paper's configuration: "mdraid was configured
//!   to run without a journal volume, ensuring maximum performance").
//!
//! # Examples
//!
//! ```
//! use ftl::{ConvSsd, FtlConfig, BlockDevice};
//! use mdraid5::{Md5Config, Md5Volume};
//! use zns::WriteFlags;
//! use sim::SimTime;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), zns::ZnsError> {
//! let devs: Vec<Arc<dyn BlockDevice>> = (0..3)
//!     .map(|_| Arc::new(ConvSsd::new(FtlConfig::small_test())) as Arc<dyn BlockDevice>)
//!     .collect();
//! let md = Md5Volume::new(devs, Md5Config::default())?;
//! let data = vec![9u8; 4096];
//! md.write(SimTime::ZERO, 0, &data, WriteFlags::default())?;
//! let mut out = vec![0u8; 4096];
//! md.read(SimTime::ZERO, 0, &mut out)?;
//! assert_eq!(out, data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod layout;
mod shim;
mod volume;

pub use cache::StripeCache;
pub use layout::Md5Layout;
pub use shim::ZonedBlockShim;
pub use volume::{Md5Config, Md5Volume, ResyncReport};
