//! The random-access block device interface.

use sim::SimTime;
use zns::{IoCompletion, Lba, Result, WriteFlags};

/// A conventional random-access block target: a single FTL SSD
/// ([`crate::ConvSsd`]) or a logical volume over several (mdraid-5).
///
/// Unlike [`zns::ZonedVolume`], writes may land at any LBA and overwrite
/// in place; there are no zones.
pub trait BlockDevice: Send + Sync {
    /// Usable capacity in sectors.
    fn capacity_sectors(&self) -> u64;

    /// Reads `buf.len()` bytes starting at sector `lba`. Unwritten sectors
    /// read as zeros.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the capacity or the device has failed.
    fn read(&self, at: SimTime, lba: Lba, buf: &mut [u8]) -> Result<IoCompletion>;

    /// Writes `data` starting at sector `lba`, overwriting in place.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the capacity or the device has failed.
    fn write(&self, at: SimTime, lba: Lba, data: &[u8], flags: WriteFlags) -> Result<IoCompletion>;

    /// Deallocates (`TRIM`s) the sector range, releasing flash pages.
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds the capacity or the device has failed.
    fn trim(&self, at: SimTime, lba: Lba, sectors: u64) -> Result<IoCompletion>;

    /// Makes all cached writes durable.
    ///
    /// # Errors
    ///
    /// Fails only if the device has failed.
    fn flush(&self, at: SimTime) -> Result<IoCompletion>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_d: &dyn BlockDevice) {}
    }
}
