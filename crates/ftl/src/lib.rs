//! A conventional (block-interface) SSD model with a page-mapped FTL.
//!
//! This is the baseline substrate of the RAIZN reproduction: the paper
//! compares RAIZN on ZNS SSDs against Linux `mdraid` on conventional SSDs
//! of the same hardware platform, and its headline result (Observation 3,
//! Fig. 10) is that **on-device garbage collection** makes the conventional
//! array's throughput collapse by up to 93% with 14× tail-latency
//! inflation, while ZNS devices have no device-side GC at all.
//!
//! The model implements the mechanism behind that result:
//!
//! - logical 4 KiB pages are mapped to flash pages through an L2P table;
//! - flash is organized into erase blocks written sequentially through a
//!   write frontier;
//! - overwriting a logical page invalidates its old flash page;
//! - when free blocks run low, **greedy foreground GC** picks the fullest-
//!   invalid victim block, copies its still-valid pages (paying read +
//!   program time on the same channels as host IO), erases it, and only
//!   then lets the host write proceed — producing exactly the throughput
//!   cliff and tail spikes of Fig. 10;
//! - `trim` deallocates logical ranges, relieving GC pressure (used by the
//!   zone shim that stands in for F2FS-on-mdraid).
//!
//! # Examples
//!
//! ```
//! use ftl::{ConvSsd, FtlConfig, BlockDevice};
//! use zns::WriteFlags;
//! use sim::SimTime;
//!
//! # fn main() -> Result<(), zns::ZnsError> {
//! let dev = ConvSsd::new(FtlConfig::small_test());
//! let data = vec![1u8; 4096];
//! dev.write(SimTime::ZERO, 3, &data, WriteFlags::default())?;
//! // Conventional devices allow in-place overwrite:
//! dev.write(SimTime::ZERO, 3, &data, WriteFlags::default())?;
//! let mut out = vec![0u8; 4096];
//! dev.read(SimTime::ZERO, 3, &mut out)?;
//! assert_eq!(out, data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod config;
mod ssd;
mod stats;

pub use block::BlockDevice;
pub use config::FtlConfig;
pub use ssd::ConvSsd;
pub use stats::FtlStats;
