//! FTL-level statistics: write amplification and GC accounting.

use sim::SimDuration;

/// Cumulative FTL counters, exposing the write-amplification and GC-stall
/// behaviour that drives the paper's conventional-SSD results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Flash pages written on behalf of host writes.
    pub host_pages_written: u64,
    /// Flash pages written by GC relocation.
    pub gc_pages_copied: u64,
    /// Erase-block erases performed.
    pub erases: u64,
    /// Host read pages.
    pub host_pages_read: u64,
    /// Total virtual time host writes spent stalled behind foreground GC.
    pub gc_stall: SimDuration,
    /// Number of GC victim selections.
    pub gc_runs: u64,
}

impl FtlStats {
    /// Write amplification factor: total flash writes per host write.
    /// Returns 1.0 when no host pages have been written.
    pub fn waf(&self) -> f64 {
        if self.host_pages_written == 0 {
            return 1.0;
        }
        (self.host_pages_written + self.gc_pages_copied) as f64 / self.host_pages_written as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_is_one_without_gc() {
        let s = FtlStats {
            host_pages_written: 100,
            ..Default::default()
        };
        assert_eq!(s.waf(), 1.0);
    }

    #[test]
    fn waf_counts_gc_copies() {
        let s = FtlStats {
            host_pages_written: 100,
            gc_pages_copied: 300,
            ..Default::default()
        };
        assert_eq!(s.waf(), 4.0);
    }

    #[test]
    fn waf_handles_empty() {
        assert_eq!(FtlStats::default().waf(), 1.0);
    }
}
