//! FTL SSD configuration.

use zns::LatencyConfig;

/// Configuration of a [`crate::ConvSsd`].
///
/// `op_ratio` is the overprovisioning fraction: the device has
/// `user_pages * (1 + op_ratio)` flash pages. Once the host has written
/// enough to exhaust the spare blocks, every new write forces garbage
/// collection whose cost grows with the valid-page ratio of victim blocks —
/// the mechanism behind the paper's Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct FtlConfig {
    /// Usable (logical) capacity in sectors.
    pub user_sectors: u64,
    /// Flash pages per erase block.
    pub pages_per_block: u64,
    /// Overprovisioning fraction (e.g. 0.07 for 7%).
    pub op_ratio: f64,
    /// GC triggers when free blocks drop to this count.
    pub gc_low_blocks: u64,
    /// Timing parameters (reuses the ZNS latency model; `reset` is the
    /// block-erase time).
    pub latency: LatencyConfig,
    /// Whether payload bytes are stored (false = accounting-only).
    pub store_data: bool,
}

impl FtlConfig {
    /// A small device for unit tests: 512 sectors (2 MiB) usable, 16-page
    /// blocks, 25% OP, instant timing, data stored.
    pub fn small_test() -> Self {
        FtlConfig {
            user_sectors: 512,
            pages_per_block: 16,
            op_ratio: 0.25,
            gc_low_blocks: 2,
            latency: LatencyConfig::instant(),
            store_data: true,
        }
    }

    /// A conventional SSD approximating the paper's devices, scaled down by
    /// `scale` (1 = 2 TB-class). Uses the conventional latency preset
    /// (2% faster writes, 4% faster reads than the ZNS preset) with 7% OP.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn conventional_scaled(scale: u32) -> Self {
        assert!(scale > 0, "scale must be nonzero");
        let user_sectors = 1900u64 * 275_712 / scale as u64;
        FtlConfig {
            user_sectors,
            pages_per_block: 256, // 1 MiB erase blocks
            op_ratio: 0.07,
            gc_low_blocks: 8,
            latency: LatencyConfig::conventional_ssd(),
            store_data: false,
        }
    }

    /// Total flash pages including overprovisioning.
    pub fn total_flash_pages(&self) -> u64 {
        (self.user_sectors as f64 * (1.0 + self.op_ratio)) as u64
    }

    /// Total erase blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_flash_pages() / self.pages_per_block
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unusable (no spare blocks, zero
    /// sizes, or a GC threshold that can never be satisfied).
    pub fn validate(&self) {
        assert!(self.user_sectors > 0, "user_sectors must be nonzero");
        assert!(self.pages_per_block > 0, "pages_per_block must be nonzero");
        assert!(
            self.op_ratio > 0.0,
            "op_ratio must be positive (an FTL needs spare blocks)"
        );
        let spare_pages = self.total_flash_pages() - self.user_sectors;
        let spare_blocks = spare_pages / self.pages_per_block;
        assert!(
            spare_blocks > self.gc_low_blocks,
            "overprovisioning ({spare_blocks} blocks) must exceed gc_low_blocks ({})",
            self.gc_low_blocks
        );
        assert!(self.gc_low_blocks >= 1, "gc_low_blocks must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_test_validates() {
        FtlConfig::small_test().validate();
    }

    #[test]
    fn conventional_preset_validates() {
        let c = FtlConfig::conventional_scaled(100);
        c.validate();
        assert!(c.total_flash_pages() > c.user_sectors);
    }

    #[test]
    fn capacity_math() {
        let c = FtlConfig::small_test();
        assert_eq!(c.total_flash_pages(), 640);
        assert_eq!(c.total_blocks(), 40);
    }

    #[test]
    #[should_panic(expected = "op_ratio must be positive")]
    fn zero_op_rejected() {
        let mut c = FtlConfig::small_test();
        c.op_ratio = 0.0;
        c.validate();
    }
}
