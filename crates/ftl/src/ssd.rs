//! The conventional SSD device model.

use crate::block::BlockDevice;
use crate::config::FtlConfig;
use crate::stats::FtlStats;
use parking_lot::Mutex;
use sim::{ChannelModel, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use zns::{IoCompletion, Lba, Result, WriteFlags, ZnsError, SECTOR_SIZE};

/// Sentinel for "unmapped" L2P entries and "stale" flash page slots.
const NONE32: u32 = u32::MAX;

/// A simulated conventional SSD with a page-mapped FTL and greedy
/// foreground garbage collection.
///
/// See the crate docs for the model description. All methods take `&self`;
/// state lives behind a mutex so devices can be shared between an mdraid
/// volume and a test harness.
///
/// # Examples
///
/// Overwrites eventually force GC (erase-block recycling); random
/// overwrites additionally force live-page copying (write amplification):
///
/// ```
/// use ftl::{ConvSsd, FtlConfig, BlockDevice};
/// use zns::WriteFlags;
/// use sim::SimTime;
///
/// let dev = ConvSsd::new(FtlConfig::small_test());
/// let page = vec![0u8; 4096];
/// let mut rng = sim::SimRng::new(1);
/// for lba in 0..dev.capacity_sectors() {
///     dev.write(SimTime::ZERO, lba, &page, WriteFlags::default()).unwrap();
/// }
/// for _ in 0..3 * dev.capacity_sectors() {
///     let lba = rng.gen_range(dev.capacity_sectors());
///     dev.write(SimTime::ZERO, lba, &page, WriteFlags::default()).unwrap();
/// }
/// let stats = dev.ftl_stats();
/// assert!(stats.erases > 0);
/// assert!(stats.waf() > 1.0);
/// ```
#[derive(Debug)]
pub struct ConvSsd {
    config: FtlConfig,
    inner: Mutex<Inner>,
    /// Wall-clock contention statistics for the device lock — the
    /// conventional baseline serializes every command behind one mutex
    /// (unlike the sharded RAIZN write path), and these gauges make that
    /// serialization visible next to the array's shard/meta lock gauges.
    locks: obs::LockStats,
}

#[derive(Debug)]
struct FlashBlock {
    /// Logical page stored in each slot; [`NONE32`] = stale/unwritten.
    pages: Box<[u32]>,
    /// Write frontier within the block.
    next: u32,
    /// Count of valid (live) pages.
    valid: u32,
}

impl FlashBlock {
    fn new(ppb: u64) -> Self {
        FlashBlock {
            pages: vec![NONE32; ppb as usize].into_boxed_slice(),
            next: 0,
            valid: 0,
        }
    }

    fn is_full(&self, ppb: u64) -> bool {
        self.next as u64 == ppb
    }
}

#[derive(Debug)]
struct Inner {
    /// Logical page -> flash location (`block * ppb + slot`), or NONE32.
    l2p: Vec<u32>,
    blocks: Vec<FlashBlock>,
    free_list: Vec<u32>,
    /// Current write-frontier block.
    frontier: u32,
    /// Lazy min-heap of (valid_count, block) candidates for GC victim
    /// selection; entries are revalidated on pop.
    victims: BinaryHeap<Reverse<(u32, u32)>>,
    /// Flat stored payload bytes (only in store mode), lazily grown to
    /// cover the highest written sector. Invariant: bytes of unwritten or
    /// trimmed sectors are zero, so reads are single bulk copies.
    data: Vec<u8>,
    timing: ChannelModel,
    stats: FtlStats,
    failed: bool,
    recorder: Option<std::sync::Arc<obs::Recorder>>,
    dev_id: u32,
}

/// Emits one device-level span into the attached recorder, if any.
fn trace_span(
    inner: &Inner,
    op: obs::OpClass,
    lba: Lba,
    sectors: u64,
    start: SimTime,
    end: SimTime,
) {
    if let Some(rec) = inner.recorder.as_ref() {
        rec.record(obs::TraceEvent {
            seq: 0,
            op,
            stage: obs::Stage::DeviceIo,
            path: None,
            device: inner.dev_id,
            zone: obs::NONE,
            lba,
            sectors,
            start,
            end,
            outcome: obs::Outcome::Success,
            span: 0,
            parent: obs::current_span(),
            blame: obs::current_actor(),
        });
    }
}

impl ConvSsd {
    /// Creates a fresh device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FtlConfig::validate`]).
    pub fn new(config: FtlConfig) -> Self {
        config.validate();
        let total_blocks = config.total_blocks();
        let blocks: Vec<FlashBlock> = (0..total_blocks)
            .map(|_| FlashBlock::new(config.pages_per_block))
            .collect();
        // Keep block 0 as the initial frontier; the rest are free.
        let free_list: Vec<u32> = (1..total_blocks as u32).rev().collect();
        let timing = ChannelModel::new(
            config.latency.channels,
            SimDuration::ZERO,
            SimDuration::ZERO,
            SECTOR_SIZE,
        );
        ConvSsd {
            inner: Mutex::new(Inner {
                l2p: vec![NONE32; config.user_sectors as usize],
                blocks,
                free_list,
                frontier: 0,
                victims: BinaryHeap::new(),
                data: Vec::new(),
                timing,
                stats: FtlStats::default(),
                failed: false,
                recorder: None,
                dev_id: 0,
            }),
            config,
            locks: obs::LockStats::new(),
        }
    }

    /// Attaches a trace recorder; every subsequent command emits spans
    /// tagged with `dev_id` (the device's index within its array). GC
    /// stalls are surfaced as [`obs::Counter::GcStalls`] /
    /// [`obs::Counter::GcStallNanos`].
    pub fn set_recorder(&self, recorder: std::sync::Arc<obs::Recorder>, dev_id: u32) {
        let mut inner = self.locks.lock(&self.inner);
        inner.recorder = Some(recorder);
        inner.dev_id = dev_id;
    }

    /// The device configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// FTL statistics (write amplification, GC stalls).
    pub fn ftl_stats(&self) -> FtlStats {
        self.locks.lock(&self.inner).stats
    }

    /// Marks the device failed; all subsequent IO returns
    /// [`ZnsError::DeviceFailed`].
    pub fn fail(&self) {
        self.locks.lock(&self.inner).failed = true;
    }

    /// Whether the device is failed.
    pub fn is_failed(&self) -> bool {
        self.locks.lock(&self.inner).failed
    }

    /// Number of currently free erase blocks (test observability).
    pub fn free_blocks(&self) -> usize {
        self.locks.lock(&self.inner).free_list.len()
    }

    fn check_range(&self, lba: Lba, sectors: u64) -> Result<()> {
        if sectors == 0 {
            return Err(ZnsError::InvalidArgument(
                "zero-length block IO".to_string(),
            ));
        }
        if lba + sectors > self.config.user_sectors {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        Ok(())
    }

    fn sector_count(len: usize) -> Result<u64> {
        if len == 0 || !len.is_multiple_of(SECTOR_SIZE as usize) {
            return Err(ZnsError::InvalidArgument(format!(
                "buffer length {len} is not a positive multiple of the sector size"
            )));
        }
        Ok((len / SECTOR_SIZE as usize) as u64)
    }

    /// Invalidates the current mapping of logical page `lp`, if any.
    fn invalidate(inner: &mut Inner, ppb: u64, lp: u32) {
        let loc = inner.l2p[lp as usize];
        if loc == NONE32 {
            return;
        }
        let block = (loc as u64 / ppb) as u32;
        let slot = (loc as u64 % ppb) as usize;
        let b = &mut inner.blocks[block as usize];
        debug_assert_eq!(b.pages[slot], lp);
        b.pages[slot] = NONE32;
        b.valid -= 1;
        inner.l2p[lp as usize] = NONE32;
        // Only full blocks are GC candidates; the frontier is skipped at pop.
        if b.is_full(ppb) {
            let valid = b.valid;
            inner.victims.push(Reverse((valid, block)));
        }
    }

    /// Places logical page `lp` at the write frontier, advancing it and
    /// running GC if the free pool is exhausted. Returns GC work performed
    /// (pages copied, blocks erased) for timing attribution.
    fn place(inner: &mut Inner, ppb: u64, gc_low: u64, lp: u32) -> (u64, u64) {
        let mut gc_copied = 0u64;
        let mut gc_erased = 0u64;
        if inner.blocks[inner.frontier as usize].is_full(ppb) {
            // Seal the frontier as a GC candidate and pick a new one.
            let f = inner.frontier;
            let valid = inner.blocks[f as usize].valid;
            inner.victims.push(Reverse((valid, f)));
            // Safety valve: GC cannot usefully run more often than once
            // per block in the device; break on any no-progress round.
            let mut rounds = inner.blocks.len();
            while inner.free_list.len() as u64 <= gc_low && rounds > 0 {
                let (c, e) = Self::gc_one(inner, ppb);
                gc_copied += c;
                gc_erased += e;
                if e == 0 {
                    break; // no reclaimable victim right now
                }
                rounds -= 1;
            }
            // GC relocation may itself have installed a fresh frontier;
            // only allocate another when it is (still) full — otherwise a
            // partially written block would be orphaned.
            if inner.blocks[inner.frontier as usize].is_full(ppb) {
                inner.frontier = inner
                    .free_list
                    .pop()
                    .expect("free pool exhausted: GC made no progress");
            }
        }
        let f = inner.frontier;
        let b = &mut inner.blocks[f as usize];
        let slot = b.next;
        b.pages[slot as usize] = lp;
        b.next += 1;
        b.valid += 1;
        inner.l2p[lp as usize] = (f as u64 * ppb + slot as u64) as u32;
        (gc_copied, gc_erased)
    }

    /// Erases the best GC victim, relocating its valid pages to the
    /// frontier. Returns (pages copied, blocks erased).
    fn gc_one(inner: &mut Inner, ppb: u64) -> (u64, u64) {
        inner.stats.gc_runs += 1;
        // Pop lazily-invalidated heap entries until a live candidate
        // emerges: it must be a full, non-frontier block whose recorded
        // valid count is current.
        // Entries referring to the current frontier must not be selected
        // (the frontier cannot be erased) but must not be lost either —
        // the block becomes a legitimate victim once the frontier moves
        // on. Stash and re-push them.
        let mut stash: Vec<Reverse<(u32, u32)>> = Vec::new();
        let victim = loop {
            match inner.victims.pop() {
                None => {
                    inner.victims.extend(stash);
                    return (0, 0);
                }
                Some(Reverse((valid, block))) => {
                    if block == inner.frontier {
                        let b = &inner.blocks[block as usize];
                        if b.is_full(ppb) && b.valid == valid {
                            stash.push(Reverse((valid, block)));
                        }
                        continue;
                    }
                    let b = &inner.blocks[block as usize];
                    if !b.is_full(ppb) || b.valid != valid {
                        continue; // stale lazy-heap entry
                    }
                    if valid as u64 == ppb {
                        // Fully valid: erasing it reclaims nothing (the
                        // relocation consumes exactly what the erase
                        // frees). Min-heap order means no better victim
                        // exists right now; wait for more invalidations.
                        stash.push(Reverse((valid, block)));
                        inner.victims.extend(stash);
                        return (0, 0);
                    }
                    break block;
                }
            }
        };
        inner.victims.extend(stash);
        // Detach the victim's live pages (their data is tracked through
        // the logical store, so the copy can be modelled as: erase first,
        // then re-place — guaranteeing relocation always has at least the
        // just-freed block to draw from).
        let live: Vec<u32> = inner.blocks[victim as usize]
            .pages
            .iter()
            .copied()
            .filter(|p| *p != NONE32)
            .collect();
        for lp in &live {
            inner.l2p[*lp as usize] = NONE32;
        }
        {
            let b = &mut inner.blocks[victim as usize];
            b.valid = 0;
            b.next = 0;
            b.pages.fill(NONE32);
        }
        inner.free_list.push(victim);
        inner.stats.erases += 1;
        // Relocate the live pages to the write frontier.
        let mut copied = 0u64;
        for lp in live {
            if inner.blocks[inner.frontier as usize].is_full(ppb) {
                let f = inner.frontier;
                let valid = inner.blocks[f as usize].valid;
                inner.victims.push(Reverse((valid, f)));
                inner.frontier = inner
                    .free_list
                    .pop()
                    .expect("free pool exhausted during GC relocation");
            }
            let f = inner.frontier;
            let b = &mut inner.blocks[f as usize];
            let slot = b.next;
            b.pages[slot as usize] = lp;
            b.next += 1;
            b.valid += 1;
            inner.l2p[lp as usize] = (f as u64 * ppb + slot as u64) as u32;
            copied += 1;
        }
        inner.stats.gc_pages_copied += copied;
        (copied, 1)
    }
}

impl BlockDevice for ConvSsd {
    fn capacity_sectors(&self) -> u64 {
        self.config.user_sectors
    }

    fn read(&self, at: SimTime, lba: Lba, buf: &mut [u8]) -> Result<IoCompletion> {
        let sectors = Self::sector_count(buf.len())?;
        self.check_range(lba, sectors)?;
        let mut inner = self.locks.lock(&self.inner);
        if inner.failed {
            return Err(ZnsError::DeviceFailed);
        }
        if self.config.store_data {
            // Bulk copy of the stored prefix; anything beyond the lazily
            // grown store is zero by invariant.
            let off = (lba * SECTOR_SIZE) as usize;
            let avail = inner.data.len().saturating_sub(off).min(buf.len());
            if avail > 0 {
                buf[..avail].copy_from_slice(&inner.data[off..off + avail]);
            }
            buf[avail..].fill(0);
        } else {
            buf.fill(0);
        }
        let lat = &self.config.latency;
        let start = at + lat.command_overhead;
        let mut done = start;
        let mut remaining = sectors;
        while remaining > 0 {
            let chunk = remaining.min(lat.chunk_sectors);
            let dur = lat.read_per_sector.saturating_mul(chunk);
            done = done.max(inner.timing.occupy(start, dur));
            remaining -= chunk;
        }
        inner.stats.host_pages_read += sectors;
        trace_span(&inner, obs::OpClass::Read, lba, sectors, at, done);
        Ok(IoCompletion { done })
    }

    fn write(&self, at: SimTime, lba: Lba, data: &[u8], flags: WriteFlags) -> Result<IoCompletion> {
        let sectors = Self::sector_count(data.len())?;
        self.check_range(lba, sectors)?;
        let ppb = self.config.pages_per_block;
        let gc_low = self.config.gc_low_blocks;
        let mut inner = self.locks.lock(&self.inner);
        if inner.failed {
            return Err(ZnsError::DeviceFailed);
        }
        let store = self.config.store_data;
        let mut gc_copied = 0u64;
        let mut gc_erased = 0u64;
        for i in 0..sectors {
            let lp = (lba + i) as u32;
            Self::invalidate(&mut inner, ppb, lp);
            let (c, e) = Self::place(&mut inner, ppb, gc_low, lp);
            gc_copied += c;
            gc_erased += e;
        }
        if store {
            // One bulk copy for the whole request, growing the flat store
            // (zero filled) only when the write extends past it.
            let off = (lba * SECTOR_SIZE) as usize;
            let end = off + data.len();
            if inner.data.len() < end {
                inner.data.resize(end, 0);
            }
            inner.data[off..end].copy_from_slice(data);
        }
        inner.stats.host_pages_written += sectors;

        // Timing: GC work (reads + programs + erases) occupies the channels
        // before the host write's own chunks, so foreground GC directly
        // inflates this write's latency — the Fig. 10 mechanism.
        let lat = self.config.latency.clone();
        let start = at + lat.command_overhead;
        if gc_copied > 0 || gc_erased > 0 {
            let copy_cost = (lat.read_per_sector + lat.write_per_sector).saturating_mul(gc_copied);
            let erase_cost = lat.reset.saturating_mul(gc_erased);
            let gc_busy = copy_cost + erase_cost;
            // Spread the GC work over all channels.
            let per_channel = SimDuration::from_nanos(gc_busy.as_nanos() / lat.channels as u64);
            for _ in 0..lat.channels {
                inner.timing.occupy(start, per_channel);
            }
            inner.stats.gc_stall += gc_busy;
            if let Some(rec) = inner.recorder.as_ref() {
                rec.bump(obs::Counter::GcStalls);
                rec.add(obs::Counter::GcStallNanos, gc_busy.as_nanos());
            }
        }
        let mut done = start;
        let mut remaining = sectors;
        while remaining > 0 {
            let chunk = remaining.min(lat.chunk_sectors);
            let dur = lat.write_per_sector.saturating_mul(chunk);
            done = done.max(inner.timing.occupy(start, dur));
            remaining -= chunk;
        }
        if flags.preflush || flags.fua {
            // Modelled as an extra cache-flush delay; conventional-side
            // crash consistency is out of scope (the paper benchmarks
            // mdraid without a journal).
            done += lat.flush;
            if let Some(rec) = inner.recorder.as_ref() {
                rec.bump(obs::Counter::CacheFlushes);
            }
        }
        trace_span(&inner, obs::OpClass::Write, lba, sectors, at, done);
        Ok(IoCompletion { done })
    }

    fn trim(&self, at: SimTime, lba: Lba, sectors: u64) -> Result<IoCompletion> {
        self.check_range(lba, sectors)?;
        let ppb = self.config.pages_per_block;
        let mut inner = self.locks.lock(&self.inner);
        if inner.failed {
            return Err(ZnsError::DeviceFailed);
        }
        for i in 0..sectors {
            let lp = (lba + i) as u32;
            Self::invalidate(&mut inner, ppb, lp);
        }
        if self.config.store_data {
            // Zero the trimmed range to uphold the unwritten-is-zero
            // invariant of the flat store.
            let off = (lba * SECTOR_SIZE) as usize;
            let end = (((lba + sectors) * SECTOR_SIZE) as usize).min(inner.data.len());
            if off < end {
                inner.data[off..end].fill(0);
            }
        }
        let done = inner.timing.occupy(at, self.config.latency.zone_mgmt);
        trace_span(&inner, obs::OpClass::Reset, lba, sectors, at, done);
        Ok(IoCompletion { done })
    }

    fn flush(&self, at: SimTime) -> Result<IoCompletion> {
        let inner = self.locks.lock(&self.inner);
        if inner.failed {
            return Err(ZnsError::DeviceFailed);
        }
        let done = inner.timing.drained_at().max(at) + self.config.latency.flush;
        if let Some(rec) = inner.recorder.as_ref() {
            rec.bump(obs::Counter::CacheFlushes);
            rec.record(obs::TraceEvent {
                seq: 0,
                op: obs::OpClass::Flush,
                stage: obs::Stage::Flush,
                path: None,
                device: inner.dev_id,
                zone: obs::NONE,
                lba: 0,
                sectors: 0,
                start: at,
                end: done,
                outcome: obs::Outcome::Success,
                span: 0,
                parent: obs::current_span(),
                blame: obs::current_actor(),
            });
        }
        Ok(IoCompletion { done })
    }
}

impl obs::GaugeSource for ConvSsd {
    fn source_label(&self) -> &'static str {
        "ftl"
    }

    /// Instantaneous FTL state: GC activity (runs, copied pages, stall
    /// time), write amplification, and the free-block pool — the gauges
    /// that make the conventional-SSD throughput collapse explainable.
    fn sample_gauges(&self, out: &mut Vec<obs::GaugeReading>) {
        let inner = self.locks.lock(&self.inner);
        let d = inner.dev_id;
        let free = inner.free_list.len();
        let total = inner.blocks.len().max(1);
        out.push(obs::GaugeReading::new(
            "gc_runs",
            d,
            inner.stats.gc_runs as f64,
        ));
        out.push(obs::GaugeReading::new(
            "gc_pages_copied",
            d,
            inner.stats.gc_pages_copied as f64,
        ));
        out.push(obs::GaugeReading::new(
            "gc_stall_nanos",
            d,
            inner.stats.gc_stall.as_nanos() as f64,
        ));
        out.push(obs::GaugeReading::new("waf", d, inner.stats.waf()));
        out.push(obs::GaugeReading::new("free_blocks", d, free as f64));
        out.push(obs::GaugeReading::new(
            "free_block_ratio",
            d,
            free as f64 / total as f64,
        ));
        out.push(obs::GaugeReading::new(
            "host_pages_written",
            d,
            inner.stats.host_pages_written as f64,
        ));
        drop(inner);
        self.locks.sample_gauges(d, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; SECTOR_SIZE as usize]
    }

    #[test]
    fn write_read_roundtrip() {
        let d = ConvSsd::new(FtlConfig::small_test());
        d.write(SimTime::ZERO, 10, &page(7), WriteFlags::default())
            .unwrap();
        let mut out = page(0);
        d.read(SimTime::ZERO, 10, &mut out).unwrap();
        assert_eq!(out, page(7));
    }

    #[test]
    fn overwrite_in_place_allowed() {
        let d = ConvSsd::new(FtlConfig::small_test());
        d.write(SimTime::ZERO, 0, &page(1), WriteFlags::default())
            .unwrap();
        d.write(SimTime::ZERO, 0, &page(2), WriteFlags::default())
            .unwrap();
        let mut out = page(0);
        d.read(SimTime::ZERO, 0, &mut out).unwrap();
        assert_eq!(out, page(2));
    }

    #[test]
    fn unwritten_reads_zeros() {
        let d = ConvSsd::new(FtlConfig::small_test());
        let mut out = page(9);
        d.read(SimTime::ZERO, 100, &mut out).unwrap();
        assert!(out.iter().all(|b| *b == 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let d = ConvSsd::new(FtlConfig::small_test());
        let cap = d.capacity_sectors();
        assert!(matches!(
            d.write(SimTime::ZERO, cap, &page(0), WriteFlags::default()),
            Err(ZnsError::OutOfRange { .. })
        ));
        let mut buf = page(0);
        assert!(matches!(
            d.read(SimTime::ZERO, cap, &mut buf),
            Err(ZnsError::OutOfRange { .. })
        ));
    }

    #[test]
    fn repeated_overwrites_trigger_gc() {
        // Random overwrites mix hot and cold pages into the same erase
        // blocks, so GC must copy live pages (WAF > 1). A purely
        // sequential overwrite would invalidate whole blocks at once and
        // legitimately keep WAF at 1.
        let d = ConvSsd::new(FtlConfig::small_test());
        let data = page(3);
        let mut rng = sim::SimRng::new(77);
        for lba in 0..d.capacity_sectors() {
            d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .unwrap();
        }
        for _ in 0..4 * d.capacity_sectors() {
            let lba = rng.gen_range(d.capacity_sectors());
            d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .unwrap();
        }
        let s = d.ftl_stats();
        assert!(s.erases > 0, "GC never ran: {s:?}");
        assert!(s.waf() > 1.0, "no GC copies: {s:?}");
        // Data still correct after GC relocations.
        let mut out = page(0);
        d.read(SimTime::ZERO, 123, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn sequential_overwrites_have_waf_one() {
        // The flip side: whole-device sequential overwrite invalidates
        // erase blocks wholesale, so GC never needs to copy.
        let d = ConvSsd::new(FtlConfig::small_test());
        let data = page(3);
        for _ in 0..6 {
            for lba in 0..d.capacity_sectors() {
                d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                    .unwrap();
            }
        }
        let s = d.ftl_stats();
        assert!(s.erases > 0, "blocks never recycled: {s:?}");
        assert!(
            s.waf() < 1.1,
            "sequential overwrite should be GC-copy free: {s:?}"
        );
    }

    #[test]
    fn sequential_fill_has_no_gc() {
        let d = ConvSsd::new(FtlConfig::small_test());
        for lba in 0..d.capacity_sectors() {
            d.write(SimTime::ZERO, lba, &page(1), WriteFlags::default())
                .unwrap();
        }
        // One pass fits in user capacity + OP; no GC copies needed.
        assert_eq!(d.ftl_stats().gc_pages_copied, 0);
    }

    #[test]
    fn trim_releases_pages_and_reads_zero() {
        let d = ConvSsd::new(FtlConfig::small_test());
        d.write(SimTime::ZERO, 5, &page(8), WriteFlags::default())
            .unwrap();
        d.trim(SimTime::ZERO, 5, 1).unwrap();
        let mut out = page(9);
        d.read(SimTime::ZERO, 5, &mut out).unwrap();
        assert!(out.iter().all(|b| *b == 0));
    }

    #[test]
    fn trim_reduces_gc_pressure() {
        // A workload that trims dead ranges before reusing them (like a
        // log-structured filesystem) causes far fewer GC copies than one
        // that blindly overwrites random pages.
        let run = |use_trim: bool| {
            let d = ConvSsd::new(FtlConfig::small_test());
            let data = page(1);
            let cap = d.capacity_sectors();
            let mut rng = sim::SimRng::new(9);
            for lba in 0..cap {
                d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                    .unwrap();
            }
            // Rewrite in half-device segments, random order across
            // passes; the trimming variant deallocates each segment
            // before rewriting it.
            for _ in 0..6 {
                if use_trim {
                    d.trim(SimTime::ZERO, 0, cap / 2).unwrap();
                    for lba in 0..cap / 2 {
                        d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                            .unwrap();
                    }
                } else {
                    for _ in 0..cap / 2 {
                        let lba = rng.gen_range(cap / 2);
                        d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                            .unwrap();
                    }
                }
            }
            d.ftl_stats().gc_pages_copied
        };
        let with_trim = run(true);
        let without = run(false);
        assert!(
            with_trim < without / 2 || (with_trim == 0 && without > 0),
            "trim did not help: {with_trim} vs {without}"
        );
    }

    #[test]
    fn failed_device_rejects_io() {
        let d = ConvSsd::new(FtlConfig::small_test());
        d.fail();
        assert!(d.is_failed());
        let mut buf = page(0);
        assert!(matches!(
            d.read(SimTime::ZERO, 0, &mut buf),
            Err(ZnsError::DeviceFailed)
        ));
        assert!(matches!(
            d.write(SimTime::ZERO, 0, &page(0), WriteFlags::default()),
            Err(ZnsError::DeviceFailed)
        ));
        assert!(matches!(
            d.flush(SimTime::ZERO),
            Err(ZnsError::DeviceFailed)
        ));
        assert!(matches!(
            d.trim(SimTime::ZERO, 0, 1),
            Err(ZnsError::DeviceFailed)
        ));
    }

    #[test]
    fn gc_inflates_write_latency() {
        // With realistic timing, writes during GC are much slower.
        let mut cfg = FtlConfig::small_test();
        cfg.latency = zns::LatencyConfig::conventional_ssd();
        cfg.store_data = false;
        let d = ConvSsd::new(cfg);
        let data = page(0);
        // Prime: fill the device twice to exhaust spare blocks.
        let mut t = SimTime::ZERO;
        let mut clean_lat = SimDuration::ZERO;
        for lba in 0..d.capacity_sectors() {
            let c = d.write(t, lba, &data, WriteFlags::default()).unwrap();
            clean_lat = c.done.since(t);
            t = c.done;
        }
        let mut dirty_lat = SimDuration::ZERO;
        for _ in 0..3 {
            for lba in 0..d.capacity_sectors() {
                let c = d.write(t, lba, &data, WriteFlags::default()).unwrap();
                dirty_lat = dirty_lat.max(c.done.since(t));
                t = c.done;
            }
        }
        assert!(
            dirty_lat.as_nanos() > 3 * clean_lat.as_nanos(),
            "GC stall not visible: clean={clean_lat} dirty={dirty_lat}"
        );
        assert!(d.ftl_stats().gc_stall > SimDuration::ZERO);
    }

    #[test]
    fn unaligned_buffers_rejected() {
        let d = ConvSsd::new(FtlConfig::small_test());
        assert!(matches!(
            d.write(SimTime::ZERO, 0, &[0u8; 5], WriteFlags::default()),
            Err(ZnsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn recorder_sees_io_and_gc_stalls() {
        let d = ConvSsd::new(FtlConfig::small_test());
        let rec = obs::Recorder::new(256, 1);
        d.set_recorder(rec.clone(), 1);
        let data = page(3);
        let mut rng = sim::SimRng::new(5);
        for lba in 0..d.capacity_sectors() {
            d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .unwrap();
        }
        for _ in 0..4 * d.capacity_sectors() {
            let lba = rng.gen_range(d.capacity_sectors());
            d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .unwrap();
        }
        assert!(rec.count(obs::Counter::GcStalls) > 0, "GC never stalled");
        let evs = rec.events();
        assert!(evs
            .iter()
            .all(|e| e.device == 1 && e.stage == obs::Stage::DeviceIo));
        assert!(evs.iter().any(|e| e.op == obs::OpClass::Write));
    }

    #[test]
    fn valid_page_accounting_is_consistent() {
        let d = ConvSsd::new(FtlConfig::small_test());
        let data = page(1);
        let mut rng = sim::SimRng::new(42);
        for _ in 0..3000 {
            let lba = rng.gen_range(d.capacity_sectors());
            d.write(SimTime::ZERO, lba, &data, WriteFlags::default())
                .unwrap();
        }
        // Invariant: total valid pages across blocks == mapped L2P entries.
        let inner = d.inner.lock();
        let total_valid: u64 = inner.blocks.iter().map(|b| b.valid as u64).sum();
        let mapped = inner.l2p.iter().filter(|m| **m != NONE32).count() as u64;
        assert_eq!(total_valid, mapped);
    }
}
