//! Metadata-log record format for the log-structured RAID engine.
//!
//! The engine keeps two metadata slots (physical zone 0 and zone 1,
//! replicated on devices 0 and 1). A slot always starts with a full
//! `Checkpoint` record and is followed by an append-only sequence of
//! roll-forward records: per-stripe `Summary` records written at seal
//! time, stripe-group `GroupOpen`/`GroupFree` transitions, and logical
//! `ZoneReset`/`ZoneFinish` events. When the active slot cannot hold the
//! next record the log rotates: the other slot is reset, a fresh
//! checkpoint (higher epoch) is written there, and appends continue.
//!
//! Every record is padded to whole sectors and carries a checksum, so a
//! torn tail after a crash parses as a clean durable prefix.

use zns::SECTOR_SIZE;

/// Record magic ("LSRD").
pub(crate) const MAGIC: u32 = 0x4C53_5244;

/// Record header size in bytes: magic, kind, epoch, seq, payload len,
/// checksum.
pub(crate) const HEADER_BYTES: usize = 32;

/// Record kinds.
pub(crate) mod kind {
    /// Full engine state: logical zones, group table, mapping table.
    pub const CHECKPOINT: u32 = 1;
    /// Stripe sealed: the reverse map of its data slots.
    pub const SUMMARY: u32 = 2;
    /// A stripe group was opened on a set of physical zones.
    pub const GROUP_OPEN: u32 = 3;
    /// A stripe group was reclaimed and returned to the free pool.
    pub const GROUP_FREE: u32 = 4;
    /// A logical zone was reset.
    pub const ZONE_RESET: u32 = 5;
    /// A logical zone was finished.
    pub const ZONE_FINISH: u32 = 6;
}

/// Cursor state of the replicated two-slot metadata log.
#[derive(Debug)]
pub(crate) struct MetaLog {
    /// Active slot (0 or 1); the slot index is also the physical zone.
    pub slot: usize,
    /// Sectors already written into the active slot.
    pub used: u64,
    /// Sequence number of the next record.
    pub seq: u64,
    /// Epoch of the active slot (bumped at every rotation).
    pub epoch: u64,
    /// Preallocated scratch for ordinary (non-checkpoint) records.
    pub rec_buf: Vec<u8>,
    /// Preallocated scratch for checkpoint records.
    pub ckpt_buf: Vec<u8>,
}

/// One parsed record (mount path only; allocation is fine there).
#[derive(Debug, Clone)]
pub(crate) struct Record {
    pub kind: u32,
    pub epoch: u64,
    pub seq: u64,
    pub payload: Vec<u8>,
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("u32 slice"))
}

pub(crate) fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("u64 slice"))
}

/// FNV-1a over the payload, seeded with the header identity so a record
/// copied to the wrong position fails verification.
fn checksum(kind: u32, epoch: u64, seq: u64, payload: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in kind
        .to_le_bytes()
        .into_iter()
        .chain(epoch.to_le_bytes())
        .chain(seq.to_le_bytes())
    {
        mix(b);
    }
    for &b in payload {
        mix(b);
    }
    (h ^ (h >> 32)) as u32
}

/// Seals a record under construction: `buf` holds [`HEADER_BYTES`] of
/// reserved space followed by the payload. Fills the header, stamps the
/// checksum, and zero-pads to a whole number of sectors. Returns the
/// record length in sectors.
pub(crate) fn finish_record(buf: &mut Vec<u8>, kind: u32, epoch: u64, seq: u64) -> u64 {
    let payload_len = buf.len() - HEADER_BYTES;
    let sum = checksum(kind, epoch, seq, &buf[HEADER_BYTES..]);
    buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    buf[4..8].copy_from_slice(&kind.to_le_bytes());
    buf[8..16].copy_from_slice(&epoch.to_le_bytes());
    buf[16..24].copy_from_slice(&seq.to_le_bytes());
    buf[24..28].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[28..32].copy_from_slice(&sum.to_le_bytes());
    let sectors = record_sectors(payload_len);
    buf.resize((sectors * SECTOR_SIZE) as usize, 0);
    sectors
}

/// Sectors a record with the given payload occupies on the log.
pub(crate) fn record_sectors(payload_len: usize) -> u64 {
    ((HEADER_BYTES + payload_len) as u64).div_ceil(SECTOR_SIZE)
}

/// Parses the record starting at `bytes[0]`. `bytes` must hold at least
/// one sector. Returns the record and its length in sectors, or `None`
/// if the header or checksum is invalid (a torn or unwritten tail).
pub(crate) fn parse_record(bytes: &[u8]) -> Option<(Record, u64)> {
    if bytes.len() < HEADER_BYTES || get_u32(bytes, 0) != MAGIC {
        return None;
    }
    let kind = get_u32(bytes, 4);
    let epoch = get_u64(bytes, 8);
    let seq = get_u64(bytes, 16);
    let payload_len = get_u32(bytes, 24) as usize;
    let sum = get_u32(bytes, 28);
    let sectors = record_sectors(payload_len);
    if bytes.len() < (sectors * SECTOR_SIZE) as usize {
        return None;
    }
    let payload = &bytes[HEADER_BYTES..HEADER_BYTES + payload_len];
    if checksum(kind, epoch, seq, payload) != sum {
        return None;
    }
    Some((
        Record {
            kind,
            epoch,
            seq,
            payload: payload.to_vec(),
        },
        sectors,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let mut buf = vec![0u8; HEADER_BYTES];
        put_u32(&mut buf, 7);
        put_u64(&mut buf, 0xdead_beef);
        let sectors = finish_record(&mut buf, kind::SUMMARY, 3, 41);
        assert_eq!(sectors, 1);
        assert_eq!(buf.len() as u64, SECTOR_SIZE);
        let (rec, n) = parse_record(&buf).expect("valid record");
        assert_eq!(n, 1);
        assert_eq!(rec.kind, kind::SUMMARY);
        assert_eq!(rec.epoch, 3);
        assert_eq!(rec.seq, 41);
        assert_eq!(get_u32(&rec.payload, 0), 7);
        assert_eq!(get_u64(&rec.payload, 4), 0xdead_beef);
    }

    #[test]
    fn torn_record_rejected() {
        let mut buf = vec![0u8; HEADER_BYTES];
        put_u64(&mut buf, 99);
        finish_record(&mut buf, kind::GROUP_FREE, 1, 1);
        // Flip a payload byte: checksum must fail.
        buf[HEADER_BYTES] ^= 0xff;
        assert!(parse_record(&buf).is_none());
        // Zeroed (unwritten) sector: magic must fail.
        assert!(parse_record(&[0u8; 4096]).is_none());
    }
}
