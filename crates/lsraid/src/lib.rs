//! lsraid: a log-structured RAID engine behind the [`ZonedVolume`] trait.
//!
//! Where RAIZN (the `raizn` crate) preserves the physical zone layout and
//! pays for partial-stripe durability with a partial-parity log, this
//! engine takes the opposite point in the design space: **every** write —
//! user data, GC migration, or zero padding — is appended into a
//! dynamically allocated *stripe group*, and parity is only ever computed
//! over full stripes. There is no partial-parity log and no
//! read-modify-write, at the cost of a logical→physical mapping table and
//! a RAID-level garbage collector that migrates valid data out of victim
//! groups before their zones are reset.
//!
//! # Layout
//!
//! A stripe group owns one physical zone on each of the `n` devices.
//! Within a group, stripe `s` occupies sectors `[s*K, (s+1)*K)` of every
//! member zone (`K` = stripe unit). Parity placement rotates by stripe
//! (`P` on device `s % n`, `Q` on `(s+1) % n` for dual parity), so parity
//! load spreads across the array exactly like classic RAID-5/6 rotation.
//! Physical zones 0 and 1 on every device are reserved; devices 0 and 1
//! use them as the two slots of a replicated, checksummed metadata log.
//!
//! # Crash consistency
//!
//! The mapping table is made durable by checkpoint + roll-forward: the
//! active metadata slot starts with a full checkpoint record and accrues
//! per-stripe seal summaries, group open/free transitions and logical
//! zone reset/finish events, all FUA-written and individually
//! checksummed. At mount the highest-epoch slot is replayed in sequence
//! order; a seal summary is only applied when every member zone provably
//! holds the stripe's data (device write pointers survived the crash),
//! which truncates each logical zone to its durable prefix. Mount ends by
//! rotating to a fresh checkpoint so recovery repairs are durable.
//!
//! Group reclaim follows a strict ordering invariant: migrated data is
//! sealed and flushed *before* the `GroupFree` record is written, and the
//! victim's zones are reset only after that record is durable. A crash at
//! any intermediate point either replays the group as live (zones still
//! hold data) or as free (all valid data already durable elsewhere).

#![warn(missing_docs)]

mod gc;
mod meta;

pub use gc::{DirectSink, GcConfig, GcManager, GcSink};

use meta::{finish_record, kind, parse_record, put_u32, put_u64, MetaLog, Record, HEADER_BYTES};
use parking_lot::{Mutex, RwLock};
use sim::SimTime;
use std::sync::Arc;
use zns::{
    AppendCompletion, IoCompletion, Lba, Result, WriteFlags, ZnsDevice, ZnsError, ZoneGeometry,
    ZoneInfo, ZoneState, ZonedVolume, SECTOR_SIZE,
};

/// Sentinel for an unmapped logical sector / empty reverse-map slot.
const NONE64: u64 = u64::MAX;
/// Sentinel for "no physical zone assigned".
const NO_ZONE: u32 = u32::MAX;
/// Bits of a packed physical address holding the in-group slot index.
const SLOT_BITS: u32 = 40;
/// Physical zones 0..META_ZONES are reserved on every device.
const META_ZONES: u32 = 2;
/// The metadata log is replicated on the first two devices.
const META_DEVICES: usize = 2;
/// Stream index for foreground (hot) data.
const HOT: usize = 0;
/// Stream index for GC-migrated (cold) data.
const COLD: usize = 1;
/// Number of write streams: the foreground hot stream plus two cold
/// generations. Survivors of a hot-group collection go to generation 1;
/// survivors of a cold-group collection have proven cold twice and go
/// to generation 2, where they stop being remixed with warm newcomers.
const STREAMS: usize = 3;

/// Packs a stripe-group index and in-group slot into one map word.
fn enc(g: u32, slot: u64) -> u64 {
    (u64::from(g) << SLOT_BITS) | slot
}

/// The stripe group a packed physical address lives in.
fn group_of(pa: u64) -> u32 {
    (pa >> SLOT_BITS) as u32
}

/// The in-group data-slot index of a packed physical address.
fn slot_of(pa: u64) -> u64 {
    pa & ((1u64 << SLOT_BITS) - 1)
}

/// Configuration of a log-structured RAID volume.
#[derive(Debug, Clone)]
pub struct LsConfig {
    /// Stripe unit in sectors (must divide the device zone capacity).
    pub stripe_unit: u64,
    /// Parity units per stripe: 1 (RAID-5-like) or 2 (RAID-6-like).
    pub parity: u32,
    /// Fraction of spendable capacity held back as over-provisioning;
    /// raising it gives GC more slack and lowers write amplification.
    pub op_ratio: f64,
    /// Free stripe groups kept in reserve; dropping to the reserve
    /// triggers an inline (emergency) collection that stalls the write.
    /// Must be at least 2: draining a victim can consume one free group
    /// for survivors before the victim's own reclaim returns a group,
    /// and the write that triggered the collection takes another.
    pub reserve_groups: u32,
}

impl Default for LsConfig {
    fn default() -> Self {
        LsConfig {
            stripe_unit: 16,
            parity: 1,
            op_ratio: 0.20,
            reserve_groups: 2,
        }
    }
}

impl LsConfig {
    /// Sets the stripe unit in sectors.
    #[must_use]
    pub fn stripe_unit(mut self, sectors: u64) -> Self {
        self.stripe_unit = sectors;
        self
    }

    /// Sets the parity count (1 or 2).
    #[must_use]
    pub fn parity(mut self, parity: u32) -> Self {
        self.parity = parity;
        self
    }

    /// Sets the over-provisioning ratio in `[0, 0.9]`.
    #[must_use]
    pub fn op_ratio(mut self, ratio: f64) -> Self {
        self.op_ratio = ratio;
        self
    }

    /// Sets the reserved free-group count.
    #[must_use]
    pub fn reserve_groups(mut self, groups: u32) -> Self {
        self.reserve_groups = groups;
        self
    }
}

/// Write-accounting snapshot of a volume (sector counts on the data
/// path; parity is reported separately and excluded from
/// [`LsVolume::waf`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsStats {
    /// Sectors of user data logged (foreground writes and appends).
    pub user_sectors: u64,
    /// Valid sectors rewritten by GC migration.
    pub migrated_sectors: u64,
    /// Zero-pad sectors written to seal partial stripes at flush points.
    pub pad_sectors: u64,
    /// Parity sectors written (P and Q units).
    pub parity_sectors: u64,
    /// Stripe groups reclaimed (zones reset and returned to the pool).
    pub group_reclaims: u64,
    /// Inline collections that stalled a foreground write.
    pub emergency_reclaims: u64,
    /// Stripe groups opened.
    pub groups_opened: u64,
    /// Metadata records committed.
    pub meta_records: u64,
    /// Metadata slot rotations (checkpoint rewrites).
    pub meta_rotations: u64,
}

/// Result of a full-array parity scrub.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsScrubReport {
    /// Sealed stripes verified.
    pub stripes: u64,
    /// Stripes whose XOR parity did not verify.
    pub parity_errors: u64,
    /// Stripes whose Q (Reed–Solomon) parity did not verify.
    pub q_errors: u64,
}

/// Lifecycle state of a stripe group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GState {
    /// No zones assigned; available for allocation.
    Free,
    /// Accepting appends on the given stream (0 = hot, 1 = cold).
    Open(u8),
    /// All stripes sealed; immutable until reclaimed.
    Sealed,
}

/// In-flight parity accumulator for the open stripe of a group.
#[derive(Debug)]
struct StripeBuf {
    p: Vec<u8>,
    q: Vec<u8>,
}

impl StripeBuf {
    fn new(k: u64, dual: bool) -> StripeBuf {
        let bytes = (k * SECTOR_SIZE) as usize;
        StripeBuf {
            p: vec![0u8; bytes],
            q: if dual { vec![0u8; bytes] } else { Vec::new() },
        }
    }

    fn clear(&mut self) {
        self.p.fill(0);
        self.q.fill(0);
    }
}

/// One stripe group: a RAID stripe set over one zone per device.
#[derive(Debug)]
struct Group {
    state: GState,
    /// Member zone per device (`NO_ZONE` when free).
    zones: Vec<u32>,
    /// Stripes sealed so far (also the index of the open stripe).
    sealed: u64,
    /// Data slots filled in the open stripe (0..kd).
    fill: u64,
    /// Live mapped sectors in this group.
    valid: u64,
    /// Allocation sequence number (GC tie-break: older first).
    created: u64,
    /// Write-stream generation this group was filled under (0 = hot
    /// foreground, 1/2 = cold generations). Migration out of a victim
    /// targets `min(gen + 1, STREAMS - 1)`.
    gen: u8,
    /// Latest completion among the open stripe's data writes; the seal's
    /// parity write issues no earlier than this.
    stripe_issue: SimTime,
    /// Reverse map: logical sector per data slot (`NONE64` = garbage).
    lbas: Vec<u64>,
    /// Parity accumulator, held only while open.
    buf: Option<StripeBuf>,
}

/// One logical zone exposed through [`ZonedVolume`].
#[derive(Debug, Clone, Copy)]
struct LZone {
    wp: u64,
    state: ZoneState,
}

/// How a run of sectors enters the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LogMode {
    /// Foreground data: maps unconditionally.
    User,
    /// GC migration: maps only if the source mapping is still current.
    Gc,
    /// Zero fill to a stripe boundary: never mapped.
    Pad,
}

#[derive(Debug)]
struct LsInner {
    /// Logical sector → packed physical address (`NONE64` = unmapped).
    map: Vec<u64>,
    lz: Vec<LZone>,
    groups: Vec<Group>,
    /// Per-device free physical zones (popped lowest-index first).
    free_zones: Vec<Vec<u32>>,
    /// Free stripe groups (popped lowest-index first).
    free_groups: Vec<u32>,
    /// Open group per stream (`[hot, cold gen 1, cold gen 2]`).
    open: [Option<u32>; STREAMS],
    /// Group currently being drained by GC; guards migration remaps.
    migrating: Option<u32>,
    /// Set while an inline emergency collection runs (re-entrancy guard).
    in_emergency: bool,
    created_seq: u64,
    /// Pool of parity accumulators (one per possible open group).
    bufs: Vec<StripeBuf>,
    /// Zero source for padding (one stripe unit).
    zeros: Vec<u8>,
    /// Bounce buffer for emergency-GC migration reads.
    gc_buf: Vec<u8>,
    meta: MetaLog,
    /// Reserved metadata headroom so a rotation's pad-seal summaries
    /// always fit in the active slot.
    rotating: bool,
    c_user: u64,
    c_migrated: u64,
    c_pads: u64,
    c_parity: u64,
    c_group_reclaims: u64,
    c_emergency: u64,
    c_groups_opened: u64,
}

/// A log-structured RAID array over a set of [`ZnsDevice`]s.
///
/// See the crate docs for the design. All methods take `&self`; one
/// internal mutex serializes engine state (device IO cost is accounted
/// on the virtual timeline, so the lock is never held across real
/// waiting).
pub struct LsVolume {
    devices: Vec<Arc<ZnsDevice>>,
    config: LsConfig,
    /// Physical (device) zone layout.
    phys: ZoneGeometry,
    /// Logical layout exposed through [`ZonedVolume`]; `zone_size ==
    /// zone_cap`, so logical LBAs are dense.
    geo: ZoneGeometry,
    n: usize,
    p: usize,
    /// Data units per stripe (`n - p`).
    d: usize,
    /// Stripe unit in sectors.
    k: u64,
    /// Stripes per group (`zone_cap / k`).
    s: u64,
    /// Data slots per stripe (`k * d`).
    kd: u64,
    /// Data slots per group (`s * kd`).
    group_cap: u64,
    /// Metadata headroom (sectors) that forces early rotation so the
    /// rotation's own pad-seal summaries still fit.
    meta_headroom: u64,
    inner: Mutex<LsInner>,
    recorder: RwLock<Option<Arc<obs::Recorder>>>,
}

impl std::fmt::Debug for LsVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsVolume")
            .field("devices", &self.n)
            .field("parity", &self.p)
            .field("stripe_unit", &self.k)
            .field("group_cap", &self.group_cap)
            .finish_non_exhaustive()
    }
}

fn invalid(msg: &str) -> ZnsError {
    ZnsError::InvalidArgument(msg.to_string())
}

fn zstate_code(s: ZoneState) -> u32 {
    match s {
        ZoneState::Empty => 0,
        ZoneState::ImplicitlyOpen => 1,
        ZoneState::ExplicitlyOpen => 2,
        ZoneState::Closed => 3,
        _ => 4,
    }
}

fn zstate_decode(c: u32) -> ZoneState {
    match c {
        0 => ZoneState::Empty,
        1 => ZoneState::ImplicitlyOpen,
        2 => ZoneState::ExplicitlyOpen,
        3 => ZoneState::Closed,
        _ => ZoneState::Full,
    }
}

fn gstate_code(s: GState) -> u32 {
    match s {
        GState::Free => 0,
        GState::Open(stream) => 1 + u32::from(stream),
        GState::Sealed => 4,
    }
}

fn gstate_decode(c: u32) -> GState {
    match c {
        0 => GState::Free,
        c @ 1..=3 => GState::Open((c - 1) as u8),
        _ => GState::Sealed,
    }
}

/// Bounds-checked little-endian reader for mount-path record parsing.
struct Rd<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, off: 0 }
    }

    fn u32(&mut self) -> Result<u32> {
        if self.off + 4 > self.b.len() {
            return Err(invalid("lsraid: truncated metadata record"));
        }
        let v = meta::get_u32(self.b, self.off);
        self.off += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64> {
        if self.off + 8 > self.b.len() {
            return Err(invalid("lsraid: truncated metadata record"));
        }
        let v = meta::get_u64(self.b, self.off);
        self.off += 8;
        Ok(v)
    }
}

impl LsVolume {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Initializes a fresh array: wipes every zone on every device and
    /// writes the initial checkpoint (epoch 1) to metadata slot 0.
    ///
    /// # Errors
    ///
    /// Fails if the device set or configuration is invalid, or on device
    /// IO failure.
    pub fn format(devices: Vec<Arc<ZnsDevice>>, config: LsConfig, at: SimTime) -> Result<LsVolume> {
        let vol = Self::assemble(devices, config)?;
        {
            let mut inner = vol.inner.lock();
            let mut t = at;
            for dev in &vol.devices {
                let mut td = at;
                for z in 0..vol.phys.num_zones() {
                    if dev.zone_info(z)?.state != ZoneState::Empty {
                        td = dev.reset_zone(td, z)?.done;
                    }
                }
                t = t.max(td);
            }
            inner.meta.epoch = 1;
            inner.meta.slot = 0;
            inner.meta.used = 0;
            inner.meta.seq = 0;
            vol.write_checkpoint(&mut inner, t)?;
        }
        Ok(vol)
    }

    /// Mounts an existing array: picks the highest-epoch metadata slot,
    /// replays its roll-forward records (validating every seal summary
    /// against the surviving device write pointers), trims each logical
    /// zone to its durable prefix, and rotates to a fresh checkpoint so
    /// the recovered state is durable.
    ///
    /// # Errors
    ///
    /// Fails if no slot holds a valid checkpoint, the on-disk layout
    /// disagrees with `config`, or device IO fails.
    pub fn mount(devices: Vec<Arc<ZnsDevice>>, config: LsConfig, at: SimTime) -> Result<LsVolume> {
        let vol = Self::assemble(devices, config)?;
        {
            let mut inner = vol.inner.lock();
            let s0 = vol.read_slot(0, at);
            let s1 = vol.read_slot(1, at);
            let (slot, epoch, records) = match (s0, s1) {
                (Some((e0, r0)), Some((e1, r1))) => {
                    if e0 >= e1 {
                        (0u32, e0, r0)
                    } else {
                        (1, e1, r1)
                    }
                }
                (Some((e0, r0)), None) => (0, e0, r0),
                (None, Some((e1, r1))) => (1, e1, r1),
                (None, None) => return Err(invalid("lsraid: no valid metadata checkpoint found")),
            };
            vol.replay(&mut inner, slot, epoch, &records)?;
            vol.finish_mount(&mut inner);
            // Rotating gives the repaired state a durable checkpoint and
            // guarantees post-mount records never interleave with the
            // pre-crash log.
            vol.rotate_meta(&mut inner, at)?;
        }
        Ok(vol)
    }

    fn assemble(devices: Vec<Arc<ZnsDevice>>, config: LsConfig) -> Result<LsVolume> {
        let n = devices.len();
        let p = config.parity as usize;
        if !(1..=2).contains(&p) {
            return Err(invalid("lsraid: parity must be 1 or 2"));
        }
        if n < p + 2 || n > 64 {
            return Err(invalid("lsraid: need parity + 2 ..= 64 devices"));
        }
        if !(0.0..=0.9).contains(&config.op_ratio) {
            return Err(invalid("lsraid: op_ratio must be in [0, 0.9]"));
        }
        let phys = devices[0].config().geometry();
        for dev in &devices[1..] {
            let g = dev.config().geometry();
            if g.num_zones() != phys.num_zones()
                || g.zone_size() != phys.zone_size()
                || g.zone_cap() != phys.zone_cap()
            {
                return Err(invalid("lsraid: devices disagree on geometry"));
            }
        }
        let k = config.stripe_unit;
        let c = phys.zone_cap();
        if k == 0 || !c.is_multiple_of(k) {
            return Err(invalid("lsraid: stripe unit must divide zone capacity"));
        }
        let d = n - p;
        let s = c / k;
        let kd = k * d as u64;
        let group_cap = s * kd;
        if phys.num_zones() < META_ZONES + config.reserve_groups + 3 {
            return Err(invalid("lsraid: too few zones per device"));
        }
        let g_total = phys.num_zones() - META_ZONES;
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let user_sectors =
            ((u64::from(g_total) - 2) as f64 * group_cap as f64 * (1.0 - config.op_ratio)) as u64;
        let l_zones = (user_sectors / c) as u32;
        if l_zones == 0 {
            return Err(invalid("lsraid: capacity too small for one logical zone"));
        }
        let geo = ZoneGeometry::new(l_zones, c, c);

        let map = vec![NONE64; (u64::from(l_zones) * c) as usize];
        let lz = vec![
            LZone {
                wp: 0,
                state: ZoneState::Empty,
            };
            l_zones as usize
        ];
        let groups: Vec<Group> = (0..g_total)
            .map(|_| Group {
                state: GState::Free,
                zones: vec![NO_ZONE; n],
                sealed: 0,
                fill: 0,
                valid: 0,
                created: 0,
                gen: 0,
                stripe_issue: SimTime::ZERO,
                lbas: vec![NONE64; group_cap as usize],
                buf: None,
            })
            .collect();
        let free_zones: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let mut v = Vec::with_capacity(g_total as usize);
                for z in (META_ZONES..phys.num_zones()).rev() {
                    v.push(z);
                }
                v
            })
            .collect();
        let free_groups: Vec<u32> = (0..g_total).rev().collect();
        let bufs = (0..STREAMS).map(|_| StripeBuf::new(k, p == 2)).collect();

        // Metadata scratch: the summary record is the largest ordinary
        // record; the checkpoint dominates everything.
        let summary_payload = 16 + kd as usize * 8;
        let rec_cap = (meta::record_sectors(summary_payload) * SECTOR_SIZE) as usize;
        let ckpt_payload = 24 + lz.len() * 16 + groups.len() * (24 + n * 4) + map.len() * 8;
        let ckpt_sectors = meta::record_sectors(ckpt_payload);
        let meta_headroom = 4 * meta::record_sectors(summary_payload);
        if ckpt_sectors + meta_headroom + 1 > c {
            return Err(invalid("lsraid: checkpoint does not fit the metadata zone"));
        }

        let inner = LsInner {
            map,
            lz,
            groups,
            free_zones,
            free_groups,
            open: [None; STREAMS],
            migrating: None,
            in_emergency: false,
            created_seq: 0,
            bufs,
            zeros: vec![0u8; (k * SECTOR_SIZE) as usize],
            gc_buf: vec![0u8; (k * SECTOR_SIZE) as usize],
            meta: MetaLog {
                slot: 0,
                used: 0,
                seq: 0,
                epoch: 0,
                rec_buf: Vec::with_capacity(rec_cap),
                ckpt_buf: Vec::with_capacity((ckpt_sectors * SECTOR_SIZE) as usize),
            },
            rotating: false,
            c_user: 0,
            c_migrated: 0,
            c_pads: 0,
            c_parity: 0,
            c_group_reclaims: 0,
            c_emergency: 0,
            c_groups_opened: 0,
        };

        Ok(LsVolume {
            devices,
            config,
            phys,
            geo,
            n,
            p,
            d,
            k,
            s,
            kd,
            group_cap,
            meta_headroom,
            inner: Mutex::new(inner),
            recorder: RwLock::new(None),
        })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Attaches an observability recorder for volume-layer spans and
    /// counters (device-layer spans attach via each device).
    pub fn set_recorder(&self, recorder: Arc<obs::Recorder>) {
        *self.recorder.write() = Some(recorder);
    }

    /// The member devices.
    pub fn devices(&self) -> &[Arc<ZnsDevice>] {
        &self.devices
    }

    /// The engine configuration.
    pub fn config(&self) -> &LsConfig {
        &self.config
    }

    /// Stripe unit in sectors (the natural GC migration granule).
    pub fn stripe_unit(&self) -> u64 {
        self.k
    }

    /// Data slots per stripe group.
    pub fn group_capacity(&self) -> u64 {
        self.group_cap
    }

    /// Write-accounting snapshot.
    pub fn stats(&self) -> LsStats {
        let inner = self.inner.lock();
        LsStats {
            user_sectors: inner.c_user,
            migrated_sectors: inner.c_migrated,
            pad_sectors: inner.c_pads,
            parity_sectors: inner.c_parity,
            group_reclaims: inner.c_group_reclaims,
            emergency_reclaims: inner.c_emergency,
            groups_opened: inner.c_groups_opened,
            meta_records: inner.meta.seq,
            meta_rotations: inner.meta.epoch.saturating_sub(1),
        }
    }

    /// Data-path write amplification: `(user + migrated + pads) / user`.
    /// Parity is excluded (it is the RAID tax, not a log-structuring
    /// cost) and reported via [`LsStats::parity_sectors`]. Exactly 1.0
    /// until GC migrates or a flush pads.
    pub fn waf(&self) -> f64 {
        let inner = self.inner.lock();
        Self::waf_inner(&inner)
    }

    #[allow(clippy::cast_precision_loss)]
    fn waf_inner(inner: &LsInner) -> f64 {
        if inner.c_user == 0 {
            return 1.0;
        }
        (inner.c_user + inner.c_migrated + inner.c_pads) as f64 / inner.c_user as f64
    }

    /// Fraction of sealed-group capacity that is garbage (0.0 when no
    /// group is sealed).
    pub fn garbage_ratio(&self) -> f64 {
        let inner = self.inner.lock();
        self.garbage_ratio_inner(&inner)
    }

    #[allow(clippy::cast_precision_loss)]
    fn garbage_ratio_inner(&self, inner: &LsInner) -> f64 {
        let mut garbage = 0u64;
        let mut total = 0u64;
        for g in &inner.groups {
            if g.state == GState::Sealed {
                garbage += self.group_cap - g.valid;
                total += self.group_cap;
            }
        }
        if total == 0 {
            0.0
        } else {
            garbage as f64 / total as f64
        }
    }

    // ------------------------------------------------------------------
    // Tracing (mirrors the raizn-core idiom; volume spans carry
    // device == obs::NONE, device attribution lives in device spans)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn trace_span(
        &self,
        op: obs::OpClass,
        stage: obs::Stage,
        path: Option<obs::PathKind>,
        zone: u32,
        lba: Lba,
        sectors: u64,
        start: SimTime,
        end: SimTime,
    ) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.record(obs::TraceEvent {
                seq: 0,
                op,
                stage,
                path,
                device: obs::NONE,
                zone,
                lba,
                sectors,
                start,
                end,
                outcome: obs::Outcome::Success,
                span: 0,
                parent: obs::current_span(),
                blame: obs::current_actor(),
            });
        }
    }

    fn begin_span(&self) -> (u64, u64, obs::SpanScope) {
        let parent = obs::current_span();
        let span = self.recorder.read().as_ref().map_or(0, |r| r.new_span());
        (span, parent, obs::span_scope(span))
    }

    #[allow(clippy::too_many_arguments)]
    fn trace_root(
        &self,
        op: obs::OpClass,
        zone: u32,
        lba: Lba,
        sectors: u64,
        start: SimTime,
        end: SimTime,
        span: u64,
        parent: u64,
    ) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.record(obs::TraceEvent {
                seq: 0,
                op,
                stage: obs::Stage::WholeOp,
                path: None,
                device: obs::NONE,
                zone,
                lba,
                sectors,
                start,
                end,
                outcome: obs::Outcome::Success,
                span,
                parent,
                blame: obs::current_actor(),
            });
        }
    }

    fn mark_lock(&self, op: obs::OpClass, zone: u32, at: SimTime) {
        if let Some(rec) = self.recorder.read().as_ref() {
            if rec.spans_enabled() {
                rec.record(obs::TraceEvent {
                    seq: 0,
                    op,
                    stage: obs::Stage::LockWait,
                    path: None,
                    device: obs::NONE,
                    zone,
                    lba: 0,
                    sectors: 0,
                    start: at,
                    end: at,
                    outcome: obs::Outcome::Success,
                    span: 0,
                    parent: obs::current_span(),
                    blame: obs::current_actor(),
                });
            }
        }
    }

    fn bump(&self, counter: obs::Counter) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.bump(counter);
        }
    }

    fn addc(&self, counter: obs::Counter, n: u64) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.add(counter, n);
        }
    }

    // ------------------------------------------------------------------
    // Geometry helpers
    // ------------------------------------------------------------------

    /// The device holding data unit `unit` of `stripe` (parity rotates:
    /// P on `stripe % n`, Q on `stripe + 1 % n`; data units skip them).
    fn data_dev(&self, stripe: u64, unit: usize) -> usize {
        let p0 = (stripe % self.n as u64) as usize;
        if self.p == 1 {
            let mut dev = unit;
            if dev >= p0 {
                dev += 1;
            }
            dev
        } else {
            let p1 = (p0 + 1) % self.n;
            let (lo, hi) = if p0 < p1 { (p0, p1) } else { (p1, p0) };
            let mut dev = unit;
            if dev >= lo {
                dev += 1;
            }
            if dev >= hi {
                dev += 1;
            }
            dev
        }
    }

    /// Device index and physical LBA of a data slot in group `g`.
    fn locate_slot(&self, inner: &LsInner, g: u32, slot: u64) -> (usize, Lba) {
        let stripe = slot / self.kd;
        let off = slot % self.kd;
        let unit = (off / self.k) as usize;
        let sec = off % self.k;
        let dev = self.data_dev(stripe, unit);
        let zone = inner.groups[g as usize].zones[dev];
        (dev, self.phys.zone_start(zone) + stripe * self.k + sec)
    }

    // ------------------------------------------------------------------
    // Metadata log
    // ------------------------------------------------------------------

    /// Writes `buf` (a finished record) to both metadata replicas with
    /// FUA and advances the log cursor.
    fn meta_write(
        &self,
        inner: &mut LsInner,
        t: SimTime,
        buf: &[u8],
        sectors: u64,
    ) -> Result<SimTime> {
        let lba = self.phys.zone_start(inner.meta.slot as u32) + inner.meta.used;
        let mut done = t;
        for dev in self.devices.iter().take(META_DEVICES) {
            done = done.max(dev.write(t, lba, buf, WriteFlags::FUA)?.done);
        }
        inner.meta.used += sectors;
        inner.meta.seq += 1;
        self.trace_span(
            obs::OpClass::Write,
            obs::Stage::MetaAppend,
            None,
            obs::NONE,
            lba,
            sectors,
            t,
            done,
        );
        Ok(done)
    }

    /// Commits one roll-forward record built by `build`, rotating the
    /// log first when the active slot is (almost) full. The headroom
    /// check triggers early enough that the rotation's own pad-seal
    /// summaries always fit in the old slot. `build` serializes from
    /// engine state and is re-invoked after a rotation (the rotated log
    /// starts from a fresh checkpoint, so the record must restate itself
    /// under the new epoch).
    fn commit_record(
        &self,
        inner: &mut LsInner,
        t: SimTime,
        rec_kind: u32,
        build: impl Fn(&LsInner, &mut Vec<u8>),
    ) -> Result<SimTime> {
        let mut buf = std::mem::take(&mut inner.meta.rec_buf);
        buf.clear();
        buf.resize(HEADER_BYTES, 0);
        build(inner, &mut buf);
        let sectors = meta::record_sectors(buf.len() - HEADER_BYTES);
        let mut t = t;
        if !inner.rotating && inner.meta.used + sectors + self.meta_headroom > self.phys.zone_cap()
        {
            // Rotation pads/seals open stripes, so it may itself commit
            // summary records; restore the scratch buffer first.
            inner.meta.rec_buf = buf;
            t = self.rotate_meta(inner, t)?;
            buf = std::mem::take(&mut inner.meta.rec_buf);
            buf.clear();
            buf.resize(HEADER_BYTES, 0);
            build(inner, &mut buf);
        }
        let n = finish_record(&mut buf, rec_kind, inner.meta.epoch, inner.meta.seq);
        let done = self.meta_write(inner, t, &buf, n);
        inner.meta.rec_buf = buf;
        done
    }

    /// Rotates the metadata log: makes all logged state durable (pad-seal
    /// plus device flush), resets the inactive slot, bumps the epoch and
    /// writes a fresh checkpoint there. The durability barrier is what
    /// lets the checkpoint's mapping table be trusted verbatim at mount.
    fn rotate_meta(&self, inner: &mut LsInner, t: SimTime) -> Result<SimTime> {
        inner.rotating = true;
        let res = self.rotate_meta_guarded(inner, t);
        inner.rotating = false;
        res
    }

    fn rotate_meta_guarded(&self, inner: &mut LsInner, t: SimTime) -> Result<SimTime> {
        let t = self.flush_inner(inner, t)?;
        let other = 1 - inner.meta.slot;
        let mut done = t;
        for dev in self.devices.iter().take(META_DEVICES) {
            if dev.zone_info(other as u32)?.state != ZoneState::Empty {
                done = done.max(dev.reset_zone(t, other as u32)?.done);
            }
        }
        inner.meta.slot = other;
        inner.meta.used = 0;
        inner.meta.epoch += 1;
        self.write_checkpoint(inner, done)
    }

    fn write_checkpoint(&self, inner: &mut LsInner, t: SimTime) -> Result<SimTime> {
        let mut buf = std::mem::take(&mut inner.meta.ckpt_buf);
        buf.clear();
        buf.resize(HEADER_BYTES, 0);
        self.build_checkpoint(inner, &mut buf);
        let n = finish_record(&mut buf, kind::CHECKPOINT, inner.meta.epoch, inner.meta.seq);
        let done = self.meta_write(inner, t, &buf, n);
        inner.meta.ckpt_buf = buf;
        done
    }

    fn build_checkpoint(&self, inner: &LsInner, buf: &mut Vec<u8>) {
        put_u32(buf, self.geo.num_zones());
        put_u32(buf, self.n as u32);
        put_u32(buf, inner.groups.len() as u32);
        put_u32(buf, 0);
        put_u64(buf, inner.map.len() as u64);
        put_u64(buf, inner.created_seq);
        for z in &inner.lz {
            put_u64(buf, z.wp);
            put_u32(buf, zstate_code(z.state));
            put_u32(buf, 0);
        }
        for g in &inner.groups {
            put_u32(buf, gstate_code(g.state));
            put_u32(buf, u32::from(g.gen));
            put_u64(buf, g.sealed);
            put_u64(buf, g.created);
            for &z in &g.zones {
                put_u32(buf, z);
            }
        }
        for &pa in &inner.map {
            put_u64(buf, pa);
        }
    }

    // ------------------------------------------------------------------
    // Mount path
    // ------------------------------------------------------------------

    /// Reads and parses one metadata slot, preferring the primary
    /// replica and falling back to the secondary.
    fn read_slot(&self, slot: u32, at: SimTime) -> Option<(u64, Vec<Record>)> {
        (0..META_DEVICES).find_map(|di| self.read_slot_from(di, slot, at))
    }

    fn read_slot_from(&self, di: usize, slot: u32, at: SimTime) -> Option<(u64, Vec<Record>)> {
        let dev = &self.devices[di];
        let info = dev.zone_info(slot).ok()?;
        let written = info.written();
        if written == 0 {
            return None;
        }
        let mut buf = vec![0u8; (written * SECTOR_SIZE) as usize];
        dev.read(at, info.start, &mut buf).ok()?;
        let mut records = Vec::new();
        let mut epoch = 0u64;
        let mut off = 0usize;
        while off < buf.len() {
            let Some((rec, n)) = parse_record(&buf[off..]) else {
                break;
            };
            if records.is_empty() {
                if rec.kind != kind::CHECKPOINT {
                    return None;
                }
                epoch = rec.epoch;
            } else if rec.epoch != epoch {
                break;
            }
            off += (n * SECTOR_SIZE) as usize;
            records.push(rec);
        }
        if records.is_empty() {
            None
        } else {
            Some((epoch, records))
        }
    }

    fn replay(&self, inner: &mut LsInner, slot: u32, epoch: u64, records: &[Record]) -> Result<()> {
        self.apply_checkpoint(inner, &records[0].payload)?;
        let mut capped = vec![false; inner.groups.len()];
        let mut last_seq = records[0].seq;
        let mut used = meta::record_sectors(records[0].payload.len());
        for rec in &records[1..] {
            last_seq = rec.seq;
            used += meta::record_sectors(rec.payload.len());
            match rec.kind {
                kind::SUMMARY => self.apply_summary(inner, &rec.payload, &mut capped)?,
                kind::GROUP_OPEN => self.apply_group_open(inner, &rec.payload, &mut capped)?,
                kind::GROUP_FREE => self.apply_group_free(inner, &rec.payload)?,
                kind::ZONE_RESET => self.apply_zone_reset(inner, &rec.payload)?,
                kind::ZONE_FINISH => self.apply_zone_finish(inner, &rec.payload)?,
                _ => {}
            }
        }
        inner.meta.slot = slot as usize;
        inner.meta.epoch = epoch;
        inner.meta.seq = last_seq + 1;
        inner.meta.used = used;
        Ok(())
    }

    fn apply_checkpoint(&self, inner: &mut LsInner, payload: &[u8]) -> Result<()> {
        let mut rd = Rd::new(payload);
        let l = rd.u32()?;
        let n = rd.u32()?;
        let g = rd.u32()?;
        let _pad = rd.u32()?;
        let map_len = rd.u64()?;
        let created_seq = rd.u64()?;
        if l != self.geo.num_zones()
            || n as usize != self.n
            || g as usize != inner.groups.len()
            || map_len as usize != inner.map.len()
        {
            return Err(invalid("lsraid: checkpoint layout mismatch"));
        }
        inner.created_seq = created_seq;
        for zi in 0..l as usize {
            let wp = rd.u64()?;
            let state = zstate_decode(rd.u32()?);
            let _pad = rd.u32()?;
            inner.lz[zi] = LZone { wp, state };
        }
        for gi in 0..g as usize {
            let state = gstate_decode(rd.u32()?);
            let gen = rd.u32()?;
            let sealed = rd.u64()?;
            let created = rd.u64()?;
            let grp = &mut inner.groups[gi];
            grp.state = state;
            grp.gen = gen.min(STREAMS as u32 - 1) as u8;
            grp.sealed = sealed;
            grp.created = created;
            for zi in 0..self.n {
                grp.zones[zi] = rd.u32()?;
            }
        }
        for mi in 0..map_len as usize {
            inner.map[mi] = rd.u64()?;
        }
        Ok(())
    }

    fn apply_summary(
        &self,
        inner: &mut LsInner,
        payload: &[u8],
        capped: &mut [bool],
    ) -> Result<()> {
        let mut rd = Rd::new(payload);
        let g = rd.u32()? as usize;
        let _pad = rd.u32()?;
        let stripe = rd.u64()?;
        if g >= inner.groups.len() || capped[g] {
            return Ok(());
        }
        if stripe != inner.groups[g].sealed {
            return Ok(());
        }
        // Only apply when every member zone provably holds the stripe
        // (device write pointers survive a crash truncated to the
        // durable prefix; a lost data or parity write caps the group).
        for (di, &z) in inner.groups[g].zones.iter().enumerate() {
            if z == NO_ZONE {
                capped[g] = true;
                return Ok(());
            }
            if self.devices[di].zone_info(z)?.written() < (stripe + 1) * self.k {
                capped[g] = true;
                return Ok(());
            }
        }
        for i in 0..self.kd {
            let lba = rd.u64()?;
            if lba == NONE64 || lba as usize >= inner.map.len() {
                continue;
            }
            inner.map[lba as usize] = enc(g as u32, stripe * self.kd + i);
        }
        inner.groups[g].sealed = stripe + 1;
        Ok(())
    }

    fn apply_group_open(
        &self,
        inner: &mut LsInner,
        payload: &[u8],
        capped: &mut [bool],
    ) -> Result<()> {
        let mut rd = Rd::new(payload);
        let g = rd.u32()? as usize;
        let stream = rd.u32()?;
        let created = rd.u64()?;
        if g >= inner.groups.len() {
            return Ok(());
        }
        let grp = &mut inner.groups[g];
        let stream = stream.min(STREAMS as u32 - 1) as u8;
        grp.state = GState::Open(stream);
        grp.gen = stream;
        grp.sealed = 0;
        grp.created = created;
        inner.created_seq = inner.created_seq.max(created + 1);
        for zi in 0..self.n {
            grp.zones[zi] = rd.u32()?;
        }
        capped[g] = false;
        Ok(())
    }

    fn apply_group_free(&self, inner: &mut LsInner, payload: &[u8]) -> Result<()> {
        let mut rd = Rd::new(payload);
        let g = rd.u32()?;
        if g as usize >= inner.groups.len() {
            return Ok(());
        }
        // Defensive sweep: by the reclaim ordering invariant no live
        // mapping should point here, but a crash-truncated log replays
        // the same records deterministically either way.
        for pa in &mut inner.map {
            if *pa != NONE64 && group_of(*pa) == g {
                *pa = NONE64;
            }
        }
        let grp = &mut inner.groups[g as usize];
        grp.state = GState::Free;
        grp.sealed = 0;
        grp.zones.fill(NO_ZONE);
        Ok(())
    }

    fn apply_zone_reset(&self, inner: &mut LsInner, payload: &[u8]) -> Result<()> {
        let mut rd = Rd::new(payload);
        let zone = rd.u32()?;
        if zone >= self.geo.num_zones() {
            return Ok(());
        }
        let base = u64::from(zone) * self.geo.zone_cap();
        for off in 0..self.geo.zone_cap() {
            inner.map[(base + off) as usize] = NONE64;
        }
        inner.lz[zone as usize] = LZone {
            wp: 0,
            state: ZoneState::Empty,
        };
        Ok(())
    }

    fn apply_zone_finish(&self, inner: &mut LsInner, payload: &[u8]) -> Result<()> {
        let mut rd = Rd::new(payload);
        let zone = rd.u32()?;
        if zone < self.geo.num_zones() {
            inner.lz[zone as usize].state = ZoneState::Full;
        }
        Ok(())
    }

    /// Repairs in-memory state after replay: interrupted open groups
    /// become sealed (or free), each logical zone is trimmed to its
    /// contiguous mapped prefix, and validity counts, reverse maps and
    /// free pools are rebuilt from the mapping table.
    fn finish_mount(&self, inner: &mut LsInner) {
        let c = self.geo.zone_cap();
        for (zi, z) in inner.lz.iter_mut().enumerate() {
            let base = zi as u64 * c;
            let mut prefix = 0u64;
            while prefix < c && inner.map[(base + prefix) as usize] != NONE64 {
                prefix += 1;
            }
            for off in prefix..c {
                inner.map[(base + off) as usize] = NONE64;
            }
            z.wp = prefix;
            z.state = match z.state {
                ZoneState::Full => ZoneState::Full,
                _ if prefix == c => ZoneState::Full,
                _ if prefix > 0 => ZoneState::Closed,
                _ => ZoneState::Empty,
            };
        }
        for grp in &mut inner.groups {
            grp.valid = 0;
            grp.fill = 0;
            grp.stripe_issue = SimTime::ZERO;
            grp.buf = None;
            grp.lbas.fill(NONE64);
        }
        for (l, &pa) in inner.map.iter().enumerate() {
            if pa == NONE64 {
                continue;
            }
            let g = group_of(pa) as usize;
            inner.groups[g].valid += 1;
            inner.groups[g].lbas[slot_of(pa) as usize] = l as u64;
        }
        // Dispose of interrupted open groups only after validity is
        // rebuilt: a checkpoint taken mid-seal can map data into a group
        // whose `sealed` count is still zero, and freeing such a group
        // would orphan durable, referenced data.
        for grp in &mut inner.groups {
            if let GState::Open(_) = grp.state {
                if grp.sealed > 0 || grp.valid > 0 {
                    grp.state = GState::Sealed;
                } else {
                    grp.state = GState::Free;
                    grp.zones.fill(NO_ZONE);
                }
            }
        }
        inner.free_groups.clear();
        for gi in (0..inner.groups.len()).rev() {
            if inner.groups[gi].state == GState::Free {
                inner.free_groups.push(gi as u32);
            }
        }
        let mut owned = vec![false; self.phys.num_zones() as usize];
        for di in 0..self.n {
            owned.fill(false);
            for grp in &inner.groups {
                if grp.state != GState::Free && grp.zones[di] != NO_ZONE {
                    owned[grp.zones[di] as usize] = true;
                }
            }
            inner.free_zones[di].clear();
            for z in (META_ZONES..self.phys.num_zones()).rev() {
                if !owned[z as usize] {
                    inner.free_zones[di].push(z);
                }
            }
        }
        inner.open = [None; STREAMS];
        inner.migrating = None;
        inner.in_emergency = false;
        while inner.bufs.len() < STREAMS {
            inner.bufs.push(StripeBuf::new(self.k, self.p == 2));
        }
    }

    // ------------------------------------------------------------------
    // Log write path
    // ------------------------------------------------------------------

    /// Returns the open group for `stream`, allocating one (and running
    /// an emergency collection first if the free pool is at the reserve).
    fn open_group(
        &self,
        inner: &mut LsInner,
        at: SimTime,
        stream: usize,
    ) -> Result<(u32, SimTime)> {
        if let Some(g) = inner.open[stream] {
            return Ok((g, at));
        }
        let mut t = at;
        // Collect until the pool clears the reserve. A single pass is
        // not enough under high-valid victims: draining one group can
        // net almost nothing (survivors fill a cold group as fast as
        // the reclaim frees the victim), but every pass converts that
        // victim's garbage to log headroom, so the loop terminates —
        // either the pool recovers or no garbage is left anywhere.
        while !inner.in_emergency && inner.free_groups.len() <= self.config.reserve_groups as usize
        {
            let (done, collected) = self.emergency_collect(inner, t)?;
            t = done;
            if !collected {
                break;
            }
            // The collection migrates into the cold stream, so it may
            // have opened this very stream's group; don't open a second.
            if let Some(g) = inner.open[stream] {
                return Ok((g, t));
            }
        }
        let Some(g) = inner.free_groups.pop() else {
            return Err(invalid("lsraid: out of free stripe groups"));
        };
        for di in 0..self.n {
            let Some(z) = inner.free_zones[di].pop() else {
                return Err(invalid("lsraid: out of free physical zones"));
            };
            // A crash between a durable GroupFree record and the zone
            // resets leaves stale data behind; clean it up lazily here.
            if self.devices[di].zone_info(z)?.state != ZoneState::Empty {
                t = t.max(self.devices[di].reset_zone(t, z)?.done);
            }
            inner.groups[g as usize].zones[di] = z;
        }
        let created = inner.created_seq;
        inner.created_seq += 1;
        {
            let grp = &mut inner.groups[g as usize];
            grp.state = GState::Open(stream as u8);
            grp.gen = stream as u8;
            grp.sealed = 0;
            grp.fill = 0;
            grp.valid = 0;
            grp.created = created;
            grp.stripe_issue = SimTime::ZERO;
            grp.lbas.fill(NONE64);
            let mut buf = inner.bufs.pop().expect("stripe buffer pool exhausted");
            buf.clear();
            inner.groups[g as usize].buf = Some(buf);
        }
        inner.c_groups_opened += 1;
        let done = self.commit_record(inner, t, kind::GROUP_OPEN, |inner, buf| {
            put_u32(buf, g);
            put_u32(buf, stream as u32);
            put_u64(buf, inner.groups[g as usize].created);
            for &z in &inner.groups[g as usize].zones {
                put_u32(buf, z);
            }
        })?;
        inner.open[stream] = Some(g);
        Ok((g, done))
    }

    /// Appends `data` into `stream`'s open group, accumulating parity
    /// and updating the mapping table; seals each stripe as it fills.
    /// `lba` is the first logical sector (ignored for pads).
    fn log_data(
        &self,
        inner: &mut LsInner,
        at: SimTime,
        data: &[u8],
        mode: LogMode,
        lba: u64,
        stream: usize,
    ) -> Result<SimTime> {
        let total = data.len() as u64 / SECTOR_SIZE;
        let mut consumed = 0u64;
        let mut t = at;
        while consumed < total {
            let (g, t2) = self.open_group(inner, t, stream)?;
            t = t2;
            let gi = g as usize;
            let (stripe, fill) = {
                let grp = &inner.groups[gi];
                (grp.sealed, grp.fill)
            };
            let unit = (fill / self.k) as usize;
            let sec = fill % self.k;
            let run = (self.k - sec).min(total - consumed);
            let dev = self.data_dev(stripe, unit);
            let zone = inner.groups[gi].zones[dev];
            let plba = self.phys.zone_start(zone) + stripe * self.k + sec;
            let chunk =
                &data[(consumed * SECTOR_SIZE) as usize..((consumed + run) * SECTOR_SIZE) as usize];
            let c = self.devices[dev].write(t, plba, chunk, WriteFlags::default())?;
            {
                let grp = &mut inner.groups[gi];
                grp.stripe_issue = grp.stripe_issue.max(c.done);
                let buf = grp.buf.as_mut().expect("open group has a stripe buffer");
                let bo = (sec * SECTOR_SIZE) as usize;
                sim::xor_into(&mut buf.p[bo..bo + chunk.len()], chunk);
                if self.p == 2 {
                    sim::gf_mul_into(
                        &mut buf.q[bo..bo + chunk.len()],
                        chunk,
                        sim::gf_pow(2, unit as u32),
                    );
                }
            }
            match mode {
                LogMode::Pad => {}
                LogMode::User => {
                    for i in 0..run {
                        self.map_sector(inner, gi, stripe * self.kd + fill + i, lba + consumed + i);
                    }
                }
                LogMode::Gc => {
                    for i in 0..run {
                        let l = lba + consumed + i;
                        let old = inner.map[l as usize];
                        // Only remap if the sector is still where GC read
                        // it from; a concurrent overwrite wins and the
                        // migrated copy becomes garbage.
                        if old != NONE64 && inner.migrating == Some(group_of(old)) {
                            self.map_sector(inner, gi, stripe * self.kd + fill + i, l);
                        }
                    }
                }
            }
            inner.groups[gi].fill += run;
            consumed += run;
            match mode {
                LogMode::User => inner.c_user += run,
                LogMode::Gc => {
                    inner.c_migrated += run;
                    self.addc(obs::Counter::LsMigratedSectors, run);
                }
                LogMode::Pad => {
                    inner.c_pads += run;
                    self.addc(obs::Counter::LsPadSectors, run);
                }
            }
            if inner.groups[gi].fill == self.kd {
                t = self.seal_stripe(inner, g, c.done)?;
            } else {
                t = c.done;
            }
        }
        Ok(t)
    }

    /// Points logical sector `l` at `(gi, slot)`, releasing any previous
    /// mapping.
    fn map_sector(&self, inner: &mut LsInner, gi: usize, slot: u64, l: u64) {
        let old = inner.map[l as usize];
        if old != NONE64 {
            let og = group_of(old) as usize;
            inner.groups[og].lbas[slot_of(old) as usize] = NONE64;
            inner.groups[og].valid -= 1;
        }
        inner.map[l as usize] = enc(gi as u32, slot);
        inner.groups[gi].lbas[slot as usize] = l;
        inner.groups[gi].valid += 1;
    }

    /// Writes the full-stripe parity unit(s) and commits the stripe's
    /// seal summary; closes the group when its last stripe seals.
    fn seal_stripe(&self, inner: &mut LsInner, g: u32, t: SimTime) -> Result<SimTime> {
        let gi = g as usize;
        let (stripe, issue) = {
            let grp = &inner.groups[gi];
            (grp.sealed, grp.stripe_issue.max(t))
        };
        let pdev = (stripe % self.n as u64) as usize;
        let pzone = inner.groups[gi].zones[pdev];
        let plba = self.phys.zone_start(pzone) + stripe * self.k;
        let mut done = {
            let buf = inner.groups[gi]
                .buf
                .as_ref()
                .expect("sealing an open group");
            let c = self.devices[pdev].write(issue, plba, &buf.p, WriteFlags::default())?;
            self.trace_span(
                obs::OpClass::Write,
                obs::Stage::Xor,
                Some(obs::PathKind::FullParity),
                obs::NONE,
                plba,
                self.k,
                issue,
                c.done,
            );
            c.done
        };
        self.bump(obs::Counter::FullParityWrites);
        inner.c_parity += self.k;
        if self.p == 2 {
            let qdev = ((stripe + 1) % self.n as u64) as usize;
            let qzone = inner.groups[gi].zones[qdev];
            let qlba = self.phys.zone_start(qzone) + stripe * self.k;
            let buf = inner.groups[gi]
                .buf
                .as_ref()
                .expect("sealing an open group");
            let c = self.devices[qdev].write(issue, qlba, &buf.q, WriteFlags::default())?;
            self.trace_span(
                obs::OpClass::Write,
                obs::Stage::Xor,
                Some(obs::PathKind::QParity),
                obs::NONE,
                qlba,
                self.k,
                issue,
                c.done,
            );
            self.bump(obs::Counter::QParityWrites);
            inner.c_parity += self.k;
            done = done.max(c.done);
        }
        let done = self.commit_record(inner, done, kind::SUMMARY, |inner, buf| {
            put_u32(buf, g);
            put_u32(buf, 0);
            put_u64(buf, stripe);
            let grp = &inner.groups[gi];
            let base = (stripe * self.kd) as usize;
            for slot in 0..self.kd as usize {
                put_u64(buf, grp.lbas[base + slot]);
            }
        })?;
        let grp = &mut inner.groups[gi];
        grp.sealed = stripe + 1;
        grp.fill = 0;
        grp.stripe_issue = SimTime::ZERO;
        if let Some(buf) = grp.buf.as_mut() {
            buf.clear();
        }
        if grp.sealed == self.s {
            let stream = match grp.state {
                GState::Open(stream) => stream as usize,
                _ => HOT,
            };
            grp.state = GState::Sealed;
            let buf = grp.buf.take().expect("sealed group returns its buffer");
            inner.bufs.push(buf);
            inner.open[stream] = None;
        }
        Ok(done)
    }

    /// Zero-pads every open stream to its next stripe boundary so all
    /// logged data becomes parity-protected and summarized.
    fn pad_seal(&self, inner: &mut LsInner, at: SimTime) -> Result<SimTime> {
        let zeros = std::mem::take(&mut inner.zeros);
        let mut t = at;
        let mut res = Ok(());
        for stream in 0..STREAMS {
            let Some(g) = inner.open[stream] else {
                continue;
            };
            let fill = inner.groups[g as usize].fill;
            if fill == 0 {
                continue;
            }
            let mut pad = self.kd - fill;
            while pad > 0 {
                let chunk = pad.min(self.k);
                match self.log_data(
                    inner,
                    t,
                    &zeros[..(chunk * SECTOR_SIZE) as usize],
                    LogMode::Pad,
                    0,
                    stream,
                ) {
                    Ok(done) => t = done,
                    Err(e) => {
                        res = Err(e);
                        break;
                    }
                }
                pad -= chunk;
            }
            if res.is_err() {
                break;
            }
        }
        inner.zeros = zeros;
        res.map(|()| t)
    }

    /// Durability barrier: pad-seals every stream, then flushes every
    /// device cache.
    fn flush_inner(&self, inner: &mut LsInner, at: SimTime) -> Result<SimTime> {
        let start = self.pad_seal(inner, at)?;
        let mut done = start;
        for dev in &self.devices {
            done = done.max(dev.flush(start)?.done);
        }
        self.trace_span(
            obs::OpClass::Flush,
            obs::Stage::Flush,
            None,
            obs::NONE,
            0,
            0,
            start,
            done,
        );
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Reads mapped sectors, coalescing physically contiguous runs
    /// (bounded by the stripe unit) into single device commands issued
    /// in parallel.
    fn read_inner(
        &self,
        inner: &LsInner,
        at: SimTime,
        lba: u64,
        buf: &mut [u8],
    ) -> Result<SimTime> {
        let nsec = buf.len() as u64 / SECTOR_SIZE;
        let mut done = at;
        let mut i = 0u64;
        while i < nsec {
            let pa = inner.map[(lba + i) as usize];
            if pa == NONE64 {
                return Err(ZnsError::ReadUnwritten { lba: lba + i });
            }
            let within = slot_of(pa) % self.k;
            let max_run = (self.k - within).min(nsec - i);
            let mut run = 1u64;
            while run < max_run && inner.map[(lba + i + run) as usize] == pa + run {
                run += 1;
            }
            let (dev, plba) = self.locate_slot(inner, group_of(pa), slot_of(pa));
            let c = self.devices[dev].read(
                at,
                plba,
                &mut buf[(i * SECTOR_SIZE) as usize..((i + run) * SECTOR_SIZE) as usize],
            )?;
            done = done.max(c.done);
            i += run;
        }
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// The stream migration out of the active victim targets: one
    /// generation colder than the victim, saturating at the coldest.
    fn migration_target(&self, inner: &LsInner) -> usize {
        inner
            .migrating
            .and_then(|v| inner.groups.get(v as usize))
            .map_or(COLD, |g| (usize::from(g.gen) + 1).min(STREAMS - 1))
    }

    /// Picks a GC victim by LFS-style cost-benefit: among sealed groups
    /// whose garbage fraction meets `threshold`, the one maximizing
    /// `garbage * age / valid` (fully-drained groups win outright,
    /// older wins ties). Pure greedy-by-garbage collects young
    /// half-rotted groups whose surviving data is still dying; weighting
    /// by age steers the collector toward old groups whose survivors
    /// have proven cold, so migration segregates stable data instead of
    /// endlessly remixing it. When the free pool is at or below
    /// `low_water` any garbage qualifies.
    pub fn pick_victim(&self, threshold: f64, low_water: usize) -> Option<u32> {
        let inner = self.inner.lock();
        let force = inner.free_groups.len() <= low_water;
        self.pick_victim_inner(&inner, threshold, force)
    }

    #[allow(clippy::cast_precision_loss)]
    fn pick_victim_inner(&self, inner: &LsInner, threshold: f64, force: bool) -> Option<u32> {
        // Age bonus saturation, in group creations. Age rewards groups
        // whose garbage has stopped accruing (their live data is cold,
        // so migrating it is a one-time cost), but an unbounded bonus
        // lets ancient, barely-rotted cold groups outbid heavily-rotted
        // young ones — draining a nearly-full group stalls the
        // foreground and wrecks write amplification.
        const AGE_SATURATION: u64 = 32;
        // Score components per candidate; compared via u128
        // cross-multiplication so selection is exact and deterministic.
        struct Cand {
            garbage: u64,
            age: u64,
            valid: u64,
            created: u64,
            g: u32,
        }
        let mut best: Option<Cand> = None;
        for (gi, grp) in inner.groups.iter().enumerate() {
            if grp.state != GState::Sealed || inner.migrating == Some(gi as u32) {
                continue;
            }
            let garbage = self.group_cap - grp.valid;
            if garbage == 0 {
                continue;
            }
            if !force && (garbage as f64) < threshold * self.group_cap as f64 {
                continue;
            }
            let cand = Cand {
                garbage,
                age: (inner.created_seq.saturating_sub(grp.created) + 1).min(AGE_SATURATION),
                valid: grp.valid,
                created: grp.created,
                g: gi as u32,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    // cand.score > best.score with score = garbage*age/valid;
                    // valid == 0 means infinite score (free reclaim).
                    let lhs = u128::from(cand.garbage) * u128::from(cand.age) * u128::from(b.valid);
                    let rhs = u128::from(b.garbage) * u128::from(b.age) * u128::from(cand.valid);
                    lhs > rhs || (lhs == rhs && cand.created < b.created)
                }
            };
            if better {
                best = Some(cand);
            }
        }
        best.map(|c| c.g)
    }

    /// Marks `g` as the group being drained. Migration writes (issued
    /// under [`obs::Actor::Gc`]) only remap sectors that still live in
    /// this group, so foreground overwrites racing the migration win.
    /// Returns `false` if a migration is already active or `g` is not
    /// sealed.
    pub fn begin_migration(&self, g: u32) -> bool {
        let mut inner = self.inner.lock();
        if inner.migrating.is_some()
            || g as usize >= inner.groups.len()
            || inner.groups[g as usize].state != GState::Sealed
        {
            return false;
        }
        inner.migrating = Some(g);
        true
    }

    /// Clears the active migration mark.
    pub fn end_migration(&self) {
        self.inner.lock().migrating = None;
    }

    /// Scans group `g`'s reverse map from slot `from` for the next run
    /// of valid sectors with consecutive logical addresses in one zone,
    /// at most `max` long. Returns `(lba, len, next_slot)`.
    pub fn next_valid_run(&self, g: u32, from: u64, max: u64) -> Option<(Lba, u64, u64)> {
        let inner = self.inner.lock();
        self.valid_run_inner(&inner, g, from, max)
    }

    fn valid_run_inner(
        &self,
        inner: &LsInner,
        g: u32,
        from: u64,
        max: u64,
    ) -> Option<(Lba, u64, u64)> {
        let grp = inner.groups.get(g as usize)?;
        let total = grp.lbas.len() as u64;
        let mut start = from;
        while start < total && grp.lbas[start as usize] == NONE64 {
            start += 1;
        }
        if start >= total {
            return None;
        }
        let lba0 = grp.lbas[start as usize];
        let zone = lba0 / self.geo.zone_cap();
        let mut len = 1u64;
        while start + len < total && len < max.max(1) {
            let l = grp.lbas[(start + len) as usize];
            if l != lba0 + len || l / self.geo.zone_cap() != zone {
                break;
            }
            len += 1;
        }
        Some((lba0, len, start + len))
    }

    /// Live mapped sectors in group `g`.
    pub fn group_valid(&self, g: u32) -> u64 {
        let inner = self.inner.lock();
        inner.groups.get(g as usize).map_or(0, |grp| grp.valid)
    }

    /// Free stripe groups available for allocation.
    pub fn free_group_count(&self) -> usize {
        self.inner.lock().free_groups.len()
    }

    /// Reclaims a fully drained sealed group: seals and flushes all
    /// in-flight data (so every migrated copy is durable), commits the
    /// `GroupFree` record, then resets the member zones and returns them
    /// to the free pools.
    ///
    /// # Errors
    ///
    /// Fails if `g` is not a sealed group with zero valid sectors, or on
    /// device IO failure.
    pub fn reclaim_group(&self, at: SimTime, g: u32) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let grp = inner
            .groups
            .get(g as usize)
            .ok_or_else(|| invalid("lsraid: no such stripe group"))?;
        if grp.state != GState::Sealed || grp.valid != 0 {
            return Err(invalid("lsraid: group is not drained"));
        }
        self.reclaim_inner(&mut inner, at, g)
    }

    fn reclaim_inner(&self, inner: &mut LsInner, at: SimTime, g: u32) -> Result<SimTime> {
        // Ordering invariant: (1) migrated data durable, (2) GroupFree
        // durable, (3) zones reset. See the crate docs.
        let t = self.flush_inner(inner, at)?;
        let mut t = self.commit_record(inner, t, kind::GROUP_FREE, |_, buf| {
            put_u32(buf, g);
        })?;
        let reset_at = t;
        let gi = g as usize;
        for di in 0..self.n {
            let z = inner.groups[gi].zones[di];
            if z == NO_ZONE {
                continue;
            }
            t = t.max(self.devices[di].reset_zone(reset_at, z)?.done);
            inner.free_zones[di].push(z);
            inner.groups[gi].zones[di] = NO_ZONE;
        }
        let grp = &mut inner.groups[gi];
        grp.state = GState::Free;
        grp.sealed = 0;
        grp.fill = 0;
        grp.lbas.fill(NONE64);
        inner.free_groups.push(g);
        inner.c_group_reclaims += 1;
        self.bump(obs::Counter::LsGroupReclaims);
        Ok(t)
    }

    /// Inline collection on the foreground write path: drains the best
    /// victim into the cold stream and reclaims it, stalling the caller.
    /// Runs when the free pool hits the configured reserve (the
    /// background [`GcManager`] should normally keep ahead of this).
    fn emergency_collect(&self, inner: &mut LsInner, at: SimTime) -> Result<(SimTime, bool)> {
        let Some(victim) = self.pick_victim_inner(inner, 0.0, true) else {
            return Ok((at, false));
        };
        // A background GcManager may be mid-migration; its mark picked
        // the emergency victim apart from its own group above, and must
        // be restored so its remaining migrate writes stay guarded.
        let saved = inner.migrating;
        inner.in_emergency = true;
        inner.migrating = Some(victim);
        let guard = obs::actor_scope(obs::Actor::Gc);
        let res = self.drain_victim(inner, at, victim);
        drop(guard);
        inner.migrating = saved;
        inner.in_emergency = false;
        let done = res?;
        inner.c_emergency += 1;
        self.bump(obs::Counter::GcStalls);
        self.addc(
            obs::Counter::GcStallNanos,
            done.as_nanos().saturating_sub(at.as_nanos()),
        );
        Ok((done, true))
    }

    fn drain_victim(&self, inner: &mut LsInner, at: SimTime, victim: u32) -> Result<SimTime> {
        let mut buf = std::mem::take(&mut inner.gc_buf);
        let res = self.drain_victim_with(inner, at, victim, &mut buf);
        inner.gc_buf = buf;
        res
    }

    fn drain_victim_with(
        &self,
        inner: &mut LsInner,
        at: SimTime,
        victim: u32,
        buf: &mut [u8],
    ) -> Result<SimTime> {
        let mut t = at;
        let mut cursor = 0u64;
        while let Some((lba, len, next)) = self.valid_run_inner(inner, victim, cursor, self.k) {
            cursor = next;
            let bytes = (len * SECTOR_SIZE) as usize;
            let rd = self.read_inner(inner, t, lba, &mut buf[..bytes])?;
            let target = self.migration_target(inner);
            t = self.log_data(inner, rd, &buf[..bytes], LogMode::Gc, lba, target)?;
        }
        debug_assert_eq!(inner.groups[victim as usize].valid, 0);
        self.reclaim_inner(inner, t, victim)
    }

    // ------------------------------------------------------------------
    // Scrub
    // ------------------------------------------------------------------

    /// Verifies parity over every sealed stripe of every non-free group.
    ///
    /// # Errors
    ///
    /// Propagates device IO failures.
    pub fn scrub(&self, at: SimTime) -> Result<LsScrubReport> {
        let inner = self.inner.lock();
        let mut rep = LsScrubReport::default();
        let bytes = (self.k * SECTOR_SIZE) as usize;
        let mut acc = vec![0u8; bytes];
        let mut qacc = vec![0u8; bytes];
        let mut unit_buf = vec![0u8; bytes];
        for grp in &inner.groups {
            if grp.state == GState::Free {
                continue;
            }
            for stripe in 0..grp.sealed {
                rep.stripes += 1;
                acc.fill(0);
                qacc.fill(0);
                for unit in 0..self.d {
                    let dev = self.data_dev(stripe, unit);
                    let z = grp.zones[dev];
                    self.devices[dev].read(
                        at,
                        self.phys.zone_start(z) + stripe * self.k,
                        &mut unit_buf,
                    )?;
                    sim::xor_into(&mut acc, &unit_buf);
                    if self.p == 2 {
                        sim::gf_mul_into(&mut qacc, &unit_buf, sim::gf_pow(2, unit as u32));
                    }
                }
                let pdev = (stripe % self.n as u64) as usize;
                self.devices[pdev].read(
                    at,
                    self.phys.zone_start(grp.zones[pdev]) + stripe * self.k,
                    &mut unit_buf,
                )?;
                sim::xor_into(&mut acc, &unit_buf);
                if !sim::is_zero(&acc) {
                    rep.parity_errors += 1;
                }
                if self.p == 2 {
                    let qdev = ((stripe + 1) % self.n as u64) as usize;
                    self.devices[qdev].read(
                        at,
                        self.phys.zone_start(grp.zones[qdev]) + stripe * self.k,
                        &mut unit_buf,
                    )?;
                    sim::xor_into(&mut qacc, &unit_buf);
                    if !sim::is_zero(&qacc) {
                        rep.q_errors += 1;
                    }
                }
            }
        }
        Ok(rep)
    }

    // ------------------------------------------------------------------
    // Shared write body (write + append)
    // ------------------------------------------------------------------

    /// Validated logging of a foreground write at `rel` in `zone`
    /// (caller holds the lock and has validated bounds).
    #[allow(clippy::too_many_arguments)]
    fn write_body(
        &self,
        inner: &mut LsInner,
        at: SimTime,
        zone: u32,
        rel: u64,
        data: &[u8],
        flags: WriteFlags,
        gc_write: bool,
    ) -> Result<SimTime> {
        let nsec = data.len() as u64 / SECTOR_SIZE;
        let lba = self.geo.zone_start(zone) + rel;
        let mut t = at;
        if flags.preflush {
            t = self.flush_inner(inner, t)?;
        }
        let (mode, stream) = if gc_write {
            (LogMode::Gc, self.migration_target(inner))
        } else {
            (LogMode::User, HOT)
        };
        let mut done = self.log_data(inner, t, data, mode, lba, stream)?;
        if !gc_write {
            let z = &mut inner.lz[zone as usize];
            z.wp = z.wp.max(rel + nsec);
            if matches!(z.state, ZoneState::Empty | ZoneState::Closed) {
                z.state = ZoneState::ImplicitlyOpen;
            }
            if z.wp == self.geo.zone_cap() {
                z.state = ZoneState::Full;
            }
        }
        if flags.fua {
            done = self.flush_inner(inner, done)?;
        }
        Ok(done)
    }

    fn check_write_range(&self, lba: Lba, sectors: u64, bytes: usize) -> Result<(u32, u64)> {
        if sectors == 0 || !bytes.is_multiple_of(SECTOR_SIZE as usize) {
            return Err(invalid("lsraid: IO must be a whole number of sectors"));
        }
        if !self.geo.contains(lba) {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        if !self.geo.range_in_one_zone(lba, sectors) {
            return Err(ZnsError::ZoneBoundary { lba, sectors });
        }
        Ok((self.geo.zone_of(lba), self.geo.offset_in_zone(lba)))
    }
}

impl ZonedVolume for LsVolume {
    fn geometry(&self) -> ZoneGeometry {
        self.geo
    }

    fn read(&self, at: SimTime, lba: Lba, buf: &mut [u8]) -> Result<IoCompletion> {
        let nsec = buf.len() as u64 / SECTOR_SIZE;
        let (zone, rel) = self.check_write_range(lba, nsec, buf.len())?;
        let (span, parent, _scope) = self.begin_span();
        let inner = self.inner.lock();
        self.mark_lock(obs::OpClass::Read, zone, at);
        if rel + nsec > inner.lz[zone as usize].wp {
            return Err(ZnsError::ReadUnwritten {
                lba: self.geo.zone_start(zone) + inner.lz[zone as usize].wp,
            });
        }
        let done = self.read_inner(&inner, at, lba, buf)?;
        drop(inner);
        self.trace_root(obs::OpClass::Read, zone, lba, nsec, at, done, span, parent);
        Ok(IoCompletion { done })
    }

    fn write(&self, at: SimTime, lba: Lba, data: &[u8], flags: WriteFlags) -> Result<IoCompletion> {
        let nsec = data.len() as u64 / SECTOR_SIZE;
        let (zone, rel) = self.check_write_range(lba, nsec, data.len())?;
        let (span, parent, _scope) = self.begin_span();
        let mut inner = self.inner.lock();
        self.mark_lock(obs::OpClass::Write, zone, at);
        let gc_write = obs::current_actor() == obs::Actor::Gc && inner.migrating.is_some();
        if !gc_write {
            let z = &inner.lz[zone as usize];
            if rel > z.wp {
                return Err(ZnsError::NotSequential {
                    zone,
                    expected: self.geo.zone_start(zone) + z.wp,
                    got: lba,
                });
            }
            // Relaxed semantics: rewriting below the write pointer is an
            // overwrite (remapped internally), even in a Full zone; only
            // growth past the capacity is refused.
            if rel + nsec > self.geo.zone_cap() {
                return Err(ZnsError::ZoneFull { zone });
            }
        }
        let done = self.write_body(&mut inner, at, zone, rel, data, flags, gc_write)?;
        drop(inner);
        self.trace_root(obs::OpClass::Write, zone, lba, nsec, at, done, span, parent);
        Ok(IoCompletion { done })
    }

    fn append(
        &self,
        at: SimTime,
        zone: u32,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<AppendCompletion> {
        let nsec = data.len() as u64 / SECTOR_SIZE;
        if nsec == 0 || !data.len().is_multiple_of(SECTOR_SIZE as usize) {
            return Err(invalid("lsraid: IO must be a whole number of sectors"));
        }
        if zone >= self.geo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: u64::from(zone) * self.geo.zone_size(),
                sectors: nsec,
            });
        }
        let (span, parent, _scope) = self.begin_span();
        let mut inner = self.inner.lock();
        self.mark_lock(obs::OpClass::Append, zone, at);
        let rel = inner.lz[zone as usize].wp;
        if inner.lz[zone as usize].state == ZoneState::Full || rel + nsec > self.geo.zone_cap() {
            return Err(ZnsError::ZoneFull { zone });
        }
        let lba = self.geo.zone_start(zone) + rel;
        let done = self.write_body(&mut inner, at, zone, rel, data, flags, false)?;
        drop(inner);
        self.trace_root(
            obs::OpClass::Append,
            zone,
            lba,
            nsec,
            at,
            done,
            span,
            parent,
        );
        Ok(AppendCompletion { lba, done })
    }

    fn reset_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        if zone >= self.geo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: u64::from(zone) * self.geo.zone_size(),
                sectors: 0,
            });
        }
        let (span, parent, _scope) = self.begin_span();
        let mut inner = self.inner.lock();
        self.mark_lock(obs::OpClass::Reset, zone, at);
        let base = u64::from(zone) * self.geo.zone_cap();
        for off in 0..self.geo.zone_cap() {
            let idx = (base + off) as usize;
            let pa = inner.map[idx];
            if pa != NONE64 {
                let og = group_of(pa) as usize;
                inner.groups[og].lbas[slot_of(pa) as usize] = NONE64;
                inner.groups[og].valid -= 1;
                inner.map[idx] = NONE64;
            }
        }
        inner.lz[zone as usize] = LZone {
            wp: 0,
            state: ZoneState::Empty,
        };
        let done = self.commit_record(&mut inner, at, kind::ZONE_RESET, |_, buf| {
            put_u32(buf, zone);
        })?;
        drop(inner);
        self.trace_root(
            obs::OpClass::Reset,
            zone,
            self.geo.zone_start(zone),
            0,
            at,
            done,
            span,
            parent,
        );
        Ok(IoCompletion { done })
    }

    fn finish_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        if zone >= self.geo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: u64::from(zone) * self.geo.zone_size(),
                sectors: 0,
            });
        }
        let (span, parent, _scope) = self.begin_span();
        let mut inner = self.inner.lock();
        self.mark_lock(obs::OpClass::Finish, zone, at);
        if inner.lz[zone as usize].state == ZoneState::Full {
            return Ok(IoCompletion { done: at });
        }
        // Finishing is a durability point: everything logged so far is
        // sealed and flushed before the Full state is recorded.
        let t = self.flush_inner(&mut inner, at)?;
        inner.lz[zone as usize].state = ZoneState::Full;
        let done = self.commit_record(&mut inner, t, kind::ZONE_FINISH, |_, buf| {
            put_u32(buf, zone);
        })?;
        drop(inner);
        self.trace_root(
            obs::OpClass::Finish,
            zone,
            self.geo.zone_start(zone),
            0,
            at,
            done,
            span,
            parent,
        );
        Ok(IoCompletion { done })
    }

    fn open_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        if zone >= self.geo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: u64::from(zone) * self.geo.zone_size(),
                sectors: 0,
            });
        }
        let mut inner = self.inner.lock();
        let z = &mut inner.lz[zone as usize];
        match z.state {
            ZoneState::Full => Err(ZnsError::BadZoneState {
                zone,
                state: "full",
                op: "open",
            }),
            _ => {
                z.state = ZoneState::ExplicitlyOpen;
                Ok(IoCompletion { done: at })
            }
        }
    }

    fn close_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        if zone >= self.geo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: u64::from(zone) * self.geo.zone_size(),
                sectors: 0,
            });
        }
        let mut inner = self.inner.lock();
        let z = &mut inner.lz[zone as usize];
        if z.state.is_open() {
            z.state = if z.wp > 0 {
                ZoneState::Closed
            } else {
                ZoneState::Empty
            };
        }
        Ok(IoCompletion { done: at })
    }

    fn flush(&self, at: SimTime) -> Result<IoCompletion> {
        let (span, parent, _scope) = self.begin_span();
        let mut inner = self.inner.lock();
        self.mark_lock(obs::OpClass::Flush, obs::NONE, at);
        let done = self.flush_inner(&mut inner, at)?;
        drop(inner);
        self.trace_root(obs::OpClass::Flush, obs::NONE, 0, 0, at, done, span, parent);
        Ok(IoCompletion { done })
    }

    fn zone_info(&self, zone: u32) -> Result<ZoneInfo> {
        if zone >= self.geo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: u64::from(zone) * self.geo.zone_size(),
                sectors: 0,
            });
        }
        let inner = self.inner.lock();
        let z = &inner.lz[zone as usize];
        Ok(ZoneInfo {
            zone,
            state: z.state,
            start: self.geo.zone_start(zone),
            write_pointer: self.geo.zone_start(zone) + z.wp,
            capacity: self.geo.zone_cap(),
        })
    }
}

impl obs::GaugeSource for LsVolume {
    fn source_label(&self) -> &'static str {
        "lsraid"
    }

    #[allow(clippy::cast_precision_loss)]
    fn sample_gauges(&self, out: &mut Vec<obs::GaugeReading>) {
        let inner = self.inner.lock();
        out.push(obs::GaugeReading::new(
            "ls_garbage_ratio",
            obs::NONE,
            self.garbage_ratio_inner(&inner),
        ));
        out.push(obs::GaugeReading::new(
            "ls_waf",
            obs::NONE,
            Self::waf_inner(&inner),
        ));
        out.push(obs::GaugeReading::new(
            "ls_open_groups",
            obs::NONE,
            inner.open.iter().flatten().count() as f64,
        ));
        out.push(obs::GaugeReading::new(
            "ls_free_groups",
            obs::NONE,
            inner.free_groups.len() as f64,
        ));
    }
}
