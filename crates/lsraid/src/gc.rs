//! RAID-level garbage collection for the log-structured engine.
//!
//! [`GcManager`] is a background actor: each [`GcManager::pump`] call
//! migrates a bounded budget of valid data out of the current victim
//! group (picked by garbage ratio with an age tie-break) into the cold
//! stream, and reclaims the group once drained. Migration IO runs under
//! [`obs::Actor::Gc`], so trace spans blame GC and the engine's guarded
//! remap logic recognizes the writes; routing the writes through a QoS
//! scheduler tenant (see the `bench` crate) turns the manager into an
//! internal tenant whose interference with foreground IO is visible in
//! the span-blame breakdown.

use crate::LsVolume;
use sim::SimTime;
use std::sync::Arc;
use zns::{Lba, Result, WriteFlags, ZonedVolume, SECTOR_SIZE};

/// Where migrated data goes. The sink abstraction lets migration writes
/// flow through a QoS scheduler (as an internal tenant) or straight back
/// into the volume.
pub trait GcSink {
    /// Writes migrated `data` at logical sector `lba`, returning the
    /// completion time.
    ///
    /// # Errors
    ///
    /// Propagates volume IO failures.
    fn migrate(&mut self, at: SimTime, lba: Lba, data: &[u8]) -> Result<SimTime>;
}

/// The trivial sink: migration writes go straight to the volume.
pub struct DirectSink<'a> {
    vol: &'a LsVolume,
}

impl<'a> DirectSink<'a> {
    /// Wraps a volume.
    pub fn new(vol: &'a LsVolume) -> Self {
        DirectSink { vol }
    }
}

impl GcSink for DirectSink<'_> {
    fn migrate(&mut self, at: SimTime, lba: Lba, data: &[u8]) -> Result<SimTime> {
        let _guard = obs::actor_scope(obs::Actor::Gc);
        Ok(self.vol.write(at, lba, data, WriteFlags::default())?.done)
    }
}

/// Background GC policy knobs.
#[derive(Debug, Clone)]
pub struct GcConfig {
    /// Minimum garbage fraction for a sealed group to become a victim
    /// while the free pool sits at or above [`GcConfig::high_water`].
    pub threshold: f64,
    /// Free-group low-water mark: at or below it, any garbage qualifies.
    pub low_water: usize,
    /// Free-group level above which the full `threshold` applies.
    /// Between `threshold_water` and `low_water` the effective
    /// threshold ramps down linearly, so the collector accepts
    /// progressively less-rotted victims as pool pressure rises instead
    /// of idling until the low-water force kicks in. Kept deliberately
    /// close to `low_water`: victim quality should only degrade when
    /// the pool is genuinely short. Collecting early migrates data that
    /// was about to die anyway.
    pub threshold_water: usize,
    /// Free-group level above which the migration rate is zero; see
    /// [`GcConfig::budget_sectors`]. Kept wide so the service rate
    /// changes gently with pool level (a steep rate ramp turns pool
    /// wobble into foreground throughput wobble).
    pub high_water: usize,
    /// Migration budget per [`GcManager::pump`] call at full pool
    /// pressure, in sectors. The actual rate scales linearly with
    /// pressure: zero at or above `high_water` free groups, the full
    /// budget at or below `low_water`. Fractional budgets accumulate as
    /// credit across pumps, so the collector trickles at a near-constant
    /// equilibrium rate instead of alternating between idle and
    /// full-tilt — which is what keeps foreground throughput flat.
    pub budget_sectors: u64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            threshold: 0.25,
            low_water: 2,
            threshold_water: 6,
            high_water: 6,
            budget_sectors: 256,
        }
    }
}

impl GcConfig {
    /// The garbage threshold in effect at `free` free groups: the
    /// configured value at or above the high-water mark, zero at or
    /// below the low-water mark, linear in between.
    #[must_use]
    pub fn effective_threshold(&self, free: usize) -> f64 {
        let lo = self.low_water;
        let hi = self.threshold_water.max(lo + 1);
        if free >= hi {
            self.threshold
        } else if free <= lo {
            0.0
        } else {
            self.threshold * (free - lo) as f64 / (hi - lo) as f64
        }
    }

    /// Fraction of the full migration budget in effect at `free` free
    /// groups: zero at or above the high-water mark, one at or below
    /// the low-water mark, linear in between.
    #[must_use]
    pub fn pressure(&self, free: usize) -> f64 {
        let lo = self.low_water as f64;
        let hi = self.high_water.max(self.low_water + 1) as f64;
        ((hi - free as f64) / (hi - lo)).clamp(0.0, 1.0)
    }
}

/// Incremental, budgeted garbage collector over an [`LsVolume`].
pub struct GcManager {
    vol: Arc<LsVolume>,
    cfg: GcConfig,
    victim: Option<u32>,
    cursor: u64,
    buf: Vec<u8>,
    /// Pressure-scaled budget carried over from earlier pumps, in
    /// sectors (can be fractional).
    credit: f64,
    migrated_sectors: u64,
    reclaimed_groups: u64,
}

impl GcManager {
    /// Creates a manager over `vol` with the given policy.
    pub fn new(vol: Arc<LsVolume>, cfg: GcConfig) -> GcManager {
        let unit = vol.stripe_unit();
        GcManager {
            vol,
            cfg,
            victim: None,
            cursor: 0,
            buf: vec![0u8; (unit * SECTOR_SIZE) as usize],
            credit: 0.0,
            migrated_sectors: 0,
            reclaimed_groups: 0,
        }
    }

    /// Whether a victim is currently being drained.
    pub fn active(&self) -> bool {
        self.victim.is_some()
    }

    /// Total sectors migrated by this manager.
    pub fn migrated_sectors(&self) -> u64 {
        self.migrated_sectors
    }

    /// Total groups this manager drained and reclaimed.
    pub fn reclaimed_groups(&self) -> u64 {
        self.reclaimed_groups
    }

    /// Runs one bounded GC pass: acquires a victim if idle, migrates up
    /// to the configured budget of valid sectors through `sink`, and
    /// reclaims the victim once fully drained. Returns the completion
    /// time of the last IO issued (or `at` when there was nothing to do).
    ///
    /// # Errors
    ///
    /// Propagates volume IO failures; the victim stays acquired so the
    /// next pump retries.
    pub fn pump(&mut self, at: SimTime, sink: &mut dyn GcSink) -> Result<SimTime> {
        let _guard = obs::actor_scope(obs::Actor::Gc);
        let free = self.vol.free_group_count();
        // Accrue pressure-scaled budget; cap the carried credit so a
        // long victimless stretch cannot bank an interference burst.
        #[allow(clippy::cast_precision_loss)]
        let full = self.cfg.budget_sectors as f64;
        self.credit = (self.credit + full * self.cfg.pressure(free)).min(4.0 * full);
        if self.credit < 1.0 {
            return Ok(at);
        }
        if self.victim.is_none() {
            let eff = self.cfg.effective_threshold(free);
            let Some(v) = self.vol.pick_victim(eff, self.cfg.low_water) else {
                return Ok(at);
            };
            if !self.vol.begin_migration(v) {
                return Ok(at);
            }
            self.victim = Some(v);
            self.cursor = 0;
        }
        let v = self.victim.expect("victim acquired above");
        let unit = self.vol.stripe_unit();
        let mut t = at;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let budget = self.credit as u64;
        let mut spent = 0u64;
        loop {
            if spent >= budget {
                #[allow(clippy::cast_precision_loss)]
                {
                    self.credit -= spent as f64;
                }
                return Ok(t);
            }
            let max = unit.min(budget - spent);
            let Some((lba, len, next)) = self.vol.next_valid_run(v, self.cursor, max) else {
                break;
            };
            self.cursor = next;
            let bytes = (len * SECTOR_SIZE) as usize;
            let rd = self.vol.read(t, lba, &mut self.buf[..bytes])?.done;
            t = sink.migrate(rd, lba, &self.buf[..bytes])?;
            spent += len;
            self.migrated_sectors += len;
        }
        // Runs exhausted: the group is drained (any sector overwritten
        // by the foreground mid-drain was unmapped from the victim and
        // needs no migration).
        #[allow(clippy::cast_precision_loss)]
        {
            self.credit -= spent as f64;
        }
        self.vol.end_migration();
        self.victim = None;
        if self.vol.group_valid(v) == 0 {
            t = self.vol.reclaim_group(t, v)?;
            self.reclaimed_groups += 1;
        }
        Ok(t)
    }
}
