//! Differential oracle for the log-structured engine: one seeded random
//! workload (sequential writes, reads, resets, finishes, flushes —
//! the intersection of classic ZNS and log-structured semantics) runs
//! simultaneously against an [`LsVolume`], a classic [`RaiznVolume`] and
//! an in-memory reference model. After every read all three must agree
//! byte-for-byte; at the end both volumes must scrub clean, the
//! log-structured engine must have taken zero partial-parity-log paths
//! (it has none), and the same seed must produce a bit-identical
//! observability trace across runs (determinism pin).

use lsraid::{LsConfig, LsVolume};
use raizn::{RaiznConfig, RaiznVolume};
use sim::{SimRng, SimTime};
use std::sync::Arc;
use zns::{LatencyConfig, WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume, SECTOR_SIZE};

const T0: SimTime = SimTime::ZERO;
const DEVICES: usize = 5;
const OPS: u32 = 160;

struct ZoneModel {
    data: Vec<u8>,
    finished: bool,
}

impl ZoneModel {
    fn written(&self) -> u64 {
        self.data.len() as u64 / SECTOR_SIZE
    }
}

fn bytes(rng: &mut SimRng, sectors: u64) -> Vec<u8> {
    let mut v = vec![0u8; (sectors * SECTOR_SIZE) as usize];
    rng.fill_bytes(&mut v);
    v
}

fn make_devices(recorder: &Arc<obs::Recorder>, base_id: u32) -> Vec<Arc<ZnsDevice>> {
    let config = ZnsConfig::builder()
        .zones(16, 64, 64)
        .open_limits(8, 12)
        .latency(LatencyConfig::instant())
        .build();
    (0..DEVICES)
        .map(|i| {
            let dev = Arc::new(ZnsDevice::new(config.clone()));
            dev.set_recorder(recorder.clone(), base_id + i as u32);
            dev
        })
        .collect()
}

/// A stable, comparable rendering of one trace event.
fn signature(e: &obs::TraceEvent) -> String {
    format!(
        "{:?}/{:?}/{:?}/d{}/z{}/l{}/s{}/{}..{}/sp{}<-{}/{:?}",
        e.op,
        e.stage,
        e.path,
        e.device,
        e.zone,
        e.lba,
        e.sectors,
        e.start.as_nanos(),
        e.end.as_nanos(),
        e.span,
        e.parent,
        e.blame,
    )
}

/// Drives the seeded workload through both engines and the model;
/// returns the log-structured engine's full trace signature.
fn run_differential(seed: u64) -> Vec<String> {
    let rec_ls = obs::Recorder::new(1 << 16, 1);
    let rec_rz = obs::Recorder::new(1 << 16, 1);
    let ls_devs = make_devices(&rec_ls, 0);
    let rz_devs = make_devices(&rec_rz, 0);
    let ls = LsVolume::format(ls_devs, LsConfig::default(), T0).unwrap();
    ls.set_recorder(rec_ls.clone());
    let rz = RaiznVolume::format(rz_devs, RaiznConfig::small_test(), T0).unwrap();
    rz.set_recorder(rec_rz.clone());

    let ls_geo = ls.geometry();
    let rz_geo = rz.layout().logical_geometry();
    let zones = ls_geo.num_zones().min(rz_geo.num_zones()).min(4) as usize;
    let cap = ls_geo.zone_cap().min(rz_geo.zone_cap());
    let mut model: Vec<ZoneModel> = (0..zones)
        .map(|_| ZoneModel {
            data: Vec::new(),
            finished: false,
        })
        .collect();
    let mut rng = SimRng::new(seed);

    for op in 0..OPS {
        match rng.gen_range(100) {
            // Sequential write to a random zone with room.
            0..=54 => {
                let open: Vec<usize> = (0..zones)
                    .filter(|&z| !model[z].finished && model[z].written() < cap)
                    .collect();
                let Some(&z) = open.get(rng.gen_range(open.len().max(1) as u64) as usize) else {
                    let z = rng.gen_range(zones as u64) as u32;
                    ls.reset_zone(T0, z).unwrap();
                    rz.reset_zone(T0, z).unwrap();
                    let m = &mut model[z as usize];
                    m.data.clear();
                    m.finished = false;
                    continue;
                };
                let m = &mut model[z];
                let room = (cap - m.written()).min(16);
                let len = 1 + rng.gen_range(room);
                let data = bytes(&mut rng, len);
                let flags = if rng.gen_range(4) == 0 {
                    WriteFlags::FUA
                } else {
                    WriteFlags::default()
                };
                let wp = m.written();
                ls.write(T0, ls_geo.zone_start(z as u32) + wp, &data, flags)
                    .unwrap_or_else(|e| panic!("seed {seed} op {op}: lsraid write failed: {e}"));
                rz.write(T0, rz_geo.zone_start(z as u32) + wp, &data, flags)
                    .unwrap_or_else(|e| panic!("seed {seed} op {op}: raizn write failed: {e}"));
                m.data.extend_from_slice(&data);
            }
            // Random read: all three must agree byte-for-byte.
            55..=69 => {
                let full: Vec<usize> = (0..zones).filter(|&z| model[z].written() > 0).collect();
                if full.is_empty() {
                    continue;
                }
                let z = full[rng.gen_range(full.len() as u64) as usize];
                let m = &model[z];
                let off = rng.gen_range(m.written());
                let len = 1 + rng.gen_range((m.written() - off).min(16));
                let mut ls_out = vec![0u8; (len * SECTOR_SIZE) as usize];
                let mut rz_out = vec![0u8; (len * SECTOR_SIZE) as usize];
                ls.read(T0, ls_geo.zone_start(z as u32) + off, &mut ls_out)
                    .unwrap_or_else(|e| panic!("seed {seed} op {op}: lsraid read failed: {e}"));
                rz.read(T0, rz_geo.zone_start(z as u32) + off, &mut rz_out)
                    .unwrap_or_else(|e| panic!("seed {seed} op {op}: raizn read failed: {e}"));
                let lo = (off * SECTOR_SIZE) as usize;
                let want = &m.data[lo..lo + ls_out.len()];
                assert!(
                    ls_out[..] == want[..],
                    "seed {seed} op {op}: lsraid read of zone {z} sectors {off}+{len} diverged"
                );
                assert!(
                    rz_out[..] == want[..],
                    "seed {seed} op {op}: raizn read of zone {z} sectors {off}+{len} diverged"
                );
            }
            // Flush both engines.
            70..=77 => {
                ls.flush(T0).unwrap();
                rz.flush(T0).unwrap();
            }
            // Zone reset.
            78..=83 => {
                let z = rng.gen_range(zones as u64) as u32;
                ls.reset_zone(T0, z).unwrap();
                rz.reset_zone(T0, z).unwrap();
                let m = &mut model[z as usize];
                m.data.clear();
                m.finished = false;
            }
            // Zone finish.
            84..=87 => {
                let open: Vec<usize> = (0..zones)
                    .filter(|&z| !model[z].finished && model[z].written() > 0)
                    .collect();
                if open.is_empty() {
                    continue;
                }
                let z = open[rng.gen_range(open.len() as u64) as usize];
                ls.flush(T0).unwrap();
                rz.flush(T0).unwrap();
                ls.finish_zone(T0, z as u32).unwrap();
                rz.finish_zone(T0, z as u32).unwrap();
                model[z].finished = true;
            }
            _ => {}
        }
    }

    // Final reconciliation: full read-back of every written zone.
    ls.flush(T0).unwrap();
    rz.flush(T0).unwrap();
    for (zi, m) in model.iter().enumerate() {
        let wp = m.written();
        if wp == 0 {
            continue;
        }
        let mut ls_out = vec![0u8; (wp * SECTOR_SIZE) as usize];
        let mut rz_out = vec![0u8; (wp * SECTOR_SIZE) as usize];
        ls.read(T0, ls_geo.zone_start(zi as u32), &mut ls_out)
            .unwrap();
        rz.read(T0, rz_geo.zone_start(zi as u32), &mut rz_out)
            .unwrap();
        assert!(
            ls_out[..] == m.data[..],
            "seed {seed}: lsraid zone {zi} final read-back diverged"
        );
        assert!(
            rz_out[..] == m.data[..],
            "seed {seed}: raizn zone {zi} final read-back diverged"
        );
    }
    let ls_rep = ls.scrub(T0).unwrap();
    assert!(
        ls_rep.parity_errors == 0 && ls_rep.q_errors == 0,
        "seed {seed}: lsraid scrub found damage: {ls_rep:?}"
    );
    let rz_rep = rz.scrub(T0).unwrap();
    assert!(
        rz_rep.parity_repairs == 0 && rz_rep.units_healed == 0,
        "seed {seed}: raizn scrub found damage: {rz_rep:?}"
    );
    // Path oracle: the log-structured engine must never touch a
    // partial-parity log (it has none), while the classic engine does on
    // the same workload — the structural difference under test.
    assert_eq!(
        rec_ls.count(obs::Counter::PpLogWrites),
        0,
        "seed {seed}: lsraid took a pp-log path"
    );
    assert!(
        rec_ls.count(obs::Counter::FullParityWrites) > 0,
        "seed {seed}: lsraid sealed no full stripes"
    );
    assert!(
        rec_rz.count(obs::Counter::PpLogWrites) > 0,
        "seed {seed}: raizn never exercised the pp-log on the shared workload"
    );
    rec_ls.events_since(0).iter().map(signature).collect()
}

#[test]
fn differential_oracle_shared_workload() {
    for seed in 0..4 {
        run_differential(0x15A1_D000 + seed);
    }
}

#[test]
fn differential_oracle_adversarial_seeds() {
    for seed in [0xDEAD_BEEF, 0xBADC_0FFE, 0x0123_4567, 0xFEED_F00D] {
        run_differential(seed);
    }
}

#[test]
fn same_seed_pins_identical_trace() {
    // Determinism pin: two runs of the same seed must produce the same
    // observability trace, event for event — timing, spans and blame
    // included. Any nondeterminism in the engine shows up here first.
    let a = run_differential(0x7EAC_E001);
    let b = run_differential(0x7EAC_E001);
    assert_eq!(a.len(), b.len(), "trace length diverged across runs");
    for (i, (ea, eb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ea, eb, "trace event {i} diverged across runs");
    }
}
