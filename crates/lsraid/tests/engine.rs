//! Engine-level tests for the log-structured RAID volume: read/write
//! semantics, padding and WAF accounting, scrub, GC, crash recovery and
//! metadata-log rotation.

use lsraid::{DirectSink, GcConfig, GcManager, LsConfig, LsVolume};
use sim::SimTime;
use std::sync::Arc;
use zns::{CrashPolicy, WriteFlags, ZnsConfig, ZnsDevice, ZonedVolume, SECTOR_SIZE};

const T0: SimTime = SimTime::ZERO;

fn devices(n: usize) -> Vec<Arc<ZnsDevice>> {
    (0..n)
        .map(|_| {
            Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(16, 64, 64)
                    .open_limits(8, 12)
                    .build(),
            ))
        })
        .collect()
}

/// Deterministic content for `sectors` sectors starting at logical `lba`,
/// salted by `version` so overwrites are distinguishable.
fn pattern(lba: u64, sectors: u64, version: u64) -> Vec<u8> {
    let mut buf = vec![0u8; (sectors * SECTOR_SIZE) as usize];
    for s in 0..sectors {
        let tag = (lba + s) * 31 + version * 7 + 1;
        for (i, b) in buf[(s * SECTOR_SIZE) as usize..((s + 1) * SECTOR_SIZE) as usize]
            .iter_mut()
            .enumerate()
        {
            *b = (tag as u8).wrapping_add(i as u8);
        }
    }
    buf
}

fn write_zone(vol: &LsVolume, zone: u32, version: u64) {
    let geo = vol.geometry();
    let start = geo.zone_start(zone);
    let data = pattern(start, geo.zone_cap(), version);
    vol.write(T0, start, &data, WriteFlags::default()).unwrap();
}

fn verify_zone(vol: &LsVolume, zone: u32, version: u64) {
    let geo = vol.geometry();
    let start = geo.zone_start(zone);
    let want = pattern(start, geo.zone_cap(), version);
    let mut got = vec![0u8; want.len()];
    vol.read(T0, start, &mut got).unwrap();
    assert_eq!(got, want, "zone {zone} content mismatch");
}

#[test]
fn format_exposes_dense_logical_geometry() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    let geo = vol.geometry();
    // 16 phys zones - 2 meta = 14 groups; (14-2) * 256 slots * 0.8 OP
    // = 2457 usable sectors = 38 zones of 64.
    assert_eq!(geo.num_zones(), 38);
    assert_eq!(geo.zone_size(), geo.zone_cap());
    assert_eq!(vol.group_capacity(), 256);
    assert_eq!(vol.free_group_count(), 14);
}

#[test]
fn write_read_roundtrip_and_unit_waf() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    let geo = vol.geometry();
    // Write zone 0 in 8-sector chunks.
    for c in 0..8u64 {
        let lba = c * 8;
        let data = pattern(lba, 8, 0);
        vol.write(T0, lba, &data, WriteFlags::default()).unwrap();
    }
    verify_zone(&vol, 0, 0);
    assert_eq!(vol.stats().user_sectors, geo.zone_cap());
    // No GC, no flush: nothing but user data has been logged.
    assert!((vol.waf() - 1.0).abs() < f64::EPSILON);
    assert_eq!(vol.stats().pad_sectors, 0);
    let info = vol.zone_info(0).unwrap();
    assert_eq!(info.written(), geo.zone_cap());
}

#[test]
fn relaxed_overwrite_remaps_in_place() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    write_zone(&vol, 0, 1);
    // Overwrite the middle of the zone: allowed (rel <= wp) and the read
    // must observe the newest version.
    let data = pattern(10, 4, 9);
    vol.write(T0, 10, &data, WriteFlags::default()).unwrap();
    let mut got = vec![0u8; data.len()];
    vol.read(T0, 10, &mut got).unwrap();
    assert_eq!(got, data);
    // Sectors around the overwrite keep version 1.
    let want = pattern(14, 4, 1);
    let mut got = vec![0u8; want.len()];
    vol.read(T0, 14, &mut got).unwrap();
    assert_eq!(got, want);
}

#[test]
fn append_advances_write_pointer() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    let a = vol
        .append(T0, 3, &pattern(0, 4, 0), WriteFlags::default())
        .unwrap();
    let b = vol
        .append(T0, 3, &pattern(4, 4, 0), WriteFlags::default())
        .unwrap();
    let geo = vol.geometry();
    assert_eq!(a.lba, geo.zone_start(3));
    assert_eq!(b.lba, geo.zone_start(3) + 4);
    assert_eq!(vol.zone_info(3).unwrap().written(), 8);
}

#[test]
fn flush_pads_open_stripe_and_waf_is_honest() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    let data = pattern(0, 8, 0);
    vol.write(T0, 0, &data, WriteFlags::default()).unwrap();
    assert!((vol.waf() - 1.0).abs() < f64::EPSILON);
    vol.flush(T0).unwrap();
    // kd = 16 * 4 = 64 data slots per stripe; 8 written, 56 padded.
    let st = vol.stats();
    assert_eq!(st.pad_sectors, 56);
    assert!((vol.waf() - 8.0).abs() < 1e-9);
    // Padding is not user data: read-back still works and the zone wp
    // is untouched.
    let mut got = vec![0u8; data.len()];
    vol.read(T0, 0, &mut got).unwrap();
    assert_eq!(got, data);
    assert_eq!(vol.zone_info(0).unwrap().written(), 8);
}

#[test]
fn scrub_is_clean_and_detects_corruption() {
    let devs = devices(5);
    let vol = LsVolume::format(devs.clone(), LsConfig::default(), T0).unwrap();
    for z in 0..4 {
        write_zone(&vol, z, 0);
    }
    vol.flush(T0).unwrap();
    let rep = vol.scrub(T0).unwrap();
    assert!(rep.stripes >= 4);
    assert_eq!(rep.parity_errors, 0);
    // Stripe 0 of the first group lives at physical zone 2 (the lowest
    // free zone); its parity is on device 0, so device 1 holds data.
    let plba = devs[1].config().geometry().zone_start(2);
    devs[1].corrupt_sector_for_test(plba, 0x5a);
    let rep = vol.scrub(T0).unwrap();
    assert!(rep.parity_errors >= 1);
}

#[test]
fn dual_parity_scrub_checks_q() {
    let devs = devices(6);
    let cfg = LsConfig::default().parity(2);
    let vol = LsVolume::format(devs.clone(), cfg, T0).unwrap();
    for z in 0..4 {
        write_zone(&vol, z, 0);
    }
    vol.flush(T0).unwrap();
    let rep = vol.scrub(T0).unwrap();
    assert!(rep.stripes >= 4);
    assert_eq!(rep.parity_errors, 0);
    assert_eq!(rep.q_errors, 0);
    // Corrupt a data sector: both P and Q must notice.
    let plba = devs[2].config().geometry().zone_start(2);
    devs[2].corrupt_sector_for_test(plba, 0xa5);
    let rep = vol.scrub(T0).unwrap();
    assert!(rep.parity_errors >= 1);
    assert!(rep.q_errors >= 1);
}

#[test]
fn remount_preserves_data_and_zone_state() {
    let devs = devices(5);
    {
        let vol = LsVolume::format(devs.clone(), LsConfig::default(), T0).unwrap();
        for z in 0..6 {
            write_zone(&vol, z, z as u64);
        }
        // A partial zone too.
        vol.write(
            T0,
            vol.geometry().zone_start(7),
            &pattern(vol.geometry().zone_start(7), 12, 3),
            WriteFlags::default(),
        )
        .unwrap();
        vol.finish_zone(T0, 5).unwrap();
        vol.flush(T0).unwrap();
    }
    let vol = LsVolume::mount(devs, LsConfig::default(), T0).unwrap();
    for z in 0..5 {
        verify_zone(&vol, z, z as u64);
    }
    verify_zone(&vol, 5, 5);
    assert_eq!(vol.zone_info(5).unwrap().state, zns::ZoneState::Full);
    assert_eq!(vol.zone_info(7).unwrap().written(), 12);
    let want = pattern(vol.geometry().zone_start(7), 12, 3);
    let mut got = vec![0u8; want.len()];
    vol.read(T0, vol.geometry().zone_start(7), &mut got)
        .unwrap();
    assert_eq!(got, want);
    assert_eq!(vol.scrub(T0).unwrap().parity_errors, 0);
}

#[test]
fn crash_recovers_durable_prefix_only() {
    let devs = devices(5);
    {
        let vol = LsVolume::format(devs.clone(), LsConfig::default(), T0).unwrap();
        write_zone(&vol, 0, 0);
        vol.flush(T0).unwrap();
        // Never flushed: this data is volatile on the devices.
        write_zone(&vol, 1, 0);
    }
    for d in &devs {
        d.crash(&mut CrashPolicy::LoseCache);
    }
    let vol = LsVolume::mount(devs, LsConfig::default(), T0).unwrap();
    verify_zone(&vol, 0, 0);
    // Zone 1's stripes never became durable: the roll-forward validation
    // against surviving write pointers must refuse them.
    assert_eq!(vol.zone_info(1).unwrap().written(), 0);
    assert_eq!(vol.scrub(T0).unwrap().parity_errors, 0);
    // The recovered array keeps working.
    write_zone(&vol, 1, 7);
    verify_zone(&vol, 1, 7);
}

#[test]
fn gc_manager_reclaims_and_preserves_data() {
    let devs = devices(5);
    let vol = Arc::new(LsVolume::format(devs, LsConfig::default(), T0).unwrap());
    let zones = vol.geometry().num_zones();
    let mut version = vec![0u64; zones as usize];
    for z in 0..zones {
        write_zone(&vol, z, 0);
    }
    // Overwrite a third of the zones to create garbage.
    for z in (0..zones).step_by(3) {
        write_zone(&vol, z, 1);
        version[z as usize] = 1;
    }
    vol.flush(T0).unwrap();
    let free_before = vol.free_group_count();
    let mut gc = GcManager::new(vol.clone(), GcConfig::default());
    let mut sink = DirectSink::new(&vol);
    for _ in 0..200 {
        gc.pump(T0, &mut sink).unwrap();
        if gc.reclaimed_groups() >= 2 {
            break;
        }
    }
    assert!(gc.reclaimed_groups() >= 2, "GC never reclaimed a group");
    assert!(gc.migrated_sectors() > 0);
    assert!(vol.free_group_count() > free_before);
    assert!(vol.waf() > 1.0);
    for z in 0..zones {
        verify_zone(&vol, z, version[z as usize]);
    }
    assert_eq!(vol.scrub(T0).unwrap().parity_errors, 0);
}

#[test]
fn emergency_reclaim_keeps_writes_flowing() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    let zones = vol.geometry().num_zones();
    let mut version = vec![0u64; zones as usize];
    for z in 0..zones {
        write_zone(&vol, z, 0);
    }
    // No background GC: sustained overwrite must eventually hit the
    // reserve and trigger inline emergency collection instead of
    // failing with an allocation error.
    let mut v = 1u64;
    while vol.stats().emergency_reclaims == 0 {
        assert!(v < 300, "emergency collection never fired");
        let z = (v % u64::from(zones)) as u32;
        write_zone(&vol, z, v);
        version[z as usize] = v;
        v += 1;
    }
    for z in 0..zones {
        verify_zone(&vol, z, version[z as usize]);
    }
    let st = vol.stats();
    assert!(st.group_reclaims >= 1);
    assert!(st.migrated_sectors > 0 || st.group_reclaims > 0);
}

#[test]
fn meta_rotation_survives_remount() {
    let devs = devices(5);
    let version;
    {
        let vol = LsVolume::format(devs.clone(), LsConfig::default(), T0).unwrap();
        let zones = vol.geometry().num_zones();
        let mut ver = vec![0u64; zones as usize];
        for z in 0..zones {
            write_zone(&vol, z, 0);
        }
        let mut v = 1u64;
        // Each full-zone write seals a stripe (one summary record); the
        // 64-sector meta zone rotates after a few dozen.
        while vol.stats().meta_rotations < 2 {
            assert!(v < 400, "metadata log never rotated");
            let z = (v % u64::from(zones)) as u32;
            write_zone(&vol, z, v);
            ver[z as usize] = v;
            v += 1;
        }
        vol.flush(T0).unwrap();
        version = ver;
    }
    let vol = LsVolume::mount(devs, LsConfig::default(), T0).unwrap();
    for (z, &ver) in version.iter().enumerate() {
        verify_zone(&vol, z as u32, ver);
    }
    assert_eq!(vol.scrub(T0).unwrap().parity_errors, 0);
}

#[test]
fn zone_reset_unmaps_and_reclaims_capacity() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    write_zone(&vol, 0, 0);
    vol.flush(T0).unwrap();
    vol.reset_zone(T0, 0).unwrap();
    assert_eq!(vol.zone_info(0).unwrap().written(), 0);
    let mut buf = vec![0u8; SECTOR_SIZE as usize];
    assert!(vol.read(T0, 0, &mut buf).is_err());
    // The old blocks are garbage now; a fresh write works.
    write_zone(&vol, 0, 2);
    verify_zone(&vol, 0, 2);
}

#[test]
fn sequential_rule_enforced_for_foreground() {
    let vol = LsVolume::format(devices(5), LsConfig::default(), T0).unwrap();
    let data = pattern(8, 4, 0);
    let err = vol.write(T0, 8, &data, WriteFlags::default()).unwrap_err();
    assert!(matches!(err, zns::ZnsError::NotSequential { zone: 0, .. }));
    // Reading past the write pointer is refused.
    let mut buf = vec![0u8; SECTOR_SIZE as usize];
    assert!(matches!(
        vol.read(T0, 0, &mut buf),
        Err(zns::ZnsError::ReadUnwritten { .. })
    ));
}
