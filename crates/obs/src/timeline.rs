//! Time-series telemetry: virtual-time gauge sampling and the combined
//! timeline JSON exporter.
//!
//! The windowed latency digests live inside [`Recorder`] (same mutex as
//! the trace ring, so the hot path pays no extra lock); this module adds
//! the *gauge* plane — instantaneous state readings sampled on the
//! virtual clock — and the `BENCH_*_timeline.json` exporter that merges
//! both into one artifact.
//!
//! Design constraints mirror the tracing layer (DESIGN.md
//! "Observability"):
//!
//! - **Driven, not threaded.** There is no background thread; whatever
//!   advances virtual time (normally the workload engine) calls
//!   [`Timeline::maybe_sample`] with the current instant. The fast path
//!   is one atomic load, so attaching a timeline costs nothing between
//!   sample points.
//! - **Allocation-free in steady state.** Series storage is discovered
//!   and preallocated when a source is registered; sampling appends into
//!   fixed-capacity buffers and drops (counted) beyond them.
//! - **Deterministic.** Sample instants derive from [`SimTime`] only, so
//!   identical runs produce identical timelines.

use crate::{Recorder, Stage};
use parking_lot::Mutex;
use sim::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum points retained per gauge series; later samples are dropped
/// (and counted) so steady-state sampling never reallocates.
const POINTS_PER_SERIES: usize = 4096;

/// One instantaneous gauge reading, produced by a [`GaugeSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeReading {
    /// Stable snake-case gauge name (e.g. `"open_zones"`).
    pub gauge: &'static str,
    /// Device index the reading belongs to, or [`crate::NONE`] for
    /// volume-wide gauges.
    pub device: u32,
    /// The sampled value.
    pub value: f64,
}

impl GaugeReading {
    /// Convenience constructor.
    pub fn new(gauge: &'static str, device: u32, value: f64) -> Self {
        GaugeReading {
            gauge,
            device,
            value,
        }
    }
}

/// A provider of instantaneous gauge readings — implemented by devices
/// and volumes (`ZnsDevice`, `ConvSsd`, `RaiznVolume`, `Md5Volume`).
///
/// `sample_gauges` must emit the *same set* of `(gauge, device)` pairs on
/// every call: the timeline discovers and preallocates series storage at
/// registration time, and a pair first seen later allocates on the
/// sampling path.
pub trait GaugeSource: Send + Sync {
    /// Stable label of the source layer (e.g. `"zns"`, `"raizn"`).
    fn source_label(&self) -> &'static str;

    /// Appends one reading per exported gauge to `out`.
    fn sample_gauges(&self, out: &mut Vec<GaugeReading>);
}

/// One exported gauge series (snapshot form returned by
/// [`Timeline::series`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSeries {
    /// Source layer label.
    pub source: &'static str,
    /// Gauge name.
    pub gauge: &'static str,
    /// Device index, or [`crate::NONE`].
    pub device: u32,
    /// `(instant, value)` samples, oldest first.
    pub points: Vec<(SimTime, f64)>,
}

struct SeriesSlot {
    source: &'static str,
    gauge: &'static str,
    device: u32,
    /// Which registered source produces this series.
    src_index: usize,
    points: Vec<(u64, f64)>,
}

struct TlInner {
    sources: Vec<Arc<dyn GaugeSource>>,
    series: Vec<SeriesSlot>,
    scratch: Vec<GaugeReading>,
    samples_taken: u64,
    points_dropped: u64,
}

/// A registry of [`GaugeSource`]s sampled on the virtual clock at a fixed
/// interval. Shareable (`Arc`); one timeline normally covers the whole
/// stack of an experiment, alongside a windowed [`Recorder`].
pub struct Timeline {
    interval_ns: u64,
    /// Next virtual instant at which sampling is due (fast-path check).
    next_at: AtomicU64,
    inner: Mutex<TlInner>,
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Timeline")
            .field("interval_ns", &self.interval_ns)
            .field("sources", &inner.sources.len())
            .field("series", &inner.series.len())
            .field("samples_taken", &inner.samples_taken)
            .finish()
    }
}

impl Timeline {
    /// Creates a timeline sampling every `interval` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Arc<Self> {
        assert!(
            interval > SimDuration::ZERO,
            "timeline interval must be positive"
        );
        Arc::new(Timeline {
            interval_ns: interval.as_nanos(),
            next_at: AtomicU64::new(0),
            inner: Mutex::new(TlInner {
                sources: Vec::new(),
                series: Vec::new(),
                scratch: Vec::new(),
                samples_taken: 0,
                points_dropped: 0,
            }),
        })
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_nanos(self.interval_ns)
    }

    /// Registers a gauge source. The source is sampled once (discarding
    /// the values) to discover its series and preallocate their storage,
    /// so steady-state sampling stays allocation-free.
    pub fn register(&self, source: Arc<dyn GaugeSource>) {
        let mut inner = self.inner.lock();
        let src_index = inner.sources.len();
        let label = source.source_label();
        let mut discovered = Vec::new();
        source.sample_gauges(&mut discovered);
        for r in &discovered {
            inner.series.push(SeriesSlot {
                source: label,
                gauge: r.gauge,
                device: r.device,
                src_index,
                points: Vec::with_capacity(POINTS_PER_SERIES),
            });
        }
        let scratch_need = discovered.len().max(16);
        let have = inner.scratch.capacity();
        inner.scratch.reserve(scratch_need.saturating_sub(have));
        inner.sources.push(source);
    }

    /// Samples all sources if `now` has reached the next sample instant.
    /// The fast path (not yet due) is a single atomic load — cheap enough
    /// to call once per IO completion.
    pub fn maybe_sample(&self, now: SimTime) {
        if now.as_nanos() < self.next_at.load(Ordering::Relaxed) {
            return;
        }
        self.force_sample(now);
    }

    /// Samples all sources unconditionally at `now` (phase boundaries,
    /// end-of-run capture) and schedules the next periodic sample.
    pub fn force_sample(&self, now: SimTime) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let t = now.as_nanos();
        for (src_index, source) in inner.sources.iter().enumerate() {
            inner.scratch.clear();
            source.sample_gauges(&mut inner.scratch);
            for r in &inner.scratch {
                let slot = inner.series.iter_mut().find(|s| {
                    s.src_index == src_index && s.gauge == r.gauge && s.device == r.device
                });
                let slot = match slot {
                    Some(s) => s,
                    None => {
                        // A series not present at registration: create it
                        // (allocates — sources should emit a stable set).
                        inner.series.push(SeriesSlot {
                            source: source.source_label(),
                            gauge: r.gauge,
                            device: r.device,
                            src_index,
                            points: Vec::with_capacity(POINTS_PER_SERIES),
                        });
                        inner.series.last_mut().expect("just pushed")
                    }
                };
                if slot.points.len() == POINTS_PER_SERIES {
                    inner.points_dropped += 1;
                } else {
                    slot.points.push((t, r.value));
                }
            }
        }
        inner.samples_taken += 1;
        let next = (t / self.interval_ns + 1) * self.interval_ns;
        self.next_at.store(next, Ordering::Relaxed);
    }

    /// Number of sampling passes performed.
    pub fn samples_taken(&self) -> u64 {
        self.inner.lock().samples_taken
    }

    /// Points discarded because a series hit its retention cap.
    pub fn points_dropped(&self) -> u64 {
        self.inner.lock().points_dropped
    }

    /// Snapshot of every gauge series, in registration order.
    pub fn series(&self) -> Vec<GaugeSeries> {
        let inner = self.inner.lock();
        inner
            .series
            .iter()
            .map(|s| GaugeSeries {
                source: s.source,
                gauge: s.gauge,
                device: s.device,
                points: s
                    .points
                    .iter()
                    .map(|&(t, v)| (SimTime::from_nanos(t), v))
                    .collect(),
            })
            .collect()
    }

    /// Discards all recorded points (sources and series stay registered)
    /// and re-arms sampling, so a timeline can cover only the phase of
    /// interest of a longer run.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        for s in &mut inner.series {
            s.points.clear();
        }
        inner.samples_taken = 0;
        inner.points_dropped = 0;
        self.next_at.store(0, Ordering::Relaxed);
    }
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

/// Renders the combined timeline artifact: whole-run stage percentiles,
/// per-window digests (with throughput derived from whole-op sectors of
/// `sector_bytes` each) and every gauge series. `name` tags the producing
/// experiment; `timeline` may be omitted for window-only captures.
pub fn timeline_json(
    name: &str,
    recorder: &Recorder,
    timeline: Option<&Timeline>,
    sector_bytes: u64,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", crate::escape(name)));
    out.push_str("  \"kind\": \"timeline\",\n");
    let interval = recorder.window_interval().unwrap_or(SimDuration::ZERO);
    out.push_str(&format!("  \"window_ns\": {},\n", interval.as_nanos()));
    out.push_str(&format!(
        "  \"events_recorded\": {},\n",
        recorder.next_seq()
    ));
    out.push_str(&format!("  \"late_events\": {},\n", recorder.late_events()));
    out.push_str(&format!(
        "  \"windows_dropped\": {},\n",
        recorder.windows_dropped()
    ));

    // Whole-run per-stage digest (reference for windowed SLOs).
    out.push_str("  \"whole_run\": {\n    \"stages\": {\n");
    for (i, stage) in Stage::ALL.iter().enumerate() {
        let h = recorder.stage_histogram(*stage);
        out.push_str(&format!(
            "      \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
            stage.name(),
            h.count(),
            h.percentile(50.0).as_nanos(),
            h.percentile(95.0).as_nanos(),
            h.percentile(99.0).as_nanos(),
            h.max().as_nanos(),
            if i + 1 < Stage::ALL.len() { "," } else { "" },
        ));
    }
    out.push_str("    }\n  },\n");

    // Tumbling windows.
    let windows = recorder.windows();
    let window_secs = interval.as_secs_f64();
    out.push_str("  \"windows\": [");
    for (wi, w) in windows.iter().enumerate() {
        let whole = &w.stages[Stage::WholeOp.index()];
        let mib_s = if window_secs > 0.0 {
            (whole.sectors * sector_bytes) as f64 / (1024.0 * 1024.0) / window_secs
        } else {
            0.0
        };
        out.push_str(if wi == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"index\": {}, \"start_ns\": {}, \"throughput_mib_s\": {}, \
             \"errors\": {}, \"stages\": {{",
            w.index,
            w.start.as_nanos(),
            fmt_f64(mib_s),
            w.errors
        ));
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let s = &w.stages[stage.index()];
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sectors\": {}, \"p50_ns\": {}, \
                 \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}",
                stage.name(),
                s.count,
                s.sectors,
                s.p50.as_nanos(),
                s.p95.as_nanos(),
                s.p99.as_nanos(),
                s.max.as_nanos(),
                if i + 1 < Stage::ALL.len() { ", " } else { "" },
            ));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n");

    // Gauge series.
    out.push_str("  \"gauges\": [");
    let series = timeline.map(|t| t.series()).unwrap_or_default();
    let mut first = true;
    for s in &series {
        if s.points.is_empty() {
            continue;
        }
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!(
            "    {{\"source\": \"{}\", \"gauge\": \"{}\", ",
            crate::escape(s.source),
            crate::escape(s.gauge)
        ));
        if s.device != crate::NONE {
            out.push_str(&format!("\"device\": {}, ", s.device));
        }
        out.push_str("\"points\": [");
        for (i, (t, v)) in s.points.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{}, {}]", t.as_nanos(), fmt_f64(*v)));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpClass, Outcome, TraceEvent};

    struct FakeSource {
        label: &'static str,
        value: Mutex<f64>,
    }

    impl GaugeSource for FakeSource {
        fn source_label(&self) -> &'static str {
            self.label
        }

        fn sample_gauges(&self, out: &mut Vec<GaugeReading>) {
            let v = *self.value.lock();
            out.push(GaugeReading::new("level", 0, v));
            out.push(GaugeReading::new("level", 1, v * 2.0));
        }
    }

    fn fake(label: &'static str) -> Arc<FakeSource> {
        Arc::new(FakeSource {
            label,
            value: Mutex::new(1.0),
        })
    }

    #[test]
    fn register_discovers_series_without_recording_points() {
        let tl = Timeline::new(SimDuration::from_millis(10));
        tl.register(fake("zns"));
        let series = tl.series();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| s.points.is_empty()));
        assert_eq!(series[0].source, "zns");
        assert_eq!(series[0].gauge, "level");
    }

    #[test]
    fn maybe_sample_fires_once_per_interval() {
        let tl = Timeline::new(SimDuration::from_millis(10));
        let src = fake("ftl");
        tl.register(src.clone());
        tl.maybe_sample(SimTime::from_millis(0)); // due immediately
        tl.maybe_sample(SimTime::from_millis(3)); // same window: skipped
        tl.maybe_sample(SimTime::from_millis(9));
        assert_eq!(tl.samples_taken(), 1);
        *src.value.lock() = 7.0;
        tl.maybe_sample(SimTime::from_millis(12)); // next window
        assert_eq!(tl.samples_taken(), 2);
        let series = tl.series();
        assert_eq!(series[0].points.len(), 2);
        assert_eq!(series[0].points[1], (SimTime::from_millis(12), 7.0));
        assert_eq!(series[1].points[1].1, 14.0);
    }

    #[test]
    fn force_sample_ignores_schedule() {
        let tl = Timeline::new(SimDuration::from_secs(1));
        tl.register(fake("raizn"));
        tl.force_sample(SimTime::from_nanos(5));
        tl.force_sample(SimTime::from_nanos(6));
        assert_eq!(tl.samples_taken(), 2);
    }

    #[test]
    fn clear_resets_points_and_schedule() {
        let tl = Timeline::new(SimDuration::from_millis(1));
        tl.register(fake("mdraid"));
        tl.maybe_sample(SimTime::from_millis(5));
        assert_eq!(tl.series()[0].points.len(), 1);
        tl.clear();
        assert!(tl.series()[0].points.is_empty());
        tl.maybe_sample(SimTime::from_millis(5));
        assert_eq!(tl.series()[0].points.len(), 1);
    }

    #[test]
    fn timeline_json_contains_windows_and_gauges() {
        let rec = Recorder::new(64, 1);
        rec.enable_windows(SimDuration::from_millis(10), 128);
        for i in 0..4u64 {
            rec.record(TraceEvent {
                seq: 0,
                op: OpClass::Write,
                stage: Stage::WholeOp,
                path: None,
                device: crate::NONE,
                zone: crate::NONE,
                lba: 0,
                sectors: 8,
                start: SimTime::from_millis(i * 10),
                end: SimTime::from_millis(i * 10 + 1),
                outcome: Outcome::Success,
                span: 0,
                parent: 0,
                blame: crate::Actor::None,
            });
        }
        let tl = Timeline::new(SimDuration::from_millis(10));
        tl.register(fake("zns"));
        tl.force_sample(SimTime::from_millis(15));
        let json = timeline_json("demo", &rec, Some(&tl), 4096);
        assert!(json.contains("\"kind\": \"timeline\""));
        assert!(json.contains("\"window_ns\": 10000000"));
        assert!(json.contains("\"whole_run\""));
        assert!(json.contains("\"throughput_mib_s\""));
        assert!(json.contains("\"gauge\": \"level\""));
        // All four windows present (three finalized + the open one).
        assert!(json.matches("\"index\":").count() >= 4);
    }

    #[test]
    fn points_capped_at_capacity() {
        let tl = Timeline::new(SimDuration::from_nanos(1));
        tl.register(fake("zns"));
        for i in 0..(POINTS_PER_SERIES as u64 + 10) {
            tl.force_sample(SimTime::from_nanos(i));
        }
        assert_eq!(tl.series()[0].points.len(), POINTS_PER_SERIES);
        assert_eq!(tl.points_dropped(), 20); // 10 overflow samples x 2 series
    }
}
