//! Observability layer: structured op tracing and latency attribution.
//!
//! Every layer of the stack (ZNS device model, conventional-SSD FTL, the
//! RAIZN volume, the mdraid comparison target, the workload engine) can be
//! handed a shared [`Recorder`] and will then emit [`TraceEvent`]s:
//! one per IO span, carrying the op kind, the layer-specific *stage*
//! (device IO, XOR, metadata append, flush), the device/zone/LBA range it
//! touched, its virtual start/end instants, and the path the IO took
//! ([`PathKind`] — e.g. full-parity vs partial-parity-log on RAIZN,
//! full-stripe vs read-modify-write on mdraid).
//!
//! Design constraints (see DESIGN.md "Observability"):
//!
//! - **Allocation-free recording.** The ring buffer, stage histograms and
//!   counter table are allocated once in [`Recorder::new`]; recording an
//!   event is an atomic sequence claim, one shard-mutex acquisition and a
//!   few array writes. This preserves the zero-alloc steady-state
//!   write-path gate of `BENCH_hotpath.json`.
//! - **Shard-parallel.** The ring and stage histograms are split over up
//!   to eight shards selected by sequence number, and the aggregate
//!   counters are plain atomics, so concurrent writers on a multi-threaded
//!   volume do not serialize on one recorder mutex. Read-side snapshots
//!   ([`Recorder::events`], [`Recorder::stage_histogram`]) merge shards.
//! - **Deterministic.** Timestamps are [`SimTime`] (virtual) only; the
//!   recorder never consults a wall clock, so two runs with the same seed
//!   produce byte-identical traces — which is what lets tests use traces
//!   as an *oracle* (assert which path an IO took, not just its result).
//! - **Bounded.** The ring keeps the most recent `capacity` sampled
//!   events; older events are overwritten (counted in
//!   [`Recorder::dropped`]). Histograms and counters always see every
//!   event regardless of sampling.
//!
//! # Examples
//!
//! ```
//! use obs::{Counter, OpClass, Outcome, Recorder, Stage, TraceEvent};
//! use sim::SimTime;
//!
//! let rec = Recorder::new(1024, 1);
//! rec.record(TraceEvent {
//!     op: OpClass::Write,
//!     stage: Stage::DeviceIo,
//!     device: 0,
//!     zone: 3,
//!     lba: 192,
//!     sectors: 8,
//!     start: SimTime::ZERO,
//!     end: SimTime::from_micros(20),
//!     outcome: Outcome::Success,
//!     path: None,
//!     seq: 0,                  // assigned by the recorder
//!     span: 0,                 // no span identity of its own
//!     parent: obs::current_span(), // ambient causal parent (0 = root)
//!     blame: obs::current_actor(), // ambient actor (interference blame)
//! });
//! rec.bump(Counter::CacheFlushes);
//! let events = rec.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].stage, Stage::DeviceIo);
//! assert!(rec.breakdown_json("demo").contains("device_io"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use sim::{Histogram, SimDuration, SimTime};
use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

pub mod span;
pub mod timeline;

pub use span::{
    actor_scope, blame_segments, current_actor, current_span, span_scope, spans_json, Actor,
    ActorScope, BlameRow, SlowOp, SpanConfig, SpanScope, BLAME_CATEGORIES, NCATS,
};
pub use timeline::{timeline_json, GaugeReading, GaugeSeries, GaugeSource, Timeline};

/// The class of operation a trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// A read command.
    Read,
    /// A positional write command.
    Write,
    /// A zone append command.
    Append,
    /// A cache flush (explicit or preflush).
    Flush,
    /// A zone reset (or TRIM on block devices).
    Reset,
    /// A zone finish.
    Finish,
    /// A zone open/close (lifecycle management traffic that is neither
    /// data nor a seal/reset).
    ZoneMgmt,
}

impl OpClass {
    /// Stable lower-case name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::Append => "append",
            OpClass::Flush => "flush",
            OpClass::Reset => "reset",
            OpClass::Finish => "finish",
            OpClass::ZoneMgmt => "zone_mgmt",
        }
    }
}

/// The pipeline stage a span is attributed to. Each logical write on the
/// RAIZN path decomposes into `DeviceIo` + `Xor` + `MetaAppend` + `Flush`
/// spans; `WholeOp` spans bracket the entire logical operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Time spent in a device data command (read/write/append/reset).
    DeviceIo,
    /// Parity / reconstruction XOR compute. Host compute is instantaneous
    /// on the virtual clock, so these spans have zero duration; they exist
    /// for path attribution and counting.
    Xor,
    /// Metadata-zone log appends (superblock, pp-log, relocation, WAL).
    MetaAppend,
    /// Cache-flush / persistence barriers (FUA closure, explicit flush).
    Flush,
    /// Time an op spent queued in the QoS scheduler (arrival to dispatch).
    QueueWait,
    /// Scheduler-observed service time of an op (dispatch to completion).
    Service,
    /// The whole logical operation as seen by the caller.
    WholeOp,
    /// Time a device command stalled waiting for a busy occupancy unit
    /// (channel/die), split out of [`Stage::DeviceIo`]; the event's
    /// blame field names the actor that last held the unit.
    DeviceWait,
    /// Zone-shard / metadata lock acquisition marker. Locks cost no
    /// *virtual* time, so these spans are zero-width; wall-clock
    /// contention stays in [`LockStats`] gauges.
    LockWait,
}

impl Stage {
    /// All stages, in index order.
    pub const ALL: [Stage; 9] = [
        Stage::DeviceIo,
        Stage::Xor,
        Stage::MetaAppend,
        Stage::Flush,
        Stage::QueueWait,
        Stage::Service,
        Stage::WholeOp,
        Stage::DeviceWait,
        Stage::LockWait,
    ];

    /// Stable lower-case name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            Stage::DeviceIo => "device_io",
            Stage::Xor => "xor",
            Stage::MetaAppend => "meta_append",
            Stage::Flush => "flush",
            Stage::QueueWait => "queue_wait",
            Stage::Service => "service",
            Stage::WholeOp => "whole_op",
            Stage::DeviceWait => "device_wait",
            Stage::LockWait => "lock_wait",
        }
    }

    /// Stable index into [`Stage::ALL`]-ordered arrays (e.g.
    /// [`WindowSummary::stages`]).
    pub fn index(self) -> usize {
        match self {
            Stage::DeviceIo => 0,
            Stage::Xor => 1,
            Stage::MetaAppend => 2,
            Stage::Flush => 3,
            Stage::QueueWait => 4,
            Stage::Service => 5,
            Stage::WholeOp => 6,
            Stage::DeviceWait => 7,
            Stage::LockWait => 8,
        }
    }
}

/// Which internal path an operation took — the trace-as-oracle field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// RAIZN: a completed stripe wrote its full parity unit.
    FullParity,
    /// RAIZN: a partial stripe logged partial parity to the metadata zone.
    PpLog,
    /// RAIZN: parity updated in place through a ZRWA window.
    Zrwa,
    /// RAIZN: the write was relocated to a metadata zone (conflicted unit).
    Relocated,
    /// RAIZN/mdraid: data served by parity reconstruction (degraded).
    Degraded,
    /// RAIZN-2: a completed stripe wrote its Q (Reed–Solomon) parity unit.
    QParity,
    /// RAIZN-2: data served by two-erasure RS reconstruction (two
    /// devices missing/failed).
    DoubleDegraded,
    /// mdraid: aligned full-stripe write (no pre-reads).
    FullStripe,
    /// mdraid: read-modify-write partial-stripe update.
    Rmw,
    /// mdraid: reconstruct-write partial-stripe update.
    Rcw,
}

impl PathKind {
    /// Stable lower-case name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            PathKind::FullParity => "full_parity",
            PathKind::PpLog => "pp_log",
            PathKind::Zrwa => "zrwa",
            PathKind::Relocated => "relocated",
            PathKind::Degraded => "degraded",
            PathKind::QParity => "q_parity",
            PathKind::DoubleDegraded => "double_degraded",
            PathKind::FullStripe => "full_stripe",
            PathKind::Rmw => "rmw",
            PathKind::Rcw => "rcw",
        }
    }
}

/// How a traced span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The operation completed.
    Success,
    /// The operation failed with an injected transient error.
    Transient,
    /// The operation failed with a media error.
    Media,
    /// The operation failed with any other error.
    Error,
}

impl Outcome {
    /// Stable lower-case name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Success => "ok",
            Outcome::Transient => "transient",
            Outcome::Media => "media",
            Outcome::Error => "error",
        }
    }
}

/// Sentinel for [`TraceEvent::device`] / [`TraceEvent::zone`] when the
/// span is not attributable to one device or zone (e.g. a volume-wide
/// flush).
pub const NONE: u32 = u32::MAX;

/// One traced span. `Copy` and fixed-size so the ring buffer never
/// allocates after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, assigned by the recorder.
    pub seq: u64,
    /// Operation class.
    pub op: OpClass,
    /// Attributed pipeline stage.
    pub stage: Stage,
    /// Path taken, when the layer records one (the oracle field).
    pub path: Option<PathKind>,
    /// Device index within its array, or [`NONE`].
    pub device: u32,
    /// Zone number, or [`NONE`].
    pub zone: u32,
    /// Starting LBA of the affected range (0 when not applicable).
    pub lba: u64,
    /// Length of the affected range in sectors (0 when not applicable).
    pub sectors: u64,
    /// Virtual instant the span started.
    pub start: SimTime,
    /// Virtual instant the span ended (`>= start`).
    pub end: SimTime,
    /// How the span ended.
    pub outcome: Outcome,
    /// Causal span identity ([`Recorder::new_span`]); 0 for leaf events
    /// that own no identity of their own.
    pub span: u64,
    /// Span id of the causal parent (the enclosing op), or 0 for a
    /// tree root. Layers normally record the ambient [`current_span`].
    pub parent: u64,
    /// Actor the span's time is blamed on (only meaningful on
    /// [`Stage::DeviceWait`], where it names the unit's last occupant).
    pub blame: Actor,
}

impl TraceEvent {
    const EMPTY: TraceEvent = TraceEvent {
        seq: 0,
        op: OpClass::Read,
        stage: Stage::WholeOp,
        path: None,
        device: NONE,
        zone: NONE,
        lba: 0,
        sectors: 0,
        start: SimTime::ZERO,
        end: SimTime::ZERO,
        outcome: Outcome::Success,
        span: 0,
        parent: 0,
        blame: Actor::None,
    };

    /// A zeroed placeholder event (ring slot initializer).
    pub const fn empty() -> TraceEvent {
        TraceEvent::EMPTY
    }

    /// The span's duration on the virtual clock.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Aggregate counters maintained alongside the trace ring. Unlike ring
/// events these are never sampled away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Transient device errors retried by an upper layer.
    Retries,
    /// Reads served by parity reconstruction (device missing/failed).
    DegradedReads,
    /// Reads served by two-erasure RS reconstruction (RAIZN-2, two
    /// devices missing/failed).
    DoubleDegradedReads,
    /// Foreground FTL garbage-collection stalls suffered by host writes.
    GcStalls,
    /// Total virtual nanoseconds host writes spent stalled behind GC.
    GcStallNanos,
    /// Device write-cache flushes (explicit flush, preflush, FUA closure).
    CacheFlushes,
    /// RAIZN metadata-zone garbage-collection runs.
    MdGcRuns,
    /// Latent-sector read errors healed in place.
    ReadRepairs,
    /// RAIZN full parity-unit writes (completed stripes).
    FullParityWrites,
    /// RAIZN-2 full Q-parity-unit writes (completed stripes, dual parity).
    QParityWrites,
    /// RAIZN partial-parity log appends.
    PpLogWrites,
    /// RAIZN in-place ZRWA parity updates.
    ZrwaParityWrites,
    /// RAIZN writes relocated to a metadata zone.
    RelocatedWrites,
    /// mdraid full-stripe writes.
    FullStripeWrites,
    /// mdraid read-modify-write updates.
    RmwWrites,
    /// mdraid reconstruct-write updates.
    RcwWrites,
    /// QoS scheduler: ops rejected at admission (queue full / congestion).
    SchedSheds,
    /// QoS scheduler: ops whose queue wait exceeded their deadline.
    SchedDeferrals,
    /// QoS scheduler: write ops merged into an already-queued batch.
    SchedCoalescedOps,
    /// QoS scheduler: zone-management ops (open/close/finish/reset)
    /// dispatched on behalf of background lifecycle management.
    SchedMgmtOps,
    /// Total virtual nanoseconds device commands stalled waiting for a
    /// busy occupancy unit (the [`Stage::DeviceWait`] aggregate).
    DeviceWaitNanos,
    /// lsraid: valid sectors migrated out of GC victim stripe groups.
    LsMigratedSectors,
    /// lsraid: zero-pad sectors written to seal partial stripes at flush.
    LsPadSectors,
    /// lsraid: stripe groups reclaimed (all zones reset, returned free).
    LsGroupReclaims,
}

impl Counter {
    /// All counters, in index order.
    pub const ALL: [Counter; 24] = [
        Counter::Retries,
        Counter::DegradedReads,
        Counter::DoubleDegradedReads,
        Counter::GcStalls,
        Counter::GcStallNanos,
        Counter::CacheFlushes,
        Counter::MdGcRuns,
        Counter::ReadRepairs,
        Counter::FullParityWrites,
        Counter::QParityWrites,
        Counter::PpLogWrites,
        Counter::ZrwaParityWrites,
        Counter::RelocatedWrites,
        Counter::FullStripeWrites,
        Counter::RmwWrites,
        Counter::RcwWrites,
        Counter::SchedSheds,
        Counter::SchedDeferrals,
        Counter::SchedCoalescedOps,
        Counter::SchedMgmtOps,
        Counter::DeviceWaitNanos,
        Counter::LsMigratedSectors,
        Counter::LsPadSectors,
        Counter::LsGroupReclaims,
    ];

    /// Stable snake-case name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Retries => "retries",
            Counter::DegradedReads => "degraded_reads",
            Counter::DoubleDegradedReads => "double_degraded_reads",
            Counter::GcStalls => "gc_stalls",
            Counter::GcStallNanos => "gc_stall_nanos",
            Counter::CacheFlushes => "cache_flushes",
            Counter::MdGcRuns => "md_gc_runs",
            Counter::ReadRepairs => "read_repairs",
            Counter::FullParityWrites => "full_parity_writes",
            Counter::QParityWrites => "q_parity_writes",
            Counter::PpLogWrites => "pp_log_writes",
            Counter::ZrwaParityWrites => "zrwa_parity_writes",
            Counter::RelocatedWrites => "relocated_writes",
            Counter::FullStripeWrites => "full_stripe_writes",
            Counter::RmwWrites => "rmw_writes",
            Counter::RcwWrites => "rcw_writes",
            Counter::SchedSheds => "sched_sheds",
            Counter::SchedDeferrals => "sched_deferrals",
            Counter::SchedCoalescedOps => "sched_coalesced_ops",
            Counter::SchedMgmtOps => "sched_mgmt_ops",
            Counter::DeviceWaitNanos => "device_wait_nanos",
            Counter::LsMigratedSectors => "ls_migrated_sectors",
            Counter::LsPadSectors => "ls_pad_sectors",
            Counter::LsGroupReclaims => "ls_group_reclaims",
        }
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .unwrap_or_default()
    }
}

/// Per-stage digest of one tumbling window (extracted from the window's
/// histogram when the window closes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStageStats {
    /// Spans attributed to this stage inside the window.
    pub count: u64,
    /// Total sectors those spans covered.
    pub sectors: u64,
    /// Median span duration.
    pub p50: SimDuration,
    /// 95th-percentile span duration.
    pub p95: SimDuration,
    /// 99th-percentile span duration.
    pub p99: SimDuration,
    /// Longest span in the window.
    pub max: SimDuration,
}

impl WindowStageStats {
    const EMPTY: WindowStageStats = WindowStageStats {
        count: 0,
        sectors: 0,
        p50: SimDuration::ZERO,
        p95: SimDuration::ZERO,
        p99: SimDuration::ZERO,
        max: SimDuration::ZERO,
    };
}

/// One closed (or currently open) tumbling window of latency digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSummary {
    /// Window ordinal: `start = index × interval` on the virtual clock.
    pub index: u64,
    /// Virtual instant the window opened.
    pub start: SimTime,
    /// Spans in the window that ended with a non-success outcome.
    pub errors: u64,
    /// Per-stage digests, indexed by [`Stage::index`].
    pub stages: [WindowStageStats; Stage::ALL.len()],
}

impl WindowSummary {
    fn empty(index: u64, interval_ns: u64) -> Self {
        WindowSummary {
            index,
            start: SimTime::from_nanos(index * interval_ns),
            errors: 0,
            stages: [WindowStageStats::EMPTY; Stage::ALL.len()],
        }
    }
}

/// Tumbling-window state, co-located with the trace ring behind the same
/// mutex so the hot path never takes a second lock. Windows roll
/// *passively*: each recorded event's end instant decides which window it
/// belongs to, and crossing into a later window finalizes the earlier
/// ones (no callbacks, no background thread).
struct WindowState {
    interval_ns: u64,
    /// Closed-window ring (preallocated to `cap`; overflow is counted in
    /// `dropped`, keeping the earliest windows).
    summaries: Vec<WindowSummary>,
    cap: usize,
    /// Ordinal of the currently open window.
    cur_index: u64,
    /// Per-stage histograms of the open window (cleared on roll, never
    /// reallocated).
    cur_stages: [Histogram; Stage::ALL.len()],
    cur_sectors: [u64; Stage::ALL.len()],
    cur_errors: u64,
    cur_count: u64,
    /// Events whose end instant fell before the open window (recorded into
    /// the open window instead, since closed digests are immutable).
    late_events: u64,
    /// Closed windows not retained because the ring was full.
    dropped: u64,
}

impl WindowState {
    fn new(interval: SimDuration, cap: usize) -> Self {
        WindowState {
            interval_ns: interval.as_nanos(),
            summaries: Vec::with_capacity(cap),
            cap,
            cur_index: 0,
            cur_stages: std::array::from_fn(|_| Histogram::new()),
            cur_sectors: [0; Stage::ALL.len()],
            cur_errors: 0,
            cur_count: 0,
            late_events: 0,
            dropped: 0,
        }
    }

    fn open_summary(&self) -> WindowSummary {
        let mut w = WindowSummary::empty(self.cur_index, self.interval_ns);
        w.errors = self.cur_errors;
        for (i, h) in self.cur_stages.iter().enumerate() {
            w.stages[i] = WindowStageStats {
                count: h.count(),
                sectors: self.cur_sectors[i],
                p50: h.percentile(50.0),
                p95: h.percentile(95.0),
                p99: h.percentile(99.0),
                max: h.max(),
            };
        }
        w
    }

    fn push_summary(&mut self, w: WindowSummary) {
        if self.summaries.len() < self.cap {
            self.summaries.push(w);
        } else {
            self.dropped += 1;
        }
    }

    /// Closes the open window and any empty gap windows up to (excluding)
    /// `target`, then re-opens at `target`. Bounded work: at most `cap`
    /// empty summaries are materialized, the rest are counted as dropped.
    fn roll_to(&mut self, target: u64) {
        let closed = self.open_summary();
        self.push_summary(closed);
        for h in &mut self.cur_stages {
            h.clear();
        }
        self.cur_sectors = [0; Stage::ALL.len()];
        self.cur_errors = 0;
        self.cur_count = 0;
        let mut gap = self.cur_index + 1;
        let room = self.cap - self.summaries.len();
        let emit_until = gap + (room as u64).min(target - gap);
        while gap < emit_until {
            let w = WindowSummary::empty(gap, self.interval_ns);
            self.summaries.push(w);
            gap += 1;
        }
        self.dropped += target - gap;
        self.cur_index = target;
    }

    fn observe(&mut self, ev: &TraceEvent) {
        let target = ev.end.as_nanos() / self.interval_ns;
        if target > self.cur_index {
            self.roll_to(target);
        } else if target < self.cur_index {
            self.late_events += 1;
        }
        let i = ev.stage.index();
        self.cur_stages[i].record(ev.duration());
        self.cur_sectors[i] += ev.sectors;
        self.cur_count += 1;
        if ev.outcome != Outcome::Success {
            self.cur_errors += 1;
        }
    }
}

/// One shard of the recorder: a slice of the event ring plus its own
/// per-stage histograms. Shard `i` owns the events whose
/// `(seq / sample_every) % nshards == i`, so consecutive *sampled* events
/// rotate across shards and concurrent recorders rarely collide.
struct RecShard {
    /// Fixed-capacity ring; `ring[(first + i) % cap]` is the i-th oldest.
    ring: Vec<TraceEvent>,
    first: usize,
    len: usize,
    /// Events not stored in this shard's ring (sampled out or overwritten).
    dropped: u64,
    stages: [Histogram; Stage::ALL.len()],
}

impl RecShard {
    fn new(capacity: usize) -> Self {
        RecShard {
            ring: vec![TraceEvent::EMPTY; capacity],
            first: 0,
            len: 0,
            dropped: 0,
            stages: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// Maximum number of recorder shards (bounded so read-side merges stay
/// cheap; eight matches the widest worker pools the bench drives).
const MAX_SHARDS: usize = 8;

/// A bounded, shareable trace recorder. Cheap to clone behind an [`Arc`];
/// all layers of one experiment normally share a single recorder so the
/// breakdown covers the whole stack.
///
/// Internally sharded: sequence numbers come from one atomic, aggregate
/// counters are atomics, and the ring/histograms are split over up to
/// eight mutex-protected shards, so concurrent writers do not serialize.
/// Within one shard, concurrent inserts may land slightly out of sequence
/// order; snapshots ([`Recorder::events`]) sort by `seq` before returning.
pub struct Recorder {
    sample_every: u64,
    capacity: usize,
    /// Next sequence number to assign.
    seq: AtomicU64,
    counts: [AtomicU64; Counter::ALL.len()],
    shards: Vec<Mutex<RecShard>>,
    /// Fast-path skip flag so the hot path never touches the windows
    /// mutex while windowing is disabled.
    windows_on: AtomicBool,
    /// Tumbling-window digests, when enabled ([`Recorder::enable_windows`]).
    /// Central (unsharded): windows roll on virtual end instants, which
    /// requires a total observation order.
    windows: Mutex<Option<WindowState>>,
    /// Fast-path skip flag for causal span tracing.
    spans_on: AtomicBool,
    /// Span-tracing state, when enabled ([`Recorder::enable_spans`]).
    spans: OnceLock<span::SpanState>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.capacity)
            .field("sample_every", &self.sample_every)
            .field("recorded", &self.seq.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Recorder {
    /// Creates a recorder whose ring holds `capacity` events and stores
    /// every `sample_every`-th event (1 = keep all). Histograms and
    /// counters are updated for *every* event regardless of sampling.
    ///
    /// All memory is allocated here; recording never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `sample_every` is zero.
    pub fn new(capacity: usize, sample_every: u64) -> Arc<Self> {
        assert!(capacity > 0, "recorder ring capacity must be nonzero");
        assert!(sample_every > 0, "sample_every must be nonzero");
        let nshards = MAX_SHARDS.min(capacity);
        // Distribute the ring capacity across shards, earliest shards
        // taking the remainder, so the total stays exactly `capacity`.
        let shards = (0..nshards)
            .map(|i| {
                let cap = capacity / nshards + usize::from(i < capacity % nshards);
                Mutex::new(RecShard::new(cap))
            })
            .collect();
        Arc::new(Recorder {
            sample_every,
            capacity,
            seq: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            shards,
            windows_on: AtomicBool::new(false),
            windows: Mutex::new(None),
            spans_on: AtomicBool::new(false),
            spans: OnceLock::new(),
        })
    }

    /// The shard owning sequence number `seq`. Dividing by the sampling
    /// period first makes consecutive *sampled* events rotate shards
    /// (plain `seq % nshards` would pin every sampled event of a
    /// `sample_every >= nshards` recorder to shard 0).
    fn shard_of(&self, seq: u64) -> &Mutex<RecShard> {
        &self.shards[((seq / self.sample_every) % self.shards.len() as u64) as usize]
    }

    /// Enables tumbling-window latency digests: every recorded event also
    /// lands in a per-stage histogram of the window containing its end
    /// instant; crossing into a later window extracts p50/p95/p99/max and
    /// retains up to `max_windows` summaries (plus empty summaries for
    /// wholly idle windows). All window memory is allocated here, so
    /// recording stays allocation-free. Re-enabling resets window state.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `max_windows` is zero.
    pub fn enable_windows(&self, interval: SimDuration, max_windows: usize) {
        assert!(
            interval > SimDuration::ZERO,
            "window interval must be positive"
        );
        assert!(max_windows > 0, "max_windows must be nonzero");
        *self.windows.lock() = Some(WindowState::new(interval, max_windows));
        self.windows_on.store(true, Ordering::Release);
    }

    /// The window interval, if windowing is enabled.
    pub fn window_interval(&self) -> Option<SimDuration> {
        self.windows
            .lock()
            .as_ref()
            .map(|w| SimDuration::from_nanos(w.interval_ns))
    }

    /// Snapshot of the window summaries, oldest first: every closed
    /// window plus the currently open one (if it has seen any event).
    /// Empty when windowing is disabled.
    pub fn windows(&self) -> Vec<WindowSummary> {
        match &*self.windows.lock() {
            None => Vec::new(),
            Some(w) => {
                let mut out = w.summaries.clone();
                if w.cur_count > 0 {
                    out.push(w.open_summary());
                }
                out
            }
        }
    }

    /// Events that arrived with an end instant before the open window
    /// (they are folded into the open window instead).
    pub fn late_events(&self) -> u64 {
        self.windows.lock().as_ref().map_or(0, |w| w.late_events)
    }

    /// Closed windows discarded because the summary ring was full.
    pub fn windows_dropped(&self) -> u64 {
        self.windows.lock().as_ref().map_or(0, |w| w.dropped)
    }

    /// Folds another recorder's whole-run aggregates (stage histograms,
    /// counters, event/drop totals) into this one. Used by benches that
    /// give each sub-run a fresh windowed recorder (virtual clocks restart
    /// per run) while keeping one cumulative breakdown: the sub-run
    /// recorder is absorbed after each run. Ring events and window state
    /// are *not* transferred.
    pub fn absorb(&self, other: &Recorder) {
        let mut stages: [Histogram; Stage::ALL.len()] = std::array::from_fn(|_| Histogram::new());
        let mut dropped = 0u64;
        for shard in &other.shards {
            let s = shard.lock();
            for (mine, theirs) in stages.iter_mut().zip(s.stages.iter()) {
                mine.merge(theirs);
            }
            dropped += s.dropped;
        }
        // Fold the merged aggregates into this recorder's first shard;
        // read-side accessors merge across shards anyway.
        {
            let mut s = self.shards[0].lock();
            for (mine, theirs) in s.stages.iter_mut().zip(stages.iter()) {
                mine.merge(theirs);
            }
            s.dropped += dropped;
        }
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.seq
            .fetch_add(other.seq.load(Ordering::Relaxed), Ordering::Relaxed);
        if let (Some(mine), Some(theirs)) = (self.spans.get(), other.spans.get()) {
            mine.absorb(theirs);
        }
    }

    /// Records one span. The event's `seq` field is overwritten with the
    /// recorder's own monotonic sequence number, which is also returned.
    pub fn record(&self, mut ev: TraceEvent) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        {
            let mut s = self.shard_of(seq).lock();
            let s = &mut *s;
            s.stages[ev.stage.index()].record(ev.duration());
            if seq.is_multiple_of(self.sample_every) {
                let cap = s.ring.len();
                if s.len == cap {
                    // Overwrite the oldest slot.
                    s.ring[s.first] = ev;
                    s.first = (s.first + 1) % cap;
                    s.dropped += 1;
                } else {
                    let slot = (s.first + s.len) % cap;
                    s.ring[slot] = ev;
                    s.len += 1;
                }
            } else {
                s.dropped += 1;
            }
        }
        if self.windows_on.load(Ordering::Acquire) {
            if let Some(w) = self.windows.lock().as_mut() {
                w.observe(&ev);
            }
        }
        if self.spans_on.load(Ordering::Acquire) && (ev.span != 0 || ev.parent != 0) {
            if let Some(s) = self.spans.get() {
                span::on_event(s, &ev);
            }
        }
        seq
    }

    /// Enables causal span tracing: ops allocate span ids
    /// ([`Recorder::new_span`]), child events buffered per thread are
    /// reassembled into blame trees when the root's event lands, every
    /// tree feeds the per-tenant blame table, and trees whose latency
    /// meets the tail-sampling threshold are retained in full (see
    /// [`span::SpanConfig`]). All span memory of fixed size is
    /// allocated here; per-thread buffers reach steady-state capacity
    /// during warm-up. Re-enabling reapplies the threshold config but
    /// keeps accumulated state (use [`Recorder::clear`] to reset).
    pub fn enable_spans(&self, cfg: SpanConfig) {
        let state = self.spans.get_or_init(|| span::SpanState::new(cfg));
        state.configure(cfg);
        self.spans_on.store(true, Ordering::Release);
    }

    /// Whether span tracing is enabled.
    pub fn spans_enabled(&self) -> bool {
        self.spans_on.load(Ordering::Acquire)
    }

    /// Allocates a fresh span id for a top-level op, or 0 when span
    /// tracing is disabled (callers then skip all scope work).
    pub fn new_span(&self) -> u64 {
        if !self.spans_on.load(Ordering::Acquire) {
            return 0;
        }
        self.spans.get().map_or(0, |s| s.alloc_span())
    }

    /// Blame trees closed so far (roots observed).
    pub fn span_roots(&self) -> u64 {
        self.spans.get().map_or(0, |s| s.roots())
    }

    /// Span-linked events that could not be attached to a closing tree
    /// (stale buffers, aborted ops, overflowed thread buffers).
    pub fn span_orphans(&self) -> u64 {
        self.spans.get().map_or(0, |s| s.orphans())
    }

    /// Events dropped from captured slow-op trees that exceeded the
    /// per-tree retention bound.
    pub fn span_truncated(&self) -> u64 {
        self.spans.get().map_or(0, |s| s.truncated())
    }

    /// The current slow-op threshold in virtual nanoseconds (0 until
    /// the rolling estimate warms up, unless pinned explicitly).
    pub fn span_threshold_ns(&self) -> u64 {
        self.spans.get().map_or(0, |s| s.threshold_ns())
    }

    /// Snapshot of the per-tenant blame table (rows with activity only).
    pub fn blame_rows(&self) -> Vec<BlameRow> {
        self.spans.get().map_or_else(Vec::new, |s| s.blame_rows())
    }

    /// Snapshot of the retained slowest ops, slowest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.spans.get().map_or_else(Vec::new, |s| s.slow_ops())
    }

    /// Increments `counter` by one.
    pub fn bump(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds `n` to `counter`.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counts[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `counter`.
    pub fn count(&self, counter: Counter) -> u64 {
        self.counts[counter.index()].load(Ordering::Relaxed)
    }

    /// Total events recorded so far (including sampled-out ones). The next
    /// event gets this sequence number — use as a cursor for
    /// [`Recorder::events_since`].
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events not retained in the ring (sampled out or overwritten).
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().dropped).sum()
    }

    /// Snapshot of the retained events, oldest first (merged across
    /// shards and sorted by sequence number). Allocates; intended for
    /// tests and end-of-run export, not the IO path.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock();
            let cap = s.ring.len();
            out.extend((0..s.len).map(|i| s.ring[(s.first + i) % cap]));
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Retained events with `seq >= since`, oldest first.
    pub fn events_since(&self, since: u64) -> Vec<TraceEvent> {
        let mut evs = self.events();
        evs.retain(|e| e.seq >= since);
        evs
    }

    /// Snapshot of one stage's latency histogram (merged across shards).
    pub fn stage_histogram(&self, stage: Stage) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.shards {
            out.merge(&shard.lock().stages[stage.index()]);
        }
        out
    }

    /// Clears the ring, histograms and counters (sequence numbers keep
    /// increasing so cursors stay valid).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.first = 0;
            s.len = 0;
            s.dropped = 0;
            for h in &mut s.stages {
                h.clear();
            }
        }
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        if let Some(w) = self.windows.lock().as_mut() {
            let (interval_ns, cap) = (w.interval_ns, w.cap);
            *w = WindowState::new(SimDuration::from_nanos(interval_ns), cap);
        }
        if let Some(s) = self.spans.get() {
            s.reset();
        }
    }

    /// Streams the retained events into `sink`, oldest first, returning
    /// how many were emitted.
    ///
    /// # Errors
    ///
    /// Propagates sink IO errors.
    pub fn export(&self, sink: &mut dyn TraceSink) -> std::io::Result<usize> {
        let events = self.events();
        for ev in &events {
            sink.emit(ev)?;
        }
        sink.finish()?;
        Ok(events.len())
    }

    /// A machine-readable latency breakdown: per-stage count / p50 / p99 /
    /// mean / max (virtual nanoseconds) plus every counter. `name` tags
    /// the producing experiment.
    pub fn breakdown_json(&self, name: &str) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(name)));
        out.push_str(&format!("  \"events_recorded\": {},\n", self.next_seq()));
        out.push_str(&format!("  \"events_dropped\": {},\n", self.dropped()));
        out.push_str("  \"stages\": {\n");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let h = self.stage_histogram(*stage);
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"mean_ns\": {}, \"max_ns\": {}}}{}\n",
                stage.name(),
                h.count(),
                h.percentile(50.0).as_nanos(),
                h.percentile(99.0).as_nanos(),
                h.mean().as_nanos(),
                h.max().as_nanos(),
                if i + 1 < Stage::ALL.len() { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"counters\": {\n");
        for (i, c) in Counter::ALL.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                c.name(),
                self.count(*c),
                if i + 1 < Counter::ALL.len() { "," } else { "" },
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Wall-clock lock-contention statistics for one lock domain (a volume
/// shard, the metadata section, a scheduler queue).
///
/// Unlike trace events — which live on the deterministic *virtual* clock —
/// lock waits are a property of the real execution and are measured with
/// the monotonic wall clock. They are therefore reported only through
/// gauges and counters, never folded into virtual-time latencies.
///
/// All fields are atomics; [`LockStats::lock`] is the intended entry
/// point: an uncontended acquisition is a `try_lock` plus two relaxed
/// `fetch_add`s (no timestamp is taken), so the hot path stays cheap.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_nanos: AtomicU64,
}

impl LockStats {
    /// Creates zeroed statistics.
    pub const fn new() -> Self {
        LockStats {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_nanos: AtomicU64::new(0),
        }
    }

    /// Acquires `m`, attributing the acquisition (and any blocking wait)
    /// to these statistics.
    pub fn lock<'a, T>(&self, m: &'a Mutex<T>) -> parking_lot::MutexGuard<'a, T> {
        if let Some(g) = m.try_lock() {
            self.acquisitions.fetch_add(1, Ordering::Relaxed);
            return g;
        }
        let t0 = std::time::Instant::now();
        let g = m.lock();
        let waited = t0.elapsed().as_nanos() as u64;
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.wait_nanos.fetch_add(waited, Ordering::Relaxed);
        g
    }

    /// Total acquisitions through [`LockStats::lock`].
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to block.
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds spent blocked.
    pub fn wait_nanos(&self) -> u64 {
        self.wait_nanos.load(Ordering::Relaxed)
    }

    /// Emits the three readings as gauges tagged with `id` (e.g. a shard
    /// index), named `<prefix>_acquisitions`, `<prefix>_contended` and
    /// `<prefix>_wait_ns` for a fixed `prefix` of `lock`.
    pub fn sample_gauges(&self, id: u32, out: &mut Vec<GaugeReading>) {
        out.push(GaugeReading::new(
            "lock_acquisitions",
            id,
            self.acquisitions() as f64,
        ));
        out.push(GaugeReading::new(
            "lock_contended",
            id,
            self.contended() as f64,
        ));
        out.push(GaugeReading::new(
            "lock_wait_ns",
            id,
            self.wait_nanos() as f64,
        ));
    }
}

/// Serializes one event as a single-line JSON object.
pub fn event_json(ev: &TraceEvent) -> String {
    let mut s = format!(
        "{{\"seq\": {}, \"op\": \"{}\", \"stage\": \"{}\"",
        ev.seq,
        ev.op.name(),
        ev.stage.name()
    );
    if let Some(p) = ev.path {
        s.push_str(&format!(", \"path\": \"{}\"", p.name()));
    }
    if ev.device != NONE {
        s.push_str(&format!(", \"device\": {}", ev.device));
    }
    if ev.zone != NONE {
        s.push_str(&format!(", \"zone\": {}", ev.zone));
    }
    s.push_str(&format!(
        ", \"lba\": {}, \"sectors\": {}, \"start_ns\": {}, \"end_ns\": {}, \
         \"outcome\": \"{}\"",
        ev.lba,
        ev.sectors,
        ev.start.as_nanos(),
        ev.end.as_nanos(),
        ev.outcome.name()
    ));
    if ev.span != 0 {
        s.push_str(&format!(", \"span\": {}", ev.span));
    }
    if ev.parent != 0 {
        s.push_str(&format!(", \"parent\": {}", ev.parent));
    }
    if ev.blame != Actor::None {
        s.push_str(&format!(", \"blame\": \"{}\"", ev.blame.name()));
    }
    s.push('}');
    s
}

/// A consumer of trace events (file, buffer, test collector).
pub trait TraceSink {
    /// Consumes one event.
    ///
    /// # Errors
    ///
    /// Returns IO errors from the underlying medium.
    fn emit(&mut self, ev: &TraceEvent) -> std::io::Result<()>;

    /// Flushes any buffered output. Default: no-op.
    ///
    /// # Errors
    ///
    /// Returns IO errors from the underlying medium.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A [`TraceSink`] writing one JSON object per line (JSON-lines).
pub struct JsonLinesSink<W: IoWrite> {
    writer: W,
}

impl<W: IoWrite> JsonLinesSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonLinesSink { writer }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: IoWrite> TraceSink for JsonLinesSink<W> {
    fn emit(&mut self, ev: &TraceEvent) -> std::io::Result<()> {
        writeln!(self.writer, "{}", event_json(ev))
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stage: Stage, start_us: u64, end_us: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            op: OpClass::Write,
            stage,
            path: None,
            device: 0,
            zone: 1,
            lba: 64,
            sectors: 8,
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            outcome: Outcome::Success,
            span: 0,
            parent: 0,
            blame: Actor::None,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let r = Recorder::new(4, 1);
        for i in 0..10u64 {
            r.record(ev(Stage::DeviceIo, i, i + 1));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(r.dropped(), 6);
        // Histograms saw all ten.
        assert_eq!(r.stage_histogram(Stage::DeviceIo).count(), 10);
    }

    #[test]
    fn sampling_thins_the_ring_but_not_histograms() {
        let r = Recorder::new(64, 4);
        for i in 0..16u64 {
            r.record(ev(Stage::Flush, i, i + 2));
        }
        assert_eq!(r.events().len(), 4); // seq 0, 4, 8, 12
        assert_eq!(r.stage_histogram(Stage::Flush).count(), 16);
    }

    #[test]
    fn counters_accumulate() {
        let r = Recorder::new(8, 1);
        r.bump(Counter::Retries);
        r.add(Counter::GcStallNanos, 500);
        r.bump(Counter::Retries);
        assert_eq!(r.count(Counter::Retries), 2);
        assert_eq!(r.count(Counter::GcStallNanos), 500);
        assert_eq!(r.count(Counter::DegradedReads), 0);
    }

    #[test]
    fn events_since_cursor() {
        let r = Recorder::new(64, 1);
        r.record(ev(Stage::DeviceIo, 0, 1));
        let cursor = r.next_seq();
        r.record(ev(Stage::Flush, 1, 2));
        r.record(ev(Stage::Xor, 2, 2));
        let tail = r.events_since(cursor);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].stage, Stage::Flush);
        assert_eq!(tail[1].stage, Stage::Xor);
    }

    #[test]
    fn json_lines_export_roundtrip_shape() {
        let r = Recorder::new(8, 1);
        let mut e = ev(Stage::MetaAppend, 3, 5);
        e.path = Some(PathKind::PpLog);
        r.record(e);
        let mut sink = JsonLinesSink::new(Vec::new());
        let n = r.export(&mut sink).unwrap();
        assert_eq!(n, 1);
        let line = String::from_utf8(sink.into_inner()).unwrap();
        assert!(line.contains("\"stage\": \"meta_append\""));
        assert!(line.contains("\"path\": \"pp_log\""));
        assert!(line.contains("\"start_ns\": 3000"));
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn breakdown_json_has_stages_and_counters() {
        let r = Recorder::new(8, 1);
        r.record(ev(Stage::DeviceIo, 0, 10));
        r.record(ev(Stage::DeviceIo, 0, 20));
        r.bump(Counter::CacheFlushes);
        let j = r.breakdown_json("unit \"test\"");
        assert!(j.contains("\"device_io\": {\"count\": 2"));
        assert!(j.contains("\"cache_flushes\": 1"));
        assert!(j.contains("unit \\\"test\\\""));
        // Every stage and counter name is present.
        for s in Stage::ALL {
            assert!(j.contains(s.name()), "missing stage {}", s.name());
        }
        for c in Counter::ALL {
            assert!(j.contains(c.name()), "missing counter {}", c.name());
        }
    }

    #[test]
    fn clear_resets_aggregates_but_not_seq() {
        let r = Recorder::new(8, 1);
        r.record(ev(Stage::WholeOp, 0, 9));
        r.bump(Counter::RmwWrites);
        r.clear();
        assert!(r.events().is_empty());
        assert_eq!(r.count(Counter::RmwWrites), 0);
        assert_eq!(r.stage_histogram(Stage::WholeOp).count(), 0);
        assert_eq!(r.next_seq(), 1);
    }

    #[test]
    fn windows_roll_on_end_instants() {
        let r = Recorder::new(64, 1);
        r.enable_windows(SimDuration::from_millis(10), 64);
        // Two events in window 0, one in window 2 (window 1 idle).
        r.record(ev(Stage::WholeOp, 0, 1_000)); // ends at 1 ms
        r.record(ev(Stage::WholeOp, 2_000, 3_000)); // ends at 3 ms
        r.record(ev(Stage::WholeOp, 24_000, 25_000)); // ends at 25 ms
        let ws = r.windows();
        assert_eq!(ws.len(), 3); // closed 0, empty 1, open 2
        assert_eq!(ws[0].index, 0);
        assert_eq!(ws[0].stages[Stage::WholeOp.index()].count, 2);
        assert_eq!(ws[0].stages[Stage::WholeOp.index()].sectors, 16);
        assert_eq!(
            ws[0].stages[Stage::WholeOp.index()].max,
            SimDuration::from_millis(1)
        );
        assert_eq!(ws[1].index, 1);
        assert_eq!(ws[1].stages[Stage::WholeOp.index()].count, 0);
        assert_eq!(ws[1].start, SimTime::from_millis(10));
        assert_eq!(ws[2].index, 2);
        assert_eq!(ws[2].stages[Stage::WholeOp.index()].count, 1);
        assert_eq!(r.late_events(), 0);
        assert_eq!(r.windows_dropped(), 0);
    }

    #[test]
    fn late_events_fold_into_open_window() {
        let r = Recorder::new(64, 1);
        r.enable_windows(SimDuration::from_millis(1), 16);
        r.record(ev(Stage::DeviceIo, 5_000, 5_500)); // window 5
        r.record(ev(Stage::DeviceIo, 1_000, 1_200)); // window 1: late
        assert_eq!(r.late_events(), 1);
        let ws = r.windows();
        // Open window 5 holds both events.
        let open = ws.last().unwrap();
        assert_eq!(open.index, 5);
        assert_eq!(open.stages[Stage::DeviceIo.index()].count, 2);
    }

    #[test]
    fn window_overflow_keeps_earliest_and_counts_drops() {
        let r = Recorder::new(64, 1);
        r.enable_windows(SimDuration::from_micros(1), 4);
        for i in 0..10u64 {
            r.record(ev(Stage::WholeOp, i, i + 1)); // one event per window
        }
        let ws = r.windows();
        // Event i ends at (i+1) µs, i.e. in window i+1; closed windows
        // 0..=3 are retained (0 empty), 4..=9 dropped, window 10 open.
        assert_eq!(ws.len(), 5);
        assert_eq!(ws[0].index, 0);
        assert_eq!(ws[3].index, 3);
        assert_eq!(ws[4].index, 10);
        assert_eq!(r.windows_dropped(), 6);
    }

    #[test]
    fn huge_time_jump_is_bounded() {
        let r = Recorder::new(64, 1);
        r.enable_windows(SimDuration::from_nanos(1), 8);
        r.record(ev(Stage::WholeOp, 0, 1));
        // Jump ~3600 s forward: the idle-gap materialization must stay
        // bounded by the ring capacity, with the rest counted as dropped.
        r.record(ev(Stage::WholeOp, 3_600_000_000, 3_600_000_001));
        let ws = r.windows();
        assert_eq!(ws.len(), 9); // 8 retained + the open window
        assert!(r.windows_dropped() > 1_000_000_000);
    }

    #[test]
    fn window_errors_counted() {
        let r = Recorder::new(64, 1);
        r.enable_windows(SimDuration::from_millis(10), 8);
        let mut bad = ev(Stage::DeviceIo, 0, 5);
        bad.outcome = Outcome::Transient;
        r.record(bad);
        r.record(ev(Stage::DeviceIo, 5, 9));
        let ws = r.windows();
        assert_eq!(ws[0].errors, 1);
    }

    #[test]
    fn absorb_merges_aggregates() {
        let a = Recorder::new(16, 1);
        let b = Recorder::new(16, 1);
        a.record(ev(Stage::DeviceIo, 0, 10));
        a.bump(Counter::Retries);
        b.record(ev(Stage::DeviceIo, 0, 30));
        b.record(ev(Stage::Flush, 0, 2));
        b.add(Counter::Retries, 2);
        a.absorb(&b);
        assert_eq!(a.stage_histogram(Stage::DeviceIo).count(), 2);
        assert_eq!(a.stage_histogram(Stage::Flush).count(), 1);
        assert_eq!(a.count(Counter::Retries), 3);
        assert_eq!(a.next_seq(), 3);
        // b untouched.
        assert_eq!(b.next_seq(), 2);
    }

    #[test]
    fn windows_disabled_by_default() {
        let r = Recorder::new(16, 1);
        r.record(ev(Stage::WholeOp, 0, 5));
        assert!(r.windows().is_empty());
        assert_eq!(r.window_interval(), None);
    }

    #[test]
    fn clear_resets_window_state() {
        let r = Recorder::new(16, 1);
        r.enable_windows(SimDuration::from_millis(1), 8);
        r.record(ev(Stage::WholeOp, 0, 5_000));
        r.record(ev(Stage::WholeOp, 0, 1_000)); // late
        assert!(!r.windows().is_empty());
        r.clear();
        assert!(r.windows().is_empty());
        assert_eq!(r.late_events(), 0);
        assert_eq!(r.window_interval(), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Recorder::new(1024, 1);
        let threads = 4;
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        r.record(ev(Stage::DeviceIo, i, i + 1));
                        r.bump(Counter::Retries);
                    }
                });
            }
        });
        let total = threads * per_thread;
        assert_eq!(r.next_seq(), total);
        assert_eq!(r.count(Counter::Retries), total);
        assert_eq!(r.stage_histogram(Stage::DeviceIo).count(), total);
        // Every event retained (capacity not exceeded), seqs unique and
        // sorted.
        let evs = r.events();
        assert_eq!(evs.len(), 1024.min(total as usize));
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn lock_stats_attribute_waits() {
        let stats = LockStats::new();
        let m = Mutex::new(0u64);
        {
            let mut g = stats.lock(&m);
            *g += 1;
        }
        assert_eq!(stats.acquisitions(), 1);
        assert_eq!(stats.contended(), 0);
        // Force contention: hold the lock in another thread.
        std::thread::scope(|s| {
            let held = s.spawn(|| {
                let _g = m.lock();
                std::thread::sleep(std::time::Duration::from_millis(10));
            });
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _g = stats.lock(&m);
            held.join().unwrap();
        });
        assert_eq!(stats.acquisitions(), 2);
        assert_eq!(stats.contended(), 1);
        assert!(stats.wait_nanos() > 0);
        let mut gauges = Vec::new();
        stats.sample_gauges(7, &mut gauges);
        assert_eq!(gauges.len(), 3);
        assert!(gauges.iter().all(|g| g.device == 7));
    }

    #[test]
    fn deterministic_timestamps_only() {
        // Two identical recordings produce identical traces.
        let mk = || {
            let r = Recorder::new(16, 1);
            r.record(ev(Stage::DeviceIo, 1, 4));
            r.record(ev(Stage::Flush, 4, 6));
            r.events()
        };
        assert_eq!(mk(), mk());
    }

    fn cat(name: &str) -> usize {
        BLAME_CATEGORIES.iter().position(|c| *c == name).unwrap()
    }

    #[test]
    fn span_ids_are_zero_when_disabled() {
        let r = Recorder::new(16, 1);
        assert!(!r.spans_enabled());
        assert_eq!(r.new_span(), 0);
        r.record(ev(Stage::WholeOp, 0, 5));
        assert_eq!(r.span_roots(), 0);
        assert!(r.blame_rows().is_empty());
        assert!(r.slow_ops().is_empty());
    }

    #[test]
    fn span_tree_closes_and_attributes_blame() {
        let r = Recorder::new(64, 1);
        r.enable_spans(SpanConfig::default());
        let rid = r.new_span();
        assert!(rid > 0);
        // Children record before their parent (the op closes last).
        let mut wait = ev(Stage::DeviceWait, 0, 2);
        wait.parent = rid;
        wait.blame = Actor::Lifecycle;
        r.record(wait);
        let mut io = ev(Stage::DeviceIo, 2, 8);
        io.parent = rid;
        r.record(io);
        let mut root = ev(Stage::WholeOp, 0, 10);
        root.span = rid;
        root.device = 3;
        r.record(root);
        assert_eq!(r.span_roots(), 1);
        assert_eq!(r.span_orphans(), 0);
        let rows = r.blame_rows();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!((row.tenant, row.count, row.total_ns), (3, 1, 10_000));
        assert_eq!(row.categories[cat("interference_lifecycle")], 2_000);
        assert_eq!(row.categories[cat("device_service")], 6_000);
        assert_eq!(row.categories[cat("other")], 2_000);
        // Exact partition: exclusive segments sum to the root latency.
        assert_eq!(row.categories.iter().sum::<u64>(), row.total_ns);
    }

    #[test]
    fn blame_partition_clips_overlap_and_nests() {
        let r = Recorder::new(64, 1);
        r.enable_spans(SpanConfig::default());
        let (mid, rid) = (r.new_span(), r.new_span());
        let mut a = ev(Stage::DeviceIo, 2, 8);
        a.parent = mid;
        r.record(a);
        // Overlapping fan-out leg: the later-starting (innermost)
        // sibling claims the overlap; same category either way here.
        let mut b = ev(Stage::DeviceIo, 6, 12);
        b.parent = mid;
        r.record(b);
        let mut m = ev(Stage::WholeOp, 1, 14);
        m.span = mid;
        m.parent = rid;
        r.record(m);
        let mut root = ev(Stage::WholeOp, 0, 20);
        root.span = rid;
        root.device = 0;
        r.record(root);
        let rows = r.blame_rows();
        let row = &rows[0];
        assert_eq!(row.categories[cat("device_service")], 10_000);
        assert_eq!(row.categories[cat("other")], 10_000);
        assert_eq!(row.categories.iter().sum::<u64>(), 20_000);
        // The full tree is retained for the slowest op.
        let slow = r.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].events.len(), 4);
        assert_eq!(slow[0].latency_ns, 20_000);
        assert_eq!(slow[0].segments, row.categories);
        // Events come out start-sorted with the root first.
        assert!(slow[0].events.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn hidden_pipeline_stage_gets_zero_exclusive_time() {
        // An Xor envelope covering its device legs keeps only the time
        // the legs don't explain — exclusive critical-path semantics.
        let r = Recorder::new(64, 1);
        r.enable_spans(SpanConfig::default());
        let rid = r.new_span();
        let mut x = ev(Stage::Xor, 0, 10);
        x.parent = rid;
        r.record(x);
        let mut d1 = ev(Stage::DeviceIo, 2, 6);
        d1.parent = rid;
        r.record(d1);
        let mut d2 = ev(Stage::DeviceIo, 4, 9);
        d2.parent = rid;
        r.record(d2);
        let mut root = ev(Stage::WholeOp, 0, 10);
        root.span = rid;
        r.record(root);
        let row = &r.blame_rows()[0];
        // Legs claim [2,9); xor keeps the [0,2) prefix and [9,10) tail.
        assert_eq!(row.categories[cat("device_service")], 7_000);
        assert_eq!(row.categories[cat("xor_gf")], 3_000);
        assert_eq!(row.categories.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn tail_sampling_keeps_k_slowest_above_threshold() {
        let r = Recorder::new(256, 1);
        r.enable_spans(SpanConfig {
            slow: Some(SimDuration::from_micros(5)),
            keep_slowest: Some(2),
        });
        assert_eq!(r.span_threshold_ns(), 5_000);
        for lat_us in [1u64, 6, 7, 8, 2] {
            let rid = r.new_span();
            let mut root = ev(Stage::WholeOp, 0, lat_us);
            root.span = rid;
            r.record(root);
        }
        assert_eq!(r.span_roots(), 5);
        let slow = r.slow_ops();
        let lats: Vec<u64> = slow.iter().map(|s| s.latency_ns).collect();
        assert_eq!(lats, vec![8_000, 7_000]);
        // Blame still saw every root, not just the sampled ones.
        assert_eq!(r.blame_rows()[0].count, 5);
    }

    #[test]
    fn rolling_threshold_warms_up() {
        let r = Recorder::new(16, 1);
        r.enable_spans(SpanConfig::default());
        assert_eq!(r.span_threshold_ns(), 0);
        for i in 0..128u64 {
            let rid = r.new_span();
            let mut root = ev(Stage::WholeOp, 0, i + 1);
            root.span = rid;
            r.record(root);
        }
        // After 128 closes the rolling p99 is in place.
        assert!(r.span_threshold_ns() >= 100_000);
    }

    #[test]
    fn unattached_events_count_as_orphans() {
        let r = Recorder::new(64, 1);
        r.enable_spans(SpanConfig::default());
        let rid = r.new_span();
        let mut stray = ev(Stage::DeviceIo, 0, 1);
        stray.parent = rid + 999; // no such span in this tree
        r.record(stray);
        let mut root = ev(Stage::WholeOp, 0, 2);
        root.span = rid;
        r.record(root);
        assert_eq!(r.span_roots(), 1);
        assert_eq!(r.span_orphans(), 1);
    }

    #[test]
    fn absorb_merges_span_aggregates() {
        let a = Recorder::new(16, 1);
        let b = Recorder::new(16, 1);
        a.enable_spans(SpanConfig::default());
        b.enable_spans(SpanConfig::default());
        let rid = b.new_span();
        let mut root = ev(Stage::WholeOp, 0, 10);
        root.span = rid;
        root.device = 2;
        b.record(root);
        a.absorb(&b);
        assert_eq!(a.span_roots(), 1);
        let rows = a.blame_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tenant, 2);
        assert_eq!(a.slow_ops().len(), 1);
    }

    #[test]
    fn clear_resets_span_state() {
        let r = Recorder::new(16, 1);
        r.enable_spans(SpanConfig::default());
        let rid = r.new_span();
        let mut root = ev(Stage::WholeOp, 0, 10);
        root.span = rid;
        r.record(root);
        assert_eq!(r.span_roots(), 1);
        r.clear();
        assert_eq!(r.span_roots(), 0);
        assert!(r.blame_rows().is_empty());
        assert!(r.slow_ops().is_empty());
    }

    #[test]
    fn ambient_scopes_nest_and_restore() {
        assert_eq!(current_span(), 0);
        assert_eq!(current_actor(), Actor::None);
        {
            let _outer = span_scope(7);
            let _actor = actor_scope(Actor::Lifecycle);
            assert_eq!(current_span(), 7);
            assert_eq!(current_actor(), Actor::Lifecycle);
            {
                let _inner = span_scope(9);
                assert_eq!(current_span(), 9);
            }
            assert_eq!(current_span(), 7);
        }
        assert_eq!(current_span(), 0);
        assert_eq!(current_actor(), Actor::None);
    }

    #[test]
    fn spans_json_has_blame_and_trace_events() {
        let r = Recorder::new(64, 1);
        r.enable_spans(SpanConfig::default());
        let rid = r.new_span();
        let mut io = ev(Stage::DeviceIo, 1, 6);
        io.parent = rid;
        r.record(io);
        let mut root = ev(Stage::WholeOp, 0, 8);
        root.span = rid;
        root.device = 1;
        r.record(root);
        let j = spans_json("unit", &r);
        assert!(j.contains("\"kind\": \"spans\""));
        assert!(j.contains("\"tenant\": \"1\""));
        assert!(j.contains("\"ph\": \"X\""));
        for c in BLAME_CATEGORIES {
            assert!(j.contains(&format!("{c}_ns")), "missing category {c}");
        }
    }
}
