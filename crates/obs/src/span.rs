//! Causal span tracing: per-op blame trees, critical-path attribution
//! and tail-sampled slow-op capture.
//!
//! Every top-level operation (a volume write, an engine op, a QoS
//! dispatch batch) allocates a `span_id` from its recorder
//! ([`crate::Recorder::new_span`]) and publishes it as the thread's
//! *ambient* span ([`span_scope`]); every child event recorded while the
//! scope is active carries a `parent_span` link back to it. When the
//! root's own event is recorded (span set, parent 0) the recorder
//! reassembles the per-op **blame tree** from a thread-local buffer and
//! feeds it to the critical-path analyzer ([`blame_segments`]), which
//! partitions the op's wall latency into exclusive per-category
//! segments ([`BLAME_CATEGORIES`]).
//!
//! Design constraints (mirroring the recorder's):
//!
//! - **Allocation-free steady state.** The thread-local tree buffer, the
//!   membership/order scratch, the latency reservoir and the K-slowest
//!   store all reach a fixed footprint during warm-up and are reused
//!   (cleared, never shrunk) afterwards, so the 0-alloc write-path gate
//!   holds with span tracing enabled.
//! - **Tail sampling.** Full trees are retained only for ops whose
//!   latency meets the slow threshold — a rolling p99 of recent root
//!   latencies by default, or an explicit cutoff
//!   ([`SpanConfig::slow`]). Every root still contributes to the
//!   per-tenant blame table; only the event-level tree is sampled.
//! - **Deterministic.** Span ids come from one per-recorder counter and
//!   all tree timestamps are virtual, so single-threaded same-seed runs
//!   produce byte-identical span trees (asserted by the replay suites).
//!   Wall-clock lock waits never enter the tree: `LockWait` events are
//!   zero-width virtual markers and the wall-time aggregates stay in
//!   [`crate::LockStats`].

use crate::{Recorder, Stage, TraceEvent, NONE};
use parking_lot::Mutex;
use sim::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// The actor a traced span runs on behalf of.
///
/// Foreground IO that stalls on a device occupancy unit last used by a
/// *different* actor records that actor in the `DeviceWait` event's
/// blame field; the analyzer maps it to the interference categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Actor {
    /// No attributed actor (the ambient default).
    #[default]
    None = 0,
    /// Foreground (tenant) IO.
    Foreground = 1,
    /// Background zone-lifecycle management.
    Lifecycle = 2,
    /// Failed-device rebuild.
    Rebuild = 3,
    /// Background scrub.
    Scrub = 4,
    /// Log-structured RAID garbage collection.
    Gc = 5,
}

impl Actor {
    /// Stable lower-case name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            Actor::None => "none",
            Actor::Foreground => "foreground",
            Actor::Lifecycle => "lifecycle",
            Actor::Rebuild => "rebuild",
            Actor::Scrub => "scrub",
            Actor::Gc => "gc",
        }
    }

    /// The wire encoding used where layers cannot depend on `obs` (the
    /// sim occupancy model tags units with a raw `u8`).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Actor::as_u8`]; unknown values decode to `None`.
    pub fn from_u8(v: u8) -> Actor {
        match v {
            1 => Actor::Foreground,
            2 => Actor::Lifecycle,
            3 => Actor::Rebuild,
            4 => Actor::Scrub,
            5 => Actor::Gc,
            _ => Actor::None,
        }
    }
}

thread_local! {
    static CUR_SPAN: Cell<u64> = const { Cell::new(0) };
    static CUR_ACTOR: Cell<u8> = const { Cell::new(0) };
    static TREE: RefCell<TreeBuf> = RefCell::new(TreeBuf::new());
}

/// The thread's ambient span id (0 when none is active). Layers record
/// it as their events' `parent` so child work links to the enclosing op.
pub fn current_span() -> u64 {
    CUR_SPAN.with(|c| c.get())
}

/// The thread's ambient actor ([`Actor::None`] when none is active).
pub fn current_actor() -> Actor {
    CUR_ACTOR.with(|c| Actor::from_u8(c.get()))
}

/// Drop guard restoring the previous ambient span (see [`span_scope`]).
#[derive(Debug)]
pub struct SpanScope {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

/// Publishes `id` as the thread's ambient span until the guard drops.
/// Passing 0 (spans disabled) is cheap and harmless.
pub fn span_scope(id: u64) -> SpanScope {
    let prev = CUR_SPAN.with(|c| c.replace(id));
    SpanScope {
        prev,
        _not_send: PhantomData,
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        CUR_SPAN.with(|c| c.set(self.prev));
    }
}

/// Drop guard restoring the previous ambient actor (see [`actor_scope`]).
#[derive(Debug)]
pub struct ActorScope {
    prev: u8,
    _not_send: PhantomData<*const ()>,
}

/// Publishes `actor` as the thread's ambient actor until the guard
/// drops. Device occupancy units touched inside the scope are tagged
/// with it, which is what lets a later foreground stall blame this
/// actor.
pub fn actor_scope(actor: Actor) -> ActorScope {
    let prev = CUR_ACTOR.with(|c| c.replace(actor.as_u8()));
    ActorScope {
        prev,
        _not_send: PhantomData,
    }
}

impl Drop for ActorScope {
    fn drop(&mut self) {
        CUR_ACTOR.with(|c| c.set(self.prev));
    }
}

/// Number of exclusive blame categories.
pub const NCATS: usize = 11;

/// Exclusive blame categories, in [`blame_segments`] index order.
pub const BLAME_CATEGORIES: [&str; NCATS] = [
    "queue",
    "lock",
    "device_wait",
    "device_service",
    "xor_gf",
    "meta",
    "flush",
    "interference_lifecycle",
    "interference_rebuild",
    "interference_gc",
    "other",
];

const CAT_QUEUE: usize = 0;
const CAT_LOCK: usize = 1;
const CAT_DEVICE_WAIT: usize = 2;
const CAT_DEVICE_SERVICE: usize = 3;
const CAT_XOR: usize = 4;
const CAT_META: usize = 5;
const CAT_FLUSH: usize = 6;
const CAT_INT_LIFECYCLE: usize = 7;
const CAT_INT_REBUILD: usize = 8;
const CAT_INT_GC: usize = 9;
const CAT_OTHER: usize = 10;

/// The category an event's *own* (exclusive) time is attributed to.
fn category(ev: &TraceEvent) -> usize {
    match ev.stage {
        Stage::QueueWait => CAT_QUEUE,
        Stage::LockWait => CAT_LOCK,
        Stage::DeviceWait => match ev.blame {
            Actor::Lifecycle => CAT_INT_LIFECYCLE,
            Actor::Rebuild | Actor::Scrub => CAT_INT_REBUILD,
            Actor::Gc => CAT_INT_GC,
            _ => CAT_DEVICE_WAIT,
        },
        Stage::DeviceIo => CAT_DEVICE_SERVICE,
        Stage::Xor => CAT_XOR,
        Stage::MetaAppend => CAT_META,
        Stage::Flush => CAT_FLUSH,
        Stage::Service | Stage::WholeOp => CAT_OTHER,
    }
}

/// Bound on pathological parent chains (a well-formed tree is ~5 deep).
const MAX_DEPTH: usize = 32;

/// Per-level sweep stack capacity: the most simultaneously-overlapping
/// children of one span that still get innermost-wins resolution.
/// Further children are claimed inline in start order — deterministic
/// and still an exact partition, just coarser.
const SWEEP_STACK: usize = 64;

struct Attribution<'a> {
    tree: &'a [TraceEvent],
    order: &'a [usize],
    out: [u64; NCATS],
}

impl Attribution<'_> {
    /// Claims `[cs, ce)` for child `i`: sub-spans recurse, leaves add
    /// their category.
    fn claim(&mut self, i: usize, cs: u64, ce: u64, depth: usize) {
        let e = &self.tree[i];
        if e.span != 0 {
            self.attribute(e.span, cs, ce, category(e), depth + 1);
        } else {
            self.out[category(e)] += ce - cs;
        }
    }

    /// Attributes the window `[ws, we)` owned by span `span` (whose own
    /// stage maps to `self_cat`). An interval sweep over the span's
    /// children resolves overlap innermost-first: at any instant the
    /// covering child with the latest start (ties: later end of
    /// [`tree_order`], i.e. shortest interval, leaves inside sub-spans)
    /// claims it, so an enveloping event — a parity-pipeline `Xor`
    /// overlapping its device legs — keeps only the time none of its
    /// overlapped siblings explains. Time no child covers falls to the
    /// owner's category.
    fn attribute(&mut self, span: u64, ws: u64, we: u64, self_cat: usize, depth: usize) {
        let mut cursor = ws;
        if depth < MAX_DEPTH {
            // `(end, child)` entries, pushed in [`tree_order`]: the top
            // is the innermost child active at the cursor.
            let mut stack = [(0u64, 0usize); SWEEP_STACK];
            let mut top = 0usize;
            for &i in self.order {
                let e = &self.tree[i];
                if e.parent != span || e.span == span {
                    continue;
                }
                let cs = e.start.as_nanos().clamp(ws, we);
                let ce = e.end.as_nanos().clamp(cs, we);
                // Settle inner children that end before this one starts.
                while top > 0 && stack[top - 1].0 <= cs {
                    let (end, j) = stack[top - 1];
                    top -= 1;
                    if end > cursor {
                        self.claim(j, cursor, end, depth);
                        cursor = end;
                    }
                }
                if cs > cursor {
                    // Up to this child's start the enclosing sibling
                    // resumes; with none active the owner keeps the gap.
                    if top > 0 {
                        self.claim(stack[top - 1].1, cursor, cs, depth);
                    } else {
                        self.out[self_cat] += cs - cursor;
                    }
                    cursor = cs;
                }
                if top < SWEEP_STACK {
                    stack[top] = (ce, i);
                    top += 1;
                } else if ce > cursor {
                    self.claim(i, cursor, ce, depth);
                    cursor = ce;
                }
            }
            while top > 0 {
                let (end, j) = stack[top - 1];
                top -= 1;
                let end = end.min(we);
                if end > cursor {
                    self.claim(j, cursor, end, depth);
                    cursor = end;
                }
            }
        }
        if we > cursor {
            self.out[self_cat] += we - cursor;
        }
    }
}

/// Attribution sweep sort key: by start, then longest interval first
/// (an envelope precedes — and in the sweep sits below — the inner
/// events it covers), leaves before sub-spans at exact interval ties
/// (the sub-span's detailed children win over a flat `Service`
/// envelope), record order last for determinism.
pub fn tree_order(e: &TraceEvent) -> (SimTime, std::cmp::Reverse<SimTime>, bool, u64) {
    (e.start, std::cmp::Reverse(e.end), e.span != 0, e.seq)
}

/// Critical-path analyzer: partitions `root`'s wall latency into
/// exclusive per-category segments.
///
/// `tree` holds the root plus its descendants (any order); `order` must
/// index `tree` in [`tree_order`]. The partition is exact: the returned
/// segments sum to `root.duration()` in nanoseconds. Overlap between
/// siblings is resolved innermost-first (latest start wins, so a fully
/// hidden pipeline stage gets zero exclusive time); time not covered by
/// any child falls to the covering span's own category (`other` for
/// `WholeOp`/`Service` envelopes).
pub fn blame_segments(tree: &[TraceEvent], order: &[usize], root: &TraceEvent) -> [u64; NCATS] {
    let mut a = Attribution {
        tree,
        order,
        out: [0; NCATS],
    };
    a.attribute(
        root.span,
        root.start.as_nanos(),
        root.end.as_nanos(),
        category(root),
        0,
    );
    a.out
}

/// Tail-sampling configuration for [`crate::Recorder::enable_spans`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanConfig {
    /// Explicit slow-op threshold. `None` (default) uses a rolling p99
    /// of recent root latencies, recomputed every 128 closed roots over
    /// a 512-sample reservoir.
    pub slow: Option<SimDuration>,
    /// How many slowest ops retain their full event tree (default 8).
    pub keep_slowest: Option<usize>,
}

/// Default number of slowest ops whose full tree is retained.
pub const DEFAULT_KEEP_SLOWEST: usize = 8;

/// Maximum events retained per captured slow-op tree; longer trees are
/// truncated (counted in the `truncated_events` export field).
pub const MAX_TREE_EVENTS: usize = 96;

/// Per-thread buffer capacity backstop: if error paths leak this many
/// unclosed events, the buffer is flushed and counted as orphans.
const TREE_BUF_CAP: usize = 8192;

const RESERVOIR: usize = 512;
const RECOMPUTE_EVERY: u64 = 128;
const WARM_MIN: usize = 64;

/// Blame-table rows: tenants 0..15 get their own row, everything else
/// (untenanted roots, tenants >= 16) folds into the last row.
const TENANT_ROWS: usize = 17;
const ROW_WIDTH: usize = 2 + NCATS; // count, total_ns, categories

struct TreeBuf {
    rec_id: u64,
    events: Vec<TraceEvent>,
    members: Vec<u64>,
    order: Vec<usize>,
}

impl TreeBuf {
    fn new() -> Self {
        TreeBuf {
            rec_id: 0,
            events: Vec::new(),
            members: Vec::new(),
            order: Vec::new(),
        }
    }
}

struct Reservoir {
    ring: Vec<u64>,
    n: usize,
    idx: usize,
    closes: u64,
    scratch: Vec<u64>,
}

impl Reservoir {
    fn new() -> Self {
        Reservoir {
            ring: vec![0; RESERVOIR],
            n: 0,
            idx: 0,
            closes: 0,
            scratch: Vec::with_capacity(RESERVOIR),
        }
    }

    fn push(&mut self, lat: u64) {
        self.ring[self.idx] = lat;
        self.idx = (self.idx + 1) % RESERVOIR;
        self.n = (self.n + 1).min(RESERVOIR);
        self.closes += 1;
    }

    fn due(&self) -> bool {
        self.n >= WARM_MIN && self.closes.is_multiple_of(RECOMPUTE_EVERY)
    }

    fn p99(&mut self) -> u64 {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.ring[..self.n]);
        self.scratch.sort_unstable();
        self.scratch[(self.n * 99 / 100).min(self.n - 1)]
    }
}

struct SlowSlot {
    latency_ns: u64, // 0 = empty
    root: TraceEvent,
    segments: [u64; NCATS],
    events: Vec<TraceEvent>,
    truncated: u64,
}

struct SlowStore {
    slots: Vec<SlowSlot>,
}

impl SlowStore {
    fn new(k: usize) -> Self {
        SlowStore {
            slots: (0..k.max(1))
                .map(|_| SlowSlot {
                    latency_ns: 0,
                    root: TraceEvent::empty(),
                    segments: [0; NCATS],
                    events: Vec::with_capacity(MAX_TREE_EVENTS),
                    truncated: 0,
                })
                .collect(),
        }
    }

    /// The latency a new op must exceed to enter the store: 0 while any
    /// slot is empty, else the minimum retained latency.
    fn gate(&self) -> u64 {
        self.slots.iter().map(|s| s.latency_ns).min().unwrap_or(0)
    }
}

/// A retained slow operation: its root, exclusive blame segments and
/// (possibly truncated) event tree, start-sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// The root (whole-op) event.
    pub root: TraceEvent,
    /// Root wall latency in virtual nanoseconds.
    pub latency_ns: u64,
    /// Exclusive per-category segments, [`BLAME_CATEGORIES`] order.
    pub segments: [u64; NCATS],
    /// The tree's events sorted by start (root included).
    pub events: Vec<TraceEvent>,
    /// Tree events dropped because the tree exceeded
    /// [`MAX_TREE_EVENTS`].
    pub truncated: u64,
}

/// One tenant row of the aggregate blame table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlameRow {
    /// Tenant id (the root event's `device` field), or [`NONE`] for the
    /// catch-all row.
    pub tenant: u32,
    /// Roots closed into this row.
    pub count: u64,
    /// Total root wall latency (virtual ns).
    pub total_ns: u64,
    /// Exclusive per-category ns, [`BLAME_CATEGORIES`] order.
    pub categories: [u64; NCATS],
}

/// Per-recorder span-tracing state. All memory is allocated at
/// [`SpanState::new`]; the close path only touches preallocated
/// structures and atomics.
pub(crate) struct SpanState {
    pub(crate) rec_id: u64,
    next_span: AtomicU64,
    explicit_slow_ns: AtomicU64,
    threshold_ns: AtomicU64,
    reservoir: Mutex<Reservoir>,
    blame: Vec<AtomicU64>,
    slow: Mutex<SlowStore>,
    slow_gate: AtomicU64,
    roots: AtomicU64,
    orphans: AtomicU64,
    truncated: AtomicU64,
}

/// Distinguishes recorders for the thread-local tree buffer binding.
static REC_IDS: AtomicU64 = AtomicU64::new(1);

impl SpanState {
    pub(crate) fn new(cfg: SpanConfig) -> Self {
        let state = SpanState {
            rec_id: REC_IDS.fetch_add(1, Ordering::Relaxed),
            next_span: AtomicU64::new(1),
            explicit_slow_ns: AtomicU64::new(0),
            threshold_ns: AtomicU64::new(0),
            reservoir: Mutex::new(Reservoir::new()),
            blame: (0..TENANT_ROWS * ROW_WIDTH)
                .map(|_| AtomicU64::new(0))
                .collect(),
            slow: Mutex::new(SlowStore::new(
                cfg.keep_slowest.unwrap_or(DEFAULT_KEEP_SLOWEST),
            )),
            slow_gate: AtomicU64::new(0),
            roots: AtomicU64::new(0),
            orphans: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
        };
        state.configure(cfg);
        state
    }

    pub(crate) fn configure(&self, cfg: SpanConfig) {
        let ns = cfg.slow.map_or(0, |d| d.as_nanos());
        self.explicit_slow_ns.store(ns, Ordering::Relaxed);
        if ns != 0 {
            self.threshold_ns.store(ns, Ordering::Relaxed);
        }
    }

    pub(crate) fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn roots(&self) -> u64 {
        self.roots.load(Ordering::Relaxed)
    }

    pub(crate) fn orphans(&self) -> u64 {
        self.orphans.load(Ordering::Relaxed)
    }

    pub(crate) fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    pub(crate) fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn blame_rows(&self) -> Vec<BlameRow> {
        (0..TENANT_ROWS)
            .filter_map(|row| {
                let base = row * ROW_WIDTH;
                let count = self.blame[base].load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let mut categories = [0u64; NCATS];
                for (k, c) in categories.iter_mut().enumerate() {
                    *c = self.blame[base + 2 + k].load(Ordering::Relaxed);
                }
                Some(BlameRow {
                    tenant: if row + 1 == TENANT_ROWS {
                        NONE
                    } else {
                        row as u32
                    },
                    count,
                    total_ns: self.blame[base + 1].load(Ordering::Relaxed),
                    categories,
                })
            })
            .collect()
    }

    pub(crate) fn slow_ops(&self) -> Vec<SlowOp> {
        let store = self.slow.lock();
        let mut out: Vec<SlowOp> = store
            .slots
            .iter()
            .filter(|s| s.latency_ns > 0)
            .map(|s| SlowOp {
                root: s.root,
                latency_ns: s.latency_ns,
                segments: s.segments,
                events: s.events.clone(),
                truncated: s.truncated,
            })
            .collect();
        out.sort_by_key(|s| (std::cmp::Reverse(s.latency_ns), s.root.seq));
        out
    }

    /// Folds another recorder's span aggregates into this one
    /// (end-of-run; allocation here is fine).
    pub(crate) fn absorb(&self, other: &SpanState) {
        for (mine, theirs) in self.blame.iter().zip(other.blame.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.roots.fetch_add(other.roots(), Ordering::Relaxed);
        self.orphans.fetch_add(other.orphans(), Ordering::Relaxed);
        self.truncated
            .fetch_add(other.truncated(), Ordering::Relaxed);
        self.next_span
            .fetch_add(other.next_span.load(Ordering::Relaxed), Ordering::Relaxed);
        let threshold = self.threshold_ns().max(other.threshold_ns());
        self.threshold_ns.store(threshold, Ordering::Relaxed);
        for op in other.slow_ops() {
            let mut store = self.slow.lock();
            offer(&mut store, &op.root, op.latency_ns, &op.segments, |slot| {
                slot.events.clear();
                slot.events.extend_from_slice(&op.events);
                slot.truncated = op.truncated;
            });
            self.slow_gate.store(store.gate(), Ordering::Relaxed);
        }
    }

    pub(crate) fn reset(&self) {
        for c in &self.blame {
            c.store(0, Ordering::Relaxed);
        }
        self.roots.store(0, Ordering::Relaxed);
        self.orphans.store(0, Ordering::Relaxed);
        self.truncated.store(0, Ordering::Relaxed);
        self.slow_gate.store(0, Ordering::Relaxed);
        let explicit = self.explicit_slow_ns.load(Ordering::Relaxed);
        self.threshold_ns.store(explicit, Ordering::Relaxed);
        {
            let mut r = self.reservoir.lock();
            r.n = 0;
            r.idx = 0;
            r.closes = 0;
        }
        let mut store = self.slow.lock();
        for s in &mut store.slots {
            s.latency_ns = 0;
            s.events.clear();
            s.truncated = 0;
        }
    }
}

/// Replaces the emptiest/lowest slot with the offered op when it
/// qualifies; `fill` copies the event tree into the chosen slot.
fn offer<F: FnOnce(&mut SlowSlot)>(
    store: &mut SlowStore,
    root: &TraceEvent,
    latency_ns: u64,
    segments: &[u64; NCATS],
    fill: F,
) {
    let (mut min_i, mut min_lat) = (0usize, u64::MAX);
    for (i, s) in store.slots.iter().enumerate() {
        if s.latency_ns < min_lat {
            min_i = i;
            min_lat = s.latency_ns;
        }
    }
    if latency_ns <= min_lat {
        return;
    }
    let slot = &mut store.slots[min_i];
    slot.latency_ns = latency_ns;
    slot.root = *root;
    slot.segments = *segments;
    fill(slot);
}

/// Hot-path hook: buffers the event in the thread-local tree buffer and
/// closes the tree when a root event (span set, parent 0) arrives.
pub(crate) fn on_event(state: &SpanState, ev: &TraceEvent) {
    TREE.with(|t| {
        let mut buf = t.borrow_mut();
        if buf.rec_id != state.rec_id {
            // Rebind to this recorder; anything buffered belonged to a
            // previous recorder and can no longer close.
            buf.events.clear();
            buf.rec_id = state.rec_id;
        }
        if buf.events.len() >= TREE_BUF_CAP {
            state
                .orphans
                .fetch_add(buf.events.len() as u64, Ordering::Relaxed);
            buf.events.clear();
        }
        buf.events.push(*ev);
        if ev.span != 0 && ev.parent == 0 {
            close_root(state, &mut buf);
        }
    });
}

/// Assembles the tree ending in the buffer's last event, attributes it,
/// and drains the buffer.
fn close_root(state: &SpanState, buf: &mut TreeBuf) {
    let root_idx = buf.events.len() - 1;
    let root = buf.events[root_idx];
    buf.members.clear();
    buf.order.clear();
    buf.members.push(root.span);
    buf.order.push(root_idx);
    // Parents are recorded after their children, so a reverse scan sees
    // every span-carrying event before the events it parents.
    for i in (0..root_idx).rev() {
        let e = &buf.events[i];
        if e.parent != 0 && buf.members.contains(&e.parent) {
            if e.span != 0 && !buf.members.contains(&e.span) {
                buf.members.push(e.span);
            }
            buf.order.push(i);
        }
    }
    let orphaned = buf.events.len() - buf.order.len();
    if orphaned > 0 {
        state.orphans.fetch_add(orphaned as u64, Ordering::Relaxed);
    }
    let TreeBuf { events, order, .. } = buf;
    order.sort_unstable_by_key(|&i| tree_order(&events[i]));

    let segments = blame_segments(events, order, &root);
    let latency_ns = root.duration().as_nanos();
    state.roots.fetch_add(1, Ordering::Relaxed);

    // Blame-table row: per-tenant for small tenant ids, catch-all else.
    let row = if (root.device as usize) < TENANT_ROWS - 1 {
        root.device as usize
    } else {
        TENANT_ROWS - 1
    };
    let base = row * ROW_WIDTH;
    state.blame[base].fetch_add(1, Ordering::Relaxed);
    state.blame[base + 1].fetch_add(latency_ns, Ordering::Relaxed);
    for (k, &v) in segments.iter().enumerate() {
        if v != 0 {
            state.blame[base + 2 + k].fetch_add(v, Ordering::Relaxed);
        }
    }

    // Tail sampling: rolling-p99 threshold unless explicitly pinned.
    let threshold = if state.explicit_slow_ns.load(Ordering::Relaxed) != 0 {
        state.threshold_ns.load(Ordering::Relaxed)
    } else {
        let mut r = state.reservoir.lock();
        r.push(latency_ns);
        if r.due() {
            let p99 = r.p99();
            state.threshold_ns.store(p99, Ordering::Relaxed);
        }
        state.threshold_ns.load(Ordering::Relaxed)
    };
    if latency_ns >= threshold && latency_ns > state.slow_gate.load(Ordering::Relaxed) {
        let mut store = state.slow.lock();
        let copied = order.len().min(MAX_TREE_EVENTS);
        let dropped = (order.len() - copied) as u64;
        offer(&mut store, &root, latency_ns, &segments, |slot| {
            slot.events.clear();
            for &i in order.iter().take(copied) {
                slot.events.push(events[i]);
            }
            slot.truncated = dropped;
        });
        if dropped > 0 {
            state.truncated.fetch_add(dropped, Ordering::Relaxed);
        }
        state.slow_gate.store(store.gate(), Ordering::Relaxed);
    }
    buf.events.clear();
}

fn push_segments_json(out: &mut String, segments: &[u64; NCATS]) {
    out.push('{');
    for (k, name) in BLAME_CATEGORIES.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}_ns\": {}", name, segments[k]));
    }
    out.push('}');
}

fn tenant_label(tenant: u32) -> String {
    if tenant == NONE {
        "all".to_string()
    } else {
        tenant.to_string()
    }
}

/// Renders the span artifact: tail-sampling counters, the per-tenant
/// blame table, the K slowest ops with their segments and event trees,
/// and a Chrome `trace_event` array (`traceEvents`, `ph: "X"`) loadable
/// in Perfetto / `chrome://tracing`. `name` tags the producing
/// experiment.
pub fn spans_json(name: &str, recorder: &Recorder) -> String {
    let rows = recorder.blame_rows();
    let slow = recorder.slow_ops();
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", crate::escape(name)));
    out.push_str("  \"kind\": \"spans\",\n");
    out.push_str(&format!(
        "  \"threshold_ns\": {},\n",
        recorder.span_threshold_ns()
    ));
    out.push_str(&format!("  \"roots\": {},\n", recorder.span_roots()));
    out.push_str(&format!(
        "  \"orphan_events\": {},\n",
        recorder.span_orphans()
    ));
    out.push_str(&format!(
        "  \"truncated_events\": {},\n",
        recorder.span_truncated()
    ));

    out.push_str("  \"blame\": [");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"count\": {}, \"total_ns\": {}, \"segments\": ",
            tenant_label(row.tenant),
            row.count,
            row.total_ns
        ));
        push_segments_json(&mut out, &row.categories);
        out.push('}');
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"slow_ops\": [");
    for (i, op) in slow.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"latency_ns\": {}, \"op\": \"{}\", \"tenant\": \"{}\", \
             \"start_ns\": {}, \"end_ns\": {}, \"truncated_events\": {}, \"segments\": ",
            op.latency_ns,
            op.root.op.name(),
            tenant_label(op.root.device),
            op.root.start.as_nanos(),
            op.root.end.as_nanos(),
            op.truncated
        ));
        push_segments_json(&mut out, &op.segments);
        out.push_str(", \"events\": [");
        for (j, ev) in op.events.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&crate::event_json(ev));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n");

    // Chrome trace_event format: pid groups by tenant, tid by device.
    out.push_str("  \"traceEvents\": [");
    let mut first = true;
    for op in &slow {
        let pid = if op.root.device == NONE {
            0
        } else {
            op.root.device
        };
        for ev in &op.events {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let tid = if ev.device == NONE { 0 } else { ev.device + 1 };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"pid\": {}, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"args\": {{\"seq\": {}, \"span\": {}, \"parent\": {}, \
                 \"blame\": \"{}\", \"zone\": {}, \"lba\": {}, \"sectors\": {}, \
                 \"outcome\": \"{}\"}}}}",
                ev.stage.name(),
                ev.op.name(),
                pid,
                tid,
                ev.start.as_nanos() as f64 / 1000.0,
                ev.duration().as_nanos() as f64 / 1000.0,
                ev.seq,
                ev.span,
                ev.parent,
                ev.blame.name(),
                ev.zone,
                ev.lba,
                ev.sectors,
                ev.outcome.name(),
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}
