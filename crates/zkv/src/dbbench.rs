//! A db_bench-style driver (Fig. 13): fillseq, fillrandom, overwrite and
//! readwhilewriting over a [`ZkvStore`].

use crate::store::ZkvStore;
use sim::{Histogram, SimDuration, SimRng, SimTime};
use zns::{Result, ZonedVolume};

/// The four db_bench workloads the paper runs (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbWorkload {
    /// Insert `ops` values in ascending key order.
    FillSeq,
    /// Insert `ops` values at uniform-random keys.
    FillRandom,
    /// Overwrite uniform-random existing keys.
    Overwrite,
    /// Single writer streams random puts while `read_threads` readers
    /// perform `ops` random gets.
    ReadWhileWriting,
}

impl DbWorkload {
    /// db_bench's name for the workload.
    pub fn name(self) -> &'static str {
        match self {
            DbWorkload::FillSeq => "fillseq",
            DbWorkload::FillRandom => "fillrandom",
            DbWorkload::Overwrite => "overwrite",
            DbWorkload::ReadWhileWriting => "readwhilewriting",
        }
    }
}

/// Results of one workload run.
#[derive(Debug)]
pub struct DbBenchReport {
    /// The workload that ran.
    pub workload: DbWorkload,
    /// Operations completed (reads for readwhilewriting, writes otherwise).
    pub ops: u64,
    /// Virtual wall time.
    pub duration: SimDuration,
    /// Write-op latency distribution.
    pub write_latency: Histogram,
    /// Read-op latency distribution.
    pub read_latency: Histogram,
    /// Instant the run finished (for chaining).
    pub end: SimTime,
}

impl DbBenchReport {
    /// Primary-op throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// db_bench-style driver configuration.
#[derive(Debug, Clone)]
pub struct DbBench {
    /// Operations per workload.
    pub ops: u64,
    /// Value size in bytes (the paper shows 4000 and 8000).
    pub value_size: usize,
    /// Reader threads for readwhilewriting (paper: 8).
    pub read_threads: usize,
    /// Key space size (defaults to `ops`).
    pub key_space: u64,
    /// RNG seed.
    pub seed: u64,
}

impl DbBench {
    /// A driver issuing `ops` operations with `value_size`-byte values.
    pub fn new(ops: u64, value_size: usize) -> Self {
        DbBench {
            ops,
            value_size,
            read_threads: 8,
            key_space: ops,
            seed: 0x5EED,
        }
    }

    fn value(&self, key: u64) -> Vec<u8> {
        vec![(key % 251) as u8; self.value_size]
    }

    /// Runs one workload starting at `at`.
    ///
    /// # Errors
    ///
    /// Propagates store/volume errors (e.g. volume out of space).
    pub fn run<V: ZonedVolume>(
        &self,
        store: &ZkvStore<V>,
        workload: DbWorkload,
        at: SimTime,
    ) -> Result<DbBenchReport> {
        let mut rng = SimRng::new(self.seed ^ workload as u64);
        let mut write_latency = Histogram::new();
        let mut read_latency = Histogram::new();
        let mut end = at;
        match workload {
            DbWorkload::FillSeq | DbWorkload::FillRandom | DbWorkload::Overwrite => {
                let mut t = at;
                for i in 0..self.ops {
                    let key = match workload {
                        DbWorkload::FillSeq => i,
                        _ => rng.gen_range(self.key_space),
                    };
                    let done = store.put(t, key, &self.value(key))?;
                    write_latency.record(done.saturating_since(t));
                    t = done;
                }
                end = t;
            }
            DbWorkload::ReadWhileWriting => {
                // Frontier scheduling across 1 writer + N reader streams.
                let mut frontiers = vec![at; self.read_threads + 1];
                let mut reads_left = self.ops;
                let mut reads_per_stream = vec![0u64; self.read_threads];
                while reads_left > 0 {
                    // The stream with the earliest frontier acts next.
                    let Some((i, &t)) = frontiers.iter().enumerate().min_by_key(|(_, t)| **t)
                    else {
                        return Err(zns::ZnsError::InvalidArgument(
                            "readwhilewriting requires at least one stream".to_string(),
                        ));
                    };
                    if i == 0 {
                        // Writer stream.
                        let key = rng.gen_range(self.key_space);
                        let done = store.put(t, key, &self.value(key))?;
                        write_latency.record(done.saturating_since(t));
                        frontiers[0] = done;
                    } else {
                        let key = rng.gen_range(self.key_space);
                        let (_, done) = store.get(t, key)?;
                        read_latency.record(done.saturating_since(t));
                        frontiers[i] = done;
                        reads_per_stream[i - 1] += 1;
                        reads_left -= 1;
                    }
                    end = end.max(frontiers[i]);
                }
            }
        }
        Ok(DbBenchReport {
            workload,
            ops: self.ops,
            duration: end.saturating_since(at),
            write_latency,
            read_latency,
            end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZkvConfig;
    use std::sync::Arc;
    use zns::{LatencyConfig, ZnsConfig, ZnsDevice};

    fn store() -> ZkvStore<ZnsDevice> {
        let dev = Arc::new(ZnsDevice::new(
            ZnsConfig::builder()
                .zones(32, 256, 256)
                .open_limits(8, 14)
                .latency(LatencyConfig::zns_ssd())
                .store_data(false)
                .build(),
        ));
        ZkvStore::create(dev, ZkvConfig::small_test(), SimTime::ZERO).unwrap()
    }

    #[test]
    fn fillseq_completes_and_reports() {
        let s = store();
        let bench = DbBench::new(200, 500);
        let r = bench.run(&s, DbWorkload::FillSeq, SimTime::ZERO).unwrap();
        assert_eq!(r.ops, 200);
        assert!(r.ops_per_sec() > 0.0);
        assert_eq!(r.write_latency.count(), 200);
    }

    #[test]
    fn fillrandom_then_overwrite() {
        let s = store();
        let bench = DbBench::new(150, 400);
        let a = bench
            .run(&s, DbWorkload::FillRandom, SimTime::ZERO)
            .unwrap();
        let b = bench.run(&s, DbWorkload::Overwrite, a.end).unwrap();
        assert!(b.end > a.end);
        assert!(s.stats().puts >= 300);
    }

    #[test]
    fn readwhilewriting_interleaves() {
        let s = store();
        let bench = DbBench::new(100, 400);
        bench
            .run(&s, DbWorkload::FillRandom, SimTime::ZERO)
            .unwrap();
        let r = bench
            .run(&s, DbWorkload::ReadWhileWriting, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.read_latency.count(), 100);
        assert!(
            r.write_latency.count() > 0,
            "writer starved: {:?}",
            r.write_latency
        );
    }

    #[test]
    fn workload_names() {
        assert_eq!(DbWorkload::FillSeq.name(), "fillseq");
        assert_eq!(DbWorkload::ReadWhileWriting.name(), "readwhilewriting");
    }
}
