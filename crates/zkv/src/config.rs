//! Store configuration.

/// Configuration of a [`crate::ZkvStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZkvConfig {
    /// Memtable flush threshold in bytes.
    pub memtable_bytes: usize,
    /// Compact when this many SSTables accumulate.
    pub compaction_trigger: usize,
    /// Number of zones reserved for the write-ahead log (ping-pong pair).
    pub wal_zones: u32,
    /// Chunk size (sectors) for table flush/compaction IO.
    pub io_chunk_sectors: u64,
}

impl Default for ZkvConfig {
    fn default() -> Self {
        ZkvConfig {
            memtable_bytes: 8 * 1024 * 1024,
            compaction_trigger: 6,
            wal_zones: 2,
            io_chunk_sectors: 64, // 256 KiB
        }
    }
}

impl ZkvConfig {
    /// A tiny configuration for unit tests on
    /// [`zns::ZnsConfig::small_test`] devices.
    pub fn small_test() -> Self {
        ZkvConfig {
            memtable_bytes: 16 * 1024,
            compaction_trigger: 3,
            wal_zones: 2,
            io_chunk_sectors: 8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized fields.
    pub fn validate(&self) {
        assert!(self.memtable_bytes > 0, "memtable_bytes must be nonzero");
        assert!(
            self.compaction_trigger >= 2,
            "compaction needs at least 2 tables"
        );
        assert!(self.wal_zones >= 2, "WAL needs a ping-pong zone pair");
        assert!(
            self.io_chunk_sectors > 0,
            "io_chunk_sectors must be nonzero"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ZkvConfig::default().validate();
        ZkvConfig::small_test().validate();
    }

    #[test]
    #[should_panic(expected = "ping-pong")]
    fn single_wal_zone_rejected() {
        let mut c = ZkvConfig::small_test();
        c.wal_zones = 1;
        c.validate();
    }
}
