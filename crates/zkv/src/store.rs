//! The LSM store engine.

use crate::config::ZkvConfig;
use parking_lot::Mutex;
use sim::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use zns::{Lba, Result, WriteFlags, ZnsError, ZonedVolume, SECTOR_SIZE};

/// Store statistics for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZkvStats {
    /// user put/delete operations
    pub puts: u64,
    /// user get operations
    pub gets: u64,
    /// memtable flushes
    pub flushes: u64,
    /// compactions run
    pub compactions: u64,
    /// bytes written to SSTables (flush + compaction)
    pub table_bytes_written: u64,
    /// bytes read by compactions
    pub compaction_bytes_read: u64,
    /// zone resets issued (dead zones reclaimed + WAL rotation)
    pub zone_resets: u64,
}

/// One index entry of an SSTable: where a key's value lives.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    key: u64,
    lba: Lba,
    sectors: u32,
    value_len: u32,
    tombstone: bool,
}

/// An immutable sorted run.
#[derive(Debug)]
struct SsTable {
    /// Sorted by key (unique within a table).
    entries: Vec<IndexEntry>,
    /// Zones this table occupies (for reclamation).
    zones: Vec<u32>,
}

struct ZoneAlloc {
    free: VecDeque<u32>,
    /// Currently open data zone and its next write offset (sectors).
    open: Option<(u32, u64)>,
    /// Live-table count per zone.
    live: Vec<u32>,
}

struct Inner {
    mem: BTreeMap<u64, Option<Vec<u8>>>,
    mem_bytes: usize,
    tables: Vec<SsTable>,
    alloc: ZoneAlloc,
    wal: Vec<u32>,
    wal_active: usize,
    wal_used: u64,
    stats: ZkvStats,
}

/// A log-structured merge-tree key-value store over a zoned volume. See
/// the crate documentation for the design and an example.
pub struct ZkvStore<V> {
    volume: Arc<V>,
    config: ZkvConfig,
    inner: Mutex<Inner>,
}

/// Sectors needed for a value of `len` bytes plus the 16-byte record
/// header.
fn record_sectors(len: usize) -> u64 {
    ((len + 16) as u64).div_ceil(SECTOR_SIZE)
}

impl<V: ZonedVolume> ZkvStore<V> {
    /// Creates a fresh store on `volume`. The first `wal_zones` zones hold
    /// the WAL; the rest are data zones.
    ///
    /// # Errors
    ///
    /// Fails if the volume has too few zones.
    pub fn create(volume: Arc<V>, config: ZkvConfig, _at: SimTime) -> Result<Self> {
        config.validate();
        let zones = volume.geometry().num_zones();
        if zones < config.wal_zones + 2 {
            return Err(ZnsError::InvalidArgument(format!(
                "volume has {zones} zones; zkv needs at least {}",
                config.wal_zones + 2
            )));
        }
        let wal: Vec<u32> = (0..config.wal_zones).collect();
        let free: VecDeque<u32> = (config.wal_zones..zones).collect();
        Ok(ZkvStore {
            volume,
            config,
            inner: Mutex::new(Inner {
                mem: BTreeMap::new(),
                mem_bytes: 0,
                tables: Vec::new(),
                alloc: ZoneAlloc {
                    free,
                    open: None,
                    live: vec![0; zones as usize],
                },
                wal,
                wal_active: 0,
                wal_used: 0,
                stats: ZkvStats::default(),
            }),
        })
    }

    /// The underlying volume.
    pub fn volume(&self) -> &Arc<V> {
        &self.volume
    }

    /// Store statistics.
    pub fn stats(&self) -> ZkvStats {
        self.inner.lock().stats
    }

    /// Number of SSTables currently live.
    pub fn table_count(&self) -> usize {
        self.inner.lock().tables.len()
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// Propagates volume IO errors (e.g. out of space).
    pub fn put(&self, at: SimTime, key: u64, value: &[u8]) -> Result<SimTime> {
        self.upsert(at, key, Some(value))
    }

    /// Deletes `key` (writes a tombstone).
    ///
    /// # Errors
    ///
    /// Propagates volume IO errors.
    pub fn delete(&self, at: SimTime, key: u64) -> Result<SimTime> {
        self.upsert(at, key, None)
    }

    fn upsert(&self, at: SimTime, key: u64, value: Option<&[u8]>) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        // WAL append.
        let vlen = value.map(|v| v.len()).unwrap_or(0);
        let wal_sectors = record_sectors(vlen);
        let geo = self.volume.geometry();
        let mut t = at;
        if inner.wal_used + wal_sectors > geo.zone_cap() {
            // Rotate to the other WAL zone; the data it protects is forced
            // into tables first.
            t = self.flush_memtable(inner, t)?;
            let old = inner.wal[inner.wal_active];
            inner.wal_active = (inner.wal_active + 1) % inner.wal.len();
            inner.wal_used = 0;
            t = self.volume.reset_zone(t, old)?.done;
            inner.stats.zone_resets += 1;
        }
        let wal_zone = inner.wal[inner.wal_active];
        let mut rec = vec![0u8; (wal_sectors * SECTOR_SIZE) as usize];
        rec[..8].copy_from_slice(&key.to_le_bytes());
        rec[8..12].copy_from_slice(&(vlen as u32).to_le_bytes());
        rec[12] = value.is_none() as u8;
        if let Some(v) = value {
            rec[16..16 + v.len()].copy_from_slice(v);
        }
        t = self
            .volume
            .append(t, wal_zone, &rec, WriteFlags::default())?
            .done;
        inner.wal_used += wal_sectors;

        // Memtable insert.
        let delta = 16 + vlen;
        if let Some(old) = inner.mem.insert(key, value.map(|v| v.to_vec())) {
            inner.mem_bytes -= 16 + old.map(|o| o.len()).unwrap_or(0);
        }
        inner.mem_bytes += delta;
        inner.stats.puts += 1;

        if inner.mem_bytes >= self.config.memtable_bytes {
            t = self.flush_memtable(inner, t)?;
            if inner.tables.len() >= self.config.compaction_trigger {
                t = self.compact(inner, t)?;
            }
        }
        Ok(t)
    }

    /// Looks up `key`, returning its value (or `None`) and the completion
    /// time.
    ///
    /// # Errors
    ///
    /// Propagates volume IO errors.
    pub fn get(&self, at: SimTime, key: u64) -> Result<(Option<Vec<u8>>, SimTime)> {
        let mut inner = self.inner.lock();
        inner.stats.gets += 1;
        if let Some(v) = inner.mem.get(&key) {
            return Ok((v.clone(), at));
        }
        // Newest table first.
        for table in inner.tables.iter().rev() {
            let Ok(i) = table.entries.binary_search_by_key(&key, |e| e.key) else {
                continue;
            };
            let e = table.entries[i];
            if e.tombstone {
                return Ok((None, at));
            }
            let mut buf = vec![0u8; e.sectors as usize * SECTOR_SIZE as usize];
            let done = self.volume.read(at, e.lba, &mut buf)?.done;
            // Record layout: 16-byte header then the value bytes. (On an
            // accounting-only volume the buffer is zeros; the index-held
            // length still shapes the returned value.)
            buf.drain(..16);
            buf.truncate(e.value_len as usize);
            return Ok((Some(buf), done));
        }
        Ok((None, at))
    }

    /// Forces the memtable to disk (like a manual `Flush()` call).
    ///
    /// # Errors
    ///
    /// Propagates volume IO errors.
    pub fn sync(&self, at: SimTime) -> Result<SimTime> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let t = self.flush_memtable(inner, at)?;
        Ok(self.volume.flush(t)?.done)
    }

    /// Allocates space for `sectors` in the open data zone, opening a new
    /// zone when needed. Returns the write LBA.
    fn alloc_extent(
        &self,
        inner: &mut Inner,
        at: SimTime,
        sectors: u64,
    ) -> Result<(Lba, u32, SimTime)> {
        let geo = self.volume.geometry();
        if sectors > geo.zone_cap() {
            return Err(ZnsError::InvalidArgument(format!(
                "zkv: extent of {sectors} sectors larger than a zone ({})",
                geo.zone_cap()
            )));
        }
        let t = at;
        let (zone, used) = match inner.alloc.open {
            Some((zone, used)) if used + sectors <= geo.zone_cap() => (zone, used),
            _ => {
                // The previous open zone stays as-is (implicitly closed by
                // the device); it is reclaimed once its tables die.
                inner.alloc.open = None;
                let zone = inner.alloc.free.pop_front().ok_or_else(|| {
                    ZnsError::InvalidArgument("zkv: out of free zones".to_string())
                })?;
                (zone, 0)
            }
        };
        let lba = geo.zone_start(zone) + used;
        inner.alloc.open = Some((zone, used + sectors));
        Ok((lba, zone, t))
    }

    /// Writes the sorted `items` out as one SSTable.
    fn write_table(
        &self,
        inner: &mut Inner,
        at: SimTime,
        items: &[(u64, Option<Vec<u8>>)],
    ) -> Result<SimTime> {
        let mut t = at;
        let mut entries = Vec::with_capacity(items.len());
        let mut zones = Vec::new();
        // Pack records into chunked writes per zone extent.
        let chunk_cap = self.config.io_chunk_sectors;
        let mut pending: Vec<u8> = Vec::new();
        let mut pending_lba: Option<Lba> = None;
        let mut pending_sectors = 0u64;
        for (key, value) in items {
            let vlen = value.as_ref().map(|v| v.len()).unwrap_or(0);
            let sectors = record_sectors(vlen);
            // Flush the chunk when it cannot grow contiguously.
            let (lba, zone, t2) = self.alloc_extent(inner, t, sectors)?;
            t = t2;
            let geo = self.volume.geometry();
            let contiguous = pending_lba
                .map(|pl| {
                    pl + pending_sectors == lba
                        && pending_sectors + sectors <= chunk_cap
                        && geo.range_in_one_zone(pl, pending_sectors + sectors)
                })
                .unwrap_or(false);
            if !contiguous {
                if let Some(wl) = pending_lba.take() {
                    t = self
                        .volume
                        .write(t, wl, &pending, WriteFlags::default())?
                        .done;
                    inner.stats.table_bytes_written += pending.len() as u64;
                    pending.clear();
                    pending_sectors = 0;
                }
            }
            if pending_lba.is_none() {
                pending_lba = Some(lba);
            }
            let off = pending.len();
            pending.resize(off + (sectors * SECTOR_SIZE) as usize, 0);
            pending[off..off + 8].copy_from_slice(&key.to_le_bytes());
            pending[off + 8..off + 12].copy_from_slice(&(vlen as u32).to_le_bytes());
            pending[off + 12] = value.is_none() as u8;
            if let Some(v) = value {
                pending[off + 16..off + 16 + v.len()].copy_from_slice(v);
            }
            pending_sectors += sectors;
            if zones.last() != Some(&zone) {
                zones.push(zone);
                inner.alloc.live[zone as usize] += 1;
            }
            entries.push(IndexEntry {
                key: *key,
                lba,
                sectors: sectors as u32,
                value_len: vlen as u32,
                tombstone: value.is_none(),
            });
        }
        if let Some(wl) = pending_lba {
            t = self
                .volume
                .write(t, wl, &pending, WriteFlags::default())?
                .done;
            inner.stats.table_bytes_written += pending.len() as u64;
        }
        inner.tables.push(SsTable { entries, zones });
        Ok(t)
    }

    fn flush_memtable(&self, inner: &mut Inner, at: SimTime) -> Result<SimTime> {
        if inner.mem.is_empty() {
            return Ok(at);
        }
        let items: Vec<(u64, Option<Vec<u8>>)> =
            std::mem::take(&mut inner.mem).into_iter().collect();
        inner.mem_bytes = 0;
        let t = self.write_table(inner, at, &items)?;
        inner.stats.flushes += 1;
        Ok(t)
    }

    /// Merges all tables into one, dropping shadowed versions and
    /// tombstones, then reclaims dead zones.
    fn compact(&self, inner: &mut Inner, at: SimTime) -> Result<SimTime> {
        let tables = std::mem::take(&mut inner.tables);
        let mut t = at;
        // Read each table's extents in chunked runs, keeping the buffers
        // so survivor values can be sliced without extra device reads.
        let chunk = self.config.io_chunk_sectors;
        let mut run_data: Vec<(Lba, Vec<u8>)> = Vec::new();
        for table in &tables {
            let geo = self.volume.geometry();
            let mut runs: Vec<(Lba, u64)> = Vec::new();
            for e in &table.entries {
                match runs.last_mut() {
                    Some((l, s))
                        if *l + *s == e.lba
                            && *s + e.sectors as u64 <= chunk
                            && geo.range_in_one_zone(*l, *s + e.sectors as u64) =>
                    {
                        *s += e.sectors as u64;
                    }
                    _ => runs.push((e.lba, e.sectors as u64)),
                }
            }
            for (lba, sectors) in runs {
                let mut buf = vec![0u8; (sectors * SECTOR_SIZE) as usize];
                t = self.volume.read(t, lba, &mut buf)?.done;
                inner.stats.compaction_bytes_read += buf.len() as u64;
                run_data.push((lba, buf));
            }
        }
        run_data.sort_by_key(|(lba, _)| *lba);
        let slice_value = |e: &IndexEntry| -> Result<Vec<u8>> {
            let i = run_data
                .partition_point(|(lba, _)| *lba <= e.lba)
                .checked_sub(1)
                .ok_or_else(|| {
                    ZnsError::InvalidArgument(format!(
                        "zkv: compaction entry at lba {} below every run",
                        e.lba
                    ))
                })?;
            let (run_lba, buf) = &run_data[i];
            let off = ((e.lba - run_lba) * SECTOR_SIZE) as usize;
            Ok(buf[off + 16..off + 16 + e.value_len as usize].to_vec())
        };
        // Merge indexes: newest table wins per key.
        let mut merged: BTreeMap<u64, (usize, IndexEntry)> = BTreeMap::new();
        for (ti, table) in tables.iter().enumerate() {
            for e in &table.entries {
                match merged.get(&e.key) {
                    Some((prev_ti, _)) if *prev_ti > ti => {}
                    _ => {
                        merged.insert(e.key, (ti, *e));
                    }
                }
            }
        }
        // Rewrite survivors, dropping tombstones (full compaction).
        let mut items: Vec<(u64, Option<Vec<u8>>)> = Vec::with_capacity(merged.len());
        for (key, (_, e)) in merged {
            if e.tombstone {
                continue;
            }
            items.push((key, Some(slice_value(&e)?)));
        }
        // Release live references, then write the merged table.
        for table in &tables {
            for z in &table.zones {
                inner.alloc.live[*z as usize] -= 1;
            }
        }
        if !items.is_empty() {
            t = self.write_table(inner, t, &items)?;
        }
        // Reclaim zones with no remaining live tables (and not open).
        let open_zone = inner.alloc.open.map(|(z, _)| z);
        for table in &tables {
            for z in &table.zones {
                if inner.alloc.live[*z as usize] == 0
                    && Some(*z) != open_zone
                    && !inner.alloc.free.contains(z)
                {
                    t = self.volume.reset_zone(t, *z)?.done;
                    inner.alloc.free.push_back(*z);
                    inner.stats.zone_resets += 1;
                }
            }
        }
        inner.stats.compactions += 1;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zns::{ZnsConfig, ZnsDevice};

    const T0: SimTime = SimTime::ZERO;

    fn store() -> ZkvStore<ZnsDevice> {
        let dev = Arc::new(ZnsDevice::new(
            ZnsConfig::builder()
                .zones(16, 64, 64)
                .open_limits(8, 14)
                .build(),
        ));
        ZkvStore::create(dev, ZkvConfig::small_test(), T0).unwrap()
    }

    #[test]
    fn put_get_roundtrip_from_memtable() {
        let s = store();
        s.put(T0, 1, b"alpha").unwrap();
        let (v, _) = s.get(T0, 1).unwrap();
        assert_eq!(v.as_deref(), Some(&b"alpha"[..]));
        assert_eq!(s.get(T0, 2).unwrap().0, None);
    }

    #[test]
    fn values_survive_memtable_flush() {
        let s = store();
        let value = vec![0xAB; 800];
        for k in 0..40u64 {
            s.put(T0, k, &value).unwrap();
        }
        assert!(s.stats().flushes > 0, "memtable never flushed");
        for k in 0..40u64 {
            let (v, _) = s.get(T0, k).unwrap();
            assert_eq!(v.as_deref(), Some(&value[..]), "key {k}");
        }
    }

    #[test]
    fn overwrites_return_latest() {
        let s = store();
        let big = vec![1u8; 600];
        for round in 0..5u8 {
            for k in 0..20u64 {
                let mut v = big.clone();
                v[0] = round;
                s.put(T0, k, &v).unwrap();
            }
        }
        for k in 0..20u64 {
            let (v, _) = s.get(T0, k).unwrap();
            assert_eq!(v.expect("present")[0], 4, "key {k}");
        }
    }

    #[test]
    fn deletes_are_tombstones() {
        let s = store();
        let value = vec![7u8; 700];
        for k in 0..30u64 {
            s.put(T0, k, &value).unwrap();
        }
        s.delete(T0, 5).unwrap();
        // Force the tombstone through a flush.
        s.sync(T0).unwrap();
        assert_eq!(s.get(T0, 5).unwrap().0, None);
        assert!(s.get(T0, 6).unwrap().0.is_some());
    }

    #[test]
    fn compaction_reclaims_zones() {
        let s = store();
        let value = vec![3u8; 900];
        for round in 0..8u64 {
            for k in 0..30u64 {
                s.put(T0, k, &value).unwrap();
            }
            let _ = round;
        }
        let st = s.stats();
        assert!(st.compactions > 0, "no compaction ran: {st:?}");
        assert!(st.zone_resets > 0, "no zone was reclaimed: {st:?}");
        // Data still correct.
        for k in 0..30u64 {
            assert_eq!(s.get(T0, k).unwrap().0.as_deref(), Some(&value[..]));
        }
    }

    #[test]
    fn wal_rotation_resets_zones() {
        let s = store();
        // Values sized so WAL zones fill quickly.
        let value = vec![9u8; 3 * 4096];
        for k in 0..80u64 {
            s.put(T0, k % 10, &value).unwrap();
        }
        assert!(s.stats().zone_resets > 0);
        assert_eq!(s.get(T0, 3).unwrap().0.as_deref(), Some(&value[..]));
    }

    #[test]
    fn virtual_time_advances_with_io() {
        let dev = Arc::new(ZnsDevice::new(
            ZnsConfig::builder()
                .zones(16, 256, 256)
                .open_limits(8, 14)
                .latency(zns::LatencyConfig::zns_ssd())
                .build(),
        ));
        let s = ZkvStore::create(dev, ZkvConfig::small_test(), T0).unwrap();
        let t = s.put(T0, 1, &[1u8; 4000]).unwrap();
        assert!(t > T0, "WAL write should cost time");
    }

    #[test]
    fn out_of_space_is_reported() {
        let dev = Arc::new(ZnsDevice::new(
            ZnsConfig::builder()
                .zones(4, 16, 16)
                .open_limits(4, 4)
                .build(),
        ));
        let s = ZkvStore::create(dev, ZkvConfig::small_test(), T0).unwrap();
        let value = vec![0u8; 2000];
        let mut err = None;
        for k in 0..10_000u64 {
            match s.put(T0, k, &value) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.is_some(), "store never ran out of space");
    }
}
