//! A sysbench-style OLTP driver (Fig. 14) over a [`ZkvStore`].
//!
//! Emulates sysbench's `oltp_read_only`, `oltp_write_only` and
//! `oltp_read_write` on a key-value backend (as MyRocks does): tables are
//! key ranges, point SELECTs are gets, UPDATE/INSERT are puts, DELETE is a
//! tombstone. `threads` transaction streams run concurrently on the
//! virtual clock for a fixed duration.

use crate::store::ZkvStore;
use sim::{Histogram, SimDuration, SimRng, SimTime};
use zns::{Result, ZonedVolume};

/// The sysbench transaction mixes the paper runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OltpMix {
    /// 10 point SELECTs per transaction.
    ReadOnly,
    /// 2 UPDATEs, 1 DELETE, 1 INSERT per transaction.
    WriteOnly,
    /// 14 SELECTs, 2 UPDATEs, 1 DELETE, 1 INSERT per transaction.
    ReadWrite,
}

impl OltpMix {
    /// sysbench's name for the mix.
    pub fn name(self) -> &'static str {
        match self {
            OltpMix::ReadOnly => "oltp_read_only",
            OltpMix::WriteOnly => "oltp_write_only",
            OltpMix::ReadWrite => "oltp_read_write",
        }
    }
}

/// Results of an OLTP run.
#[derive(Debug)]
pub struct OltpReport {
    /// The mix that ran.
    pub mix: OltpMix,
    /// Transactions committed.
    pub transactions: u64,
    /// Virtual wall time.
    pub duration: SimDuration,
    /// Transaction latency distribution.
    pub latency: Histogram,
    /// Instant the run finished.
    pub end: SimTime,
}

impl OltpReport {
    /// Transactions per second.
    pub fn tps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.transactions as f64 / secs
        }
    }
}

/// sysbench-style driver configuration.
#[derive(Debug, Clone)]
pub struct OltpBench {
    /// Number of tables (paper: 8).
    pub tables: u32,
    /// Rows per table (paper: 10 million; scale down for simulation).
    pub rows_per_table: u64,
    /// Concurrent transaction streams (paper: 64 and 128).
    pub threads: usize,
    /// Virtual run duration (paper: 600 s).
    pub duration: SimDuration,
    /// Row payload size in bytes (sysbench rows are ~180 B of data).
    pub row_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl OltpBench {
    /// A driver with `tables` × `rows_per_table` rows and `threads`
    /// streams.
    pub fn new(tables: u32, rows_per_table: u64, threads: usize) -> Self {
        OltpBench {
            tables,
            rows_per_table,
            threads,
            duration: SimDuration::from_secs(10),
            row_bytes: 180,
            seed: 0x0175EED,
        }
    }

    fn key(&self, table: u32, row: u64) -> u64 {
        ((table as u64) << 40) | row
    }

    fn row_value(&self, key: u64) -> Vec<u8> {
        vec![(key % 247) as u8; self.row_bytes]
    }

    /// Loads every table (sysbench `prepare`). Returns the completion
    /// time.
    ///
    /// # Errors
    ///
    /// Propagates store/volume errors.
    pub fn prepare<V: ZonedVolume>(&self, store: &ZkvStore<V>, at: SimTime) -> Result<SimTime> {
        let mut t = at;
        for table in 0..self.tables {
            for row in 0..self.rows_per_table {
                let k = self.key(table, row);
                t = store.put(t, k, &self.row_value(k))?;
            }
        }
        store.sync(t)
    }

    /// Runs the mix for the configured duration.
    ///
    /// # Errors
    ///
    /// Propagates store/volume errors.
    pub fn run<V: ZonedVolume>(
        &self,
        store: &ZkvStore<V>,
        mix: OltpMix,
        at: SimTime,
    ) -> Result<OltpReport> {
        let mut rng = SimRng::new(self.seed ^ mix as u64);
        let mut frontiers = vec![at; self.threads];
        let deadline = at + self.duration;
        let mut latency = Histogram::new();
        let mut transactions = 0u64;
        let mut end = at;
        loop {
            let Some((i, &t)) = frontiers.iter().enumerate().min_by_key(|(_, t)| **t) else {
                return Err(zns::ZnsError::InvalidArgument(
                    "OLTP run requires at least one thread".to_string(),
                ));
            };
            if t >= deadline {
                break;
            }
            let done = self.transaction(store, mix, t, &mut rng)?;
            latency.record(done.saturating_since(t));
            frontiers[i] = done;
            transactions += 1;
            end = end.max(done);
        }
        Ok(OltpReport {
            mix,
            transactions,
            duration: end.saturating_since(at),
            latency,
            end,
        })
    }

    fn transaction<V: ZonedVolume>(
        &self,
        store: &ZkvStore<V>,
        mix: OltpMix,
        at: SimTime,
        rng: &mut SimRng,
    ) -> Result<SimTime> {
        let mut t = at;
        let pick = |rng: &mut SimRng| {
            let table = rng.gen_range(self.tables as u64) as u32;
            let row = rng.gen_range(self.rows_per_table);
            self.key(table, row)
        };
        let selects = match mix {
            OltpMix::ReadOnly => 10,
            OltpMix::WriteOnly => 0,
            OltpMix::ReadWrite => 14,
        };
        for _ in 0..selects {
            let (_, done) = store.get(t, pick(rng))?;
            t = done;
        }
        if mix != OltpMix::ReadOnly {
            for _ in 0..2 {
                let k = pick(rng);
                t = store.put(t, k, &self.row_value(k))?;
            }
            let victim = pick(rng);
            t = store.delete(t, victim)?;
            // sysbench re-inserts the deleted row id.
            t = store.put(t, victim, &self.row_value(victim))?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZkvConfig;
    use std::sync::Arc;
    use zns::{LatencyConfig, ZnsConfig, ZnsDevice};

    fn store() -> ZkvStore<ZnsDevice> {
        let dev = Arc::new(ZnsDevice::new(
            ZnsConfig::builder()
                .zones(32, 512, 512)
                .open_limits(8, 14)
                .latency(LatencyConfig::zns_ssd())
                .store_data(false)
                .build(),
        ));
        ZkvStore::create(dev, ZkvConfig::small_test(), SimTime::ZERO).unwrap()
    }

    fn bench() -> OltpBench {
        let mut b = OltpBench::new(2, 50, 4);
        b.duration = SimDuration::from_millis(50);
        b
    }

    #[test]
    fn prepare_loads_rows() {
        let s = store();
        let b = bench();
        let t = b.prepare(&s, SimTime::ZERO).unwrap();
        assert!(t > SimTime::ZERO);
        assert!(s.stats().puts >= 100);
    }

    #[test]
    fn read_only_mix_runs() {
        let s = store();
        let b = bench();
        let t = b.prepare(&s, SimTime::ZERO).unwrap();
        let r = b.run(&s, OltpMix::ReadOnly, t).unwrap();
        assert!(r.transactions > 0);
        assert!(r.tps() > 0.0);
        assert_eq!(r.latency.count(), r.transactions);
    }

    #[test]
    fn write_mixes_touch_the_store() {
        let s = store();
        let b = bench();
        let t = b.prepare(&s, SimTime::ZERO).unwrap();
        let before = s.stats().puts;
        let r = b.run(&s, OltpMix::WriteOnly, t).unwrap();
        assert!(r.transactions > 0);
        assert!(s.stats().puts > before);
        let r2 = b.run(&s, OltpMix::ReadWrite, r.end).unwrap();
        assert!(r2.transactions > 0);
    }

    #[test]
    fn mix_names() {
        assert_eq!(OltpMix::ReadOnly.name(), "oltp_read_only");
        assert_eq!(OltpMix::WriteOnly.name(), "oltp_write_only");
        assert_eq!(OltpMix::ReadWrite.name(), "oltp_read_write");
    }
}
