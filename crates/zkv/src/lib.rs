//! `zkv`: a log-structured LSM key-value store that runs natively on
//! zoned volumes, plus db_bench- and sysbench-style workload drivers.
//!
//! This is the application substrate for the paper's §6.3 experiments,
//! standing in for F2FS + RocksDB (Fig. 13) and MySQL/MyRocks + sysbench
//! (Fig. 14). It is deliberately RocksDB-shaped:
//!
//! - writes land in a **WAL** (sequential appends to a dedicated zone) and
//!   an in-memory **memtable**;
//! - full memtables flush to immutable, sorted **SSTables** written
//!   sequentially into data zones;
//! - when enough tables accumulate they are **compacted** (merged) into a
//!   new run, and zones whose tables all died are **reset** — on a ZNS
//!   stack the reset tells the device exactly what is dead (no device GC);
//!   on a conventional stack the shim turns resets into TRIMs and the FTL
//!   still garbage-collects;
//! - reads consult the memtable, then table indexes newest-first, and cost
//!   one device read.
//!
//! The store runs unmodified on any [`zns::ZonedVolume`]: a RAIZN array, a
//! raw ZNS device, or an mdraid array behind `mdraid5::ZonedBlockShim` —
//! exactly the property the paper's evaluation relies on.
//!
//! # Examples
//!
//! ```
//! use zkv::{ZkvConfig, ZkvStore};
//! use zns::{ZnsConfig, ZnsDevice};
//! use sim::SimTime;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), zns::ZnsError> {
//! let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
//! let store = ZkvStore::create(dev, ZkvConfig::small_test(), SimTime::ZERO)?;
//! let t = store.put(SimTime::ZERO, 7, b"hello")?;
//! let (value, _) = store.get(t, 7)?;
//! assert_eq!(value.as_deref(), Some(&b"hello"[..]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dbbench;
mod oltp;
mod store;

pub use config::ZkvConfig;
pub use dbbench::{DbBench, DbBenchReport, DbWorkload};
pub use oltp::{OltpBench, OltpMix, OltpReport};
pub use store::{ZkvStats, ZkvStore};
