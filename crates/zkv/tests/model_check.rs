//! Model-based tests: random put/delete/get sequences on a [`ZkvStore`]
//! are checked against a `BTreeMap` oracle, on both the RAIZN stack and
//! the mdraid + zone-shim stack.

use ftl::{BlockDevice, ConvSsd, FtlConfig};
use mdraid5::{Md5Config, Md5Volume, ZonedBlockShim};
use proptest::prelude::*;
use raizn::{RaiznConfig, RaiznVolume};
use sim::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;
use zkv::{ZkvConfig, ZkvStore};
use zns::{ZnsConfig, ZnsDevice, ZonedVolume};

const T0: SimTime = SimTime::ZERO;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u64, len: usize },
    Delete { key: u64 },
    Get { key: u64 },
    Sync,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u64..40, 1usize..1200).prop_map(|(key, len)| Op::Put { key, len }),
            1 => (0u64..40).prop_map(|key| Op::Delete { key }),
            3 => (0u64..40).prop_map(|key| Op::Get { key }),
            1 => Just(Op::Sync),
        ],
        1..80,
    )
}

fn value_for(key: u64, len: usize) -> Vec<u8> {
    vec![(key as u8).wrapping_mul(31).wrapping_add(len as u8); len]
}

fn check_against_model<V: ZonedVolume>(
    store: &ZkvStore<V>,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut t = T0;
    for op in ops {
        match op {
            Op::Put { key, len } => {
                let v = value_for(*key, *len);
                t = store.put(t, *key, &v).expect("put");
                model.insert(*key, v);
            }
            Op::Delete { key } => {
                t = store.delete(t, *key).expect("delete");
                model.remove(key);
            }
            Op::Get { key } => {
                let (got, t2) = store.get(t, *key).expect("get");
                t = t2;
                prop_assert_eq!(
                    got.as_deref(),
                    model.get(key).map(|v| &v[..]),
                    "key {} diverged from model",
                    key
                );
            }
            Op::Sync => {
                t = store.sync(t).expect("sync");
            }
        }
    }
    // Final sweep: every key must match the oracle.
    for key in 0..40u64 {
        let (got, _) = store.get(t, key).expect("get");
        prop_assert_eq!(
            got.as_deref(),
            model.get(&key).map(|v| &v[..]),
            "final sweep: key {} diverged",
            key
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zkv_on_raizn_matches_model(ops in ops_strategy()) {
        let devices: Vec<Arc<ZnsDevice>> = (0..5)
            .map(|_| {
                Arc::new(ZnsDevice::new(
                    ZnsConfig::builder()
                        .zones(24, 64, 64)
                        .open_limits(6, 10)
                        .build(),
                ))
            })
            .collect();
        let vol = Arc::new(
            RaiznVolume::format(devices, RaiznConfig::small_test(), T0).expect("format"),
        );
        let store = ZkvStore::create(vol, ZkvConfig::small_test(), T0).expect("store");
        check_against_model(&store, &ops)?;
    }

    #[test]
    fn zkv_on_mdraid_shim_matches_model(ops in ops_strategy()) {
        let devices: Vec<Arc<dyn BlockDevice>> = (0..3)
            .map(|_| {
                Arc::new(ConvSsd::new(FtlConfig {
                    user_sectors: 4096,
                    pages_per_block: 16,
                    op_ratio: 0.25,
                    gc_low_blocks: 2,
                    latency: zns::LatencyConfig::instant(),
                    store_data: true,
                })) as Arc<dyn BlockDevice>
            })
            .collect();
        let md = Arc::new(
            Md5Volume::new(
                devices,
                Md5Config {
                    chunk_sectors: 4,
                    stripe_cache_bytes: 256 * 1024,
                },
            )
            .expect("assemble"),
        );
        let shim = Arc::new(ZonedBlockShim::new(md, 256).expect("shim"));
        let store = ZkvStore::create(shim, ZkvConfig::small_test(), T0).expect("store");
        check_against_model(&store, &ops)?;
    }
}
