//! Cross-crate smoke tests: the key-value store and its db_bench / OLTP
//! drivers running over a full RAIZN array, replay determinism on the
//! virtual clock, and error propagation pins for injected faults and
//! capacity exhaustion.

use raizn::{RaiznConfig, RaiznVolume};
use sim::{SimDuration, SimTime};
use std::sync::Arc;
use zkv::{DbBench, DbWorkload, OltpBench, OltpMix, ZkvConfig, ZkvStore};
use zns::{FaultOp, FaultPlan, LatencyConfig, ZnsConfig, ZnsDevice, ZnsError};

const T0: SimTime = SimTime::ZERO;

fn zns_store() -> ZkvStore<ZnsDevice> {
    // Realistic timing matters: the db_bench readwhilewriting scheduler
    // interleaves streams by completion time, so zero-latency devices
    // would starve the reader streams.
    let dev = Arc::new(ZnsDevice::new(
        ZnsConfig::builder()
            .zones(32, 256, 256)
            .open_limits(8, 14)
            .latency(LatencyConfig::zns_ssd())
            .store_data(false)
            .build(),
    ));
    ZkvStore::create(dev, ZkvConfig::small_test(), T0).unwrap()
}

/// The store runs unchanged over a 5-device RAIZN array (the paper's
/// Fig. 13/14 configuration, scaled down).
fn raizn_store() -> ZkvStore<RaiznVolume> {
    let devices: Vec<Arc<ZnsDevice>> = (0..5)
        .map(|_| {
            Arc::new(ZnsDevice::new(
                ZnsConfig::builder()
                    .zones(16, 256, 256)
                    .open_limits(8, 12)
                    .latency(LatencyConfig::zns_ssd())
                    .store_data(false)
                    .build(),
            ))
        })
        .collect();
    let vol = Arc::new(RaiznVolume::format(devices, RaiznConfig::default(), T0).unwrap());
    ZkvStore::create(vol, ZkvConfig::small_test(), T0).unwrap()
}

#[test]
fn dbbench_runs_on_a_raizn_array() {
    let s = raizn_store();
    let bench = DbBench::new(150, 500);
    let a = bench.run(&s, DbWorkload::FillRandom, T0).unwrap();
    assert_eq!(a.write_latency.count(), 150);
    let b = bench.run(&s, DbWorkload::ReadWhileWriting, a.end).unwrap();
    assert_eq!(b.read_latency.count(), 150);
    assert!(b.ops_per_sec() > 0.0);
}

#[test]
fn oltp_runs_on_a_raizn_array() {
    let s = raizn_store();
    let mut bench = OltpBench::new(2, 40, 4);
    bench.duration = SimDuration::from_millis(50);
    let t = bench.prepare(&s, T0).unwrap();
    let r = bench.run(&s, OltpMix::ReadWrite, t).unwrap();
    assert!(r.transactions > 0);
    assert_eq!(r.latency.count(), r.transactions);
}

/// The same seed must replay to the same virtual end time, op count and
/// latency distribution — on two independently built stores.
#[test]
fn dbbench_replay_is_deterministic() {
    let run = || {
        let s = zns_store();
        let bench = DbBench::new(200, 400);
        let a = bench.run(&s, DbWorkload::FillRandom, T0).unwrap();
        let b = bench.run(&s, DbWorkload::ReadWhileWriting, a.end).unwrap();
        (
            a.end,
            b.end,
            b.write_latency.count(),
            b.write_latency.mean(),
            b.read_latency.mean(),
        )
    };
    assert_eq!(run(), run(), "db_bench replay diverged across fresh stores");
}

#[test]
fn oltp_replay_is_deterministic() {
    let run = || {
        let s = zns_store();
        let mut bench = OltpBench::new(2, 30, 3);
        bench.duration = SimDuration::from_millis(40);
        let t = bench.prepare(&s, T0).unwrap();
        let r = bench.run(&s, OltpMix::ReadWrite, t).unwrap();
        (r.transactions, r.end, r.latency.mean())
    };
    assert_eq!(run(), run(), "OLTP replay diverged across fresh stores");
}

/// Regression pin: an injected append fault inside a put must propagate
/// as an `Err` out of the driver loop, not panic (the store used to
/// assert on allocator state).
#[test]
fn injected_fault_propagates_through_dbbench() {
    let dev = Arc::new(ZnsDevice::new(
        ZnsConfig::builder()
            .zones(32, 256, 256)
            .open_limits(8, 14)
            .store_data(false)
            .build(),
    ));
    dev.set_fault_plan(FaultPlan::new(11).fail_nth(FaultOp::Append, 20));
    let s = ZkvStore::create(dev, ZkvConfig::small_test(), T0).unwrap();
    let bench = DbBench::new(500, 600);
    let err = bench.run(&s, DbWorkload::FillSeq, T0).unwrap_err();
    assert!(
        matches!(err, ZnsError::TransientError { .. }),
        "expected the injected append fault, got {err}"
    );
}

/// Regression pin: running the volume out of free zones must surface as
/// an error from `put`, not a panic (the extent allocator used to
/// assert it always had an open zone).
#[test]
fn capacity_exhaustion_is_an_error() {
    let dev = Arc::new(ZnsDevice::new(
        ZnsConfig::builder()
            .zones(6, 64, 64)
            .open_limits(4, 6)
            .store_data(false)
            .build(),
    ));
    let s = ZkvStore::create(dev, ZkvConfig::small_test(), T0).unwrap();
    let mut t = T0;
    let value = vec![7u8; 16 * 1024];
    let mut hit_error = false;
    for key in 0..200u64 {
        match s.put(t, key, &value) {
            Ok(done) => t = done,
            Err(e) => {
                assert!(
                    matches!(
                        e,
                        ZnsError::InvalidArgument(_) | ZnsError::OutOfRange { .. }
                    ),
                    "unexpected exhaustion error: {e}"
                );
                hit_error = true;
                break;
            }
        }
    }
    assert!(hit_error, "store never ran out of space on a 6-zone device");
}
