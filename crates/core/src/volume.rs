//! The RAIZN logical volume: write/read paths, persistence, metadata
//! logging and GC, zone resets, degraded mode and rebuild.
//!
//! # Concurrency model
//!
//! The volume is sharded for multi-core scaling (see `DESIGN.md`,
//! "Concurrency model"): every logical zone owns a [`Mutex<LZone>`] shard
//! holding its write pointer, stripe buffer and conflict set, while the
//! global metadata that genuinely spans zones (generation counters,
//! relocation cache, metadata zone roles, partial-parity checkpoint
//! snapshots) lives in one [`MetaState`] mutex. Writes to independent
//! zones proceed concurrently; the meta lock is taken only on metadata
//! appends, relocations and resets.
//!
//! Lock order (deadlock freedom): **at most one zone shard → meta →
//! device**. Counters are relaxed atomics ([`AtomicRaiznStats`]), the
//! failed-device bitmask and read-only flag are atomics, and per-zone
//! write pointers are mirrored in lock-free [`RaiznVolume::zone_wp`] cells
//! so metadata GC can validate checkpoint snapshots without touching
//! shards.

use crate::bitmap::PersistenceBitmap;
use crate::config::RaiznConfig;
use crate::layout::RaiznLayout;
use crate::metadata::{MdPayload, MdPayloadRef, MdRecord, MdRecordRef, Superblock};
use crate::stats::{AtomicRaiznStats, RaiznStats};
use crate::stripe::StripeBuffer;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use sim::SimTime;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use zns::{
    AppendCompletion, IoCompletion, Lba, WriteFlags, ZnsDevice, ZnsError, ZoneGeometry, ZoneInfo,
    ZoneState, ZonedVolume, SECTOR_SIZE,
};

/// What a device stores for one particular stripe (the roles rotate per
/// stripe and zone; see [`RaiznLayout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotRole {
    /// Data unit `k` of the stripe.
    Data(u64),
    /// The XOR parity unit.
    P,
    /// The Reed–Solomon Q parity unit (dual-parity mode only).
    Q,
}

/// Which metadata zone a record goes to (§4.3: partial parity is isolated
/// in its own zone; everything else shares the general zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MdRole {
    /// The general metadata zone (superblock, generation counters, reset
    /// WALs, relocated stripe units).
    General,
    /// The partial-parity log zone.
    PpLog,
}

/// Per-device metadata zone role assignment.
#[derive(Debug, Clone)]
pub(crate) struct MdRoles {
    pub general: u32,
    pub pplog: u32,
    pub swaps: Vec<u32>,
}

/// In-memory cached copy of a relocated stripe unit (§5.2). The key in
/// [`MetaState::relocated`] identifies the slot: `(lzone, stripe, device)`.
#[derive(Debug, Clone)]
pub(crate) struct RelocatedUnit {
    /// Full stripe unit bytes, zero padded beyond `valid`.
    pub data: Vec<u8>,
    /// Valid sectors at the start of `data`.
    pub valid: u64,
}

/// Per-logical-zone descriptor: one lock shard of the write pipeline.
#[derive(Debug)]
pub(crate) struct LZone {
    pub state: ZoneState,
    /// Write pointer, relative sectors within the logical zone capacity.
    /// Mirrored lock-free in [`RaiznVolume::zone_wp`] on every change.
    pub wp: u64,
    pub pbitmap: PersistenceBitmap,
    /// Stripe buffer of the current incomplete stripe, if any.
    pub buffer: Option<StripeBuffer>,
    /// Slots `(stripe, device)` occupied by unreachable "ghost" data from
    /// a rolled-back crash suffix; writes to them are relocated.
    pub conflicts: HashSet<(u64, u32)>,
    /// Retired stripe buffer kept for reuse, so this zone's steady-state
    /// writes allocate nothing. Per-shard (not a global pool): reuse never
    /// contends with other zones' writers.
    pub spare: Option<StripeBuffer>,
}

impl LZone {
    /// Returns a cleared stripe buffer for `stripe`, reusing the zone's
    /// spare when available.
    fn stripe_buffer(
        &mut self,
        stats: &AtomicRaiznStats,
        stripe: u64,
        data_units: u64,
        unit_sectors: u64,
        parity_units: u32,
    ) -> StripeBuffer {
        match self.spare.take() {
            Some(mut b) => {
                debug_assert!(b.shape_matches_parity(data_units, unit_sectors, parity_units));
                debug_assert!(sim::is_zero(b.parity()), "pooled buffer not clean");
                debug_assert!(
                    b.parity_units() < 2 || sim::is_zero(b.q_parity()),
                    "pooled buffer Q not clean"
                );
                b.recycle(stripe);
                AtomicRaiznStats::add(&stats.stripe_buffers_reused, 1);
                b
            }
            None => StripeBuffer::with_parity(stripe, data_units, unit_sectors, parity_units),
        }
    }

    /// Retires a stripe buffer into the zone's spare slot (cleared via its
    /// dirty high-water mark), or drops it if a spare is already parked.
    fn retire_buffer(&mut self, mut buf: StripeBuffer) {
        if self.spare.is_none() {
            buf.recycle(0);
            self.spare = Some(buf);
        }
    }
}

/// Checkpoint snapshot of a zone's running partial parity, maintained on
/// every pp-log append so metadata GC can re-log live parity without
/// locking the zone shard that owns the stripe buffer.
#[derive(Debug, Default)]
pub(crate) struct PpSnapshot {
    /// Stripe index the snapshot describes.
    pub stripe: u64,
    /// Data sectors filled into the stripe at snapshot time. The snapshot
    /// is live iff the zone's mirrored write pointer still equals
    /// `stripe * stripe_data + filled`.
    pub filled: u64,
    /// Running parity prefix (`filled.min(stripe_unit)` rows).
    pub parity: Vec<u8>,
    /// Running Q-parity prefix, same shape as `parity`. Empty in
    /// single-parity mode.
    pub q: Vec<u8>,
}

/// Cross-zone volume metadata: the single global lock domain. Everything
/// here is either genuinely shared between zones (generation table,
/// metadata zone roles, relocation cache) or is scratch reused across
/// operations.
pub(crate) struct MetaState {
    pub gens: Vec<u64>,
    pub relocated: HashMap<(u32, u64, u32), RelocatedUnit>,
    pub md: Vec<MdRoles>,
    /// Per-zone partial-parity checkpoint snapshots (see [`PpSnapshot`]).
    pub pp_live: HashMap<u32, PpSnapshot>,
    /// Scratch buffer for metadata record encoding; taken/restored around
    /// appends so payload bytes never need an owned staging `Vec`.
    pub md_scratch: Vec<u8>,
    /// Scratch buffer for gather writes ([`zns::ZonedVolume::write_vectored`]);
    /// taken/restored around the staged write so steady-state batches
    /// allocate nothing.
    pub gather_scratch: Vec<u8>,
}

/// Outcome of rebuilding a replaced device (§4.2, Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildReport {
    /// Virtual time from rebuild start to the last write completion.
    pub duration: sim::SimDuration,
    /// Bytes written to the replacement device (valid data only).
    pub bytes_written: u64,
    /// Logical zones whose contents were rebuilt.
    pub zones_rebuilt: u32,
}

/// A logical host-managed zoned volume striped over an array of ZNS
/// devices with rotating parity. See the crate docs for the design and an
/// example; construct with [`RaiznVolume::format`] (fresh array) or
/// [`RaiznVolume::mount`] (crash recovery).
///
/// All IO entry points take `&self` and may be called from multiple
/// threads; writes to distinct logical zones run concurrently (see the
/// module docs for the locking discipline).
pub struct RaiznVolume {
    pub(crate) layout: RaiznLayout,
    pub(crate) config: RaiznConfig,
    /// Per-zone lock shards.
    pub(crate) zones: Vec<Mutex<LZone>>,
    /// The global metadata domain.
    pub(crate) meta: Mutex<MetaState>,
    /// Member devices. Read-locked for the duration of an operation;
    /// write-locked only by rebuild's final device swap.
    pub(crate) devices: RwLock<Vec<Arc<ZnsDevice>>>,
    /// Bitmask of failed devices (bit `i` = device `i`). The array keeps
    /// serving while `count_ones() <= layout.parity_units()`; claiming a
    /// failure beyond that headroom is refused with
    /// [`ZnsError::TooManyFailures`].
    pub(crate) failed_mask: AtomicU64,
    read_only: AtomicBool,
    /// Per-device count of unrecovered errors (retry-exhausted transients
    /// and media errors); exceeding the configured budget auto-degrades
    /// the device.
    pub(crate) device_errors: Vec<AtomicU64>,
    /// Lock-free mirror of each zone's write pointer, stored on every wp
    /// change under the shard lock. Readers that only need the frontier
    /// (metadata GC snapshot validation) use this instead of the shard.
    pub(crate) zone_wp: Vec<AtomicU64>,
    /// Lock-free per-zone "sealed by an explicit finish" flags. Metadata
    /// GC checkpoints a [`MdPayload::ZoneFinishLog`] for flagged zones so
    /// the sealed write pointer stays durable across GC passes.
    pub(crate) zone_sealed: Vec<AtomicBool>,
    /// Lock-free mirror of `meta.relocated.len()`: hot reads skip the meta
    /// lock entirely while no relocations exist.
    relocated_len: AtomicUsize,
    /// Rebuild progress: zones scheduled by the in-flight rebuild pass
    /// (0 when no rebuild is running). Exported as a gauge.
    pub(crate) rebuild_zones_total: AtomicU64,
    /// Rebuild progress: zones completed by the in-flight rebuild pass.
    pub(crate) rebuild_zones_done: AtomicU64,
    pub(crate) stats: AtomicRaiznStats,
    /// Observability recorder for volume-layer spans (parity-path
    /// attribution, metadata appends, flush latency) and counters.
    recorder: RwLock<Option<Arc<obs::Recorder>>>,
    /// Wall-clock contention statistics for the zone shard locks
    /// (aggregate across shards; gauge id 0).
    shard_locks: obs::LockStats,
    /// Wall-clock contention statistics for the meta lock (gauge id 1).
    meta_locks: obs::LockStats,
}

impl std::fmt::Debug for RaiznVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaiznVolume")
            .field("layout", &self.layout)
            .finish_non_exhaustive()
    }
}

// Parity arithmetic goes through the shared word-vectorized kernel in
// `sim::xor` (also used by the stripe buffer, recovery, and mdraid5).
pub(crate) use sim::xor_into;

/// An internal invariant violation surfaced as an error instead of a
/// panic, so injected device faults can never take the volume down
/// mid-operation.
pub(crate) fn internal(context: &'static str) -> ZnsError {
    ZnsError::InvalidArgument(format!("internal invariant violated: {context}"))
}

/// Outcome of a [`RaiznVolume::scrub`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Complete stripes whose parity was verified.
    pub stripes_checked: u64,
    /// Parity mismatches detected and repaired (corrected parity
    /// relocated via the metadata log).
    pub parity_repairs: u64,
    /// Stripe units healed from latent media errors during the walk.
    pub units_healed: u64,
}

impl RaiznVolume {
    // ------------------------------------------------------------------
    // Locking and lock-free helpers
    // ------------------------------------------------------------------

    /// Locks logical zone `lzone`'s shard, recording contention.
    pub(crate) fn lock_shard(&self, lzone: u32) -> parking_lot::MutexGuard<'_, LZone> {
        self.shard_locks.lock(&self.zones[lzone as usize])
    }

    /// Locks the global metadata domain, recording contention. Callers
    /// may hold at most one zone shard (lock order: shard → meta).
    pub(crate) fn lock_meta(&self) -> parking_lot::MutexGuard<'_, MetaState> {
        self.meta_locks.lock(&self.meta)
    }

    /// Whether device `dev` is in the failed set.
    pub(crate) fn is_failed(&self, dev: usize) -> bool {
        self.failed_mask.load(Ordering::Acquire) & (1u64 << dev) != 0
    }

    /// The current failed-device bitmask.
    pub(crate) fn failure_mask(&self) -> u64 {
        self.failed_mask.load(Ordering::Acquire)
    }

    /// Number of devices currently failed.
    pub(crate) fn failed_count(&self) -> u32 {
        self.failure_mask().count_ones()
    }

    /// The lowest failed device index, if any.
    pub(crate) fn failed_idx(&self) -> Option<usize> {
        match self.failure_mask() {
            0 => None,
            m => Some(m.trailing_zeros() as usize),
        }
    }

    /// Attempts to add `dev` to the failed set. Returns `Ok(true)` when
    /// this call newly claimed the failure, `Ok(false)` when the device
    /// was already failed, and [`ZnsError::TooManyFailures`] when the
    /// failure would exceed the array's parity count (no redundancy
    /// headroom left). Lock-free compare-exchange loop.
    pub(crate) fn claim_failure(&self, dev: usize) -> Result<bool> {
        let bit = 1u64 << dev;
        let parity = self.layout.parity_units();
        let mut cur = self.failed_mask.load(Ordering::Acquire);
        loop {
            if cur & bit != 0 {
                return Ok(false);
            }
            if cur.count_ones() >= parity {
                return Err(ZnsError::TooManyFailures {
                    failed: cur.count_ones(),
                    parity,
                });
            }
            match self.failed_mask.compare_exchange(
                cur,
                cur | bit,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(true),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Refreshes the lock-free relocation count mirror after any mutation
    /// of `meta.relocated` (call with the meta lock still held).
    pub(crate) fn sync_relocated_count(&self, m: &MetaState) {
        self.relocated_len
            .store(m.relocated.len(), Ordering::Release);
    }

    /// Records a volume-layer trace span on the attached recorder, if any.
    /// Volume spans carry `device == obs::NONE`: device attribution lives
    /// in the device-layer spans emitted by [`zns::ZnsDevice`] itself.
    #[allow(clippy::too_many_arguments)]
    fn trace_span(
        &self,
        op: obs::OpClass,
        stage: obs::Stage,
        path: Option<obs::PathKind>,
        zone: u32,
        lba: Lba,
        sectors: u64,
        start: SimTime,
        end: SimTime,
    ) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.record(obs::TraceEvent {
                seq: 0,
                op,
                stage,
                path,
                device: obs::NONE,
                zone,
                lba,
                sectors,
                start,
                end,
                outcome: obs::Outcome::Success,
                span: 0,
                parent: obs::current_span(),
                blame: obs::current_actor(),
            });
        }
    }

    /// Opens a causal span for a top-level volume operation: allocates an
    /// id (0 when span tracing is disabled), remembers any enclosing span
    /// as the parent, and installs the id as the ambient span so nested
    /// device, lock, and parity events link to it. The returned guard
    /// restores the previous ambient span on drop.
    fn begin_span(&self) -> (u64, u64, obs::SpanScope) {
        let parent = obs::current_span();
        let span = self.recorder.read().as_ref().map_or(0, |r| r.new_span());
        (span, parent, obs::span_scope(span))
    }

    /// Records the root `WholeOp` event of a top-level operation with an
    /// explicit span identity (from [`begin_span`](Self::begin_span)) so
    /// the recorder can close the op's blame tree on it.
    #[allow(clippy::too_many_arguments)]
    fn trace_root(
        &self,
        op: obs::OpClass,
        zone: u32,
        lba: Lba,
        sectors: u64,
        start: SimTime,
        end: SimTime,
        span: u64,
        parent: u64,
    ) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.record(obs::TraceEvent {
                seq: 0,
                op,
                stage: obs::Stage::WholeOp,
                path: None,
                device: obs::NONE,
                zone,
                lba,
                sectors,
                start,
                end,
                outcome: obs::Outcome::Success,
                span,
                parent,
                blame: obs::current_actor(),
            });
        }
    }

    /// Drops a zero-width `LockWait` marker at `at` into the current span.
    /// Wall-clock lock contention can never enter the virtual timeline
    /// (that would break determinism; contention totals live in the
    /// lock-contention shards), but the marker places the acquisition in
    /// the op's blame tree and exported waterfalls.
    fn mark_lock(&self, op: obs::OpClass, zone: u32, at: SimTime) {
        if let Some(rec) = self.recorder.read().as_ref() {
            if rec.spans_enabled() {
                rec.record(obs::TraceEvent {
                    seq: 0,
                    op,
                    stage: obs::Stage::LockWait,
                    path: None,
                    device: obs::NONE,
                    zone,
                    lba: 0,
                    sectors: 0,
                    start: at,
                    end: at,
                    outcome: obs::Outcome::Success,
                    span: 0,
                    parent: obs::current_span(),
                    blame: obs::current_actor(),
                });
            }
        }
    }

    /// Bumps a counter on the attached recorder, if any.
    fn bump(&self, counter: obs::Counter) {
        if let Some(rec) = self.recorder.read().as_ref() {
            rec.bump(counter);
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Initializes a fresh array: resets every zone, writes the superblock
    /// and initial generation counters to every device.
    ///
    /// # Errors
    ///
    /// Fails if the devices disagree on geometry, fewer than 3 are given,
    /// or device IO fails.
    pub fn format(
        devices: Vec<Arc<ZnsDevice>>,
        config: RaiznConfig,
        at: SimTime,
    ) -> Result<RaiznVolume> {
        let layout = Self::check_devices(&devices, config)?;
        // mkfs: wipe all zones.
        for dev in &devices {
            for z in 0..dev.geometry().num_zones() {
                let info = dev.zone_info(z)?;
                if info.write_pointer > info.start || info.state == ZoneState::Full {
                    dev.reset_zone(at, z)?;
                }
            }
        }
        let vol = Self::assemble(
            devices,
            config,
            layout,
            vec![0; layout.logical_zones() as usize],
        );
        {
            let devices = vol.devices.read();
            let mut m = vol.lock_meta();
            let mut t = at;
            t = vol.persist_superblock(&mut m, &devices, t)?;
            vol.persist_all_gens(&mut m, &devices, t)?;
        }
        Ok(vol)
    }

    /// Validates the device set and derives the layout.
    pub(crate) fn check_devices(
        devices: &[Arc<ZnsDevice>],
        config: RaiznConfig,
    ) -> Result<RaiznLayout> {
        let min_devices = config.parity as usize + 2;
        if devices.len() < min_devices {
            return Err(ZnsError::InvalidArgument(format!(
                "RAIZN needs >= {min_devices} devices with parity = {}, got {}",
                config.parity,
                devices.len()
            )));
        }
        if devices.len() > 64 {
            return Err(ZnsError::InvalidArgument(format!(
                "RAIZN supports at most 64 devices (failure bitmask), got {}",
                devices.len()
            )));
        }
        let geo = devices[0].geometry();
        if devices.iter().any(|d| d.geometry() != geo) {
            return Err(ZnsError::InvalidArgument(
                "all array devices must share one geometry".to_string(),
            ));
        }
        if config.use_zrwa
            && devices
                .iter()
                .any(|d| d.config().zrwa_sectors() < config.stripe_unit_sectors)
        {
            return Err(ZnsError::InvalidArgument(
                "use_zrwa requires every device's ZRWA window to cover one stripe unit".to_string(),
            ));
        }
        Ok(RaiznLayout::new(devices.len() as u32, config, geo))
    }

    /// Builds the in-memory volume object with default metadata roles.
    pub(crate) fn assemble(
        devices: Vec<Arc<ZnsDevice>>,
        config: RaiznConfig,
        layout: RaiznLayout,
        gens: Vec<u64>,
    ) -> RaiznVolume {
        let n = devices.len();
        let nz = layout.logical_zones() as usize;
        let zones = (0..nz)
            .map(|_| {
                Mutex::new(LZone {
                    state: ZoneState::Empty,
                    wp: 0,
                    pbitmap: PersistenceBitmap::new(
                        layout.stripes_per_zone() * layout.data_units(),
                        layout.stripe_unit(),
                    ),
                    buffer: None,
                    conflicts: HashSet::new(),
                    spare: None,
                })
            })
            .collect();
        let md = (0..n)
            .map(|_| MdRoles {
                general: 0,
                pplog: 1,
                swaps: (2..config.md_zones_per_device).collect(),
            })
            .collect();
        RaiznVolume {
            layout,
            config,
            zones,
            meta: Mutex::new(MetaState {
                gens,
                relocated: HashMap::new(),
                md,
                pp_live: HashMap::new(),
                md_scratch: Vec::new(),
                gather_scratch: Vec::new(),
            }),
            devices: RwLock::new(devices),
            failed_mask: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
            device_errors: (0..n).map(|_| AtomicU64::new(0)).collect(),
            zone_wp: (0..nz).map(|_| AtomicU64::new(0)).collect(),
            zone_sealed: (0..nz).map(|_| AtomicBool::new(false)).collect(),
            relocated_len: AtomicUsize::new(0),
            rebuild_zones_total: AtomicU64::new(0),
            rebuild_zones_done: AtomicU64::new(0),
            stats: AtomicRaiznStats::default(),
            recorder: RwLock::new(None),
            shard_locks: obs::LockStats::new(),
            meta_locks: obs::LockStats::new(),
        }
    }

    /// The array layout (address arithmetic).
    pub fn layout(&self) -> RaiznLayout {
        self.layout
    }

    /// The array configuration.
    pub fn config(&self) -> RaiznConfig {
        self.config
    }

    /// Volume statistics.
    pub fn stats(&self) -> RaiznStats {
        self.stats.snapshot()
    }

    /// Attaches an observability recorder: volume-layer spans (parity-path
    /// attribution, metadata appends, flush latency) and counters land on
    /// it. To also capture device-layer spans, attach the same recorder to
    /// the member devices via [`zns::ZnsDevice::set_recorder`].
    pub fn set_recorder(&self, recorder: std::sync::Arc<obs::Recorder>) {
        *self.recorder.write() = Some(recorder);
    }

    /// The generation counter of logical zone `lzone`.
    pub fn generation(&self, lzone: u32) -> u64 {
        self.lock_meta().gens[lzone as usize]
    }

    /// Whether the array is running degraded (a device has failed).
    pub fn is_degraded(&self) -> bool {
        self.failed_idx().is_some()
    }

    /// Number of currently relocated stripe units.
    pub fn relocated_count(&self) -> usize {
        self.relocated_len.load(Ordering::Acquire)
    }

    /// Marks device `index` failed. Subsequent reads reconstruct from
    /// parity; writes omit the device. Idempotent for an already-failed
    /// device.
    ///
    /// # Errors
    ///
    /// Returns [`ZnsError::InvalidArgument`] if `index` is out of range
    /// and [`ZnsError::TooManyFailures`] if the failure would exceed the
    /// array's parity count (one for RAIZN, two for RAIZN-2).
    pub fn fail_device(&self, index: usize) -> Result<()> {
        let devices = self.devices.read();
        if index >= devices.len() {
            return Err(ZnsError::InvalidArgument(format!(
                "device index {index} out of range (array has {})",
                devices.len()
            )));
        }
        if self.claim_failure(index)? {
            devices[index].fail();
        }
        Ok(())
    }

    /// The lowest failed device index, if any. See
    /// [`failed_devices`](Self::failed_devices) for the full set.
    pub fn failed_device(&self) -> Option<usize> {
        self.failed_idx()
    }

    /// All currently failed device indices, ascending.
    pub fn failed_devices(&self) -> Vec<usize> {
        let mut m = self.failure_mask();
        let mut out = Vec::new();
        while m != 0 {
            let d = m.trailing_zeros() as usize;
            out.push(d);
            m &= m - 1;
        }
        out
    }

    // ------------------------------------------------------------------
    // Fault handling: retries and the per-device error budget
    // ------------------------------------------------------------------

    /// Records one unrecovered error against `dev` and auto-degrades the
    /// array (the [`fail_device`](Self::fail_device) equivalent) once the
    /// device exceeds its error budget — but only while redundancy
    /// headroom remains: once `parity` devices are already failed the
    /// array keeps limping on the sick device rather than taking itself
    /// past its tolerable failure count. Lock-free: the failure bit is
    /// claimed by compare-exchange.
    fn note_device_error(&self, devices: &[Arc<ZnsDevice>], dev: usize) {
        let errs = self.device_errors[dev].fetch_add(1, Ordering::AcqRel) + 1;
        if errs > self.config.device_error_budget && self.claim_failure(dev) == Ok(true) {
            devices[dev].fail();
            AtomicRaiznStats::add(&self.stats.auto_degrades, 1);
        }
    }

    /// Appends to `dev`'s physical `zone` with bounded retries on
    /// transient errors; exhaustion counts against the device's error
    /// budget and surfaces the transient error.
    fn append_with_retry(
        &self,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        dev: usize,
        zone: u32,
        bytes: &[u8],
        flags: WriteFlags,
    ) -> Result<AppendCompletion> {
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match devices[dev].append(at, zone, bytes, flags) {
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    AtomicRaiznStats::add(&self.stats.transient_retries, 1);
                    self.bump(obs::Counter::Retries);
                }
                Err(e @ ZnsError::TransientError { .. }) => {
                    self.note_device_error(devices, dev);
                    return Err(e);
                }
                other => return other,
            }
        }
    }

    /// Resets `dev`'s physical zone `phys` with bounded retries. On
    /// exhaustion the device is charged an error; if that degrades it the
    /// reset is treated as done (the device is out of the array, and the
    /// logged reset WAL replays on its eventual rebuild/remount).
    fn reset_phys_with_retry(
        &self,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        dev: usize,
        phys: u32,
    ) -> Result<SimTime> {
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match devices[dev].reset_zone(at, phys) {
                Ok(c) => return Ok(c.done),
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    AtomicRaiznStats::add(&self.stats.transient_retries, 1);
                    self.bump(obs::Counter::Retries);
                }
                Err(e @ ZnsError::TransientError { .. }) => {
                    self.note_device_error(devices, dev);
                    if self.is_failed(dev) {
                        return Ok(at);
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl RaiznVolume {
    // ------------------------------------------------------------------
    // Metadata plumbing
    // ------------------------------------------------------------------

    /// Appends a record to `dev`'s metadata zone for `role`, running
    /// metadata GC if the zone is full. Returns the completion time.
    ///
    /// Convenience wrapper over [`Self::md_append_bytes`] for owned
    /// records on cold paths; the hot write path encodes borrowed-payload
    /// [`crate::MdRecordRef`]s into the pooled scratch buffer instead.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn md_append(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        dev: usize,
        role: MdRole,
        rec: &MdRecord,
        fua: bool,
    ) -> Result<SimTime> {
        if self.is_failed(dev) {
            return Ok(at);
        }
        let mut scratch = std::mem::take(&mut m.md_scratch);
        rec.as_ref().encode_into(&mut scratch);
        let is_pp = matches!(
            rec.header.md_type,
            crate::metadata::MetadataType::PartialParity
                | crate::metadata::MetadataType::PartialParityQ
        );
        let r = self.md_append_bytes(m, devices, at, dev, role, is_pp, &scratch, fua);
        m.md_scratch = scratch;
        r
    }

    /// Appends pre-encoded record `bytes` (header + payload sectors) to
    /// `dev`'s metadata zone for `role`, running metadata GC if the zone
    /// is full. `is_pp` flags partial-parity records for the
    /// logical-block-metadata ablation. Returns the completion time.
    ///
    /// Callers encode via [`crate::MdRecordRef::encode_into`] into
    /// [`MetaState::md_scratch`] (taken out around the call), keeping the
    /// steady-state metadata path free of heap allocation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn md_append_bytes(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        dev: usize,
        role: MdRole,
        is_pp: bool,
        bytes: &[u8],
        fua: bool,
    ) -> Result<SimTime> {
        if self.is_failed(dev) {
            return Ok(at);
        }
        // Ablation (§5.4): with logical-block metadata enabled, partial
        // parity headers ride in per-block metadata descriptors instead of
        // a dedicated 4 KiB header sector. Modelled by dropping the header
        // sector from the log append (recovery of such records is not
        // exercised by the ablation benches).
        let bytes = if self.config.lb_metadata_headers
            && is_pp
            && bytes.len() > crate::metadata::MD_HEADER_BYTES
        {
            &bytes[crate::metadata::MD_HEADER_BYTES..]
        } else {
            bytes
        };
        let flags = WriteFlags {
            fua,
            preflush: false,
        };
        let zone = match role {
            MdRole::General => m.md[dev].general,
            MdRole::PpLog => m.md[dev].pplog,
        };
        let r = match self.append_with_retry(devices, at, dev, zone, bytes, flags) {
            Ok(c) => {
                AtomicRaiznStats::add(&self.stats.md_appends, 1);
                Ok(c.done)
            }
            Err(ZnsError::ZoneFull { .. }) => {
                let t = self.md_gc(m, devices, at, dev, role)?;
                let zone = match role {
                    MdRole::General => m.md[dev].general,
                    MdRole::PpLog => m.md[dev].pplog,
                };
                match self.append_with_retry(devices, t, dev, zone, bytes, flags) {
                    Ok(c) => {
                        AtomicRaiznStats::add(&self.stats.md_appends, 1);
                        Ok(c.done)
                    }
                    Err(ZnsError::TransientError { .. }) if self.is_failed(dev) => Ok(t),
                    Err(e) => Err(e),
                }
            }
            // Retry exhaustion just degraded the device: its metadata
            // replica is gone with it, mirroring the failed-device
            // early-return above.
            Err(ZnsError::TransientError { .. }) if self.is_failed(dev) => Ok(at),
            Err(e) => Err(e),
        };
        if let Ok(done) = r {
            self.trace_span(
                obs::OpClass::Append,
                obs::Stage::MetaAppend,
                None,
                zone,
                0,
                bytes.len() as u64 / SECTOR_SIZE,
                at,
                done,
            );
        }
        r
    }

    /// Garbage collects `dev`'s metadata zone for `role` (§4.3, Fig. 4):
    /// designate a swap zone, checkpoint live metadata into it, flush, and
    /// reset the old zone back into the swap pool.
    ///
    /// Partial-parity checkpoints are re-logged from the [`PpSnapshot`]s
    /// in [`MetaState::pp_live`] rather than the stripe buffers (which
    /// live behind per-zone shard locks): a snapshot is included iff the
    /// zone's lock-free write-pointer mirror still matches its frontier,
    /// which makes the checkpoint identical to a buffer walk without
    /// violating the shard → meta lock order.
    pub(crate) fn md_gc(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        dev: usize,
        role: MdRole,
    ) -> Result<SimTime> {
        self.bump(obs::Counter::MdGcRuns);
        let new_zone = m.md[dev]
            .swaps
            .pop()
            .ok_or_else(|| internal("metadata GC requires at least one swap zone"))?;
        let old_zone = match role {
            MdRole::General => std::mem::replace(&mut m.md[dev].general, new_zone),
            MdRole::PpLog => std::mem::replace(&mut m.md[dev].pplog, new_zone),
        };
        let mut t = at;
        // Checkpoint live metadata, flagged as checkpoint records. Every
        // record is encoded straight out of live state (pp snapshots,
        // relocation cache, counter table) into the pooled scratch buffer:
        // no owned payload staging.
        let mut scratch = std::mem::take(&mut m.md_scratch);
        let r = (|| -> Result<()> {
            match role {
                MdRole::PpLog => {
                    // Re-log the partial parity of every zone whose
                    // snapshot is still live and whose parity lands on
                    // this device.
                    let su = self.layout.stripe_unit();
                    let lgeo = self.layout.logical_geometry();
                    let stripe_data = self.layout.stripe_data_sectors();
                    for lz in 0..self.layout.logical_zones() as usize {
                        let Some(snap) = m.pp_live.get(&(lz as u32)) else {
                            continue;
                        };
                        if snap.filled == 0 {
                            continue;
                        }
                        // Staleness guard: the snapshot must describe the
                        // zone's current in-flight stripe frontier.
                        let wp = self.zone_wp[lz].load(Ordering::Acquire);
                        if wp / stripe_data != snap.stripe || wp % stripe_data != snap.filled {
                            continue;
                        }
                        let pdev = self.layout.parity_device(lz as u32, snap.stripe);
                        let qdev = self.layout.q_device(lz as u32, snap.stripe);
                        let is_p_home = pdev as usize == dev;
                        let is_q_home = qdev == Some(dev as u32);
                        if !is_p_home && !is_q_home {
                            continue;
                        }
                        let rows = snap.filled.min(su);
                        let zstart = lgeo.zone_start(lz as u32);
                        let sstart = zstart + snap.stripe * stripe_data;
                        let bytes = (rows * SECTOR_SIZE) as usize;
                        let payload = if is_p_home {
                            MdPayloadRef::PartialParity {
                                first_row: 0,
                                data: &snap.parity[..bytes],
                            }
                        } else {
                            MdPayloadRef::PartialParityQ {
                                first_row: 0,
                                data: &snap.q[..bytes],
                            }
                        };
                        MdRecordRef::new(payload, true, sstart, sstart + snap.filled, m.gens[lz])
                            .encode_into(&mut scratch);
                        let c = self.append_with_retry(
                            devices,
                            t,
                            dev,
                            new_zone,
                            &scratch,
                            WriteFlags::default(),
                        )?;
                        t = c.done;
                        AtomicRaiznStats::add(&self.stats.md_appends, 1);
                    }
                }
                MdRole::General => {
                    self.superblock_record(devices.len(), dev, true)
                        .as_ref()
                        .encode_into(&mut scratch);
                    let c = self.append_with_retry(
                        devices,
                        t,
                        dev,
                        new_zone,
                        &scratch,
                        WriteFlags::default(),
                    )?;
                    t = c.done;
                    AtomicRaiznStats::add(&self.stats.md_appends, 1);
                    let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
                    for first in (0..m.gens.len()).step_by(per) {
                        Self::encode_gen_page(&m.gens, first, true, &mut scratch);
                        let c = self.append_with_retry(
                            devices,
                            t,
                            dev,
                            new_zone,
                            &scratch,
                            WriteFlags::default(),
                        )?;
                        t = c.done;
                        AtomicRaiznStats::add(&self.stats.md_appends, 1);
                    }
                    // Zone-finish WALs stay live until the zone's next
                    // reset: re-log one checkpoint record per sealed zone
                    // (the lock-free mirrors carry the frozen frontier).
                    let lgeo = self.layout.logical_geometry();
                    for lz in 0..self.layout.logical_zones() as usize {
                        if !self.zone_sealed[lz].load(Ordering::Acquire) {
                            continue;
                        }
                        let wp = self.zone_wp[lz].load(Ordering::Acquire);
                        let zstart = lgeo.zone_start(lz as u32);
                        MdRecordRef::new(
                            MdPayloadRef::ZoneFinishLog,
                            true,
                            zstart,
                            zstart + wp,
                            m.gens[lz],
                        )
                        .encode_into(&mut scratch);
                        let c = self.append_with_retry(
                            devices,
                            t,
                            dev,
                            new_zone,
                            &scratch,
                            WriteFlags::default(),
                        )?;
                        t = c.done;
                        AtomicRaiznStats::add(&self.stats.md_appends, 1);
                    }
                    let mut keys: Vec<(u32, u64, u32)> = m
                        .relocated
                        .keys()
                        .filter(|(_, _, rdev)| *rdev as usize == dev)
                        .copied()
                        .collect();
                    keys.sort_unstable();
                    for (lz, stripe, rdev) in keys {
                        {
                            let unit = &m.relocated[&(lz, stripe, rdev)];
                            self.encode_relocation_record(
                                m.gens[lz as usize],
                                lz,
                                stripe,
                                unit,
                                true,
                                &mut scratch,
                            );
                        }
                        let c = self.append_with_retry(
                            devices,
                            t,
                            dev,
                            new_zone,
                            &scratch,
                            WriteFlags::default(),
                        )?;
                        t = c.done;
                        AtomicRaiznStats::add(&self.stats.md_appends, 1);
                    }
                }
            }
            Ok(())
        })();
        m.md_scratch = scratch;
        r?;
        // The checkpoint must be durable before the old zone disappears.
        t = devices[dev].flush(t)?.done;
        t = self.reset_phys_with_retry(devices, t, dev, old_zone)?;
        m.md[dev].swaps.insert(0, old_zone);
        AtomicRaiznStats::add(&self.stats.md_gc_runs, 1);
        Ok(t)
    }

    pub(crate) fn superblock_record(
        &self,
        num_devices: usize,
        dev: usize,
        checkpoint: bool,
    ) -> MdRecord {
        let phys = self.layout.phys_geometry();
        MdRecord::new(
            MdPayload::Superblock(Superblock {
                num_devices: num_devices as u32,
                device_index: dev as u32,
                stripe_unit_sectors: self.layout.stripe_unit(),
                md_zones_per_device: self.layout.md_zones(),
                phys_zones: phys.num_zones(),
                phys_zone_size: phys.zone_size(),
                phys_zone_cap: phys.zone_cap(),
            }),
            checkpoint,
            0,
            0,
            0,
        )
    }

    /// Builds the generation counter pages covering all logical zones.
    pub(crate) fn gen_records(&self, m: &MetaState, checkpoint: bool) -> Vec<MdRecord> {
        m.gens
            .chunks(crate::metadata::GEN_COUNTERS_PER_PAGE)
            .enumerate()
            .map(|(i, chunk)| {
                MdRecord::new(
                    MdPayload::GenCounters {
                        first_zone: (i * crate::metadata::GEN_COUNTERS_PER_PAGE) as u32,
                        counters: chunk.to_vec(),
                    },
                    checkpoint,
                    0,
                    0,
                    0,
                )
            })
            .collect()
    }

    /// Encodes the generation counter page starting at logical zone
    /// `first` into `out`, borrowing the live counter table directly.
    fn encode_gen_page(gens: &[u64], first: usize, checkpoint: bool, out: &mut Vec<u8>) {
        let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
        let end = (first + per).min(gens.len());
        MdRecordRef::new(
            MdPayloadRef::GenCounters {
                first_zone: first as u32,
                counters: &gens[first..end],
            },
            checkpoint,
            0,
            0,
            0,
        )
        .encode_into(out);
    }

    /// Encodes a relocation record into `out`, borrowing the cached
    /// unit's payload bytes (no owned copy of the stripe unit).
    fn encode_relocation_record(
        &self,
        gen: u64,
        lzone: u32,
        stripe: u64,
        unit: &RelocatedUnit,
        checkpoint: bool,
        out: &mut Vec<u8>,
    ) {
        let lgeo = self.layout.logical_geometry();
        let sstart = lgeo.zone_start(lzone) + stripe * self.layout.stripe_data_sectors();
        MdRecordRef::new(
            MdPayloadRef::RelocatedStripeUnit {
                lzone,
                stripe,
                valid_sectors: unit.valid,
                data: &unit.data,
            },
            checkpoint,
            sstart,
            sstart + self.layout.stripe_data_sectors(),
            gen,
        )
        .encode_into(out);
    }

    /// Writes the superblock to every live device's general metadata zone.
    pub(crate) fn persist_superblock(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
    ) -> Result<SimTime> {
        let mut done = at;
        for dev in 0..devices.len() {
            let rec = self.superblock_record(devices.len(), dev, false);
            done = done.max(self.md_append(m, devices, at, dev, MdRole::General, &rec, true)?);
        }
        Ok(done)
    }

    /// Persists all generation counter pages to every live device.
    pub(crate) fn persist_all_gens(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
    ) -> Result<SimTime> {
        let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
        let mut scratch = std::mem::take(&mut m.md_scratch);
        let r = (|| -> Result<SimTime> {
            let mut done = at;
            for first in (0..m.gens.len()).step_by(per) {
                Self::encode_gen_page(&m.gens, first, false, &mut scratch);
                for dev in 0..devices.len() {
                    done = done.max(self.md_append_bytes(
                        m,
                        devices,
                        at,
                        dev,
                        MdRole::General,
                        false,
                        &scratch,
                        true,
                    )?);
                }
            }
            Ok(done)
        })();
        m.md_scratch = scratch;
        r
    }

    /// Persists the generation counter page containing `lzone` to every
    /// live device (one 4 KiB page per update, Table 1).
    pub(crate) fn persist_gen_page(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
    ) -> Result<SimTime> {
        let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
        let first = (lzone as usize / per) * per;
        let mut scratch = std::mem::take(&mut m.md_scratch);
        Self::encode_gen_page(&m.gens, first, false, &mut scratch);
        let r = (|| -> Result<SimTime> {
            let mut done = at;
            for dev in 0..devices.len() {
                done = done.max(self.md_append_bytes(
                    m,
                    devices,
                    at,
                    dev,
                    MdRole::General,
                    false,
                    &scratch,
                    true,
                )?);
            }
            Ok(done)
        })();
        m.md_scratch = scratch;
        r
    }
}

impl RaiznVolume {
    // ------------------------------------------------------------------
    // Unit fetch (relocation- and failure-aware)
    // ------------------------------------------------------------------

    /// Reads rows straight off `dev` with bounded transient retries; retry
    /// exhaustion and media errors are charged against the device's error
    /// budget and surfaced for the caller to reconstruct around.
    #[allow(clippy::too_many_arguments)]
    fn fetch_device_rows(
        &self,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        if self.is_failed(dev as usize) {
            return Err(ZnsError::DeviceFailed);
        }
        let pba = self.layout.stripe_pba(lzone, stripe) + row0;
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match devices[dev as usize].read(at, pba, out) {
                Ok(c) => return Ok(c.done),
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    AtomicRaiznStats::add(&self.stats.transient_retries, 1);
                    self.bump(obs::Counter::Retries);
                }
                Err(e @ (ZnsError::TransientError { .. } | ZnsError::MediaError { .. })) => {
                    self.note_device_error(devices, dev as usize);
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads `out.len()` bytes starting at row `row0` of the unit held by
    /// `dev` for `(lzone, stripe)`, transparently serving relocated slots
    /// from the in-memory cache. Cold-path variant for callers already
    /// holding the meta lock (recovery).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fetch_slot_rows(
        &self,
        m: &MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        if let Some(rel) = m.relocated.get(&(lzone, stripe, dev)) {
            let off = (row0 * SECTOR_SIZE) as usize;
            out.copy_from_slice(&rel.data[off..off + out.len()]);
            return Ok(at);
        }
        self.fetch_device_rows(devices, at, lzone, stripe, dev, row0, out)
    }

    /// Hot-path variant of [`Self::fetch_slot_rows`]: consults the
    /// relocation cache only when the lock-free relocation count says any
    /// entries exist, so steady-state reads never touch the meta lock.
    #[allow(clippy::too_many_arguments)]
    fn fetch_slot_rows_live(
        &self,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        if self.relocated_len.load(Ordering::Acquire) > 0 {
            let m = self.lock_meta();
            if let Some(rel) = m.relocated.get(&(lzone, stripe, dev)) {
                let off = (row0 * SECTOR_SIZE) as usize;
                out.copy_from_slice(&rel.data[off..off + out.len()]);
                return Ok(at);
            }
        }
        self.fetch_device_rows(devices, at, lzone, stripe, dev, row0, out)
    }

    /// The role a device plays in one stripe: a data unit, the P (XOR)
    /// parity, or the Q (Reed–Solomon) parity.
    fn slot_role(&self, lzone: u32, stripe: u64, dev: u32) -> SlotRole {
        match self.layout.unit_of_device(lzone, stripe, dev) {
            Some(k) => SlotRole::Data(k),
            None => {
                if dev == self.layout.parity_device(lzone, stripe) {
                    SlotRole::P
                } else {
                    SlotRole::Q
                }
            }
        }
    }

    /// Reconstructs rows of the unit that `missing_dev` holds for
    /// `(lzone, stripe)` from the surviving devices (§4.2). The stripe
    /// must be complete (parity present).
    ///
    /// Erasure decode is syndrome-based: `sp` accumulates the XOR of every
    /// available data unit plus P, `sq` accumulates `g^k ·` every
    /// available data unit plus Q (generator `g = 2` in GF(2^8)). With one
    /// erasure the relevant syndrome *is* the missing slot; with two
    /// erasures (RAIZN-2) the pair is solved with [`sim::rs_solve_two`].
    /// Devices in the failed set whose slots are not served by the
    /// relocation cache count as erased alongside `missing_dev`; more
    /// erasures than parity units is unrecoverable.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reconstruct_slot_rows(
        &self,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        missing_dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        let n = self.layout.devices();
        let mut missing = 1u64 << missing_dev;
        let failed = self.failure_mask();
        if failed & !missing != 0 {
            for dev in 0..n {
                let bit = 1u64 << dev;
                if failed & bit == 0 || missing & bit != 0 {
                    continue;
                }
                // A failed device's slot is still available when the
                // relocation cache holds it.
                let relocated = self.relocated_len.load(Ordering::Acquire) > 0
                    && self
                        .lock_meta()
                        .relocated
                        .contains_key(&(lzone, stripe, dev));
                if !relocated {
                    missing |= bit;
                }
            }
        }
        if missing.count_ones() > self.layout.parity_units() {
            return Err(ZnsError::DeviceFailed);
        }
        let target = self.slot_role(lzone, stripe, missing_dev);
        // A *source* slot can turn out unreadable mid-decode (a latent
        // media error on a second device); with parity headroom left it
        // joins the erasure set and the decode restarts.
        let (mut sp, mut sq, other, done) = 'retry: loop {
            let other = {
                let rest = missing & !(1u64 << missing_dev);
                if rest == 0 {
                    None
                } else {
                    Some(self.slot_role(lzone, stripe, rest.trailing_zeros()))
                }
            };
            // Which syndromes this erasure pattern needs.
            let (need_sp, need_sq) = match (target, other) {
                (SlotRole::Data(_) | SlotRole::P, None) => (true, false),
                (SlotRole::Q, None) => (false, true),
                (SlotRole::Data(_), Some(SlotRole::Data(_))) => (true, true),
                (SlotRole::Data(_), Some(SlotRole::P)) | (SlotRole::P, Some(SlotRole::Data(_))) => {
                    // D_j comes out of sq alone; recovering P additionally
                    // needs the XOR of the available data (sp).
                    (matches!(target, SlotRole::P), true)
                }
                (SlotRole::Data(_), Some(SlotRole::Q)) | (SlotRole::Q, Some(SlotRole::Data(_))) => {
                    (true, matches!(target, SlotRole::Q))
                }
                (SlotRole::P, Some(SlotRole::Q)) | (SlotRole::Q, Some(SlotRole::P)) => {
                    (matches!(target, SlotRole::P), matches!(target, SlotRole::Q))
                }
                (SlotRole::P, Some(SlotRole::P)) | (SlotRole::Q, Some(SlotRole::Q)) => {
                    return Err(internal("duplicate parity role in erasure set"))
                }
            };
            let mut sp = vec![0u8; if need_sp { out.len() } else { 0 }];
            let mut sq = vec![0u8; if need_sq { out.len() } else { 0 }];
            let mut tmp = vec![0u8; out.len()];
            let mut done = at;
            for dev in 0..n {
                if missing & (1u64 << dev) != 0 {
                    continue;
                }
                let role = self.slot_role(lzone, stripe, dev);
                let (to_sp, to_sq) = match role {
                    SlotRole::Data(_) => (need_sp, need_sq),
                    SlotRole::P => (need_sp, false),
                    SlotRole::Q => (false, need_sq),
                };
                if !to_sp && !to_sq {
                    continue;
                }
                let t = match self
                    .fetch_slot_rows_live(devices, at, lzone, stripe, dev, row0, &mut tmp)
                {
                    Ok(t) => t,
                    Err(
                        e @ (ZnsError::MediaError { .. }
                        | ZnsError::TransientError { .. }
                        | ZnsError::DeviceFailed),
                    ) => {
                        if missing.count_ones() >= self.layout.parity_units() {
                            return Err(e);
                        }
                        missing |= 1u64 << dev;
                        continue 'retry;
                    }
                    Err(e) => return Err(e),
                };
                done = done.max(t);
                if to_sp {
                    xor_into(&mut sp, &tmp);
                }
                if to_sq {
                    match role {
                        SlotRole::Data(k) => {
                            sim::gf_mul_into(&mut sq, &tmp, sim::gf_pow(2, k as u32))
                        }
                        SlotRole::Q => xor_into(&mut sq, &tmp),
                        SlotRole::P => {}
                    }
                }
            }
            break 'retry (sp, sq, other, done);
        };
        let double = other.is_some();
        if double {
            AtomicRaiznStats::add(&self.stats.double_degraded_reads, 1);
            self.bump(obs::Counter::DoubleDegradedReads);
        }
        match (target, other) {
            // One erasure: the syndrome is the slot.
            (SlotRole::Data(_) | SlotRole::P, None) => out.copy_from_slice(&sp),
            (SlotRole::Q, None) => out.copy_from_slice(&sq),
            // Two data units: solve the 2x2 Vandermonde system.
            (SlotRole::Data(j), Some(SlotRole::Data(k))) => {
                sim::rs_solve_two(&mut sp, &mut sq, j as u32, k as u32);
                // rs_solve_two leaves D_j in sq and D_k in sp.
                out.copy_from_slice(&sq);
            }
            // Data + P: sq collapses to g^j · D_j.
            (SlotRole::Data(j), Some(SlotRole::P)) => {
                sim::gf_scale(&mut sq, sim::gf_inv(sim::gf_pow(2, j as u32)));
                out.copy_from_slice(&sq);
            }
            (SlotRole::P, Some(SlotRole::Data(j))) => {
                sim::gf_scale(&mut sq, sim::gf_inv(sim::gf_pow(2, j as u32)));
                xor_into(&mut sp, &sq);
                out.copy_from_slice(&sp);
            }
            // Data + Q: sp is D_j; Q follows from re-encoding it.
            (SlotRole::Data(_), Some(SlotRole::Q)) => out.copy_from_slice(&sp),
            (SlotRole::Q, Some(SlotRole::Data(j))) => {
                sim::gf_mul_into(&mut sq, &sp, sim::gf_pow(2, j as u32));
                out.copy_from_slice(&sq);
            }
            // P + Q: each syndrome is its parity over the (all available)
            // data units.
            (SlotRole::P, Some(SlotRole::Q)) => out.copy_from_slice(&sp),
            (SlotRole::Q, Some(SlotRole::P)) => out.copy_from_slice(&sq),
            (SlotRole::P, Some(SlotRole::P)) | (SlotRole::Q, Some(SlotRole::Q)) => unreachable!(),
        }
        if double {
            self.trace_span(
                obs::OpClass::Read,
                obs::Stage::WholeOp,
                Some(obs::PathKind::DoubleDegraded),
                lzone,
                0,
                out.len() as u64 / SECTOR_SIZE,
                at,
                done,
            );
        }
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Self-healing read path
    // ------------------------------------------------------------------

    /// Reads rows of data unit `unit` at `(lzone, stripe)`, healing around
    /// device errors: latent media errors trigger in-place repair
    /// (reconstruct + relocate), retry-exhausted transients fall back to
    /// one-off reconstruction, and failed devices take the degraded path.
    /// Runs under `lzone`'s shard lock (`z`).
    #[allow(clippy::too_many_arguments)]
    fn read_slot_rows(
        &self,
        z: &mut LZone,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        unit: u64,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        let dev = self.layout.data_device(lzone, stripe, unit);
        let relocated = self.relocated_len.load(Ordering::Acquire) > 0
            && self
                .lock_meta()
                .relocated
                .contains_key(&(lzone, stripe, dev));
        if relocated || !self.is_failed(dev as usize) {
            match self.fetch_slot_rows_live(devices, at, lzone, stripe, dev, row0, out) {
                Ok(t) => Ok(t),
                Err(
                    e @ (ZnsError::MediaError { .. }
                    | ZnsError::TransientError { .. }
                    | ZnsError::DeviceFailed),
                ) => self.heal_read(z, devices, at, lzone, stripe, unit, dev, row0, out, e),
                Err(e) => Err(e),
            }
        } else {
            self.degraded_slot_read(z, devices, at, lzone, stripe, unit, dev, row0, out)
        }
    }

    /// Degraded read (§4.2): incomplete stripes come from the stripe
    /// buffer; complete ones reconstruct from parity.
    #[allow(clippy::too_many_arguments)]
    fn degraded_slot_read(
        &self,
        z: &LZone,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        unit: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        AtomicRaiznStats::add(&self.stats.degraded_reads, 1);
        self.bump(obs::Counter::DegradedReads);
        let from_buffer = matches!(&z.buffer, Some(b) if b.stripe() == stripe);
        let r = if from_buffer {
            let b = z
                .buffer
                .as_ref()
                .ok_or_else(|| internal("stripe buffer matched above"))?;
            let su = self.layout.stripe_unit();
            let s0 = unit * su + row0;
            let rows = out.len() as u64 / SECTOR_SIZE;
            out.copy_from_slice(b.read_range(s0, s0 + rows));
            Ok(at)
        } else {
            self.reconstruct_slot_rows(devices, at, lzone, stripe, dev, row0, out)
        };
        if let Ok(t) = r {
            self.trace_span(
                obs::OpClass::Read,
                obs::Stage::WholeOp,
                Some(obs::PathKind::Degraded),
                lzone,
                0,
                out.len() as u64 / SECTOR_SIZE,
                at,
                t,
            );
        }
        r
    }

    /// Recovers a read that hit a device error on `dev`. Latent media
    /// errors in complete stripes are healed in place: the whole unit is
    /// reconstructed from the surviving devices and relocated, so
    /// subsequent reads of the range succeed without reconstruction.
    /// Other errors fall back to one-off degraded service.
    #[allow(clippy::too_many_arguments)]
    fn heal_read(
        &self,
        z: &mut LZone,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        unit: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
        err: ZnsError,
    ) -> Result<SimTime> {
        let su = self.layout.stripe_unit();
        let stripe_data = self.layout.stripe_data_sectors();
        let complete = (stripe + 1) * stripe_data <= z.wp;
        if !complete {
            // No parity yet: the stripe buffer still stages this stripe,
            // and any sector below the logical wp is within its fill
            // frontier.
            let staged = matches!(&z.buffer, Some(b) if b.stripe() == stripe);
            if staged {
                return self
                    .degraded_slot_read(z, devices, at, lzone, stripe, unit, dev, row0, out);
            }
            return Err(err);
        }
        if matches!(err, ZnsError::MediaError { .. }) {
            // Self-heal: rebuild the full unit, serve the requested rows,
            // and relocate the repaired copy so the latent sectors are
            // never read again.
            let mut data = vec![0u8; (su * SECTOR_SIZE) as usize];
            let t = self.reconstruct_slot_rows(devices, at, lzone, stripe, dev, 0, &mut data)?;
            let off = (row0 * SECTOR_SIZE) as usize;
            out.copy_from_slice(&data[off..off + out.len()]);
            AtomicRaiznStats::add(&self.stats.read_repairs, 1);
            self.bump(obs::Counter::ReadRepairs);
            let t2 = self.relocate_repaired_unit(z, devices, at, lzone, stripe, dev, data, su)?;
            Ok(t.max(t2))
        } else {
            // Transient exhaustion / fresh device failure: serve this read
            // from parity without committing a relocation.
            AtomicRaiznStats::add(&self.stats.degraded_reads, 1);
            self.bump(obs::Counter::DegradedReads);
            self.reconstruct_slot_rows(devices, at, lzone, stripe, dev, row0, out)
        }
    }

    /// Installs a repaired copy of the unit held by `dev` at
    /// `(lzone, stripe)` into the relocation cache (marking the physical
    /// slot conflicted) and persists a relocation record, mirroring the
    /// §5.2 write-conflict machinery. Failure to persist the record is
    /// tolerated: the cache still serves reads and metadata GC
    /// checkpoints re-log it. Runs under `lzone`'s shard lock.
    #[allow(clippy::too_many_arguments)]
    fn relocate_repaired_unit(
        &self,
        z: &mut LZone,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        data: Vec<u8>,
        valid: u64,
    ) -> Result<SimTime> {
        z.conflicts.insert((stripe, dev));
        let mut m = self.lock_meta();
        m.relocated
            .insert((lzone, stripe, dev), RelocatedUnit { data, valid });
        self.sync_relocated_count(&m);
        let mut scratch = std::mem::take(&mut m.md_scratch);
        {
            let unit = &m.relocated[&(lzone, stripe, dev)];
            self.encode_relocation_record(
                m.gens[lzone as usize],
                lzone,
                stripe,
                unit,
                false,
                &mut scratch,
            );
        }
        let r = self.md_append_bytes(
            &mut m,
            devices,
            at,
            dev as usize,
            MdRole::General,
            false,
            &scratch,
            true,
        );
        m.md_scratch = scratch;
        match r {
            Ok(t) => Ok(t),
            Err(ZnsError::TransientError { .. } | ZnsError::DeviceFailed) => Ok(at),
            Err(e) => Err(e),
        }
    }

    /// Walks every complete stripe of the volume verifying its parity,
    /// repairing what it finds (§4.2 maintenance): latent media errors
    /// are healed by reconstruction, and parity mismatches are corrected
    /// from the data. In dual-parity mode both P (data XOR parity must
    /// vanish) and Q (the Reed–Solomon syndrome must vanish) are checked
    /// and repaired independently. Returns what was checked and repaired;
    /// counters land in [`stats`](Self::stats).
    ///
    /// Takes each zone's shard in turn; concurrent writers to other zones
    /// are unaffected.
    pub fn scrub(&self, at: SimTime) -> Result<ScrubReport> {
        if self.failed_idx().is_some() {
            return Err(ZnsError::DeviceFailed);
        }
        if self.read_only.load(Ordering::Acquire) {
            return Err(ZnsError::VolumeReadOnly);
        }
        // Everything the scrub touches — device occupancy, trace events —
        // is blamed on the scrub actor, so foreground ops stalled behind
        // it show up as interference in their blame trees.
        let _actor = obs::actor_scope(obs::Actor::Scrub);
        let devices = self.devices.read();
        let su = self.layout.stripe_unit();
        let dual = self.layout.parity_units() == 2;
        let stripe_data = self.layout.stripe_data_sectors();
        let unit_bytes = (su * SECTOR_SIZE) as usize;
        let mut report = ScrubReport::default();
        let mut acc_p = vec![0u8; unit_bytes];
        let mut acc_q = vec![0u8; if dual { unit_bytes } else { 0 }];
        let mut slot = vec![0u8; unit_bytes];
        for lz in 0..self.layout.logical_zones() {
            let mut z = self.lock_shard(lz);
            let full_stripes = z.wp / stripe_data;
            for stripe in 0..full_stripes {
                acc_p.fill(0);
                acc_q.fill(0);
                for dev in 0..self.layout.devices() {
                    match self.fetch_slot_rows_live(&devices, at, lz, stripe, dev, 0, &mut slot) {
                        Ok(_) => {}
                        Err(ZnsError::MediaError { .. }) => {
                            self.reconstruct_slot_rows(
                                &devices, at, lz, stripe, dev, 0, &mut slot,
                            )?;
                            self.relocate_repaired_unit(
                                &mut z,
                                &devices,
                                at,
                                lz,
                                stripe,
                                dev,
                                slot.clone(),
                                su,
                            )?;
                            report.units_healed += 1;
                            AtomicRaiznStats::add(&self.stats.scrub_repairs, 1);
                        }
                        Err(e) => return Err(e),
                    }
                    // Role-aware accumulation: the P syndrome folds data
                    // and stored P, the Q syndrome folds g^k-scaled data
                    // and stored Q; each vanishes iff its parity is right.
                    match self.slot_role(lz, stripe, dev) {
                        SlotRole::Data(k) => {
                            xor_into(&mut acc_p, &slot);
                            if dual {
                                sim::gf_mul_into(&mut acc_q, &slot, sim::gf_pow(2, k as u32));
                            }
                        }
                        SlotRole::P => xor_into(&mut acc_p, &slot),
                        SlotRole::Q => xor_into(&mut acc_q, &slot),
                    }
                }
                report.stripes_checked += 1;
                if !sim::is_zero(&acc_p) {
                    // The P syndrome should vanish; it does not, so
                    // stored_P ^ acc_p is the correct parity. Install it
                    // as a relocated unit.
                    let pdev = self.layout.parity_device(lz, stripe);
                    let mut fixed = vec![0u8; unit_bytes];
                    self.fetch_slot_rows_live(&devices, at, lz, stripe, pdev, 0, &mut fixed)?;
                    xor_into(&mut fixed, &acc_p);
                    self.relocate_repaired_unit(&mut z, &devices, at, lz, stripe, pdev, fixed, su)?;
                    report.parity_repairs += 1;
                    AtomicRaiznStats::add(&self.stats.scrub_repairs, 1);
                }
                if dual && !sim::is_zero(&acc_q) {
                    let qdev = self
                        .layout
                        .q_device(lz, stripe)
                        .ok_or_else(|| internal("dual mode must have a Q device"))?;
                    let mut fixed = vec![0u8; unit_bytes];
                    self.fetch_slot_rows_live(&devices, at, lz, stripe, qdev, 0, &mut fixed)?;
                    xor_into(&mut fixed, &acc_q);
                    self.relocate_repaired_unit(&mut z, &devices, at, lz, stripe, qdev, fixed, su)?;
                    report.parity_repairs += 1;
                    AtomicRaiznStats::add(&self.stats.scrub_repairs, 1);
                }
            }
        }
        AtomicRaiznStats::add(&self.stats.scrub_runs, 1);
        Ok(report)
    }
}

impl RaiznVolume {
    // ------------------------------------------------------------------
    // Write path helpers
    // ------------------------------------------------------------------

    /// Stores `data` rows of the slot held by `dev` at `(lzone, stripe)`,
    /// relocating to the device's metadata zone when the slot is
    /// conflicted, and skipping failed devices. `row0` is the first row.
    /// Runs under `lzone`'s shard lock (`z`).
    #[allow(clippy::too_many_arguments)]
    fn store_slot_rows(
        &self,
        z: &mut LZone,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        row0: u64,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<SimTime> {
        let su = self.layout.stripe_unit();
        if z.conflicts.contains(&(stripe, dev)) {
            // Relocate: accumulate into the cached unit and persist a
            // relocation record on the affected device (§5.2).
            let unit_bytes = (su * SECTOR_SIZE) as usize;
            let mut m = self.lock_meta();
            let entry = m
                .relocated
                .entry((lzone, stripe, dev))
                .or_insert_with(|| RelocatedUnit {
                    data: vec![0u8; unit_bytes],
                    valid: 0,
                });
            let off = (row0 * SECTOR_SIZE) as usize;
            entry.data[off..off + data.len()].copy_from_slice(data);
            entry.valid = entry.valid.max(row0 + data.len() as u64 / SECTOR_SIZE);
            let valid = entry.valid;
            self.sync_relocated_count(&m);
            if std::env::var_os("RAIZN_DEBUG").is_some() {
                eprintln!("[reloc] lz={lzone} stripe={stripe} dev={dev} row0={row0} valid={valid}");
            }
            AtomicRaiznStats::add(&self.stats.relocated_units, 1);
            self.bump(obs::Counter::RelocatedWrites);
            self.trace_span(
                obs::OpClass::Write,
                obs::Stage::WholeOp,
                Some(obs::PathKind::Relocated),
                lzone,
                0,
                data.len() as u64 / SECTOR_SIZE,
                at,
                at,
            );
            // Encode the record borrowing the cached unit in place: no
            // clone of the stripe-unit payload on the relocation path.
            let mut scratch = std::mem::take(&mut m.md_scratch);
            {
                let unit = &m.relocated[&(lzone, stripe, dev)];
                self.encode_relocation_record(
                    m.gens[lzone as usize],
                    lzone,
                    stripe,
                    unit,
                    false,
                    &mut scratch,
                );
            }
            let r = self.md_append_bytes(
                &mut m,
                devices,
                at,
                dev as usize,
                MdRole::General,
                false,
                &scratch,
                flags.fua,
            );
            m.md_scratch = scratch;
            return r;
        }
        if self.is_failed(dev as usize) {
            return Ok(at); // degraded write: omitted, covered by parity
        }
        let pba = self.layout.stripe_pba(lzone, stripe) + row0;
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match devices[dev as usize].write(at, pba, data, flags) {
                Ok(c) => return Ok(c.done),
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    AtomicRaiznStats::add(&self.stats.transient_retries, 1);
                    self.bump(obs::Counter::Retries);
                }
                Err(e @ ZnsError::TransientError { .. }) => {
                    self.note_device_error(devices, dev as usize);
                    if self.is_failed(dev as usize) {
                        // Freshly degraded: the write is omitted and the
                        // unit stays covered by parity.
                        return Ok(at);
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Foreground active-budget reclaim: when `reclaim_on_exhaustion` is
    /// set, a write that would activate a fresh logical zone while some
    /// device sits at its active-zone limit inline-finishes the most
    /// nearly full active logical zone to make room, and returns the
    /// finish completion as the write's new issue time — the write-stall
    /// cliff a [`crate::ZoneLifecycleManager`] exists to prevent.
    ///
    /// Takes no locks on entry; `zone_info`/`finish_zone` acquire their
    /// own (shard → meta → device), so this must run before `do_write`
    /// locks anything.
    fn reclaim_for_activation(&self, at: SimTime, lzone: u32) -> Result<SimTime> {
        if !self.config.reclaim_on_exhaustion
            || self.zone_wp[lzone as usize].load(Ordering::Acquire) != 0
        {
            return Ok(at);
        }
        let exhausted = {
            let devices = self.devices.read();
            devices.iter().enumerate().any(|(d, dev)| {
                !self.is_failed(d) && dev.active_zones() >= dev.config().max_active_zones()
            })
        };
        if !exhausted {
            return Ok(at);
        }
        // Victim: the most nearly full writable logical zone (the cheapest
        // remainder to fill), never the zone being activated.
        let mut candidates: Vec<(u64, u32)> = (0..self.layout.logical_zones())
            .filter(|z| *z != lzone)
            .filter_map(|z| {
                let wp = self.zone_wp[z as usize].load(Ordering::Acquire);
                (wp > 0).then_some((wp, z))
            })
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for (_, victim) in candidates {
            if !self.zone_info(victim)?.state.is_writable() {
                continue;
            }
            let done = self.finish_zone(at, victim)?.done;
            AtomicRaiznStats::add(&self.stats.foreground_reclaims, 1);
            return Ok(done);
        }
        // Nothing reclaimable: let the device report budget exhaustion.
        Ok(at)
    }

    /// The write-path core, shared by `write` and `append`. Takes only
    /// the target zone's shard lock (plus brief meta acquisitions on the
    /// metadata-logging branches), so writes to distinct zones run
    /// concurrently.
    fn do_write(
        &self,
        at: SimTime,
        lba: Lba,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if data.is_empty() || !data.len().is_multiple_of(SECTOR_SIZE as usize) {
            return Err(ZnsError::InvalidArgument(format!(
                "buffer length {} is not a positive multiple of the sector size",
                data.len()
            )));
        }
        let sectors = data.len() as u64 / SECTOR_SIZE;
        if !lgeo.contains(lba) {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        let lzone = lgeo.zone_of(lba);
        if self.read_only.load(Ordering::Acquire) {
            return Err(ZnsError::VolumeReadOnly);
        }
        let (span, parent, _span_guard) = self.begin_span();
        // Foreground reclaim (opt-in): activating a fresh zone with the
        // device active budget exhausted inline-finishes a victim zone
        // first, and this write absorbs the whole finish (fill writes
        // over the victim's remainder). Runs before any lock is taken:
        // it acquires shard/meta/device locks of its own.
        let at = self.reclaim_for_activation(at, lzone)?;
        let devices = self.devices.read();
        let mut z = self.lock_shard(lzone);
        self.mark_lock(obs::OpClass::Write, lzone, at);
        let validate = |z: &LZone| -> Result<()> {
            match z.state {
                ZoneState::Full => return Err(ZnsError::ZoneFull { zone: lzone }),
                ZoneState::ReadOnly => return Err(ZnsError::ZoneReadOnly { zone: lzone }),
                ZoneState::Offline => return Err(ZnsError::ZoneOffline { zone: lzone }),
                _ => {}
            }
            let expect = lgeo.zone_start(lzone) + z.wp;
            if lba != expect {
                return Err(ZnsError::NotSequential {
                    zone: lzone,
                    expected: expect,
                    got: lba,
                });
            }
            if z.wp + sectors > lgeo.zone_cap() {
                return Err(ZnsError::ZoneFull { zone: lzone });
            }
            Ok(())
        };
        validate(&z)?;

        let mut issue = at;
        let mut completion = at;
        if flags.preflush {
            // flush_all takes every shard in index order; release ours
            // first (lock order: at most one shard at a time), then
            // re-validate — a racing writer to the same zone surfaces as
            // an ordinary sequencing error.
            drop(z);
            let done = self.flush_all(&devices, at)?;
            issue = done;
            completion = done;
            z = self.lock_shard(lzone);
            validate(&z)?;
        }

        let stripe_data = self.layout.stripe_data_sectors();
        let su = self.layout.stripe_unit();
        let data_units = self.layout.data_units();
        let mut remaining = data;
        while !remaining.is_empty() {
            let wp = z.wp;
            let stripe = wp / stripe_data;
            let off_in_stripe = wp % stripe_data;
            // Ensure the stripe buffer stages this stripe, drawing from
            // the zone's spare so steady-state writes allocate nothing.
            {
                let need_new = match &z.buffer {
                    Some(b) => b.stripe() != stripe,
                    None => true,
                };
                if need_new {
                    debug_assert_eq!(off_in_stripe, 0, "mid-stripe write without a staged buffer");
                    if let Some(stale) = z.buffer.take() {
                        z.retire_buffer(stale);
                    }
                    let buf = z.stripe_buffer(
                        &self.stats,
                        stripe,
                        data_units,
                        su,
                        self.layout.parity_units(),
                    );
                    z.buffer = Some(buf);
                }
            }
            let chunk_sectors =
                (stripe_data - off_in_stripe).min(remaining.len() as u64 / SECTOR_SIZE);
            let (chunk, rest) = remaining.split_at((chunk_sectors * SECTOR_SIZE) as usize);
            remaining = rest;

            let (row_lo, row_hi) = z
                .buffer
                .as_mut()
                .ok_or_else(|| internal("stripe buffer staged above"))?
                .fill(chunk);

            // Data sub-IOs, split per unit.
            let mut cursor = off_in_stripe;
            let mut coff = 0usize;
            while cursor < off_in_stripe + chunk_sectors {
                let unit = cursor / su;
                let row0 = cursor % su;
                let rows = (su - row0).min(off_in_stripe + chunk_sectors - cursor);
                let dev = self.layout.data_device(lzone, stripe, unit);
                let bytes = &chunk[coff..coff + (rows * SECTOR_SIZE) as usize];
                let done = self.store_slot_rows(
                    &mut z,
                    &devices,
                    issue,
                    lzone,
                    stripe,
                    dev,
                    row0,
                    bytes,
                    WriteFlags {
                        fua: flags.fua,
                        preflush: false,
                    },
                )?;
                completion = completion.max(done);
                cursor += rows;
                coff += (rows * SECTOR_SIZE) as usize;
            }

            {
                // The written units are volatile again until the next
                // flush/FUA, even if an earlier flush covered their heads.
                let wp = z.wp;
                z.pbitmap.clear_range(wp, wp + chunk_sectors);
                z.wp += chunk_sectors;
                self.zone_wp[lzone as usize].store(z.wp, Ordering::Release);
            }
            let complete = z
                .buffer
                .as_ref()
                .ok_or_else(|| internal("stripe buffer staged for completion check"))?
                .is_complete();
            let pdev = self.layout.parity_device(lzone, stripe);
            let qdev = self.layout.q_device(lzone, stripe);
            let slot_conflicted = z.conflicts.contains(&(stripe, pdev));
            // The in-place ZRWA parity path needs healthy, unconflicted
            // slots for every parity leg; otherwise fall back to the
            // store/pp-log paths which handle degradation and relocation.
            let q_zrwa_ok = match qdev {
                None => true,
                Some(q) => !self.is_failed(q as usize) && !z.conflicts.contains(&(stripe, q)),
            };
            let zrwa_ok = self.config.use_zrwa
                && !self.is_failed(pdev as usize)
                && !slot_conflicted
                && q_zrwa_ok;
            if complete {
                // Detach the buffer: its parity is handed to the device
                // layer as a borrowed slice (no copy) and the buffer is
                // then retired into the zone's spare slot.
                let buf = z
                    .buffer
                    .take()
                    .ok_or_else(|| internal("stripe buffer staged for parity write"))?;
                if zrwa_ok {
                    // §5.4 extension: the earlier rows are already in the
                    // window; write the final delta and commit the slot.
                    let pp = &buf.parity()
                        [(row_lo * SECTOR_SIZE) as usize..(row_hi * SECTOR_SIZE) as usize];
                    let phys_zone = self.layout.phys_zone(lzone);
                    let pba = self.layout.stripe_pba(lzone, stripe) + row_lo;
                    let dev = &devices[pdev as usize];
                    let mut done = dev.write_zrwa(issue, pba, pp)?.done;
                    done = done.max(dev.commit_zrwa(done, phys_zone, (stripe + 1) * su)?.done);
                    completion = completion.max(done);
                    AtomicRaiznStats::add(&self.stats.zrwa_parity_writes, 1);
                    self.bump(obs::Counter::ZrwaParityWrites);
                    self.trace_span(
                        obs::OpClass::Write,
                        obs::Stage::Xor,
                        Some(obs::PathKind::Zrwa),
                        lzone,
                        pba,
                        row_hi - row_lo,
                        issue,
                        done,
                    );
                    if let Some(q) = qdev {
                        // Q-leg: the same delta rows of the Q column.
                        let qq = &buf.q_parity()
                            [(row_lo * SECTOR_SIZE) as usize..(row_hi * SECTOR_SIZE) as usize];
                        let qd = &devices[q as usize];
                        let mut qdone = qd.write_zrwa(issue, pba, qq)?.done;
                        qdone =
                            qdone.max(qd.commit_zrwa(qdone, phys_zone, (stripe + 1) * su)?.done);
                        completion = completion.max(qdone);
                        AtomicRaiznStats::add(&self.stats.zrwa_parity_writes, 1);
                        self.bump(obs::Counter::ZrwaParityWrites);
                    }
                } else {
                    // Full parity to the parity slot in the data zone.
                    let done = self.store_slot_rows(
                        &mut z,
                        &devices,
                        issue,
                        lzone,
                        stripe,
                        pdev,
                        0,
                        buf.parity(),
                        WriteFlags {
                            fua: flags.fua,
                            preflush: false,
                        },
                    )?;
                    completion = completion.max(done);
                    self.trace_span(
                        obs::OpClass::Write,
                        obs::Stage::Xor,
                        Some(obs::PathKind::FullParity),
                        lzone,
                        0,
                        su,
                        issue,
                        done,
                    );
                }
                AtomicRaiznStats::add(&self.stats.full_parity_writes, 1);
                self.bump(obs::Counter::FullParityWrites);
                if let Some(q) = qdev {
                    if !zrwa_ok {
                        // Full Q parity to the Q slot in the data zone.
                        let qdone = self.store_slot_rows(
                            &mut z,
                            &devices,
                            issue,
                            lzone,
                            stripe,
                            q,
                            0,
                            buf.q_parity(),
                            WriteFlags {
                                fua: flags.fua,
                                preflush: false,
                            },
                        )?;
                        completion = completion.max(qdone);
                        self.trace_span(
                            obs::OpClass::Write,
                            obs::Stage::Xor,
                            Some(obs::PathKind::QParity),
                            lzone,
                            0,
                            su,
                            issue,
                            qdone,
                        );
                    }
                    AtomicRaiznStats::add(&self.stats.q_parity_writes, 1);
                    self.bump(obs::Counter::QParityWrites);
                }
                z.retire_buffer(buf);
            } else if zrwa_ok {
                // §5.4 extension: overwrite the affected parity rows in
                // place inside the parity slot's ZRWA window (borrowed
                // straight out of the stripe buffer).
                let buf = z
                    .buffer
                    .as_ref()
                    .ok_or_else(|| internal("stripe buffer staged for zrwa parity"))?;
                let pp =
                    &buf.parity()[(row_lo * SECTOR_SIZE) as usize..(row_hi * SECTOR_SIZE) as usize];
                let pba = self.layout.stripe_pba(lzone, stripe) + row_lo;
                let done = devices[pdev as usize].write_zrwa(issue, pba, pp)?.done;
                completion = completion.max(done);
                AtomicRaiznStats::add(&self.stats.zrwa_parity_writes, 1);
                self.bump(obs::Counter::ZrwaParityWrites);
                self.trace_span(
                    obs::OpClass::Write,
                    obs::Stage::Xor,
                    Some(obs::PathKind::Zrwa),
                    lzone,
                    pba,
                    row_hi - row_lo,
                    issue,
                    done,
                );
                if let Some(q) = qdev {
                    // Q-leg: the same rows of the Q column, still open in
                    // the Q slot's ZRWA window until the stripe completes.
                    let qq = &buf.q_parity()
                        [(row_lo * SECTOR_SIZE) as usize..(row_hi * SECTOR_SIZE) as usize];
                    let qdone = devices[q as usize].write_zrwa(issue, pba, qq)?.done;
                    completion = completion.max(qdone);
                    AtomicRaiznStats::add(&self.stats.zrwa_parity_writes, 1);
                    self.bump(obs::Counter::ZrwaParityWrites);
                }
            } else {
                // Partial parity log on the device that will hold this
                // stripe's parity (§5.1). Write completion is withheld
                // until the log is written, closing the write hole. The
                // parity rows are encoded straight out of the stripe
                // buffer into the pooled scratch: no owned payload copy.
                let mut m = self.lock_meta();
                let mut scratch = std::mem::take(&mut m.md_scratch);
                let (pp_rows, pp_stripe, pp_filled) = {
                    let buf = z
                        .buffer
                        .as_ref()
                        .ok_or_else(|| internal("stripe buffer staged for pp log"))?;
                    // Ablation: optionally log the whole running parity
                    // unit instead of only the affected rows (§5.1).
                    let (lo, hi) = if self.config.pp_log_full_unit {
                        (0, su)
                    } else {
                        (row_lo, row_hi)
                    };
                    let zstart = lgeo.zone_start(lzone);
                    MdRecordRef::new(
                        MdPayloadRef::PartialParity {
                            first_row: lo,
                            data: &buf.parity()
                                [(lo * SECTOR_SIZE) as usize..(hi * SECTOR_SIZE) as usize],
                        },
                        false,
                        lba.max(zstart + z.wp - chunk_sectors),
                        zstart + z.wp,
                        m.gens[lzone as usize],
                    )
                    .encode_into(&mut scratch);
                    (hi - lo, buf.stripe(), buf.filled_sectors())
                };
                let r = self.md_append_bytes(
                    &mut m,
                    &devices,
                    issue,
                    pdev as usize,
                    MdRole::PpLog,
                    true,
                    &scratch,
                    flags.fua,
                );
                let mut pp_done = match r {
                    Ok(done) => done,
                    Err(e) => {
                        m.md_scratch = scratch;
                        return Err(e);
                    }
                };
                // Q-leg (§RAIZN-2): a second partial-parity record, tagged
                // PartialParityQ, on the device that will hold this
                // stripe's Q parity. Both legs must land before the write
                // completes so a crash plus two device losses can still
                // close the write hole.
                if let Some(q) = qdev {
                    {
                        let buf = z
                            .buffer
                            .as_ref()
                            .ok_or_else(|| internal("stripe buffer staged for pp-q log"))?;
                        let (lo, hi) = if self.config.pp_log_full_unit {
                            (0, su)
                        } else {
                            (row_lo, row_hi)
                        };
                        let zstart = lgeo.zone_start(lzone);
                        MdRecordRef::new(
                            MdPayloadRef::PartialParityQ {
                                first_row: lo,
                                data: &buf.q_parity()
                                    [(lo * SECTOR_SIZE) as usize..(hi * SECTOR_SIZE) as usize],
                            },
                            false,
                            lba.max(zstart + z.wp - chunk_sectors),
                            zstart + z.wp,
                            m.gens[lzone as usize],
                        )
                        .encode_into(&mut scratch);
                    }
                    let rq = self.md_append_bytes(
                        &mut m,
                        &devices,
                        issue,
                        q as usize,
                        MdRole::PpLog,
                        true,
                        &scratch,
                        flags.fua,
                    );
                    match rq {
                        Ok(done) => pp_done = pp_done.max(done),
                        Err(e) => {
                            m.md_scratch = scratch;
                            return Err(e);
                        }
                    }
                    AtomicRaiznStats::add(&self.stats.pp_q_log_entries, 1);
                    AtomicRaiznStats::add(&self.stats.pp_log_bytes, pp_rows * SECTOR_SIZE);
                }
                m.md_scratch = scratch;
                // Refresh the checkpoint snapshot for metadata GC: the
                // stripe buffer itself stays behind this zone's shard.
                {
                    let buf = z
                        .buffer
                        .as_ref()
                        .ok_or_else(|| internal("stripe buffer staged for pp snapshot"))?;
                    let rows = (pp_filled.min(su) * SECTOR_SIZE) as usize;
                    let snap = m.pp_live.entry(lzone).or_default();
                    snap.stripe = pp_stripe;
                    snap.filled = pp_filled;
                    snap.parity.clear();
                    snap.parity.extend_from_slice(&buf.parity()[..rows]);
                    snap.q.clear();
                    if qdev.is_some() {
                        snap.q.extend_from_slice(&buf.q_parity()[..rows]);
                    }
                }
                drop(m);
                completion = completion.max(pp_done);
                AtomicRaiznStats::add(&self.stats.pp_log_entries, 1);
                AtomicRaiznStats::add(&self.stats.pp_log_bytes, pp_rows * SECTOR_SIZE);
                self.bump(obs::Counter::PpLogWrites);
                self.trace_span(
                    obs::OpClass::Write,
                    obs::Stage::Xor,
                    Some(obs::PathKind::PpLog),
                    lzone,
                    0,
                    pp_rows,
                    issue,
                    pp_done,
                );
            }
        }

        // State transitions.
        if z.wp == lgeo.zone_cap() {
            z.state = ZoneState::Full;
            if let Some(buf) = z.buffer.take() {
                z.retire_buffer(buf);
            }
            // No WAL is written on the hot path, but the next metadata GC
            // checkpoints a finish record so the cap fill stays durable
            // under maximal device failures.
            self.zone_sealed[lzone as usize].store(true, Ordering::Release);
        } else if z.state == ZoneState::Empty || z.state == ZoneState::Closed {
            z.state = ZoneState::ImplicitlyOpen;
        }

        // FUA: everything below the new write pointer must be durable
        // before completion (§5.3).
        if flags.fua {
            let done = self.persist_zone(&mut z, &devices, completion, lzone)?;
            completion = completion.max(done);
        }
        self.trace_root(
            obs::OpClass::Write,
            lzone,
            lba,
            sectors,
            at,
            completion,
            span,
            parent,
        );
        Ok(IoCompletion { done: completion })
    }

    /// Flushes every device holding a non-persisted stripe unit of
    /// `lzone` below its write pointer, then marks the zone persisted.
    /// Runs under `lzone`'s shard lock.
    fn persist_zone(
        &self,
        z: &mut LZone,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
    ) -> Result<SimTime> {
        let data_units = self.layout.data_units();
        let wp = z.wp;
        let mut flush_set = HashSet::new();
        for unit in z.pbitmap.unpersisted_below(wp) {
            let stripe = unit / data_units;
            let k = unit % data_units;
            let dev = self.layout.data_device(lzone, stripe, k);
            flush_set.insert(dev);
            // The parity (or its log) must be durable too for fault
            // tolerance of the acknowledged data.
            flush_set.insert(self.layout.parity_device(lzone, stripe));
            if let Some(q) = self.layout.q_device(lzone, stripe) {
                flush_set.insert(q);
            }
        }
        let mut done = at;
        for dev in flush_set {
            if self.is_failed(dev as usize) {
                continue;
            }
            done = done.max(devices[dev as usize].flush(at)?.done);
            AtomicRaiznStats::add(&self.stats.persistence_flushes, 1);
        }
        z.pbitmap.mark_persisted_below(wp);
        self.trace_span(
            obs::OpClass::Flush,
            obs::Stage::Flush,
            None,
            lzone,
            0,
            0,
            at,
            done,
        );
        Ok(done)
    }

    /// Flushes all devices and marks every zone persisted. Callers must
    /// not hold any shard lock: each zone's shard is taken in index order
    /// to update its persistence bitmap.
    fn flush_all(&self, devices: &[Arc<ZnsDevice>], at: SimTime) -> Result<SimTime> {
        let mut done = at;
        for (i, dev) in devices.iter().enumerate() {
            if self.is_failed(i) {
                continue;
            }
            done = done.max(dev.flush(at)?.done);
        }
        for zm in &self.zones {
            let mut z = self.shard_locks.lock(zm);
            let wp = z.wp;
            z.pbitmap.mark_persisted_below(wp);
        }
        self.trace_span(
            obs::OpClass::Flush,
            obs::Stage::Flush,
            None,
            obs::NONE,
            0,
            0,
            at,
            done,
        );
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Zone reset (§5.2)
    // ------------------------------------------------------------------

    /// Appends the zone-reset WAL for `lzone` to the two designated
    /// devices (first stripe unit holder and first parity holder, rotating
    /// per zone) and returns the completion time.
    fn log_reset_intent(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
    ) -> Result<SimTime> {
        let lgeo = self.layout.logical_geometry();
        let rec = MdRecord::new(
            MdPayload::ZoneResetLog,
            false,
            lgeo.zone_start(lzone),
            lgeo.zone_start(lzone) + lgeo.zone_cap(),
            m.gens[lzone as usize],
        );
        let d0 = self.layout.data_device(lzone, 0, 0) as usize;
        let d1 = self.layout.parity_device(lzone, 0) as usize;
        let mut done = at;
        done = done.max(self.md_append(m, devices, at, d0, MdRole::General, &rec, true)?);
        done = done.max(self.md_append(m, devices, at, d1, MdRole::General, &rec, true)?);
        // Dual parity keeps a third WAL copy on the Q holder so the intent
        // survives losing any two devices.
        if let Some(q) = self.layout.q_device(lzone, 0) {
            done = done.max(self.md_append(
                m,
                devices,
                at,
                q as usize,
                MdRole::General,
                &rec,
                true,
            )?);
        }
        Ok(done)
    }

    /// Appends the zone-finish WAL for `lzone` (sealed at `wp`) to the
    /// same devices as the reset WAL. Unlike the reset intent — which is
    /// consumed by the replay — the finish record stays live until the
    /// zone's next reset bumps its generation: it is the remount's only
    /// authoritative witness of the sealed fill when the devices holding
    /// the final stripe's data are gone.
    fn log_finish_intent(
        &self,
        m: &mut MetaState,
        devices: &[Arc<ZnsDevice>],
        at: SimTime,
        lzone: u32,
        wp: u64,
    ) -> Result<SimTime> {
        let lgeo = self.layout.logical_geometry();
        let rec = MdRecord::new(
            MdPayload::ZoneFinishLog,
            false,
            lgeo.zone_start(lzone),
            lgeo.zone_start(lzone) + wp,
            m.gens[lzone as usize],
        );
        let d0 = self.layout.data_device(lzone, 0, 0) as usize;
        let d1 = self.layout.parity_device(lzone, 0) as usize;
        let mut done = at;
        done = done.max(self.md_append(m, devices, at, d0, MdRole::General, &rec, true)?);
        done = done.max(self.md_append(m, devices, at, d1, MdRole::General, &rec, true)?);
        if let Some(q) = self.layout.q_device(lzone, 0) {
            done = done.max(self.md_append(
                m,
                devices,
                at,
                q as usize,
                MdRole::General,
                &rec,
                true,
            )?);
        }
        Ok(done)
    }

    /// Completes a logical zone reset: bumps the generation counter,
    /// persists its page, and clears the zone's in-memory state. Runs
    /// under `lzone`'s shard lock.
    fn finish_reset(
        &self,
        z: &mut LZone,
        devices: &[Arc<ZnsDevice>],
        t: SimTime,
        lzone: u32,
    ) -> Result<SimTime> {
        let done = {
            let mut m = self.lock_meta();
            m.gens[lzone as usize] += 1;
            if m.gens[lzone as usize] == u64::MAX {
                // Counter exhaustion: the volume goes read-only until
                // maintenance runs (§4.3).
                self.read_only.store(true, Ordering::Release);
            }
            let done = self.persist_gen_page(&mut m, devices, t, lzone)?;
            m.relocated.retain(|(lz, _, _), _| *lz != lzone);
            self.sync_relocated_count(&m);
            m.pp_live.remove(&lzone);
            done
        };
        if let Some(buf) = z.buffer.take() {
            z.retire_buffer(buf);
        }
        z.state = ZoneState::Empty;
        z.wp = 0;
        z.pbitmap.clear();
        z.conflicts.clear();
        self.zone_wp[lzone as usize].store(0, Ordering::Release);
        // The generation bump above invalidates any finish WAL; stop
        // checkpointing it.
        self.zone_sealed[lzone as usize].store(false, Ordering::Release);
        AtomicRaiznStats::add(&self.stats.zone_resets, 1);
        Ok(done)
    }

    /// Test support: performs the reset WAL and then resets only the first
    /// `devices_reset` physical zones before "losing power" — the partial
    /// zone reset scenario of §5.2. The volume must be dropped and
    /// remounted afterwards.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    #[doc(hidden)]
    pub fn interrupted_reset_for_test(
        &self,
        at: SimTime,
        lzone: u32,
        devices_reset: usize,
    ) -> Result<()> {
        let devices = self.devices.read();
        let _z = self.lock_shard(lzone);
        let t = {
            let mut m = self.lock_meta();
            self.log_reset_intent(&mut m, &devices, at, lzone)?
        };
        let phys = self.layout.phys_zone(lzone);
        for dev in devices.iter().take(devices_reset) {
            dev.reset_zone(t, phys)?;
        }
        Ok(())
    }

    /// Test support: performs the finish WAL and then finishes only the
    /// first `devices_finished` physical zones — a background finish
    /// interrupted partway across the array's per-device seal loop. No
    /// logical state is updated and no parity prefix is sealed; the
    /// volume must be dropped and remounted afterwards.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    #[doc(hidden)]
    pub fn interrupted_finish_for_test(
        &self,
        at: SimTime,
        lzone: u32,
        devices_finished: usize,
    ) -> Result<()> {
        let devices = self.devices.read();
        let z = self.lock_shard(lzone);
        let t = {
            let mut m = self.lock_meta();
            self.log_finish_intent(&mut m, &devices, at, lzone, z.wp)?
        };
        let phys = self.layout.phys_zone(lzone);
        for dev in devices.iter().take(devices_finished) {
            dev.finish_zone(t, phys)?;
        }
        Ok(())
    }

    /// Generation-counter maintenance (§4.3): garbage collects every
    /// metadata zone, resets all generation counters to zero and clears
    /// read-only mode. The paper runs this when a counter would overflow;
    /// it is write-ahead logged there — atomic by construction in this
    /// synchronous model.
    ///
    /// # Errors
    ///
    /// Propagates device IO errors.
    pub fn maintenance(&self, at: SimTime) -> Result<SimTime> {
        let devices = self.devices.read();
        let su = self.layout.stripe_unit();
        // Sync the pp checkpoint snapshots from the live stripe buffers
        // first (shard → meta per zone): zones staging parity without pp
        // appends (the ZRWA path) have buffers but no snapshots.
        for lz in 0..self.layout.logical_zones() {
            let z = self.lock_shard(lz);
            let mut m = self.lock_meta();
            match &z.buffer {
                Some(buf) if buf.filled_sectors() > 0 => {
                    let rows = (buf.filled_sectors().min(su) * SECTOR_SIZE) as usize;
                    let snap = m.pp_live.entry(lz).or_default();
                    snap.stripe = buf.stripe();
                    snap.filled = buf.filled_sectors();
                    snap.parity.clear();
                    snap.parity.extend_from_slice(&buf.parity()[..rows]);
                    snap.q.clear();
                    if buf.parity_units() >= 2 {
                        snap.q.extend_from_slice(&buf.q_parity()[..rows]);
                    }
                }
                _ => {
                    m.pp_live.remove(&lz);
                }
            }
        }
        let mut m = self.lock_meta();
        for g in &mut m.gens {
            *g = 0;
        }
        let mut t = at;
        for dev in 0..devices.len() {
            if self.is_failed(dev) {
                continue;
            }
            t = t.max(self.md_gc(&mut m, &devices, t, dev, MdRole::General)?);
            t = t.max(self.md_gc(&mut m, &devices, t, dev, MdRole::PpLog)?);
        }
        drop(m);
        self.read_only.store(false, Ordering::Release);
        Ok(t)
    }

    // ------------------------------------------------------------------
    // Rebuild (§4.2)
    // ------------------------------------------------------------------

    /// Rebuilds the lowest-indexed failed device onto `replacement`, zone
    /// by zone with active zones first, rebuilding **only valid data** (up
    /// to each logical zone's write pointer) — the Fig. 12 behaviour.
    ///
    /// In dual-parity mode with two devices failed, each `rebuild` call
    /// restores one device (lowest index first); reconstruction during the
    /// first pass decodes around the second missing device with the
    /// two-erasure Reed–Solomon path. Call again with a second
    /// replacement to restore full redundancy.
    ///
    /// Locks one zone shard at a time; concurrent IO to other zones is
    /// not blocked, but callers should quiesce writes for a consistent
    /// rebuild point (see `DESIGN.md`).
    ///
    /// # Errors
    ///
    /// Fails if no device is failed, the replacement geometry mismatches,
    /// or device IO fails.
    pub fn rebuild(&self, at: SimTime, replacement: Arc<ZnsDevice>) -> Result<RebuildReport> {
        let failed = self.failed_idx().ok_or_else(|| {
            ZnsError::InvalidArgument("rebuild requires a failed device".to_string())
        })?;
        if replacement.geometry() != self.layout.phys_geometry() {
            return Err(ZnsError::InvalidArgument(
                "replacement geometry mismatch".to_string(),
            ));
        }
        let su = self.layout.stripe_unit();
        let su_bytes = (su * SECTOR_SIZE) as usize;

        // Rebuild reads and replacement writes are blamed on the rebuild
        // actor; foreground ops queued behind them see the stall as
        // rebuild interference in their blame trees.
        let _actor = obs::actor_scope(obs::Actor::Rebuild);
        let mut cursor = at;
        let mut last_write = at;
        let mut bytes = 0u64;
        let mut zones_rebuilt = 0u32;
        {
            let devices = self.devices.read();
            // Priority order: active zones first (open/closed), then full.
            let mut order: Vec<(u32, u8)> = Vec::new();
            for lz in 0..self.layout.logical_zones() {
                let z = self.lock_shard(lz);
                if z.wp == 0 {
                    continue;
                }
                let pri = match z.state {
                    ZoneState::ImplicitlyOpen | ZoneState::ExplicitlyOpen | ZoneState::Closed => 0,
                    _ => 1,
                };
                order.push((lz, pri));
            }
            order.sort_by_key(|&(_, pri)| pri);
            self.rebuild_zones_total
                .store(order.len() as u64, Ordering::Release);
            self.rebuild_zones_done.store(0, Ordering::Release);

            for (lzone, _) in order {
                let mut z = self.lock_shard(lzone);
                let wp = z.wp;
                let phys_zone = self.layout.phys_zone(lzone);
                let full_stripes = wp / self.layout.stripe_data_sectors();
                let tail = wp % self.layout.stripe_data_sectors();
                let max_stripe = full_stripes + if tail > 0 { 1 } else { 0 };
                for stripe in 0..max_stripe {
                    let complete = stripe < full_stripes;
                    // What does the replacement hold for this stripe?
                    let needed: u64 = match self.layout.unit_of_device(lzone, stripe, failed as u32)
                    {
                        None => {
                            // Parity slot: present only for complete stripes.
                            if complete {
                                su
                            } else {
                                0
                            }
                        }
                        Some(k) => {
                            if complete {
                                su
                            } else {
                                tail.saturating_sub(k * su).min(su)
                            }
                        }
                    };
                    if needed == 0 {
                        continue;
                    }
                    let mut out = vec![0u8; (needed * SECTOR_SIZE) as usize];
                    let reads_done;
                    let healed = {
                        let mut m = self.lock_meta();
                        let rel = m.relocated.remove(&(lzone, stripe, failed as u32));
                        if rel.is_some() {
                            self.sync_relocated_count(&m);
                        }
                        rel
                    };
                    if let Some(rel) = healed {
                        // Heal the relocation: the true data returns to its
                        // arithmetic slot on the fresh device.
                        let len = out.len();
                        out.copy_from_slice(&rel.data[..len]);
                        reads_done = cursor;
                        z.conflicts.remove(&(stripe, failed as u32));
                    } else if !complete {
                        // Incomplete stripe: serve from the stripe buffer.
                        let k = self
                            .layout
                            .unit_of_device(lzone, stripe, failed as u32)
                            .ok_or_else(|| internal("parity slot handled above"))?;
                        match &z.buffer {
                            Some(buf) if buf.stripe() == stripe => {
                                let len = out.len();
                                out.copy_from_slice(&buf.unit_data(k)[..len]);
                            }
                            _ => {
                                // No buffer (e.g. finished zone): reconstruct
                                // readable rows from surviving devices is not
                                // possible without parity; read from survivors
                                // directly is not possible either (this IS the
                                // missing device). Treat as zeros.
                            }
                        }
                        reads_done = cursor;
                    } else {
                        reads_done = self.reconstruct_slot_rows(
                            &devices,
                            cursor,
                            lzone,
                            stripe,
                            failed as u32,
                            0,
                            &mut out,
                        )?;
                    }
                    debug_assert!(out.len() <= su_bytes);
                    let pba = self.layout.phys_geometry().zone_start(phys_zone) + stripe * su;
                    let w = replacement.write(reads_done, pba, &out, WriteFlags::default())?;
                    last_write = last_write.max(w.done);
                    bytes += out.len() as u64;
                    cursor = reads_done;
                }
                // Seal the replacement's zone to match the logical state.
                if z.state == ZoneState::Full {
                    replacement.finish_zone(last_write, phys_zone)?;
                }
                zones_rebuilt += 1;
                self.rebuild_zones_done.fetch_add(1, Ordering::AcqRel);
            }

            // Replicated metadata goes onto the fresh device.
            {
                let mut m = self.lock_meta();
                let sb = self.superblock_record(devices.len(), failed, false);
                let gens = self.gen_records(&m, false);
                let mut t = last_write;
                let c = replacement.append(t, 0, &sb.encode(), WriteFlags::FUA)?;
                t = c.done;
                for rec in gens {
                    let c = replacement.append(t, 0, &rec.encode(), WriteFlags::FUA)?;
                    t = c.done;
                }
                last_write = last_write.max(t);
                m.md[failed] = MdRoles {
                    general: 0,
                    pplog: 1,
                    swaps: (2..self.layout.md_zones()).collect(),
                };
            }
        }
        // Swap in the replacement: the only writer of the device table.
        {
            let mut devs = self.devices.write();
            devs[failed] = replacement;
        }
        // Clear only this device's failure bit: in dual-parity mode the
        // other failed device (if any) stays degraded until its own
        // rebuild pass.
        self.failed_mask
            .fetch_and(!(1u64 << failed), Ordering::AcqRel);
        self.device_errors[failed].store(0, Ordering::Relaxed);
        self.rebuild_zones_total.store(0, Ordering::Release);
        self.rebuild_zones_done.store(0, Ordering::Release);
        AtomicRaiznStats::add(&self.stats.rebuild_bytes, bytes);
        AtomicRaiznStats::add(&self.stats.rebuilds_completed, 1);
        Ok(RebuildReport {
            duration: last_write.since(at),
            bytes_written: bytes,
            zones_rebuilt,
        })
    }
}

impl ZonedVolume for RaiznVolume {
    fn geometry(&self) -> ZoneGeometry {
        self.layout.logical_geometry()
    }

    fn read(&self, at: SimTime, lba: Lba, buf: &mut [u8]) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if buf.is_empty() || !buf.len().is_multiple_of(SECTOR_SIZE as usize) {
            return Err(ZnsError::InvalidArgument(format!(
                "buffer length {} is not a positive multiple of the sector size",
                buf.len()
            )));
        }
        let sectors = buf.len() as u64 / SECTOR_SIZE;
        if !lgeo.contains(lba) {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        if !lgeo.range_in_one_zone(lba, sectors) {
            return Err(ZnsError::ZoneBoundary { lba, sectors });
        }
        let lzone = lgeo.zone_of(lba);
        let rel0 = lgeo.offset_in_zone(lba);
        let (span, parent, _span_guard) = self.begin_span();
        let devices = self.devices.read();
        let mut z = self.lock_shard(lzone);
        self.mark_lock(obs::OpClass::Read, lzone, at);
        if rel0 + sectors > z.wp {
            return Err(ZnsError::ReadUnwritten {
                lba: lgeo.zone_start(lzone) + z.wp,
            });
        }
        let su = self.layout.stripe_unit();
        let stripe_data = self.layout.stripe_data_sectors();
        let mut done = at;
        let mut cursor = rel0;
        let mut off = 0usize;
        while cursor < rel0 + sectors {
            let stripe = cursor / stripe_data;
            let within = cursor % stripe_data;
            let unit = within / su;
            let row0 = within % su;
            let rows = (su - row0).min(rel0 + sectors - cursor);
            let out = &mut buf[off..off + (rows * SECTOR_SIZE) as usize];
            let t = self.read_slot_rows(&mut z, &devices, at, lzone, stripe, unit, row0, out)?;
            done = done.max(t);
            cursor += rows;
            off += (rows * SECTOR_SIZE) as usize;
        }
        self.trace_root(
            obs::OpClass::Read,
            lzone,
            lba,
            sectors,
            at,
            done,
            span,
            parent,
        );
        Ok(IoCompletion { done })
    }

    fn write(&self, at: SimTime, lba: Lba, data: &[u8], flags: WriteFlags) -> Result<IoCompletion> {
        self.do_write(at, lba, data, flags)
    }

    /// Batch-write entry point: stages `segments` into a pooled scratch
    /// buffer and submits them as one contiguous extent, so a coalesced
    /// batch spanning full stripes takes the full-parity path instead of
    /// per-segment partial-parity logging.
    fn write_vectored(
        &self,
        at: SimTime,
        lba: Lba,
        segments: &[&[u8]],
        flags: WriteFlags,
    ) -> Result<IoCompletion> {
        match segments {
            [] => Ok(IoCompletion { done: at }),
            [only] => self.do_write(at, lba, only, flags),
            _ => {
                let mut scratch = std::mem::take(&mut self.lock_meta().gather_scratch);
                scratch.clear();
                for seg in segments {
                    scratch.extend_from_slice(seg);
                }
                let r = self.do_write(at, lba, &scratch, flags);
                self.lock_meta().gather_scratch = scratch;
                if r.is_ok() {
                    AtomicRaiznStats::add(&self.stats.gather_writes, 1);
                    AtomicRaiznStats::add(
                        &self.stats.gather_segments_merged,
                        segments.len() as u64 - 1,
                    );
                }
                r
            }
        }
    }

    fn append(
        &self,
        at: SimTime,
        zone: u32,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<AppendCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let lba = {
            let z = self.lock_shard(zone);
            lgeo.zone_start(zone) + z.wp
        };
        let c = self.do_write(at, lba, data, flags)?;
        Ok(AppendCompletion { lba, done: c.done })
    }

    fn reset_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let (span, parent, _span_guard) = self.begin_span();
        let devices = self.devices.read();
        let mut z = self.lock_shard(zone);
        self.mark_lock(obs::OpClass::Reset, zone, at);
        if self.read_only.load(Ordering::Acquire) {
            return Err(ZnsError::VolumeReadOnly);
        }
        // WAL first (§5.2): the reset must be replayable before any
        // physical zone is touched.
        let t = {
            let mut m = self.lock_meta();
            self.mark_lock(obs::OpClass::Reset, obs::NONE, at);
            self.log_reset_intent(&mut m, &devices, at, zone)?
        };
        let phys = self.layout.phys_zone(zone);
        let mut done = t;
        for i in 0..devices.len() {
            if self.is_failed(i) {
                continue;
            }
            done = done.max(self.reset_phys_with_retry(&devices, t, i, phys)?);
        }
        done = done.max(self.finish_reset(&mut z, &devices, done, zone)?);
        self.trace_root(
            obs::OpClass::Reset,
            zone,
            lgeo.zone_start(zone),
            0,
            at,
            done,
            span,
            parent,
        );
        Ok(IoCompletion { done })
    }

    fn finish_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let (span, parent, _span_guard) = self.begin_span();
        let devices = self.devices.read();
        let mut z = self.lock_shard(zone);
        self.mark_lock(obs::OpClass::Finish, zone, at);
        if self.read_only.load(Ordering::Acquire) {
            return Err(ZnsError::VolumeReadOnly);
        }
        let mut done = at;
        // Seal the incomplete stripe's parity prefix into the parity slot
        // so the finished zone stays single-fault tolerant. The buffer is
        // detached for the duration of the write so its parity can be
        // passed as a borrowed slice, then reattached (rebuild still
        // consults it for the incomplete stripe).
        let taken = z.buffer.take();
        let mut seal_result: Result<()> = Ok(());
        if let Some(buf) = &taken {
            if buf.filled_sectors() > 0 {
                let rows = buf.filled_sectors().min(self.layout.stripe_unit());
                let stripe = buf.stripe();
                let pdev = self.layout.parity_device(zone, stripe);
                match self.store_slot_rows(
                    &mut z,
                    &devices,
                    at,
                    zone,
                    stripe,
                    pdev,
                    0,
                    &buf.parity()[..(rows * SECTOR_SIZE) as usize],
                    WriteFlags::default(),
                ) {
                    Ok(t) => {
                        done = done.max(t);
                        AtomicRaiznStats::add(&self.stats.full_parity_writes, 1);
                        self.bump(obs::Counter::FullParityWrites);
                    }
                    Err(e) => seal_result = Err(e),
                }
                if seal_result.is_ok() {
                    if let Some(q) = self.layout.q_device(zone, stripe) {
                        match self.store_slot_rows(
                            &mut z,
                            &devices,
                            at,
                            zone,
                            stripe,
                            q,
                            0,
                            &buf.q_parity()[..(rows * SECTOR_SIZE) as usize],
                            WriteFlags::default(),
                        ) {
                            Ok(t) => {
                                done = done.max(t);
                                AtomicRaiznStats::add(&self.stats.q_parity_writes, 1);
                                self.bump(obs::Counter::QParityWrites);
                            }
                            Err(e) => seal_result = Err(e),
                        }
                    }
                }
            }
        }
        z.buffer = taken;
        seal_result?;
        // Write-ahead: the sealed write pointer goes to the metadata WAL
        // before any device seals, so a crash anywhere in the per-device
        // finish loop rolls forward to exactly this fill at mount.
        {
            let mut m = self.lock_meta();
            self.mark_lock(obs::OpClass::Finish, obs::NONE, at);
            let t = self.log_finish_intent(&mut m, &devices, at, zone, z.wp)?;
            done = done.max(t);
        }
        let phys = self.layout.phys_zone(zone);
        for (i, dev) in devices.iter().enumerate() {
            if self.is_failed(i) {
                continue;
            }
            done = done.max(dev.finish_zone(at, phys)?.done);
        }
        self.zone_sealed[zone as usize].store(true, Ordering::Release);
        z.state = ZoneState::Full;
        let wp = z.wp;
        z.pbitmap.mark_persisted_below(wp);
        AtomicRaiznStats::add(&self.stats.zone_finishes, 1);
        self.trace_root(
            obs::OpClass::Finish,
            zone,
            lgeo.zone_start(zone),
            0,
            at,
            done,
            span,
            parent,
        );
        Ok(IoCompletion { done })
    }

    fn open_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let devices = self.devices.read();
        let mut z = self.lock_shard(zone);
        let phys = self.layout.phys_zone(zone);
        let mut done = at;
        for (i, dev) in devices.iter().enumerate() {
            if self.is_failed(i) {
                continue;
            }
            done = done.max(dev.open_zone(at, phys)?.done);
        }
        z.state = ZoneState::ExplicitlyOpen;
        Ok(IoCompletion { done })
    }

    fn close_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let devices = self.devices.read();
        let mut z = self.lock_shard(zone);
        if !z.state.is_open() {
            return Err(ZnsError::BadZoneState {
                zone,
                state: z.state.name(),
                op: "close",
            });
        }
        let phys = self.layout.phys_zone(zone);
        let mut done = at;
        for (i, dev) in devices.iter().enumerate() {
            if self.is_failed(i) {
                continue;
            }
            // Physical zones that were never written cannot be closed;
            // ignore state errors from them.
            match dev.close_zone(at, phys) {
                Ok(c) => done = done.max(c.done),
                Err(ZnsError::BadZoneState { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        z.state = if z.wp == 0 {
            ZoneState::Empty
        } else {
            ZoneState::Closed
        };
        Ok(IoCompletion { done })
    }

    fn flush(&self, at: SimTime) -> Result<IoCompletion> {
        let devices = self.devices.read();
        let done = self.flush_all(&devices, at)?;
        Ok(IoCompletion { done })
    }

    fn zone_info(&self, zone: u32) -> Result<ZoneInfo> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let z = self.lock_shard(zone);
        Ok(ZoneInfo {
            zone,
            state: z.state,
            start: lgeo.zone_start(zone),
            write_pointer: lgeo.zone_start(zone) + z.wp,
            capacity: lgeo.zone_cap(),
        })
    }
}

impl obs::GaugeSource for RaiznVolume {
    fn source_label(&self) -> &'static str {
        "raizn"
    }

    /// Instantaneous array state: relocation backlog, degraded flag and
    /// metadata-path counters volume-wide, plus per-device error-budget
    /// headroom, metadata-zone utilization (general + pp-log zone fill,
    /// the input to the §4.3 metadata GC policy), and — new with the
    /// sharded pipeline — per-lock-domain contention gauges (id 0 = zone
    /// shards, id 1 = global metadata).
    fn sample_gauges(&self, out: &mut Vec<obs::GaugeReading>) {
        out.push(obs::GaugeReading::new(
            "relocation_backlog",
            obs::NONE,
            self.relocated_len.load(Ordering::Acquire) as f64,
        ));
        out.push(obs::GaugeReading::new(
            "degraded",
            obs::NONE,
            if self.failed_idx().is_some() {
                1.0
            } else {
                0.0
            },
        ));
        let s = self.stats.snapshot();
        out.push(obs::GaugeReading::new(
            "pp_log_entries",
            obs::NONE,
            s.pp_log_entries as f64,
        ));
        out.push(obs::GaugeReading::new(
            "md_appends",
            obs::NONE,
            s.md_appends as f64,
        ));
        out.push(obs::GaugeReading::new(
            "transient_retries",
            obs::NONE,
            s.transient_retries as f64,
        ));
        let budget = self.config.device_error_budget;
        {
            let devices = self.devices.read();
            let m = self.lock_meta();
            for (d, (dev, roles)) in devices.iter().zip(m.md.iter()).enumerate() {
                out.push(obs::GaugeReading::new(
                    "error_budget_remaining",
                    d as u32,
                    budget.saturating_sub(self.device_errors[d].load(Ordering::Relaxed)) as f64,
                ));
                // Consistent meta -> device lock order (same as the IO path).
                let zone_fill = |zone: u32| -> u64 {
                    dev.zone_info(zone)
                        .map(|zi| zi.write_pointer - zi.start)
                        .unwrap_or(0)
                };
                out.push(obs::GaugeReading::new(
                    "md_zone_used_sectors",
                    d as u32,
                    (zone_fill(roles.general) + zone_fill(roles.pplog)) as f64,
                ));
            }
        }
        out.push(obs::GaugeReading::new(
            "failed_devices",
            obs::NONE,
            self.failed_count() as f64,
        ));
        out.push(obs::GaugeReading::new(
            "rebuild_zones_total",
            obs::NONE,
            self.rebuild_zones_total.load(Ordering::Relaxed) as f64,
        ));
        out.push(obs::GaugeReading::new(
            "rebuild_zones_done",
            obs::NONE,
            self.rebuild_zones_done.load(Ordering::Relaxed) as f64,
        ));
        self.shard_locks.sample_gauges(0, out);
        self.meta_locks.sample_gauges(1, out);
    }
}
