//! The RAIZN logical volume: write/read paths, persistence, metadata
//! logging and GC, zone resets, degraded mode and rebuild.

use crate::bitmap::PersistenceBitmap;
use crate::config::RaiznConfig;
use crate::layout::RaiznLayout;
use crate::metadata::{MdPayload, MdPayloadRef, MdRecord, MdRecordRef, Superblock};
use crate::stats::RaiznStats;
use crate::stripe::StripeBuffer;
use crate::Result;
use parking_lot::Mutex;
use sim::SimTime;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use zns::{
    AppendCompletion, IoCompletion, Lba, WriteFlags, ZnsDevice, ZnsError, ZoneGeometry, ZoneInfo,
    ZoneState, ZonedVolume, SECTOR_SIZE,
};

/// Which metadata zone a record goes to (§4.3: partial parity is isolated
/// in its own zone; everything else shares the general zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MdRole {
    /// The general metadata zone (superblock, generation counters, reset
    /// WALs, relocated stripe units).
    General,
    /// The partial-parity log zone.
    PpLog,
}

/// Per-device metadata zone role assignment.
#[derive(Debug, Clone)]
pub(crate) struct MdRoles {
    pub general: u32,
    pub pplog: u32,
    pub swaps: Vec<u32>,
}

/// In-memory cached copy of a relocated stripe unit (§5.2). The key in
/// [`VolState::relocated`] identifies the slot: `(lzone, stripe, device)`.
#[derive(Debug, Clone)]
pub(crate) struct RelocatedUnit {
    /// Full stripe unit bytes, zero padded beyond `valid`.
    pub data: Vec<u8>,
    /// Valid sectors at the start of `data`.
    pub valid: u64,
}

/// Per-logical-zone descriptor.
#[derive(Debug)]
pub(crate) struct LZone {
    pub state: ZoneState,
    /// Write pointer, relative sectors within the logical zone capacity.
    pub wp: u64,
    pub pbitmap: PersistenceBitmap,
    /// Stripe buffer of the current incomplete stripe, if any.
    pub buffer: Option<StripeBuffer>,
    /// Slots `(stripe, device)` occupied by unreachable "ghost" data from
    /// a rolled-back crash suffix; writes to them are relocated.
    pub conflicts: HashSet<(u64, u32)>,
}

pub(crate) struct VolState {
    pub devices: Vec<Arc<ZnsDevice>>,
    pub failed: Option<usize>,
    pub read_only: bool,
    pub gens: Vec<u64>,
    pub lzones: Vec<LZone>,
    pub relocated: HashMap<(u32, u64, u32), RelocatedUnit>,
    pub md: Vec<MdRoles>,
    pub stats: RaiznStats,
    /// Per-device count of unrecovered errors (retry-exhausted transients
    /// and media errors); exceeding the configured budget auto-degrades
    /// the device.
    pub device_errors: Vec<u64>,
    /// Recycled stripe buffers: retired buffers return here (cleared via
    /// the high-water mark) so steady-state writes allocate nothing.
    pub pool: Vec<StripeBuffer>,
    /// Scratch buffer for metadata record encoding; taken/restored around
    /// appends so payload bytes never need an owned staging `Vec`.
    pub md_scratch: Vec<u8>,
    /// Scratch buffer for gather writes ([`zns::ZonedVolume::write_vectored`]);
    /// taken/restored around the staged write so steady-state batches
    /// allocate nothing.
    pub gather_scratch: Vec<u8>,
    /// Observability recorder for volume-layer spans (parity-path
    /// attribution, metadata appends, flush latency) and counters.
    pub recorder: Option<std::sync::Arc<obs::Recorder>>,
}

/// Retired stripe buffers kept for reuse. One per logical zone is the
/// steady-state need; the cap only bounds transient bursts.
const STRIPE_POOL_CAP: usize = 64;

impl VolState {
    /// Returns a cleared stripe buffer for `stripe`, reusing a pooled one
    /// when available.
    fn stripe_buffer(&mut self, stripe: u64, data_units: u64, unit_sectors: u64) -> StripeBuffer {
        match self.pool.pop() {
            Some(mut b) => {
                debug_assert!(b.shape_matches(data_units, unit_sectors));
                debug_assert!(sim::is_zero(b.parity()), "pooled buffer not clean");
                b.recycle(stripe);
                self.stats.stripe_buffers_reused += 1;
                b
            }
            None => StripeBuffer::new(stripe, data_units, unit_sectors),
        }
    }

    /// Retires a stripe buffer into the pool (cleared via its dirty
    /// high-water mark), or drops it if the pool is full.
    fn retire_buffer(&mut self, mut buf: StripeBuffer) {
        if self.pool.len() < STRIPE_POOL_CAP {
            buf.recycle(0);
            self.pool.push(buf);
        }
    }
}

/// Outcome of rebuilding a replaced device (§4.2, Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildReport {
    /// Virtual time from rebuild start to the last write completion.
    pub duration: sim::SimDuration,
    /// Bytes written to the replacement device (valid data only).
    pub bytes_written: u64,
    /// Logical zones whose contents were rebuilt.
    pub zones_rebuilt: u32,
}

/// A logical host-managed zoned volume striped over an array of ZNS
/// devices with rotating parity. See the crate docs for the design and an
/// example; construct with [`RaiznVolume::format`] (fresh array) or
/// [`RaiznVolume::mount`] (crash recovery).
pub struct RaiznVolume {
    pub(crate) layout: RaiznLayout,
    pub(crate) config: RaiznConfig,
    pub(crate) state: Mutex<VolState>,
}

impl std::fmt::Debug for RaiznVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaiznVolume")
            .field("layout", &self.layout)
            .finish_non_exhaustive()
    }
}

// Parity arithmetic goes through the shared word-vectorized kernel in
// `sim::xor` (also used by the stripe buffer, recovery, and mdraid5).
pub(crate) use sim::xor_into;

/// An internal invariant violation surfaced as an error instead of a
/// panic, so injected device faults can never take the volume down
/// mid-operation.
fn internal(context: &'static str) -> ZnsError {
    ZnsError::InvalidArgument(format!("internal invariant violated: {context}"))
}

/// Records a volume-layer trace span on the attached recorder, if any.
/// Volume spans carry `device == obs::NONE`: device attribution lives in
/// the device-layer spans emitted by [`zns::ZnsDevice`] itself.
#[allow(clippy::too_many_arguments)]
fn trace_span(
    st: &VolState,
    op: obs::OpClass,
    stage: obs::Stage,
    path: Option<obs::PathKind>,
    zone: u32,
    lba: Lba,
    sectors: u64,
    start: SimTime,
    end: SimTime,
) {
    if let Some(rec) = st.recorder.as_ref() {
        rec.record(obs::TraceEvent {
            seq: 0,
            op,
            stage,
            path,
            device: obs::NONE,
            zone,
            lba,
            sectors,
            start,
            end,
            outcome: obs::Outcome::Success,
        });
    }
}

/// Bumps a counter on the attached recorder, if any.
fn bump(st: &VolState, counter: obs::Counter) {
    if let Some(rec) = st.recorder.as_ref() {
        rec.bump(counter);
    }
}

/// Outcome of a [`RaiznVolume::scrub`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Complete stripes whose parity was verified.
    pub stripes_checked: u64,
    /// Parity mismatches detected and repaired (corrected parity
    /// relocated via the metadata log).
    pub parity_repairs: u64,
    /// Stripe units healed from latent media errors during the walk.
    pub units_healed: u64,
}

impl RaiznVolume {
    /// Initializes a fresh array: resets every zone, writes the superblock
    /// and initial generation counters to every device.
    ///
    /// # Errors
    ///
    /// Fails if the devices disagree on geometry, fewer than 3 are given,
    /// or device IO fails.
    pub fn format(
        devices: Vec<Arc<ZnsDevice>>,
        config: RaiznConfig,
        at: SimTime,
    ) -> Result<RaiznVolume> {
        let layout = Self::check_devices(&devices, config)?;
        // mkfs: wipe all zones.
        for dev in &devices {
            for z in 0..dev.geometry().num_zones() {
                let info = dev.zone_info(z)?;
                if info.write_pointer > info.start || info.state == ZoneState::Full {
                    dev.reset_zone(at, z)?;
                }
            }
        }
        let vol = Self::assemble(
            devices,
            config,
            layout,
            vec![0; layout.logical_zones() as usize],
        );
        {
            let mut st = vol.state.lock();
            let mut t = at;
            t = vol.persist_superblock(&mut st, t)?;
            vol.persist_all_gens(&mut st, t)?;
        }
        Ok(vol)
    }

    /// Validates the device set and derives the layout.
    pub(crate) fn check_devices(
        devices: &[Arc<ZnsDevice>],
        config: RaiznConfig,
    ) -> Result<RaiznLayout> {
        if devices.len() < 3 {
            return Err(ZnsError::InvalidArgument(format!(
                "RAIZN needs >= 3 devices, got {}",
                devices.len()
            )));
        }
        let geo = devices[0].geometry();
        if devices.iter().any(|d| d.geometry() != geo) {
            return Err(ZnsError::InvalidArgument(
                "all array devices must share one geometry".to_string(),
            ));
        }
        if config.use_zrwa
            && devices
                .iter()
                .any(|d| d.config().zrwa_sectors() < config.stripe_unit_sectors)
        {
            return Err(ZnsError::InvalidArgument(
                "use_zrwa requires every device's ZRWA window to cover one stripe unit".to_string(),
            ));
        }
        Ok(RaiznLayout::new(devices.len() as u32, config, geo))
    }

    /// Builds the in-memory volume object with default metadata roles.
    pub(crate) fn assemble(
        devices: Vec<Arc<ZnsDevice>>,
        config: RaiznConfig,
        layout: RaiznLayout,
        gens: Vec<u64>,
    ) -> RaiznVolume {
        let n = devices.len();
        let lzones = (0..layout.logical_zones())
            .map(|_| LZone {
                state: ZoneState::Empty,
                wp: 0,
                pbitmap: PersistenceBitmap::new(
                    layout.stripes_per_zone() * layout.data_units(),
                    layout.stripe_unit(),
                ),
                buffer: None,
                conflicts: HashSet::new(),
            })
            .collect();
        let md = (0..n)
            .map(|_| MdRoles {
                general: 0,
                pplog: 1,
                swaps: (2..config.md_zones_per_device).collect(),
            })
            .collect();
        RaiznVolume {
            layout,
            config,
            state: Mutex::new(VolState {
                devices,
                failed: None,
                read_only: false,
                gens,
                lzones,
                relocated: HashMap::new(),
                md,
                stats: RaiznStats::default(),
                device_errors: vec![0; n],
                pool: Vec::new(),
                md_scratch: Vec::new(),
                gather_scratch: Vec::new(),
                recorder: None,
            }),
        }
    }

    /// The array layout (address arithmetic).
    pub fn layout(&self) -> RaiznLayout {
        self.layout
    }

    /// The array configuration.
    pub fn config(&self) -> RaiznConfig {
        self.config
    }

    /// Volume statistics.
    pub fn stats(&self) -> RaiznStats {
        self.state.lock().stats
    }

    /// Attaches an observability recorder: volume-layer spans (parity-path
    /// attribution, metadata appends, flush latency) and counters land on
    /// it. To also capture device-layer spans, attach the same recorder to
    /// the member devices via [`zns::ZnsDevice::set_recorder`].
    pub fn set_recorder(&self, recorder: std::sync::Arc<obs::Recorder>) {
        self.state.lock().recorder = Some(recorder);
    }

    /// The generation counter of logical zone `lzone`.
    pub fn generation(&self, lzone: u32) -> u64 {
        self.state.lock().gens[lzone as usize]
    }

    /// Whether the array is running degraded (a device has failed).
    pub fn is_degraded(&self) -> bool {
        self.state.lock().failed.is_some()
    }

    /// Number of currently relocated stripe units.
    pub fn relocated_count(&self) -> usize {
        self.state.lock().relocated.len()
    }

    /// Marks device `index` failed. Subsequent reads reconstruct from
    /// parity; writes omit the device.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or another device already failed.
    pub fn fail_device(&self, index: usize) {
        let mut st = self.state.lock();
        assert!(index < st.devices.len(), "device index out of range");
        assert!(st.failed.is_none(), "RAIZN tolerates one device failure");
        st.devices[index].fail();
        st.failed = Some(index);
    }

    /// The failed device index, if any.
    pub fn failed_device(&self) -> Option<usize> {
        self.state.lock().failed
    }

    // ------------------------------------------------------------------
    // Fault handling: retries and the per-device error budget
    // ------------------------------------------------------------------

    /// Records one unrecovered error against `dev` and auto-degrades the
    /// array (the [`fail_device`](Self::fail_device) equivalent) once the
    /// device exceeds its error budget. No-op when a device already
    /// failed: RAIZN tolerates a single failure.
    fn note_device_error(&self, st: &mut VolState, dev: usize) {
        st.device_errors[dev] += 1;
        if st.failed.is_none() && st.device_errors[dev] > self.config.device_error_budget {
            st.devices[dev].fail();
            st.failed = Some(dev);
            st.stats.auto_degrades += 1;
        }
    }

    /// Appends to `dev`'s physical `zone` with bounded retries on
    /// transient errors; exhaustion counts against the device's error
    /// budget and surfaces the transient error.
    fn append_with_retry(
        &self,
        st: &mut VolState,
        at: SimTime,
        dev: usize,
        zone: u32,
        bytes: &[u8],
        flags: WriteFlags,
    ) -> Result<AppendCompletion> {
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match st.devices[dev].append(at, zone, bytes, flags) {
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    st.stats.transient_retries += 1;
                    bump(st, obs::Counter::Retries);
                }
                Err(e @ ZnsError::TransientError { .. }) => {
                    self.note_device_error(st, dev);
                    return Err(e);
                }
                other => return other,
            }
        }
    }

    /// Resets `dev`'s physical zone `phys` with bounded retries. On
    /// exhaustion the device is charged an error; if that degrades it the
    /// reset is treated as done (the device is out of the array, and the
    /// logged reset WAL replays on its eventual rebuild/remount).
    fn reset_phys_with_retry(
        &self,
        st: &mut VolState,
        at: SimTime,
        dev: usize,
        phys: u32,
    ) -> Result<SimTime> {
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match st.devices[dev].reset_zone(at, phys) {
                Ok(c) => return Ok(c.done),
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    st.stats.transient_retries += 1;
                    bump(st, obs::Counter::Retries);
                }
                Err(e @ ZnsError::TransientError { .. }) => {
                    self.note_device_error(st, dev);
                    if st.failed == Some(dev) {
                        return Ok(at);
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ------------------------------------------------------------------
    // Metadata plumbing
    // ------------------------------------------------------------------

    /// Appends a record to `dev`'s metadata zone for `role`, running
    /// metadata GC if the zone is full. Returns the completion time.
    ///
    /// Convenience wrapper over [`Self::md_append_bytes`] for owned
    /// records on cold paths; the hot write path encodes borrowed-payload
    /// [`crate::MdRecordRef`]s into the pooled scratch buffer instead.
    pub(crate) fn md_append(
        &self,
        st: &mut VolState,
        at: SimTime,
        dev: usize,
        role: MdRole,
        rec: &MdRecord,
        fua: bool,
    ) -> Result<SimTime> {
        if st.failed == Some(dev) {
            return Ok(at);
        }
        let mut scratch = std::mem::take(&mut st.md_scratch);
        rec.as_ref().encode_into(&mut scratch);
        let is_pp = rec.header.md_type == crate::metadata::MetadataType::PartialParity;
        let r = self.md_append_bytes(st, at, dev, role, is_pp, &scratch, fua);
        st.md_scratch = scratch;
        r
    }

    /// Appends pre-encoded record `bytes` (header + payload sectors) to
    /// `dev`'s metadata zone for `role`, running metadata GC if the zone
    /// is full. `is_pp` flags partial-parity records for the
    /// logical-block-metadata ablation. Returns the completion time.
    ///
    /// Callers encode via [`crate::MdRecordRef::encode_into`] into
    /// [`VolState::md_scratch`] (taken out around the call), keeping the
    /// steady-state metadata path free of heap allocation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn md_append_bytes(
        &self,
        st: &mut VolState,
        at: SimTime,
        dev: usize,
        role: MdRole,
        is_pp: bool,
        bytes: &[u8],
        fua: bool,
    ) -> Result<SimTime> {
        if st.failed == Some(dev) {
            return Ok(at);
        }
        // Ablation (§5.4): with logical-block metadata enabled, partial
        // parity headers ride in per-block metadata descriptors instead of
        // a dedicated 4 KiB header sector. Modelled by dropping the header
        // sector from the log append (recovery of such records is not
        // exercised by the ablation benches).
        let bytes = if self.config.lb_metadata_headers
            && is_pp
            && bytes.len() > crate::metadata::MD_HEADER_BYTES
        {
            &bytes[crate::metadata::MD_HEADER_BYTES..]
        } else {
            bytes
        };
        let flags = WriteFlags {
            fua,
            preflush: false,
        };
        let zone = match role {
            MdRole::General => st.md[dev].general,
            MdRole::PpLog => st.md[dev].pplog,
        };
        let r = match self.append_with_retry(st, at, dev, zone, bytes, flags) {
            Ok(c) => {
                st.stats.md_appends += 1;
                Ok(c.done)
            }
            Err(ZnsError::ZoneFull { .. }) => {
                let t = self.md_gc(st, at, dev, role)?;
                let zone = match role {
                    MdRole::General => st.md[dev].general,
                    MdRole::PpLog => st.md[dev].pplog,
                };
                match self.append_with_retry(st, t, dev, zone, bytes, flags) {
                    Ok(c) => {
                        st.stats.md_appends += 1;
                        Ok(c.done)
                    }
                    Err(ZnsError::TransientError { .. }) if st.failed == Some(dev) => Ok(t),
                    Err(e) => Err(e),
                }
            }
            // Retry exhaustion just degraded the device: its metadata
            // replica is gone with it, mirroring the failed-device
            // early-return above.
            Err(ZnsError::TransientError { .. }) if st.failed == Some(dev) => Ok(at),
            Err(e) => Err(e),
        };
        if let Ok(done) = r {
            trace_span(
                st,
                obs::OpClass::Append,
                obs::Stage::MetaAppend,
                None,
                zone,
                0,
                bytes.len() as u64 / SECTOR_SIZE,
                at,
                done,
            );
        }
        r
    }

    /// Garbage collects `dev`'s metadata zone for `role` (§4.3, Fig. 4):
    /// designate a swap zone, checkpoint live metadata into it, flush, and
    /// reset the old zone back into the swap pool.
    pub(crate) fn md_gc(
        &self,
        st: &mut VolState,
        at: SimTime,
        dev: usize,
        role: MdRole,
    ) -> Result<SimTime> {
        bump(st, obs::Counter::MdGcRuns);
        let new_zone = st.md[dev]
            .swaps
            .pop()
            .ok_or_else(|| internal("metadata GC requires at least one swap zone"))?;
        let old_zone = match role {
            MdRole::General => std::mem::replace(&mut st.md[dev].general, new_zone),
            MdRole::PpLog => std::mem::replace(&mut st.md[dev].pplog, new_zone),
        };
        let mut t = at;
        // Checkpoint live metadata, flagged as checkpoint records. Every
        // record is encoded straight out of live state (stripe buffers,
        // relocation cache, counter table) into the pooled scratch buffer:
        // no owned payload staging.
        let mut scratch = std::mem::take(&mut st.md_scratch);
        let r = (|| -> Result<()> {
            match role {
                MdRole::PpLog => {
                    // Recalculate partial parity from every open zone's
                    // stripe buffer whose parity lands on this device.
                    let su = self.layout.stripe_unit();
                    let lgeo = self.layout.logical_geometry();
                    for lz in 0..st.lzones.len() {
                        {
                            let Some(buf) = &st.lzones[lz].buffer else {
                                continue;
                            };
                            if buf.filled_sectors() == 0 {
                                continue;
                            }
                            let pdev = self.layout.parity_device(lz as u32, buf.stripe());
                            if pdev as usize != dev {
                                continue;
                            }
                            let rows = buf.filled_sectors().min(su);
                            let zstart = lgeo.zone_start(lz as u32);
                            let sstart = zstart + buf.stripe() * self.layout.stripe_data_sectors();
                            MdRecordRef::new(
                                MdPayloadRef::PartialParity {
                                    first_row: 0,
                                    data: &buf.parity()[..(rows * SECTOR_SIZE) as usize],
                                },
                                true,
                                sstart,
                                sstart + buf.filled_sectors(),
                                st.gens[lz],
                            )
                            .encode_into(&mut scratch);
                        }
                        let c = self.append_with_retry(
                            st,
                            t,
                            dev,
                            new_zone,
                            &scratch,
                            WriteFlags::default(),
                        )?;
                        t = c.done;
                        st.stats.md_appends += 1;
                    }
                }
                MdRole::General => {
                    self.superblock_record(st, dev, true)
                        .as_ref()
                        .encode_into(&mut scratch);
                    let c = self.append_with_retry(
                        st,
                        t,
                        dev,
                        new_zone,
                        &scratch,
                        WriteFlags::default(),
                    )?;
                    t = c.done;
                    st.stats.md_appends += 1;
                    let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
                    for first in (0..st.gens.len()).step_by(per) {
                        Self::encode_gen_page(&st.gens, first, true, &mut scratch);
                        let c = self.append_with_retry(
                            st,
                            t,
                            dev,
                            new_zone,
                            &scratch,
                            WriteFlags::default(),
                        )?;
                        t = c.done;
                        st.stats.md_appends += 1;
                    }
                    let mut keys: Vec<(u32, u64, u32)> = st
                        .relocated
                        .keys()
                        .filter(|(_, _, rdev)| *rdev as usize == dev)
                        .copied()
                        .collect();
                    keys.sort_unstable();
                    for (lz, stripe, rdev) in keys {
                        {
                            let unit = &st.relocated[&(lz, stripe, rdev)];
                            self.encode_relocation_record(
                                st.gens[lz as usize],
                                lz,
                                stripe,
                                unit,
                                true,
                                &mut scratch,
                            );
                        }
                        let c = self.append_with_retry(
                            st,
                            t,
                            dev,
                            new_zone,
                            &scratch,
                            WriteFlags::default(),
                        )?;
                        t = c.done;
                        st.stats.md_appends += 1;
                    }
                }
            }
            Ok(())
        })();
        st.md_scratch = scratch;
        r?;
        // The checkpoint must be durable before the old zone disappears.
        t = st.devices[dev].flush(t)?.done;
        t = self.reset_phys_with_retry(st, t, dev, old_zone)?;
        st.md[dev].swaps.insert(0, old_zone);
        st.stats.md_gc_runs += 1;
        Ok(t)
    }

    pub(crate) fn superblock_record(
        &self,
        st: &VolState,
        dev: usize,
        checkpoint: bool,
    ) -> MdRecord {
        let phys = self.layout.phys_geometry();
        MdRecord::new(
            MdPayload::Superblock(Superblock {
                num_devices: st.devices.len() as u32,
                device_index: dev as u32,
                stripe_unit_sectors: self.layout.stripe_unit(),
                md_zones_per_device: self.layout.md_zones(),
                phys_zones: phys.num_zones(),
                phys_zone_size: phys.zone_size(),
                phys_zone_cap: phys.zone_cap(),
            }),
            checkpoint,
            0,
            0,
            0,
        )
    }

    /// Builds the generation counter pages covering all logical zones.
    pub(crate) fn gen_records(&self, st: &VolState, checkpoint: bool) -> Vec<MdRecord> {
        st.gens
            .chunks(crate::metadata::GEN_COUNTERS_PER_PAGE)
            .enumerate()
            .map(|(i, chunk)| {
                MdRecord::new(
                    MdPayload::GenCounters {
                        first_zone: (i * crate::metadata::GEN_COUNTERS_PER_PAGE) as u32,
                        counters: chunk.to_vec(),
                    },
                    checkpoint,
                    0,
                    0,
                    0,
                )
            })
            .collect()
    }

    /// Encodes the generation counter page starting at logical zone
    /// `first` into `out`, borrowing the live counter table directly.
    fn encode_gen_page(gens: &[u64], first: usize, checkpoint: bool, out: &mut Vec<u8>) {
        let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
        let end = (first + per).min(gens.len());
        MdRecordRef::new(
            MdPayloadRef::GenCounters {
                first_zone: first as u32,
                counters: &gens[first..end],
            },
            checkpoint,
            0,
            0,
            0,
        )
        .encode_into(out);
    }

    /// Encodes a relocation record into `out`, borrowing the cached
    /// unit's payload bytes (no owned copy of the stripe unit).
    fn encode_relocation_record(
        &self,
        gen: u64,
        lzone: u32,
        stripe: u64,
        unit: &RelocatedUnit,
        checkpoint: bool,
        out: &mut Vec<u8>,
    ) {
        let lgeo = self.layout.logical_geometry();
        let sstart = lgeo.zone_start(lzone) + stripe * self.layout.stripe_data_sectors();
        MdRecordRef::new(
            MdPayloadRef::RelocatedStripeUnit {
                lzone,
                stripe,
                valid_sectors: unit.valid,
                data: &unit.data,
            },
            checkpoint,
            sstart,
            sstart + self.layout.stripe_data_sectors(),
            gen,
        )
        .encode_into(out);
    }

    /// Writes the superblock to every live device's general metadata zone.
    pub(crate) fn persist_superblock(&self, st: &mut VolState, at: SimTime) -> Result<SimTime> {
        let mut done = at;
        for dev in 0..st.devices.len() {
            let rec = self.superblock_record(st, dev, false);
            done = done.max(self.md_append(st, at, dev, MdRole::General, &rec, true)?);
        }
        Ok(done)
    }

    /// Persists all generation counter pages to every live device.
    pub(crate) fn persist_all_gens(&self, st: &mut VolState, at: SimTime) -> Result<SimTime> {
        let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
        let mut scratch = std::mem::take(&mut st.md_scratch);
        let r = (|| -> Result<SimTime> {
            let mut done = at;
            for first in (0..st.gens.len()).step_by(per) {
                Self::encode_gen_page(&st.gens, first, false, &mut scratch);
                for dev in 0..st.devices.len() {
                    done = done.max(self.md_append_bytes(
                        st,
                        at,
                        dev,
                        MdRole::General,
                        false,
                        &scratch,
                        true,
                    )?);
                }
            }
            Ok(done)
        })();
        st.md_scratch = scratch;
        r
    }

    /// Persists the generation counter page containing `lzone` to every
    /// live device (one 4 KiB page per update, Table 1).
    pub(crate) fn persist_gen_page(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
    ) -> Result<SimTime> {
        let per = crate::metadata::GEN_COUNTERS_PER_PAGE;
        let first = (lzone as usize / per) * per;
        let mut scratch = std::mem::take(&mut st.md_scratch);
        Self::encode_gen_page(&st.gens, first, false, &mut scratch);
        let r = (|| -> Result<SimTime> {
            let mut done = at;
            for dev in 0..st.devices.len() {
                done = done.max(self.md_append_bytes(
                    st,
                    at,
                    dev,
                    MdRole::General,
                    false,
                    &scratch,
                    true,
                )?);
            }
            Ok(done)
        })();
        st.md_scratch = scratch;
        r
    }

    // ------------------------------------------------------------------
    // Unit fetch (relocation- and failure-aware)
    // ------------------------------------------------------------------

    /// Reads `rows` sectors starting at row `row0` of the unit held by
    /// `dev` for `(lzone, stripe)`, transparently serving relocated slots
    /// from the in-memory cache. Fails with `DeviceFailed` if the device
    /// is failed and the slot is not relocated. Transient device errors
    /// are retried up to the configured bound; retry exhaustion and media
    /// errors are charged against the device's error budget and surfaced
    /// for the caller to reconstruct around.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fetch_slot_rows(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        if let Some(rel) = st.relocated.get(&(lzone, stripe, dev)) {
            let off = (row0 * SECTOR_SIZE) as usize;
            out.copy_from_slice(&rel.data[off..off + out.len()]);
            return Ok(at);
        }
        if st.failed == Some(dev as usize) {
            return Err(ZnsError::DeviceFailed);
        }
        let pba = self.layout.stripe_pba(lzone, stripe) + row0;
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match st.devices[dev as usize].read(at, pba, out) {
                Ok(c) => return Ok(c.done),
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    st.stats.transient_retries += 1;
                    bump(st, obs::Counter::Retries);
                }
                Err(e @ (ZnsError::TransientError { .. } | ZnsError::MediaError { .. })) => {
                    self.note_device_error(st, dev as usize);
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reconstructs `rows` sectors of the unit that `missing_dev` holds for
    /// `(lzone, stripe)` by XORing every other device's slot (§4.2). The
    /// stripe must be complete (parity present).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reconstruct_slot_rows(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
        stripe: u64,
        missing_dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        out.fill(0);
        let mut tmp = vec![0u8; out.len()];
        let mut done = at;
        for dev in 0..self.layout.devices() {
            if dev == missing_dev {
                continue;
            }
            let t = self.fetch_slot_rows(st, at, lzone, stripe, dev, row0, &mut tmp)?;
            done = done.max(t);
            xor_into(out, &tmp);
        }
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Self-healing read path
    // ------------------------------------------------------------------

    /// Reads `rows` sectors of data unit `unit` at `(lzone, stripe)`,
    /// healing around device errors: latent media errors trigger in-place
    /// repair (reconstruct + relocate), retry-exhausted transients fall
    /// back to one-off reconstruction, and failed devices take the
    /// degraded path.
    #[allow(clippy::too_many_arguments)]
    fn read_slot_rows(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
        stripe: u64,
        unit: u64,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        let dev = self.layout.data_device(lzone, stripe, unit);
        let relocated = st.relocated.contains_key(&(lzone, stripe, dev));
        if relocated || st.failed != Some(dev as usize) {
            match self.fetch_slot_rows(st, at, lzone, stripe, dev, row0, out) {
                Ok(t) => Ok(t),
                Err(
                    e @ (ZnsError::MediaError { .. }
                    | ZnsError::TransientError { .. }
                    | ZnsError::DeviceFailed),
                ) => self.heal_read(st, at, lzone, stripe, unit, dev, row0, out, e),
                Err(e) => Err(e),
            }
        } else {
            self.degraded_slot_read(st, at, lzone, stripe, unit, dev, row0, out)
        }
    }

    /// Degraded read (§4.2): incomplete stripes come from the stripe
    /// buffer; complete ones reconstruct from parity.
    #[allow(clippy::too_many_arguments)]
    fn degraded_slot_read(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
        stripe: u64,
        unit: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
    ) -> Result<SimTime> {
        st.stats.degraded_reads += 1;
        bump(st, obs::Counter::DegradedReads);
        let from_buffer = matches!(&st.lzones[lzone as usize].buffer,
            Some(b) if b.stripe() == stripe);
        let r = if from_buffer {
            let b = st.lzones[lzone as usize]
                .buffer
                .as_ref()
                .ok_or_else(|| internal("stripe buffer matched above"))?;
            let su = self.layout.stripe_unit();
            let s0 = unit * su + row0;
            let rows = out.len() as u64 / SECTOR_SIZE;
            out.copy_from_slice(b.read_range(s0, s0 + rows));
            Ok(at)
        } else {
            self.reconstruct_slot_rows(st, at, lzone, stripe, dev, row0, out)
        };
        if let Ok(t) = r {
            trace_span(
                st,
                obs::OpClass::Read,
                obs::Stage::WholeOp,
                Some(obs::PathKind::Degraded),
                lzone,
                0,
                out.len() as u64 / SECTOR_SIZE,
                at,
                t,
            );
        }
        r
    }

    /// Recovers a read that hit a device error on `dev`. Latent media
    /// errors in complete stripes are healed in place: the whole unit is
    /// reconstructed from the surviving devices and relocated, so
    /// subsequent reads of the range succeed without reconstruction.
    /// Other errors fall back to one-off degraded service.
    #[allow(clippy::too_many_arguments)]
    fn heal_read(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
        stripe: u64,
        unit: u64,
        dev: u32,
        row0: u64,
        out: &mut [u8],
        err: ZnsError,
    ) -> Result<SimTime> {
        let su = self.layout.stripe_unit();
        let stripe_data = self.layout.stripe_data_sectors();
        let complete = (stripe + 1) * stripe_data <= st.lzones[lzone as usize].wp;
        if !complete {
            // No parity yet: the stripe buffer still stages this stripe,
            // and any sector below the logical wp is within its fill
            // frontier.
            let staged = matches!(&st.lzones[lzone as usize].buffer,
                Some(b) if b.stripe() == stripe);
            if staged {
                return self.degraded_slot_read(st, at, lzone, stripe, unit, dev, row0, out);
            }
            return Err(err);
        }
        if matches!(err, ZnsError::MediaError { .. }) {
            // Self-heal: rebuild the full unit, serve the requested rows,
            // and relocate the repaired copy so the latent sectors are
            // never read again.
            let mut data = vec![0u8; (su * SECTOR_SIZE) as usize];
            let t = self.reconstruct_slot_rows(st, at, lzone, stripe, dev, 0, &mut data)?;
            let off = (row0 * SECTOR_SIZE) as usize;
            out.copy_from_slice(&data[off..off + out.len()]);
            st.stats.read_repairs += 1;
            bump(st, obs::Counter::ReadRepairs);
            let t2 = self.relocate_repaired_unit(st, at, lzone, stripe, dev, data, su)?;
            Ok(t.max(t2))
        } else {
            // Transient exhaustion / fresh device failure: serve this read
            // from parity without committing a relocation.
            st.stats.degraded_reads += 1;
            bump(st, obs::Counter::DegradedReads);
            self.reconstruct_slot_rows(st, at, lzone, stripe, dev, row0, out)
        }
    }

    /// Installs a repaired copy of the unit held by `dev` at
    /// `(lzone, stripe)` into the relocation cache (marking the physical
    /// slot conflicted) and persists a relocation record, mirroring the
    /// §5.2 write-conflict machinery. Failure to persist the record is
    /// tolerated: the cache still serves reads and metadata GC
    /// checkpoints re-log it.
    #[allow(clippy::too_many_arguments)]
    fn relocate_repaired_unit(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        data: Vec<u8>,
        valid: u64,
    ) -> Result<SimTime> {
        st.relocated
            .insert((lzone, stripe, dev), RelocatedUnit { data, valid });
        st.lzones[lzone as usize].conflicts.insert((stripe, dev));
        let mut scratch = std::mem::take(&mut st.md_scratch);
        {
            let unit = &st.relocated[&(lzone, stripe, dev)];
            self.encode_relocation_record(
                st.gens[lzone as usize],
                lzone,
                stripe,
                unit,
                false,
                &mut scratch,
            );
        }
        let r = self.md_append_bytes(st, at, dev as usize, MdRole::General, false, &scratch, true);
        st.md_scratch = scratch;
        match r {
            Ok(t) => Ok(t),
            Err(ZnsError::TransientError { .. } | ZnsError::DeviceFailed) => Ok(at),
            Err(e) => Err(e),
        }
    }

    /// Walks every complete stripe of the volume verifying that data XOR
    /// parity is zero, repairing what it finds (§4.2 maintenance):
    /// latent media errors are healed by reconstruction, and parity
    /// mismatches are corrected from the data. Returns what was checked
    /// and repaired; counters land in [`stats`](Self::stats).
    pub fn scrub(&self, at: SimTime) -> Result<ScrubReport> {
        let mut st = self.state.lock();
        let st = &mut *st;
        if st.failed.is_some() {
            return Err(ZnsError::DeviceFailed);
        }
        if st.read_only {
            return Err(ZnsError::VolumeReadOnly);
        }
        let su = self.layout.stripe_unit();
        let stripe_data = self.layout.stripe_data_sectors();
        let unit_bytes = (su * SECTOR_SIZE) as usize;
        let mut report = ScrubReport::default();
        let mut acc = vec![0u8; unit_bytes];
        let mut slot = vec![0u8; unit_bytes];
        for lz in 0..self.layout.logical_zones() {
            let full_stripes = st.lzones[lz as usize].wp / stripe_data;
            for stripe in 0..full_stripes {
                acc.fill(0);
                for dev in 0..self.layout.devices() {
                    match self.fetch_slot_rows(st, at, lz, stripe, dev, 0, &mut slot) {
                        Ok(_) => {}
                        Err(ZnsError::MediaError { .. }) => {
                            self.reconstruct_slot_rows(st, at, lz, stripe, dev, 0, &mut slot)?;
                            self.relocate_repaired_unit(st, at, lz, stripe, dev, slot.clone(), su)?;
                            report.units_healed += 1;
                            st.stats.scrub_repairs += 1;
                        }
                        Err(e) => return Err(e),
                    }
                    xor_into(&mut acc, &slot);
                }
                report.stripes_checked += 1;
                if !sim::is_zero(&acc) {
                    // The XOR of data and stored parity should vanish; it
                    // does not, so stored_parity ^ acc is the correct
                    // parity. Install it as a relocated unit.
                    let pdev = self.layout.parity_device(lz, stripe);
                    let mut fixed = vec![0u8; unit_bytes];
                    self.fetch_slot_rows(st, at, lz, stripe, pdev, 0, &mut fixed)?;
                    xor_into(&mut fixed, &acc);
                    self.relocate_repaired_unit(st, at, lz, stripe, pdev, fixed, su)?;
                    report.parity_repairs += 1;
                    st.stats.scrub_repairs += 1;
                }
            }
        }
        st.stats.scrub_runs += 1;
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Write path helpers
    // ------------------------------------------------------------------

    /// Stores `data` rows of the slot held by `dev` at `(lzone, stripe)`,
    /// relocating to the device's metadata zone when the slot is
    /// conflicted, and skipping failed devices. `row0` is the first row.
    #[allow(clippy::too_many_arguments)]
    fn store_slot_rows(
        &self,
        st: &mut VolState,
        at: SimTime,
        lzone: u32,
        stripe: u64,
        dev: u32,
        row0: u64,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<SimTime> {
        let su = self.layout.stripe_unit();
        if st.lzones[lzone as usize].conflicts.contains(&(stripe, dev)) {
            // Relocate: accumulate into the cached unit and persist a
            // relocation record on the affected device (§5.2).
            let unit_bytes = (su * SECTOR_SIZE) as usize;
            let entry = st
                .relocated
                .entry((lzone, stripe, dev))
                .or_insert_with(|| RelocatedUnit {
                    data: vec![0u8; unit_bytes],
                    valid: 0,
                });
            let off = (row0 * SECTOR_SIZE) as usize;
            entry.data[off..off + data.len()].copy_from_slice(data);
            entry.valid = entry.valid.max(row0 + data.len() as u64 / SECTOR_SIZE);
            let valid = entry.valid;
            if std::env::var_os("RAIZN_DEBUG").is_some() {
                eprintln!("[reloc] lz={lzone} stripe={stripe} dev={dev} row0={row0} valid={valid}");
            }
            st.stats.relocated_units += 1;
            bump(st, obs::Counter::RelocatedWrites);
            trace_span(
                st,
                obs::OpClass::Write,
                obs::Stage::WholeOp,
                Some(obs::PathKind::Relocated),
                lzone,
                0,
                data.len() as u64 / SECTOR_SIZE,
                at,
                at,
            );
            // Encode the record borrowing the cached unit in place: no
            // clone of the stripe-unit payload on the relocation path.
            let mut scratch = std::mem::take(&mut st.md_scratch);
            {
                let unit = &st.relocated[&(lzone, stripe, dev)];
                self.encode_relocation_record(
                    st.gens[lzone as usize],
                    lzone,
                    stripe,
                    unit,
                    false,
                    &mut scratch,
                );
            }
            let r = self.md_append_bytes(
                st,
                at,
                dev as usize,
                MdRole::General,
                false,
                &scratch,
                flags.fua,
            );
            st.md_scratch = scratch;
            return r;
        }
        if st.failed == Some(dev as usize) {
            return Ok(at); // degraded write: omitted, covered by parity
        }
        let pba = self.layout.stripe_pba(lzone, stripe) + row0;
        let limit = self.config.transient_retry_limit;
        let mut attempt = 0u32;
        loop {
            match st.devices[dev as usize].write(at, pba, data, flags) {
                Ok(c) => return Ok(c.done),
                Err(ZnsError::TransientError { .. }) if attempt < limit => {
                    attempt += 1;
                    st.stats.transient_retries += 1;
                    bump(st, obs::Counter::Retries);
                }
                Err(e @ ZnsError::TransientError { .. }) => {
                    self.note_device_error(st, dev as usize);
                    if st.failed == Some(dev as usize) {
                        // Freshly degraded: the write is omitted and the
                        // unit stays covered by parity.
                        return Ok(at);
                    }
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The write-path core, shared by `write` and `append`.
    fn do_write(
        &self,
        at: SimTime,
        lba: Lba,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if data.is_empty() || !data.len().is_multiple_of(SECTOR_SIZE as usize) {
            return Err(ZnsError::InvalidArgument(format!(
                "buffer length {} is not a positive multiple of the sector size",
                data.len()
            )));
        }
        let sectors = data.len() as u64 / SECTOR_SIZE;
        if !lgeo.contains(lba) {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        let lzone = lgeo.zone_of(lba);
        let mut st = self.state.lock();
        let st = &mut *st;
        if st.read_only {
            return Err(ZnsError::VolumeReadOnly);
        }
        {
            let z = &st.lzones[lzone as usize];
            match z.state {
                ZoneState::Full => return Err(ZnsError::ZoneFull { zone: lzone }),
                ZoneState::ReadOnly => return Err(ZnsError::ZoneReadOnly { zone: lzone }),
                ZoneState::Offline => return Err(ZnsError::ZoneOffline { zone: lzone }),
                _ => {}
            }
            let expect = lgeo.zone_start(lzone) + z.wp;
            if lba != expect {
                return Err(ZnsError::NotSequential {
                    zone: lzone,
                    expected: expect,
                    got: lba,
                });
            }
            if z.wp + sectors > lgeo.zone_cap() {
                return Err(ZnsError::ZoneFull { zone: lzone });
            }
        }

        let mut issue = at;
        let mut completion = at;
        if flags.preflush {
            let done = self.flush_all(st, at)?;
            issue = done;
            completion = done;
        }

        let stripe_data = self.layout.stripe_data_sectors();
        let su = self.layout.stripe_unit();
        let data_units = self.layout.data_units();
        let mut remaining = data;
        while !remaining.is_empty() {
            let wp = st.lzones[lzone as usize].wp;
            let stripe = wp / stripe_data;
            let off_in_stripe = wp % stripe_data;
            // Ensure the stripe buffer stages this stripe, drawing from
            // the recycle pool so steady-state writes allocate nothing.
            {
                let need_new = match &st.lzones[lzone as usize].buffer {
                    Some(b) => b.stripe() != stripe,
                    None => true,
                };
                if need_new {
                    debug_assert_eq!(off_in_stripe, 0, "mid-stripe write without a staged buffer");
                    if let Some(stale) = st.lzones[lzone as usize].buffer.take() {
                        st.retire_buffer(stale);
                    }
                    let buf = st.stripe_buffer(stripe, data_units, su);
                    st.lzones[lzone as usize].buffer = Some(buf);
                }
            }
            let chunk_sectors =
                (stripe_data - off_in_stripe).min(remaining.len() as u64 / SECTOR_SIZE);
            let (chunk, rest) = remaining.split_at((chunk_sectors * SECTOR_SIZE) as usize);
            remaining = rest;

            let (row_lo, row_hi) = st.lzones[lzone as usize]
                .buffer
                .as_mut()
                .ok_or_else(|| internal("stripe buffer staged above"))?
                .fill(chunk);

            // Data sub-IOs, split per unit.
            let mut cursor = off_in_stripe;
            let mut coff = 0usize;
            while cursor < off_in_stripe + chunk_sectors {
                let unit = cursor / su;
                let row0 = cursor % su;
                let rows = (su - row0).min(off_in_stripe + chunk_sectors - cursor);
                let dev = self.layout.data_device(lzone, stripe, unit);
                let bytes = &chunk[coff..coff + (rows * SECTOR_SIZE) as usize];
                let done = self.store_slot_rows(
                    st,
                    issue,
                    lzone,
                    stripe,
                    dev,
                    row0,
                    bytes,
                    WriteFlags {
                        fua: flags.fua,
                        preflush: false,
                    },
                )?;
                completion = completion.max(done);
                cursor += rows;
                coff += (rows * SECTOR_SIZE) as usize;
            }

            {
                let z = &mut st.lzones[lzone as usize];
                // The written units are volatile again until the next
                // flush/FUA, even if an earlier flush covered their heads.
                z.pbitmap.clear_range(z.wp, z.wp + chunk_sectors);
                z.wp += chunk_sectors;
            }
            let complete = st.lzones[lzone as usize]
                .buffer
                .as_ref()
                .ok_or_else(|| internal("stripe buffer staged for completion check"))?
                .is_complete();
            let pdev = self.layout.parity_device(lzone, stripe);
            let slot_conflicted = st.lzones[lzone as usize]
                .conflicts
                .contains(&(stripe, pdev));
            let zrwa_ok =
                self.config.use_zrwa && st.failed != Some(pdev as usize) && !slot_conflicted;
            if complete {
                // Detach the buffer: its parity is handed to the device
                // layer as a borrowed slice (no copy) and the buffer is
                // then retired into the recycle pool.
                let buf = st.lzones[lzone as usize]
                    .buffer
                    .take()
                    .ok_or_else(|| internal("stripe buffer staged for parity write"))?;
                if zrwa_ok {
                    // §5.4 extension: the earlier rows are already in the
                    // window; write the final delta and commit the slot.
                    let pp = &buf.parity()
                        [(row_lo * SECTOR_SIZE) as usize..(row_hi * SECTOR_SIZE) as usize];
                    let phys_zone = self.layout.phys_zone(lzone);
                    let pba = self.layout.stripe_pba(lzone, stripe) + row_lo;
                    let dev = &st.devices[pdev as usize];
                    let mut done = dev.write_zrwa(issue, pba, pp)?.done;
                    done = done.max(dev.commit_zrwa(done, phys_zone, (stripe + 1) * su)?.done);
                    completion = completion.max(done);
                    st.stats.zrwa_parity_writes += 1;
                    bump(st, obs::Counter::ZrwaParityWrites);
                    trace_span(
                        st,
                        obs::OpClass::Write,
                        obs::Stage::Xor,
                        Some(obs::PathKind::Zrwa),
                        lzone,
                        pba,
                        row_hi - row_lo,
                        issue,
                        done,
                    );
                } else {
                    // Full parity to the parity slot in the data zone.
                    let done = self.store_slot_rows(
                        st,
                        issue,
                        lzone,
                        stripe,
                        pdev,
                        0,
                        buf.parity(),
                        WriteFlags {
                            fua: flags.fua,
                            preflush: false,
                        },
                    )?;
                    completion = completion.max(done);
                    trace_span(
                        st,
                        obs::OpClass::Write,
                        obs::Stage::Xor,
                        Some(obs::PathKind::FullParity),
                        lzone,
                        0,
                        su,
                        issue,
                        done,
                    );
                }
                st.stats.full_parity_writes += 1;
                bump(st, obs::Counter::FullParityWrites);
                st.retire_buffer(buf);
            } else if zrwa_ok {
                // §5.4 extension: overwrite the affected parity rows in
                // place inside the parity slot's ZRWA window (borrowed
                // straight out of the stripe buffer).
                let buf = st.lzones[lzone as usize]
                    .buffer
                    .as_ref()
                    .ok_or_else(|| internal("stripe buffer staged for zrwa parity"))?;
                let pp =
                    &buf.parity()[(row_lo * SECTOR_SIZE) as usize..(row_hi * SECTOR_SIZE) as usize];
                let pba = self.layout.stripe_pba(lzone, stripe) + row_lo;
                let done = st.devices[pdev as usize].write_zrwa(issue, pba, pp)?.done;
                completion = completion.max(done);
                st.stats.zrwa_parity_writes += 1;
                bump(st, obs::Counter::ZrwaParityWrites);
                trace_span(
                    st,
                    obs::OpClass::Write,
                    obs::Stage::Xor,
                    Some(obs::PathKind::Zrwa),
                    lzone,
                    pba,
                    row_hi - row_lo,
                    issue,
                    done,
                );
            } else {
                // Partial parity log on the device that will hold this
                // stripe's parity (§5.1). Write completion is withheld
                // until the log is written, closing the write hole. The
                // parity rows are encoded straight out of the stripe
                // buffer into the pooled scratch: no owned payload copy.
                let mut scratch = std::mem::take(&mut st.md_scratch);
                let pp_rows = {
                    let z = &st.lzones[lzone as usize];
                    let buf = z
                        .buffer
                        .as_ref()
                        .ok_or_else(|| internal("stripe buffer staged for pp log"))?;
                    // Ablation: optionally log the whole running parity
                    // unit instead of only the affected rows (§5.1).
                    let (lo, hi) = if self.config.pp_log_full_unit {
                        (0, su)
                    } else {
                        (row_lo, row_hi)
                    };
                    let zstart = lgeo.zone_start(lzone);
                    MdRecordRef::new(
                        MdPayloadRef::PartialParity {
                            first_row: lo,
                            data: &buf.parity()
                                [(lo * SECTOR_SIZE) as usize..(hi * SECTOR_SIZE) as usize],
                        },
                        false,
                        lba.max(zstart + z.wp - chunk_sectors),
                        zstart + z.wp,
                        st.gens[lzone as usize],
                    )
                    .encode_into(&mut scratch);
                    hi - lo
                };
                let r = self.md_append_bytes(
                    st,
                    issue,
                    pdev as usize,
                    MdRole::PpLog,
                    true,
                    &scratch,
                    flags.fua,
                );
                st.md_scratch = scratch;
                let pp_done = r?;
                completion = completion.max(pp_done);
                st.stats.pp_log_entries += 1;
                st.stats.pp_log_bytes += pp_rows * SECTOR_SIZE;
                bump(st, obs::Counter::PpLogWrites);
                trace_span(
                    st,
                    obs::OpClass::Write,
                    obs::Stage::Xor,
                    Some(obs::PathKind::PpLog),
                    lzone,
                    0,
                    pp_rows,
                    issue,
                    pp_done,
                );
            }
        }

        // State transitions.
        if st.lzones[lzone as usize].wp == lgeo.zone_cap() {
            st.lzones[lzone as usize].state = ZoneState::Full;
            if let Some(buf) = st.lzones[lzone as usize].buffer.take() {
                st.retire_buffer(buf);
            }
        } else {
            let z = &mut st.lzones[lzone as usize];
            if z.state == ZoneState::Empty || z.state == ZoneState::Closed {
                z.state = ZoneState::ImplicitlyOpen;
            }
        }

        // FUA: everything below the new write pointer must be durable
        // before completion (§5.3).
        if flags.fua {
            let done = self.persist_zone(st, completion, lzone)?;
            completion = completion.max(done);
        }
        trace_span(
            st,
            obs::OpClass::Write,
            obs::Stage::WholeOp,
            None,
            lzone,
            lba,
            sectors,
            at,
            completion,
        );
        Ok(IoCompletion { done: completion })
    }

    /// Flushes every device holding a non-persisted stripe unit of
    /// `lzone` below its write pointer, then marks the zone persisted.
    fn persist_zone(&self, st: &mut VolState, at: SimTime, lzone: u32) -> Result<SimTime> {
        let data_units = self.layout.data_units();
        let wp = st.lzones[lzone as usize].wp;
        let mut flush_set = HashSet::new();
        for unit in st.lzones[lzone as usize].pbitmap.unpersisted_below(wp) {
            let stripe = unit / data_units;
            let k = unit % data_units;
            let dev = self.layout.data_device(lzone, stripe, k);
            flush_set.insert(dev);
            // The parity (or its log) must be durable too for fault
            // tolerance of the acknowledged data.
            flush_set.insert(self.layout.parity_device(lzone, stripe));
        }
        let mut done = at;
        for dev in flush_set {
            if st.failed == Some(dev as usize) {
                continue;
            }
            done = done.max(st.devices[dev as usize].flush(at)?.done);
            st.stats.persistence_flushes += 1;
        }
        st.lzones[lzone as usize].pbitmap.mark_persisted_below(wp);
        trace_span(
            st,
            obs::OpClass::Flush,
            obs::Stage::Flush,
            None,
            lzone,
            0,
            0,
            at,
            done,
        );
        Ok(done)
    }

    /// Flushes all devices and marks every zone persisted.
    fn flush_all(&self, st: &mut VolState, at: SimTime) -> Result<SimTime> {
        let mut done = at;
        for (i, dev) in st.devices.iter().enumerate() {
            if st.failed == Some(i) {
                continue;
            }
            done = done.max(dev.flush(at)?.done);
        }
        for z in &mut st.lzones {
            let wp = z.wp;
            z.pbitmap.mark_persisted_below(wp);
        }
        trace_span(
            st,
            obs::OpClass::Flush,
            obs::Stage::Flush,
            None,
            obs::NONE,
            0,
            0,
            at,
            done,
        );
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Zone reset (§5.2)
    // ------------------------------------------------------------------

    /// Appends the zone-reset WAL for `lzone` to the two designated
    /// devices (first stripe unit holder and first parity holder, rotating
    /// per zone) and returns the completion time.
    fn log_reset_intent(&self, st: &mut VolState, at: SimTime, lzone: u32) -> Result<SimTime> {
        let lgeo = self.layout.logical_geometry();
        let rec = MdRecord::new(
            MdPayload::ZoneResetLog,
            false,
            lgeo.zone_start(lzone),
            lgeo.zone_start(lzone) + lgeo.zone_cap(),
            st.gens[lzone as usize],
        );
        let d0 = self.layout.data_device(lzone, 0, 0) as usize;
        let d1 = self.layout.parity_device(lzone, 0) as usize;
        let mut done = at;
        done = done.max(self.md_append(st, at, d0, MdRole::General, &rec, true)?);
        done = done.max(self.md_append(st, at, d1, MdRole::General, &rec, true)?);
        Ok(done)
    }

    fn finish_reset(&self, st: &mut VolState, t: SimTime, lzone: u32) -> Result<SimTime> {
        st.gens[lzone as usize] += 1;
        if st.gens[lzone as usize] == u64::MAX {
            // Counter exhaustion: the volume goes read-only until
            // maintenance runs (§4.3).
            st.read_only = true;
        }
        let done = self.persist_gen_page(st, t, lzone)?;
        if let Some(buf) = st.lzones[lzone as usize].buffer.take() {
            st.retire_buffer(buf);
        }
        let z = &mut st.lzones[lzone as usize];
        z.state = ZoneState::Empty;
        z.wp = 0;
        z.pbitmap.clear();
        z.conflicts.clear();
        st.relocated.retain(|(lz, _, _), _| *lz != lzone);
        st.stats.zone_resets += 1;
        Ok(done)
    }

    /// Test support: performs the reset WAL and then resets only the first
    /// `devices_reset` physical zones before "losing power" — the partial
    /// zone reset scenario of §5.2. The volume must be dropped and
    /// remounted afterwards.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    #[doc(hidden)]
    pub fn interrupted_reset_for_test(
        &self,
        at: SimTime,
        lzone: u32,
        devices_reset: usize,
    ) -> Result<()> {
        let mut st = self.state.lock();
        let st = &mut *st;
        let t = self.log_reset_intent(st, at, lzone)?;
        let phys = self.layout.phys_zone(lzone);
        for dev in st.devices.iter().take(devices_reset) {
            dev.reset_zone(t, phys)?;
        }
        Ok(())
    }

    /// Generation-counter maintenance (§4.3): garbage collects every
    /// metadata zone, resets all generation counters to zero and clears
    /// read-only mode. The paper runs this when a counter would overflow;
    /// it is write-ahead logged there — atomic by construction in this
    /// synchronous model.
    ///
    /// # Errors
    ///
    /// Propagates device IO errors.
    pub fn maintenance(&self, at: SimTime) -> Result<SimTime> {
        let mut st = self.state.lock();
        let st = &mut *st;
        for g in &mut st.gens {
            *g = 0;
        }
        let mut t = at;
        for dev in 0..st.devices.len() {
            if st.failed == Some(dev) {
                continue;
            }
            t = t.max(self.md_gc(st, t, dev, MdRole::General)?);
            t = t.max(self.md_gc(st, t, dev, MdRole::PpLog)?);
        }
        st.read_only = false;
        Ok(t)
    }

    // ------------------------------------------------------------------
    // Rebuild (§4.2)
    // ------------------------------------------------------------------

    /// Rebuilds the failed device onto `replacement`, zone by zone with
    /// active zones first, rebuilding **only valid data** (up to each
    /// logical zone's write pointer) — the Fig. 12 behaviour.
    ///
    /// # Errors
    ///
    /// Fails if no device is failed, the replacement geometry mismatches,
    /// or device IO fails.
    pub fn rebuild(&self, at: SimTime, replacement: Arc<ZnsDevice>) -> Result<RebuildReport> {
        let mut st = self.state.lock();
        let st = &mut *st;
        let failed = st.failed.ok_or_else(|| {
            ZnsError::InvalidArgument("rebuild requires a failed device".to_string())
        })?;
        if replacement.geometry() != self.layout.phys_geometry() {
            return Err(ZnsError::InvalidArgument(
                "replacement geometry mismatch".to_string(),
            ));
        }
        let su = self.layout.stripe_unit();
        let su_bytes = (su * SECTOR_SIZE) as usize;

        // Priority order: active zones first (open/closed), then full.
        let mut order: Vec<u32> = (0..self.layout.logical_zones())
            .filter(|z| st.lzones[*z as usize].wp > 0)
            .collect();
        order.sort_by_key(|z| match st.lzones[*z as usize].state {
            ZoneState::ImplicitlyOpen | ZoneState::ExplicitlyOpen | ZoneState::Closed => 0,
            _ => 1,
        });

        let mut cursor = at;
        let mut last_write = at;
        let mut bytes = 0u64;
        let mut zones_rebuilt = 0u32;
        for lzone in order.iter().copied() {
            let wp = st.lzones[lzone as usize].wp;
            let phys_zone = self.layout.phys_zone(lzone);
            let full_stripes = wp / self.layout.stripe_data_sectors();
            let tail = wp % self.layout.stripe_data_sectors();
            let max_stripe = full_stripes + if tail > 0 { 1 } else { 0 };
            for stripe in 0..max_stripe {
                let complete = stripe < full_stripes;
                // What does the replacement hold for this stripe?
                let needed: u64 = match self.layout.unit_of_device(lzone, stripe, failed as u32) {
                    None => {
                        // Parity slot: present only for complete stripes.
                        if complete {
                            su
                        } else {
                            0
                        }
                    }
                    Some(k) => {
                        if complete {
                            su
                        } else {
                            tail.saturating_sub(k * su).min(su)
                        }
                    }
                };
                if needed == 0 {
                    continue;
                }
                let mut out = vec![0u8; (needed * SECTOR_SIZE) as usize];
                let reads_done;
                if let Some(rel) = st.relocated.get(&(lzone, stripe, failed as u32)) {
                    // Heal the relocation: the true data returns to its
                    // arithmetic slot on the fresh device.
                    let len = out.len();
                    out.copy_from_slice(&rel.data[..len]);
                    reads_done = cursor;
                    st.relocated.remove(&(lzone, stripe, failed as u32));
                    st.lzones[lzone as usize]
                        .conflicts
                        .remove(&(stripe, failed as u32));
                } else if !complete {
                    // Incomplete stripe: serve from the stripe buffer.
                    let z = &st.lzones[lzone as usize];
                    let k = self
                        .layout
                        .unit_of_device(lzone, stripe, failed as u32)
                        .ok_or_else(|| internal("parity slot handled above"))?;
                    match &z.buffer {
                        Some(buf) if buf.stripe() == stripe => {
                            let len = out.len();
                            out.copy_from_slice(&buf.unit_data(k)[..len]);
                        }
                        _ => {
                            // No buffer (e.g. finished zone): reconstruct
                            // readable rows from surviving devices is not
                            // possible without parity; read from survivors
                            // directly is not possible either (this IS the
                            // missing device). Treat as zeros.
                        }
                    }
                    reads_done = cursor;
                } else {
                    reads_done = self.reconstruct_slot_rows(
                        st,
                        cursor,
                        lzone,
                        stripe,
                        failed as u32,
                        0,
                        &mut out,
                    )?;
                }
                debug_assert!(out.len() <= su_bytes);
                let pba = self.layout.phys_geometry().zone_start(phys_zone) + stripe * su;
                let w = replacement.write(reads_done, pba, &out, WriteFlags::default())?;
                last_write = last_write.max(w.done);
                bytes += out.len() as u64;
                cursor = reads_done;
            }
            // Seal the replacement's zone to match the logical state.
            let zstate = st.lzones[lzone as usize].state;
            if zstate == ZoneState::Full {
                replacement.finish_zone(last_write, phys_zone)?;
            }
            zones_rebuilt += 1;
        }

        // Replicated metadata goes onto the fresh device.
        {
            let sb = self.superblock_record(st, failed, false);
            let gens = self.gen_records(st, false);
            let mut t = last_write;
            let c = replacement.append(t, 0, &sb.encode(), WriteFlags::FUA)?;
            t = c.done;
            for rec in gens {
                let c = replacement.append(t, 0, &rec.encode(), WriteFlags::FUA)?;
                t = c.done;
            }
            last_write = last_write.max(t);
        }
        st.md[failed] = MdRoles {
            general: 0,
            pplog: 1,
            swaps: (2..self.layout.md_zones()).collect(),
        };
        st.devices[failed] = replacement;
        st.failed = None;
        st.device_errors[failed] = 0;
        st.stats.rebuild_bytes += bytes;
        Ok(RebuildReport {
            duration: last_write.since(at),
            bytes_written: bytes,
            zones_rebuilt,
        })
    }
}

impl ZonedVolume for RaiznVolume {
    fn geometry(&self) -> ZoneGeometry {
        self.layout.logical_geometry()
    }

    fn read(&self, at: SimTime, lba: Lba, buf: &mut [u8]) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if buf.is_empty() || !buf.len().is_multiple_of(SECTOR_SIZE as usize) {
            return Err(ZnsError::InvalidArgument(format!(
                "buffer length {} is not a positive multiple of the sector size",
                buf.len()
            )));
        }
        let sectors = buf.len() as u64 / SECTOR_SIZE;
        if !lgeo.contains(lba) {
            return Err(ZnsError::OutOfRange { lba, sectors });
        }
        if !lgeo.range_in_one_zone(lba, sectors) {
            return Err(ZnsError::ZoneBoundary { lba, sectors });
        }
        let lzone = lgeo.zone_of(lba);
        let rel0 = lgeo.offset_in_zone(lba);
        let mut st = self.state.lock();
        let st = &mut *st;
        let z_wp = st.lzones[lzone as usize].wp;
        if rel0 + sectors > z_wp {
            return Err(ZnsError::ReadUnwritten {
                lba: lgeo.zone_start(lzone) + z_wp,
            });
        }
        let su = self.layout.stripe_unit();
        let stripe_data = self.layout.stripe_data_sectors();
        let mut done = at;
        let mut cursor = rel0;
        let mut off = 0usize;
        while cursor < rel0 + sectors {
            let stripe = cursor / stripe_data;
            let within = cursor % stripe_data;
            let unit = within / su;
            let row0 = within % su;
            let rows = (su - row0).min(rel0 + sectors - cursor);
            let out = &mut buf[off..off + (rows * SECTOR_SIZE) as usize];
            let t = self.read_slot_rows(st, at, lzone, stripe, unit, row0, out)?;
            done = done.max(t);
            cursor += rows;
            off += (rows * SECTOR_SIZE) as usize;
        }
        trace_span(
            st,
            obs::OpClass::Read,
            obs::Stage::WholeOp,
            None,
            lzone,
            lba,
            sectors,
            at,
            done,
        );
        Ok(IoCompletion { done })
    }

    fn write(&self, at: SimTime, lba: Lba, data: &[u8], flags: WriteFlags) -> Result<IoCompletion> {
        self.do_write(at, lba, data, flags)
    }

    /// Batch-write entry point: stages `segments` into a pooled scratch
    /// buffer and submits them as one contiguous extent, so a coalesced
    /// batch spanning full stripes takes the full-parity path instead of
    /// per-segment partial-parity logging.
    fn write_vectored(
        &self,
        at: SimTime,
        lba: Lba,
        segments: &[&[u8]],
        flags: WriteFlags,
    ) -> Result<IoCompletion> {
        match segments {
            [] => Ok(IoCompletion { done: at }),
            [only] => self.do_write(at, lba, only, flags),
            _ => {
                let mut scratch = std::mem::take(&mut self.state.lock().gather_scratch);
                scratch.clear();
                for seg in segments {
                    scratch.extend_from_slice(seg);
                }
                let r = self.do_write(at, lba, &scratch, flags);
                let mut st = self.state.lock();
                st.gather_scratch = scratch;
                if r.is_ok() {
                    st.stats.gather_writes += 1;
                    st.stats.gather_segments_merged += segments.len() as u64 - 1;
                }
                r
            }
        }
    }

    fn append(
        &self,
        at: SimTime,
        zone: u32,
        data: &[u8],
        flags: WriteFlags,
    ) -> Result<AppendCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let lba = {
            let st = self.state.lock();
            lgeo.zone_start(zone) + st.lzones[zone as usize].wp
        };
        let c = self.do_write(at, lba, data, flags)?;
        Ok(AppendCompletion { lba, done: c.done })
    }

    fn reset_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let mut st = self.state.lock();
        let st = &mut *st;
        if st.read_only {
            return Err(ZnsError::VolumeReadOnly);
        }
        // WAL first (§5.2): the reset must be replayable before any
        // physical zone is touched.
        let t = self.log_reset_intent(st, at, zone)?;
        let phys = self.layout.phys_zone(zone);
        let mut done = t;
        for i in 0..st.devices.len() {
            if st.failed == Some(i) {
                continue;
            }
            done = done.max(self.reset_phys_with_retry(st, t, i, phys)?);
        }
        done = done.max(self.finish_reset(st, done, zone)?);
        trace_span(
            st,
            obs::OpClass::Reset,
            obs::Stage::WholeOp,
            None,
            zone,
            lgeo.zone_start(zone),
            0,
            at,
            done,
        );
        Ok(IoCompletion { done })
    }

    fn finish_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let mut st = self.state.lock();
        let st = &mut *st;
        if st.read_only {
            return Err(ZnsError::VolumeReadOnly);
        }
        let mut done = at;
        // Seal the incomplete stripe's parity prefix into the parity slot
        // so the finished zone stays single-fault tolerant. The buffer is
        // detached for the duration of the write so its parity can be
        // passed as a borrowed slice, then reattached (rebuild still
        // consults it for the incomplete stripe).
        let taken = st.lzones[zone as usize].buffer.take();
        let r = (|| -> Result<()> {
            if let Some(buf) = &taken {
                if buf.filled_sectors() > 0 {
                    let rows = buf.filled_sectors().min(self.layout.stripe_unit());
                    let stripe = buf.stripe();
                    let pdev = self.layout.parity_device(zone, stripe);
                    let t = self.store_slot_rows(
                        st,
                        at,
                        zone,
                        stripe,
                        pdev,
                        0,
                        &buf.parity()[..(rows * SECTOR_SIZE) as usize],
                        WriteFlags::default(),
                    )?;
                    done = done.max(t);
                    st.stats.full_parity_writes += 1;
                    bump(st, obs::Counter::FullParityWrites);
                }
            }
            Ok(())
        })();
        st.lzones[zone as usize].buffer = taken;
        r?;
        let phys = self.layout.phys_zone(zone);
        for (i, dev) in st.devices.iter().enumerate() {
            if st.failed == Some(i) {
                continue;
            }
            done = done.max(dev.finish_zone(at, phys)?.done);
        }
        let wp = st.lzones[zone as usize].wp;
        let z = &mut st.lzones[zone as usize];
        z.state = ZoneState::Full;
        z.pbitmap.mark_persisted_below(wp);
        trace_span(
            st,
            obs::OpClass::Finish,
            obs::Stage::WholeOp,
            None,
            zone,
            lgeo.zone_start(zone),
            0,
            at,
            done,
        );
        Ok(IoCompletion { done })
    }

    fn open_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let mut st = self.state.lock();
        let st = &mut *st;
        let phys = self.layout.phys_zone(zone);
        let mut done = at;
        for (i, dev) in st.devices.iter().enumerate() {
            if st.failed == Some(i) {
                continue;
            }
            done = done.max(dev.open_zone(at, phys)?.done);
        }
        st.lzones[zone as usize].state = ZoneState::ExplicitlyOpen;
        Ok(IoCompletion { done })
    }

    fn close_zone(&self, at: SimTime, zone: u32) -> Result<IoCompletion> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let mut st = self.state.lock();
        let st = &mut *st;
        {
            let z = &st.lzones[zone as usize];
            if !z.state.is_open() {
                return Err(ZnsError::BadZoneState {
                    zone,
                    state: z.state.name(),
                    op: "close",
                });
            }
        }
        let phys = self.layout.phys_zone(zone);
        let mut done = at;
        for (i, dev) in st.devices.iter().enumerate() {
            if st.failed == Some(i) {
                continue;
            }
            // Physical zones that were never written cannot be closed;
            // ignore state errors from them.
            match dev.close_zone(at, phys) {
                Ok(c) => done = done.max(c.done),
                Err(ZnsError::BadZoneState { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        let z = &mut st.lzones[zone as usize];
        z.state = if z.wp == 0 {
            ZoneState::Empty
        } else {
            ZoneState::Closed
        };
        Ok(IoCompletion { done })
    }

    fn flush(&self, at: SimTime) -> Result<IoCompletion> {
        let mut st = self.state.lock();
        let st = &mut *st;
        let done = self.flush_all(st, at)?;
        Ok(IoCompletion { done })
    }

    fn zone_info(&self, zone: u32) -> Result<ZoneInfo> {
        let lgeo = self.layout.logical_geometry();
        if zone >= lgeo.num_zones() {
            return Err(ZnsError::OutOfRange {
                lba: zone as u64 * lgeo.zone_size(),
                sectors: 0,
            });
        }
        let st = self.state.lock();
        let z = &st.lzones[zone as usize];
        Ok(ZoneInfo {
            zone,
            state: z.state,
            start: lgeo.zone_start(zone),
            write_pointer: lgeo.zone_start(zone) + z.wp,
            capacity: lgeo.zone_cap(),
        })
    }
}

impl obs::GaugeSource for RaiznVolume {
    fn source_label(&self) -> &'static str {
        "raizn"
    }

    /// Instantaneous array state: relocation backlog, degraded flag and
    /// metadata-path counters volume-wide, plus per-device error-budget
    /// headroom and metadata-zone utilization (general + pp-log zone fill,
    /// the input to the §4.3 metadata GC policy).
    fn sample_gauges(&self, out: &mut Vec<obs::GaugeReading>) {
        let st = self.state.lock();
        out.push(obs::GaugeReading::new(
            "relocation_backlog",
            obs::NONE,
            st.relocated.len() as f64,
        ));
        out.push(obs::GaugeReading::new(
            "degraded",
            obs::NONE,
            if st.failed.is_some() { 1.0 } else { 0.0 },
        ));
        out.push(obs::GaugeReading::new(
            "pp_log_entries",
            obs::NONE,
            st.stats.pp_log_entries as f64,
        ));
        out.push(obs::GaugeReading::new(
            "md_appends",
            obs::NONE,
            st.stats.md_appends as f64,
        ));
        out.push(obs::GaugeReading::new(
            "transient_retries",
            obs::NONE,
            st.stats.transient_retries as f64,
        ));
        let budget = self.config.device_error_budget;
        for (d, (dev, roles)) in st.devices.iter().zip(st.md.iter()).enumerate() {
            out.push(obs::GaugeReading::new(
                "error_budget_remaining",
                d as u32,
                budget.saturating_sub(st.device_errors[d]) as f64,
            ));
            // Consistent volume -> device lock order (same as the IO path).
            let zone_fill = |zone: u32| -> u64 {
                dev.zone_info(zone)
                    .map(|zi| zi.write_pointer - zi.start)
                    .unwrap_or(0)
            };
            out.push(obs::GaugeReading::new(
                "md_zone_used_sectors",
                d as u32,
                (zone_fill(roles.general) + zone_fill(roles.pplog)) as f64,
            ));
        }
    }
}
