//! Log-structured metadata records (§4.3 of the paper).
//!
//! Every persisted metadata update is a **record**: a 4 KiB header
//! (Fig. 3: magic, type, start/end LBA, generation counter, inline
//! payload) optionally followed by payload sectors (relocated stripe unit
//! data, partial parity bytes). Records are written with zone append into
//! per-device metadata zones and replayed at mount; validity is decided by
//! comparing the record's generation counter against the current counter
//! of the logical zone it describes.

use crate::Result;
use zns::{Lba, ZnsError, SECTOR_SIZE};

/// Magic value identifying a RAIZN metadata header.
pub const MD_MAGIC: u32 = 0x5A4E_AA55;

/// Size of a metadata header in bytes (one sector).
pub const MD_HEADER_BYTES: usize = SECTOR_SIZE as usize;

/// Generation counters per 4 KiB page: 32-byte header + 508 × 8-byte
/// counters (§4.3).
pub const GEN_COUNTERS_PER_PAGE: usize = 508;

/// Flag bit set on records written by the metadata garbage collector's
/// checkpoint pass, distinguishing them from normal updates (§4.3).
pub const MD_CHECKPOINT_FLAG: u32 = 0x8000_0000;

/// The type tag of a metadata record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum MetadataType {
    /// Array parameters; written once per device at format (and by GC).
    Superblock = 1,
    /// A page of per-logical-zone generation counters.
    GenCounters = 2,
    /// Write-ahead intent to reset a logical zone.
    ZoneResetLog = 3,
    /// A stripe unit redirected away from its arithmetic location.
    RelocatedStripeUnit = 4,
    /// Parity of a partially written stripe.
    PartialParity = 5,
    /// Q (Reed–Solomon) parity of a partially written stripe (RAIZN-2).
    /// Same wire format as [`PartialParity`](Self::PartialParity); a
    /// distinct tag keeps the record self-describing so recovery and
    /// metadata GC never have to infer the parity role from the device
    /// the record happens to live on.
    PartialParityQ = 6,
    /// Write-ahead record of a logical zone finish: the header's LBA
    /// range runs from the zone start to the sealed write pointer, so a
    /// remount knows the exact durable fill even when the devices
    /// witnessing the final stripe are gone.
    ZoneFinishLog = 7,
}

impl MetadataType {
    fn from_u32(v: u32) -> Option<MetadataType> {
        match v {
            1 => Some(MetadataType::Superblock),
            2 => Some(MetadataType::GenCounters),
            3 => Some(MetadataType::ZoneResetLog),
            4 => Some(MetadataType::RelocatedStripeUnit),
            5 => Some(MetadataType::PartialParity),
            6 => Some(MetadataType::PartialParityQ),
            7 => Some(MetadataType::ZoneFinishLog),
            _ => None,
        }
    }
}

/// The decoded header of a metadata record (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataHeader {
    /// Record type.
    pub md_type: MetadataType,
    /// Whether the record was written by a GC checkpoint.
    pub checkpoint: bool,
    /// First logical LBA described by the record.
    pub start_lba: Lba,
    /// One past the last logical LBA described.
    pub end_lba: Lba,
    /// Generation counter of the logical zone containing the LBA range at
    /// the time the record was written.
    pub generation: u64,
}

/// A full metadata record: header plus type-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub struct MdRecord {
    /// The header.
    pub header: MetadataHeader,
    /// Decoded payload.
    pub payload: MdPayload,
}

/// Type-specific payload of a metadata record.
#[derive(Debug, Clone, PartialEq)]
pub enum MdPayload {
    /// Array parameters, stored inline.
    Superblock(Superblock),
    /// `(first logical zone index, counters)`, stored inline.
    GenCounters {
        /// Index of the logical zone whose counter is first in the page.
        first_zone: u32,
        /// Up to [`GEN_COUNTERS_PER_PAGE`] counters.
        counters: Vec<u64>,
    },
    /// Intent to reset the logical zone covering the header's LBA range.
    ZoneResetLog,
    /// Stripe unit data redirected to the metadata zone; the bytes follow
    /// the header on disk. The record always lives on the device whose
    /// slot was occupied, so the device index is implicit.
    RelocatedStripeUnit {
        /// Logical zone containing the relocated slot.
        lzone: u32,
        /// Stripe index of the slot within the zone.
        stripe: u64,
        /// Valid sectors at the start of `data` (the rest is zero fill).
        valid_sectors: u64,
        /// The unit's contents (full stripe unit, zero padded).
        data: Vec<u8>,
    },
    /// Partial parity rows; the bytes follow the header on disk.
    PartialParity {
        /// First parity row (sector within the stripe unit) covered.
        first_row: u64,
        /// Parity bytes for `rows = data.len() / SECTOR_SIZE` rows.
        data: Vec<u8>,
    },
    /// Partial Q-parity rows (RAIZN-2); the bytes follow the header on
    /// disk.
    PartialParityQ {
        /// First parity row (sector within the stripe unit) covered.
        first_row: u64,
        /// Q-parity bytes for `rows = data.len() / SECTOR_SIZE` rows.
        data: Vec<u8>,
    },
    /// The logical zone covering the header's LBA range was finished; the
    /// range's end is the sealed write pointer.
    ZoneFinishLog,
}

/// The array parameters persisted to every device (inline in a
/// [`MetadataType::Superblock`] record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Devices in the array.
    pub num_devices: u32,
    /// This copy's device index.
    pub device_index: u32,
    /// Stripe unit size in sectors.
    pub stripe_unit_sectors: u64,
    /// Metadata zones reserved per device.
    pub md_zones_per_device: u32,
    /// Physical zones per device.
    pub phys_zones: u32,
    /// Physical zone size (sectors).
    pub phys_zone_size: u64,
    /// Physical zone capacity (sectors).
    pub phys_zone_cap: u64,
}

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], off: usize) -> Result<u32> {
    match buf.get(off..off + 4) {
        Some(b) => {
            let mut w = [0u8; 4];
            w.copy_from_slice(b);
            Ok(u32::from_le_bytes(w))
        }
        None => Err(ZnsError::InvalidArgument(format!(
            "metadata header truncated at byte offset {off}"
        ))),
    }
}

fn get_u64(buf: &[u8], off: usize) -> Result<u64> {
    match buf.get(off..off + 8) {
        Some(b) => {
            let mut w = [0u8; 8];
            w.copy_from_slice(b);
            Ok(u64::from_le_bytes(w))
        }
        None => Err(ZnsError::InvalidArgument(format!(
            "metadata header truncated at byte offset {off}"
        ))),
    }
}

/// A borrowed view of a record payload: the zero-copy twin of
/// [`MdPayload`], used by the write path to serialize partial parity,
/// relocated units, and generation pages straight out of live buffers
/// (stripe buffer, relocation cache, counter table) without staging them
/// in an owned `Vec` first.
#[derive(Debug, Clone, Copy)]
pub enum MdPayloadRef<'a> {
    /// Array parameters, stored inline.
    Superblock(Superblock),
    /// `(first logical zone index, counters)`, stored inline.
    GenCounters {
        /// Index of the logical zone whose counter is first in the page.
        first_zone: u32,
        /// Up to [`GEN_COUNTERS_PER_PAGE`] counters.
        counters: &'a [u64],
    },
    /// Intent to reset the logical zone covering the header's LBA range.
    ZoneResetLog,
    /// Stripe unit data redirected to the metadata zone.
    RelocatedStripeUnit {
        /// Logical zone containing the relocated slot.
        lzone: u32,
        /// Stripe index of the slot within the zone.
        stripe: u64,
        /// Valid sectors at the start of `data`.
        valid_sectors: u64,
        /// The unit's contents (full stripe unit, zero padded).
        data: &'a [u8],
    },
    /// Partial parity rows.
    PartialParity {
        /// First parity row (sector within the stripe unit) covered.
        first_row: u64,
        /// Parity bytes for `rows = data.len() / SECTOR_SIZE` rows.
        data: &'a [u8],
    },
    /// Partial Q-parity rows (RAIZN-2).
    PartialParityQ {
        /// First parity row (sector within the stripe unit) covered.
        first_row: u64,
        /// Q-parity bytes for `rows = data.len() / SECTOR_SIZE` rows.
        data: &'a [u8],
    },
    /// The logical zone covering the header's LBA range was finished.
    ZoneFinishLog,
}

/// A record built over a borrowed payload; see [`MdPayloadRef`]. Encodes
/// with [`MdRecordRef::encode_into`] into a caller-provided (typically
/// pooled) buffer.
#[derive(Debug, Clone, Copy)]
pub struct MdRecordRef<'a> {
    /// The header.
    pub header: MetadataHeader,
    /// Borrowed payload.
    pub payload: MdPayloadRef<'a>,
}

impl<'a> MdRecordRef<'a> {
    /// Creates a record view with the given header fields (same header
    /// fix-ups as [`MdRecord::new`]).
    pub fn new(
        payload: MdPayloadRef<'a>,
        checkpoint: bool,
        start_lba: Lba,
        end_lba: Lba,
        generation: u64,
    ) -> MdRecordRef<'a> {
        let md_type = match &payload {
            MdPayloadRef::Superblock(_) => MetadataType::Superblock,
            MdPayloadRef::GenCounters { .. } => MetadataType::GenCounters,
            MdPayloadRef::ZoneResetLog => MetadataType::ZoneResetLog,
            MdPayloadRef::RelocatedStripeUnit { .. } => MetadataType::RelocatedStripeUnit,
            MdPayloadRef::PartialParity { .. } => MetadataType::PartialParity,
            MdPayloadRef::PartialParityQ { .. } => MetadataType::PartialParityQ,
            MdPayloadRef::ZoneFinishLog => MetadataType::ZoneFinishLog,
        };
        let (start_lba, end_lba) = match &payload {
            MdPayloadRef::GenCounters {
                first_zone,
                counters,
            } => (
                *first_zone as u64,
                *first_zone as u64 + counters.len() as u64,
            ),
            _ => (start_lba, end_lba),
        };
        MdRecordRef {
            header: MetadataHeader {
                md_type,
                checkpoint,
                start_lba,
                end_lba,
                generation,
            },
            payload,
        }
    }

    /// Serializes the record into `out`, replacing its contents: one
    /// header sector plus any payload sectors. The result length is always
    /// a multiple of the sector size. `out` keeps its capacity, so a
    /// recycled scratch buffer makes steady-state encoding allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if a trailing payload is not sector-aligned.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.resize(MD_HEADER_BYTES, 0);
        let header = &mut out[..MD_HEADER_BYTES];
        let type_word = self.header.md_type as u32
            | if self.header.checkpoint {
                MD_CHECKPOINT_FLAG
            } else {
                0
            };
        put_u32(header, 0, MD_MAGIC);
        put_u32(header, 4, type_word);
        put_u64(header, 8, self.header.start_lba);
        put_u64(header, 16, self.header.end_lba);
        put_u64(header, 24, self.header.generation);
        match &self.payload {
            MdPayloadRef::Superblock(sb) => {
                put_u32(header, 32, sb.num_devices);
                put_u32(header, 36, sb.device_index);
                put_u64(header, 40, sb.stripe_unit_sectors);
                put_u32(header, 48, sb.md_zones_per_device);
                put_u32(header, 52, sb.phys_zones);
                put_u64(header, 56, sb.phys_zone_size);
                put_u64(header, 64, sb.phys_zone_cap);
            }
            MdPayloadRef::GenCounters {
                first_zone,
                counters,
            } => {
                assert!(
                    counters.len() <= GEN_COUNTERS_PER_PAGE,
                    "too many counters for one page"
                );
                // The header's LBA-range field doubles as the zone range
                // (32-byte header + 508 counters = exactly 4 KiB, §4.3).
                put_u64(header, 8, *first_zone as u64);
                put_u64(header, 16, *first_zone as u64 + counters.len() as u64);
                for (i, c) in counters.iter().enumerate() {
                    put_u64(header, 32 + i * 8, *c);
                }
            }
            MdPayloadRef::ZoneResetLog | MdPayloadRef::ZoneFinishLog => {}
            MdPayloadRef::RelocatedStripeUnit {
                lzone,
                stripe,
                valid_sectors,
                data,
            } => {
                assert_eq!(
                    data.len() % SECTOR_SIZE as usize,
                    0,
                    "relocated unit payload must be sector aligned"
                );
                put_u64(header, 32, (data.len() / SECTOR_SIZE as usize) as u64);
                put_u32(header, 40, *lzone);
                put_u64(header, 48, *stripe);
                put_u64(header, 56, *valid_sectors);
                out.extend_from_slice(data);
            }
            MdPayloadRef::PartialParity { first_row, data }
            | MdPayloadRef::PartialParityQ { first_row, data } => {
                assert_eq!(
                    data.len() % SECTOR_SIZE as usize,
                    0,
                    "partial parity payload must be sector aligned"
                );
                put_u64(header, 32, *first_row);
                put_u64(header, 40, (data.len() / SECTOR_SIZE as usize) as u64);
                out.extend_from_slice(data);
            }
        }
    }
}

impl MdPayload {
    /// Borrows this payload as an [`MdPayloadRef`].
    pub fn as_ref(&self) -> MdPayloadRef<'_> {
        match self {
            MdPayload::Superblock(sb) => MdPayloadRef::Superblock(*sb),
            MdPayload::GenCounters {
                first_zone,
                counters,
            } => MdPayloadRef::GenCounters {
                first_zone: *first_zone,
                counters,
            },
            MdPayload::ZoneResetLog => MdPayloadRef::ZoneResetLog,
            MdPayload::ZoneFinishLog => MdPayloadRef::ZoneFinishLog,
            MdPayload::RelocatedStripeUnit {
                lzone,
                stripe,
                valid_sectors,
                data,
            } => MdPayloadRef::RelocatedStripeUnit {
                lzone: *lzone,
                stripe: *stripe,
                valid_sectors: *valid_sectors,
                data,
            },
            MdPayload::PartialParity { first_row, data } => MdPayloadRef::PartialParity {
                first_row: *first_row,
                data,
            },
            MdPayload::PartialParityQ { first_row, data } => MdPayloadRef::PartialParityQ {
                first_row: *first_row,
                data,
            },
        }
    }
}

impl MdRecord {
    /// Creates a record with the given header fields.
    pub fn new(
        md_type_payload: MdPayload,
        checkpoint: bool,
        start_lba: Lba,
        end_lba: Lba,
        generation: u64,
    ) -> MdRecord {
        let header = MdRecordRef::new(
            md_type_payload.as_ref(),
            checkpoint,
            start_lba,
            end_lba,
            generation,
        )
        .header;
        MdRecord {
            header,
            payload: md_type_payload,
        }
    }

    /// Borrows this record as an [`MdRecordRef`].
    pub fn as_ref(&self) -> MdRecordRef<'_> {
        MdRecordRef {
            header: self.header,
            payload: self.payload.as_ref(),
        }
    }

    /// Serializes the record: one header sector plus any payload sectors.
    /// The result length is always a multiple of the sector size. Hot
    /// paths should prefer [`MdRecordRef::encode_into`] with a pooled
    /// scratch buffer; this convenience allocates.
    ///
    /// # Panics
    ///
    /// Panics if a trailing payload is not sector-aligned.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.as_ref().encode_into(&mut out);
        out
    }

    /// Number of payload sectors that follow a header, given its bytes.
    /// Returns `None` when the header is not a valid RAIZN header.
    pub fn payload_sectors(header: &[u8]) -> Option<u64> {
        if header.len() < MD_HEADER_BYTES || get_u32(header, 0).ok()? != MD_MAGIC {
            return None;
        }
        let ty = MetadataType::from_u32(get_u32(header, 4).ok()? & !MD_CHECKPOINT_FLAG)?;
        Some(match ty {
            MetadataType::Superblock
            | MetadataType::GenCounters
            | MetadataType::ZoneResetLog
            | MetadataType::ZoneFinishLog => 0,
            MetadataType::RelocatedStripeUnit => get_u64(header, 32).ok()?,
            MetadataType::PartialParity | MetadataType::PartialParityQ => {
                get_u64(header, 40).ok()?
            }
        })
    }

    /// Decodes a record from `header` bytes and its `payload` bytes (which
    /// must match [`payload_sectors`](Self::payload_sectors)).
    ///
    /// # Errors
    ///
    /// Returns [`ZnsError::InvalidArgument`] on bad magic, unknown type, or
    /// malformed lengths.
    pub fn decode(header: &[u8], payload: &[u8]) -> Result<MdRecord> {
        if header.len() < MD_HEADER_BYTES {
            return Err(ZnsError::InvalidArgument(
                "metadata header shorter than one sector".to_string(),
            ));
        }
        if get_u32(header, 0)? != MD_MAGIC {
            return Err(ZnsError::InvalidArgument("bad metadata magic".to_string()));
        }
        let type_word = get_u32(header, 4)?;
        let checkpoint = type_word & MD_CHECKPOINT_FLAG != 0;
        let md_type = MetadataType::from_u32(type_word & !MD_CHECKPOINT_FLAG).ok_or_else(|| {
            ZnsError::InvalidArgument(format!("unknown metadata type {type_word:#x}"))
        })?;
        let h = MetadataHeader {
            md_type,
            checkpoint,
            start_lba: get_u64(header, 8)?,
            end_lba: get_u64(header, 16)?,
            generation: get_u64(header, 24)?,
        };
        let payload = match md_type {
            MetadataType::Superblock => MdPayload::Superblock(Superblock {
                num_devices: get_u32(header, 32)?,
                device_index: get_u32(header, 36)?,
                stripe_unit_sectors: get_u64(header, 40)?,
                md_zones_per_device: get_u32(header, 48)?,
                phys_zones: get_u32(header, 52)?,
                phys_zone_size: get_u64(header, 56)?,
                phys_zone_cap: get_u64(header, 64)?,
            }),
            MetadataType::GenCounters => {
                let first_zone = get_u64(header, 8)? as u32;
                let count = (get_u64(header, 16)? - get_u64(header, 8)?) as usize;
                if count > GEN_COUNTERS_PER_PAGE {
                    return Err(ZnsError::InvalidArgument(format!(
                        "generation counter page claims {count} counters"
                    )));
                }
                let mut counters = Vec::with_capacity(count);
                for i in 0..count {
                    counters.push(get_u64(header, 32 + i * 8)?);
                }
                MdPayload::GenCounters {
                    first_zone,
                    counters,
                }
            }
            MetadataType::ZoneResetLog => MdPayload::ZoneResetLog,
            MetadataType::ZoneFinishLog => MdPayload::ZoneFinishLog,
            MetadataType::RelocatedStripeUnit => {
                let sectors = get_u64(header, 32)?;
                if payload.len() as u64 != sectors * SECTOR_SIZE {
                    return Err(ZnsError::InvalidArgument(
                        "relocated unit payload length mismatch".to_string(),
                    ));
                }
                MdPayload::RelocatedStripeUnit {
                    lzone: get_u32(header, 40)?,
                    stripe: get_u64(header, 48)?,
                    valid_sectors: get_u64(header, 56)?,
                    data: payload.to_vec(),
                }
            }
            MetadataType::PartialParity | MetadataType::PartialParityQ => {
                let first_row = get_u64(header, 32)?;
                let sectors = get_u64(header, 40)?;
                if payload.len() as u64 != sectors * SECTOR_SIZE {
                    return Err(ZnsError::InvalidArgument(
                        "partial parity payload length mismatch".to_string(),
                    ));
                }
                let data = payload.to_vec();
                if md_type == MetadataType::PartialParity {
                    MdPayload::PartialParity { first_row, data }
                } else {
                    MdPayload::PartialParityQ { first_row, data }
                }
            }
        };
        Ok(MdRecord { header: h, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: MdRecord) {
        let bytes = rec.encode();
        assert_eq!(bytes.len() % SECTOR_SIZE as usize, 0);
        let (h, p) = bytes.split_at(MD_HEADER_BYTES);
        let sectors = MdRecord::payload_sectors(h).expect("valid header");
        assert_eq!(p.len() as u64, sectors * SECTOR_SIZE);
        let decoded = MdRecord::decode(h, p).expect("decodes");
        assert_eq!(decoded, rec);
    }

    #[test]
    fn superblock_roundtrip() {
        roundtrip(MdRecord::new(
            MdPayload::Superblock(Superblock {
                num_devices: 5,
                device_index: 2,
                stripe_unit_sectors: 16,
                md_zones_per_device: 3,
                phys_zones: 1900,
                phys_zone_size: 524_288,
                phys_zone_cap: 275_712,
            }),
            false,
            0,
            0,
            0,
        ));
    }

    #[test]
    fn gen_counters_roundtrip() {
        roundtrip(MdRecord::new(
            MdPayload::GenCounters {
                first_zone: 508,
                counters: (0..508u64).collect(),
            },
            true,
            0,
            0,
            0,
        ));
    }

    #[test]
    fn zone_reset_log_roundtrip() {
        roundtrip(MdRecord::new(MdPayload::ZoneResetLog, false, 256, 512, 7));
    }

    #[test]
    fn zone_finish_log_roundtrip() {
        // End LBA is the sealed write pointer, not the zone cap.
        roundtrip(MdRecord::new(MdPayload::ZoneFinishLog, false, 256, 280, 7));
    }

    #[test]
    fn relocated_unit_roundtrip() {
        roundtrip(MdRecord::new(
            MdPayload::RelocatedStripeUnit {
                lzone: 2,
                stripe: 9,
                valid_sectors: 3,
                data: vec![0xCD; 4 * SECTOR_SIZE as usize],
            },
            false,
            100,
            104,
            3,
        ));
    }

    #[test]
    fn partial_parity_roundtrip() {
        roundtrip(MdRecord::new(
            MdPayload::PartialParity {
                first_row: 2,
                data: vec![0xEE; 2 * SECTOR_SIZE as usize],
            },
            false,
            40,
            48,
            11,
        ));
    }

    #[test]
    fn partial_parity_q_roundtrip() {
        roundtrip(MdRecord::new(
            MdPayload::PartialParityQ {
                first_row: 1,
                data: vec![0x5A; 3 * SECTOR_SIZE as usize],
            },
            false,
            40,
            48,
            11,
        ));
    }

    #[test]
    fn truncated_header_is_an_error_not_a_panic() {
        let rec = MdRecord::new(MdPayload::ZoneResetLog, false, 0, 1, 0);
        let bytes = rec.encode();
        // Long enough to pass the length gate nowhere, short enough that a
        // naive slice would panic: decode must return InvalidArgument.
        assert!(MdRecord::decode(&bytes[..16], &[]).is_err());
        assert!(MdRecord::payload_sectors(&bytes[..16]).is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let rec = MdRecord::new(MdPayload::ZoneResetLog, false, 0, 1, 0);
        let mut bytes = rec.encode();
        bytes[0] ^= 0xFF;
        assert!(MdRecord::payload_sectors(&bytes).is_none());
        assert!(MdRecord::decode(&bytes, &[]).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let rec = MdRecord::new(MdPayload::ZoneResetLog, false, 0, 1, 0);
        let mut bytes = rec.encode();
        bytes[4] = 99;
        assert!(MdRecord::decode(&bytes, &[]).is_err());
    }

    #[test]
    fn checkpoint_flag_roundtrips() {
        let rec = MdRecord::new(MdPayload::ZoneResetLog, true, 0, 1, 5);
        let bytes = rec.encode();
        let decoded = MdRecord::decode(&bytes, &[]).unwrap();
        assert!(decoded.header.checkpoint);
        assert_eq!(decoded.header.generation, 5);
    }

    #[test]
    fn gen_counter_page_capacity_is_papers() {
        // 32-byte header + 508 counters of 8 bytes = exactly 4 KiB (§4.3).
        assert_eq!(GEN_COUNTERS_PER_PAGE, 508);
        assert_eq!(32 + GEN_COUNTERS_PER_PAGE * 8, MD_HEADER_BYTES);
    }

    #[test]
    fn payload_sector_counts() {
        let pp = MdRecord::new(
            MdPayload::PartialParity {
                first_row: 0,
                data: vec![0; 3 * SECTOR_SIZE as usize],
            },
            false,
            0,
            12,
            0,
        )
        .encode();
        assert_eq!(MdRecord::payload_sectors(&pp), Some(3));
        let rl = MdRecord::new(MdPayload::ZoneResetLog, false, 0, 1, 0).encode();
        assert_eq!(MdRecord::payload_sectors(&rl), Some(0));
    }
}
