//! RAIZN address arithmetic: logical zones, stripes and parity rotation.
//!
//! The paper's §4.1 layout: physical zones `0..M` of every device are
//! metadata zones; data zone `M + z` of every device together form
//! **logical zone z**. Within a logical zone, data is striped in
//! `stripe_unit` chunks with one parity unit per stripe; the parity device
//! rotates every stripe *and* every zone (the per-zone rotation also
//! spreads the zone-reset WAL write amplification, §5.2).
//!
//! RAIZN-2 (`parity = 2`) adds a second rotating parity column Q — a
//! GF(2^8) Reed–Solomon code word over the data units ([`sim::gf`]) —
//! on the device immediately after the P device, so the P/Q pair rotates
//! as one and any two device failures are survivable. Data unit `k` then
//! starts at `P + 2` instead of `P + 1`.

use crate::config::RaiznConfig;
use zns::{Lba, ZoneGeometry};

/// Address arithmetic for a RAIZN array.
///
/// # Examples
///
/// ```
/// use raizn::{RaiznConfig, RaiznLayout};
/// let layout = RaiznLayout::new(5, RaiznConfig::small_test(),
///                               zns::ZnsConfig::small_test().geometry());
/// // 4 data units of 4 sectors per stripe.
/// assert_eq!(layout.stripe_data_sectors(), 16);
/// // The parity device differs from every data device of the same stripe.
/// let p = layout.parity_device(0, 0);
/// for k in 0..4 {
///     assert_ne!(layout.data_device(0, 0, k), p);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaiznLayout {
    n: u32,
    su: u64,
    md_zones: u32,
    parity: u32,
    phys: ZoneGeometry,
}

impl RaiznLayout {
    /// Builds the layout for `n` devices with physical geometry `phys`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two data units remain (`n < parity + 2`) or
    /// the configuration fails validation.
    pub fn new(n: u32, config: RaiznConfig, phys: ZoneGeometry) -> Self {
        config.validate(&phys);
        assert!(
            n >= config.parity + 2,
            "RAIZN requires at least {} devices with parity = {} (got {n})",
            config.parity + 2,
            config.parity
        );
        RaiznLayout {
            n,
            su: config.stripe_unit_sectors,
            md_zones: config.md_zones_per_device,
            parity: config.parity,
            phys,
        }
    }

    /// Number of array devices (data + parity).
    pub fn devices(&self) -> u32 {
        self.n
    }

    /// Rotating parity units per stripe (1 = P only, 2 = P + Q).
    pub fn parity_units(&self) -> u32 {
        self.parity
    }

    /// Data stripe units per stripe (`devices - parity_units`).
    pub fn data_units(&self) -> u64 {
        (self.n - self.parity) as u64
    }

    /// Stripe unit size in sectors.
    pub fn stripe_unit(&self) -> u64 {
        self.su
    }

    /// Logical sectors covered by one stripe (`data_units * stripe_unit`).
    pub fn stripe_data_sectors(&self) -> u64 {
        self.data_units() * self.su
    }

    /// Metadata zones reserved per device.
    pub fn md_zones(&self) -> u32 {
        self.md_zones
    }

    /// The physical device geometry.
    pub fn phys_geometry(&self) -> ZoneGeometry {
        self.phys
    }

    /// Number of logical zones.
    pub fn logical_zones(&self) -> u32 {
        self.phys.num_zones() - self.md_zones
    }

    /// Stripes per logical zone.
    pub fn stripes_per_zone(&self) -> u64 {
        self.phys.zone_cap() / self.su
    }

    /// The geometry of the exposed logical volume: each logical zone spans
    /// `data_units` physical zones' worth of address space and capacity.
    pub fn logical_geometry(&self) -> ZoneGeometry {
        ZoneGeometry::new(
            self.logical_zones(),
            self.data_units() * self.phys.zone_size(),
            self.data_units() * self.phys.zone_cap(),
        )
    }

    /// The physical zone index backing logical zone `lzone` (same on every
    /// device).
    pub fn phys_zone(&self, lzone: u32) -> u32 {
        debug_assert!(lzone < self.logical_zones());
        lzone + self.md_zones
    }

    /// The device holding the (P) parity unit of `stripe` in `lzone`.
    /// Rotates per stripe and per zone.
    pub fn parity_device(&self, lzone: u32, stripe: u64) -> u32 {
        ((lzone as u64 + stripe) % self.n as u64) as u32
    }

    /// The device holding the Q (Reed–Solomon) parity unit of `stripe`
    /// in `lzone`, or `None` in single-parity mode. Q always sits on the
    /// device after P, so the P/Q pair rotates as one.
    pub fn q_device(&self, lzone: u32, stripe: u64) -> Option<u32> {
        if self.parity < 2 {
            return None;
        }
        let p = self.parity_device(lzone, stripe) as u64;
        Some(((p + 1) % self.n as u64) as u32)
    }

    /// The device holding data unit `k` of `stripe` in `lzone`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `k` is out of range.
    pub fn data_device(&self, lzone: u32, stripe: u64, k: u64) -> u32 {
        debug_assert!(k < self.data_units(), "data unit index out of range");
        let p = self.parity_device(lzone, stripe) as u64;
        ((p + self.parity as u64 + k) % self.n as u64) as u32
    }

    /// The inverse of [`data_device`](Self::data_device): which data unit
    /// index (or parity) device `dev` holds for `stripe` of `lzone`.
    /// Returns `None` when `dev` holds P or Q parity.
    pub fn unit_of_device(&self, lzone: u32, stripe: u64, dev: u32) -> Option<u64> {
        let p = self.parity_device(lzone, stripe);
        let n = self.n as u64;
        let k = (dev as u64 + n - p as u64) % n;
        if k < self.parity as u64 {
            return None; // k == 0 is P itself, k == 1 is Q in dual mode.
        }
        Some(k - self.parity as u64)
    }

    /// PBA (on whichever device) of `stripe`'s units within the backing
    /// physical zone of `lzone`: every unit of stripe `s` lives at the same
    /// per-device offset `s * stripe_unit`.
    pub fn stripe_pba(&self, lzone: u32, stripe: u64) -> Lba {
        self.phys.zone_start(self.phys_zone(lzone)) + stripe * self.su
    }

    /// Decomposes a logical LBA into `(logical zone, stripe, data unit,
    /// offset within unit)`.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is outside the logical address space or addresses
    /// the unwritable cap..size gap of a logical zone.
    pub fn locate(&self, lba: Lba) -> Location {
        let lgeo = self.logical_geometry();
        let lzone = lgeo.zone_of(lba);
        let off = lgeo.offset_in_zone(lba);
        assert!(
            off < lgeo.zone_cap(),
            "lba {lba} addresses the unwritable tail of logical zone {lzone}"
        );
        let stripe = off / self.stripe_data_sectors();
        let within_stripe = off % self.stripe_data_sectors();
        let unit = within_stripe / self.su;
        let within_unit = within_stripe % self.su;
        Location {
            lzone,
            stripe,
            unit,
            within_unit,
        }
    }

    /// Recomposes a [`Location`] into a logical LBA.
    pub fn lba_of(&self, loc: Location) -> Lba {
        self.logical_geometry().zone_start(loc.lzone)
            + loc.stripe * self.stripe_data_sectors()
            + loc.unit * self.su
            + loc.within_unit
    }

    /// The device and device-PBA of a located sector.
    pub fn device_pba(&self, loc: Location) -> (u32, Lba) {
        let dev = self.data_device(loc.lzone, loc.stripe, loc.unit);
        let pba = self.stripe_pba(loc.lzone, loc.stripe) + loc.within_unit;
        (dev, pba)
    }
}

/// A decomposed logical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Logical zone index.
    pub lzone: u32,
    /// Stripe index within the zone.
    pub stripe: u64,
    /// Data unit index within the stripe.
    pub unit: u64,
    /// Sector offset within the unit.
    pub within_unit: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn layout() -> RaiznLayout {
        RaiznLayout::new(
            5,
            RaiznConfig::small_test(),
            zns::ZnsConfig::small_test().geometry(),
        )
    }

    #[test]
    fn logical_geometry_math() {
        let l = layout();
        let g = l.logical_geometry();
        // 16 phys zones - 3 md = 13 logical zones.
        assert_eq!(g.num_zones(), 13);
        // 4 data units * 64-sector zones.
        assert_eq!(g.zone_cap(), 256);
        assert_eq!(l.stripes_per_zone(), 16);
    }

    #[test]
    fn parity_rotates_per_stripe_and_zone() {
        let l = layout();
        // Within a zone, 5 consecutive stripes use 5 distinct parity devs.
        let mut devs: Vec<u32> = (0..5).map(|s| l.parity_device(0, s)).collect();
        devs.sort_unstable();
        assert_eq!(devs, vec![0, 1, 2, 3, 4]);
        // Zone rotation: stripe 0 parity differs across consecutive zones.
        assert_ne!(l.parity_device(0, 0), l.parity_device(1, 0));
    }

    #[test]
    fn unit_of_device_inverts_data_device() {
        let l = layout();
        for lz in 0..3u32 {
            for s in 0..7u64 {
                for k in 0..l.data_units() {
                    let d = l.data_device(lz, s, k);
                    assert_eq!(l.unit_of_device(lz, s, d), Some(k));
                }
                let p = l.parity_device(lz, s);
                assert_eq!(l.unit_of_device(lz, s, p), None);
            }
        }
    }

    #[test]
    fn dual_parity_geometry() {
        let l = RaiznLayout::new(
            5,
            RaiznConfig::small_test_raizn2(),
            zns::ZnsConfig::small_test().geometry(),
        );
        assert_eq!(l.parity_units(), 2);
        assert_eq!(l.data_units(), 3);
        // 3 data units * 64-sector zones.
        assert_eq!(l.logical_geometry().zone_cap(), 192);
        for lz in 0..3u32 {
            for s in 0..7u64 {
                let p = l.parity_device(lz, s);
                let q = l.q_device(lz, s).expect("dual mode has Q");
                assert_eq!(q, (p + 1) % 5, "Q trails P");
                assert_eq!(l.unit_of_device(lz, s, p), None);
                assert_eq!(l.unit_of_device(lz, s, q), None);
                for k in 0..l.data_units() {
                    let d = l.data_device(lz, s, k);
                    assert_ne!(d, p);
                    assert_ne!(d, q);
                    assert_eq!(l.unit_of_device(lz, s, d), Some(k));
                }
            }
        }
        // Single-parity mode exposes no Q device.
        assert_eq!(layout().q_device(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "at least 4 devices")]
    fn dual_parity_needs_four_devices() {
        RaiznLayout::new(
            3,
            RaiznConfig::small_test_raizn2(),
            zns::ZnsConfig::small_test().geometry(),
        );
    }

    #[test]
    fn locate_lba_roundtrip() {
        let l = layout();
        for lba in [0u64, 1, 4, 17, 255, 256 * 5 + 100] {
            let lgeo = l.logical_geometry();
            // Skip addresses in the cap..size gap.
            if lgeo.offset_in_zone(lba) >= lgeo.zone_cap() {
                continue;
            }
            let loc = l.locate(lba);
            assert_eq!(l.lba_of(loc), lba);
        }
    }

    #[test]
    fn stripe_pba_offsets() {
        let l = layout();
        // Logical zone 0 is physical zone 3; stripe 2 units live at
        // phys-zone offset 2 * 4.
        assert_eq!(l.stripe_pba(0, 2), 3 * 64 + 8);
    }

    #[test]
    #[should_panic(expected = "unwritable tail")]
    fn locate_rejects_cap_gap() {
        // Geometry with zone_size > zone_cap.
        let phys = ZoneGeometry::new(8, 64, 32);
        let l = RaiznLayout::new(3, RaiznConfig::small_test(), phys);
        let lgeo = l.logical_geometry();
        l.locate(lgeo.zone_cap()); // first unwritable sector of zone 0
    }

    proptest! {
        #[test]
        fn distinct_lbas_map_to_distinct_device_sectors(
            a in 0u64..(13 * 256),
            b in 0u64..(13 * 256)
        ) {
            let l = layout();
            let lgeo = l.logical_geometry();
            // Map capacity-index to address-space LBA (zones contiguous
            // here since zone_size == zone_cap per device => logical too).
            let to_lba = |x: u64| {
                let z = x / lgeo.zone_cap();
                let off = x % lgeo.zone_cap();
                lgeo.zone_start(z as u32) + off
            };
            let la = to_lba(a);
            let lb = to_lba(b);
            let ma = l.device_pba(l.locate(la));
            let mb = l.device_pba(l.locate(lb));
            if la != lb {
                prop_assert_ne!(ma, mb);
            } else {
                prop_assert_eq!(ma, mb);
            }
        }

        #[test]
        fn parity_never_collides_with_data(lz in 0u32..13, s in 0u64..16) {
            let l = layout();
            let p = l.parity_device(lz, s);
            for k in 0..l.data_units() {
                prop_assert_ne!(l.data_device(lz, s, k), p);
            }
        }
    }
}
